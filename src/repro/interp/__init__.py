"""The t86 interpreter.

CMS begins executing everything here: the interpreter "decodes and
executes x86 instructions sequentially, with careful attention to memory
access ordering and precise reproduction of faults, while collecting
data on execution frequency, branch directions, and memory-mapped I/O
operations" (paper §2).  It is also the recovery engine: after any
rollback, CMS re-executes the faulted region one instruction at a time
through this interpreter, which "implements precise x86 semantics and
guarantees correct machine state at every instruction boundary" (§3).
"""

from repro.interp.interpreter import Halted, Interpreter, StepOutcome
from repro.interp.profile import ExecutionProfile

__all__ = ["Halted", "Interpreter", "StepOutcome", "ExecutionProfile"]
