"""Precise reference interpreter for the t86 guest ISA.

The interpreter is the correctness anchor of the whole system:

* it executes one instruction at a time with no partial architectural
  updates — every register write happens only after every fault
  opportunity of that instruction has passed;
* it delivers exceptions and hardware interrupts at exact instruction
  boundaries;
* it is the recovery path after every host rollback (paper §3): CMS
  re-executes the rolled-back region here to decide whether a fault was
  genuine or an artifact of speculation.

The interpreter works against any ``GuestState`` implementation: a
``SimpleGuestState`` for the reference configuration, or the
host-shadow-register-backed state inside CMS, where each interpreted
instruction updates committed state directly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa import flags as fl
from repro.isa import registers as regs
from repro.isa.decoder import decode
from repro.isa.exceptions import GuestException
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Op
from repro.machine import Machine
from repro.state import FLAG_SLOTS, GuestState

MASK32 = 0xFFFFFFFF
SIGN32 = 0x80000000

IF_SLOT = FLAG_SLOTS.index("if_")
IVT_BASE = 0x0000  # physical base of the interrupt vector table


class Halted(Exception):
    """The guest executed ``hlt`` with interrupts disabled: workload end."""


@dataclass
class StepOutcome:
    """What one interpreter step did (consumed by profiling and CMS)."""

    addr: int
    instr: Instruction | None = None
    took_interrupt: bool = False
    took_exception: bool = False
    touched_mmio: bool = False


class Interpreter:
    """Instruction-at-a-time execution with precise semantics."""

    def __init__(self, machine: Machine, state: GuestState,
                 profile=None) -> None:
        self.machine = machine
        self.state = state
        self.profile = profile
        # CMS hook called with (paddr, size) before every data store; the
        # SMC manager uses it to service protection events for stores
        # performed by the (native, hence hardware-checked) interpreter.
        self.store_hook = None
        # Optional DecodedInstructionCache.  Consulted only while paging
        # is disabled (identity mapping, so EIP is the physical address
        # the cache is keyed by); kept coherent by the owner through the
        # memory bus's store observers.
        self.icache = None
        self.steps = 0
        self.exceptions_delivered = 0
        self.interrupts_delivered = 0
        self._halted_waiting = False
        self._touched_mmio = False

    # ------------------------------------------------------------------
    # Top-level stepping
    # ------------------------------------------------------------------

    def step(self, tick: bool = True) -> StepOutcome:
        """Execute one instruction (or deliver one interrupt).

        Raises ``Halted`` when the machine executes ``hlt`` with
        interrupts disabled.  When ``tick`` is false the caller owns
        device time (used by CMS recovery re-execution, which replays
        instructions whose device time already passed).
        """
        state = self.state
        if state.interrupts_enabled:
            vector = self.machine.pending_vector()
            if vector is not None:
                try:
                    self._deliver_interrupt(vector)
                except GuestException:
                    raise Halted() from None  # fault during delivery
                self._halted_waiting = False
                return StepOutcome(addr=state.eip, took_interrupt=True)
        if self._halted_waiting:
            if not state.interrupts_enabled:
                raise Halted()
            # Waiting for an interrupt: let device time advance.
            if tick:
                self.machine.tick(1)
            return StepOutcome(addr=state.eip)

        addr = state.eip
        self._touched_mmio = False
        try:
            icache = self.icache
            if icache is not None and not self.machine.mmu.paging_enabled:
                entry = icache.entries.get(addr)
                if entry is None:
                    icache.misses += 1
                    instr = decode(self.machine, addr)
                    handler = _DISPATCH.get(instr.op)
                    if handler is None:
                        raise AssertionError(f"no handler for {instr.op!r}")
                    icache.insert(addr, instr.length, (instr, handler))
                else:
                    icache.hits += 1
                    instr, handler = entry
                handler(self, instr)
            else:
                instr = decode(self.machine, addr)
                self.execute(instr)
        except Halted:
            raise
        except GuestException as exc:
            try:
                self._deliver_exception(exc, addr)
            except GuestException:
                # A fault during exception delivery (e.g. the stack
                # pushed out of physical memory): the double/triple
                # fault of a real PC, which shuts the machine down.
                raise Halted() from None
            if tick:
                self.machine.tick(1)
            return StepOutcome(addr=addr, took_exception=True)
        self.steps += 1
        if self.profile is not None:
            self.profile.on_exec(addr)
            if self._touched_mmio:
                self.profile.on_mmio(addr)
        if tick:
            self.machine.tick(1)
        return StepOutcome(addr=addr, instr=instr,
                           touched_mmio=self._touched_mmio)

    def run(self, max_steps: int = 1_000_000) -> int:
        """Run until ``hlt`` (with IF=0) or the step budget; returns steps."""
        done = 0
        try:
            for done in range(1, max_steps + 1):
                self.step()
        except Halted:
            pass
        return done

    # ------------------------------------------------------------------
    # Exception and interrupt delivery
    # ------------------------------------------------------------------

    def _read_vector(self, vector: int) -> int:
        return self.machine.bus.read(IVT_BASE + vector * 4, 4)

    def _push(self, value: int) -> None:
        state = self.state
        new_esp = (state.get_reg(regs.ESP) - 4) & MASK32
        self._store(new_esp, value, 4)
        state.set_reg(regs.ESP, new_esp)

    def _pop(self) -> int:
        state = self.state
        esp = state.get_reg(regs.ESP)
        value = self._load(esp, 4)
        state.set_reg(regs.ESP, (esp + 4) & MASK32)
        return value

    def _deliver_interrupt(self, vector: int) -> None:
        """Deliver a hardware interrupt at the current precise boundary."""
        state = self.state
        self._push(state.eflags)
        self._push(state.eip)
        state.set_flag(IF_SLOT, 0)
        state.eip = self._read_vector(vector)
        self.machine.pic.acknowledge(vector)
        self.interrupts_delivered += 1

    def _deliver_exception(self, exc: GuestException, instr_addr: int) -> None:
        """Deliver a fault: the pushed EIP re-executes the instruction."""
        state = self.state
        state.eip = instr_addr  # undo any partial EIP advance
        self._push(state.eflags)
        self._push(instr_addr)
        if exc.pushes_error_code:
            self._push(exc.error_code)
        state.set_flag(IF_SLOT, 0)
        state.eip = self._read_vector(exc.vector)
        self.exceptions_delivered += 1

    def deliver_guest_exception(self, exc: GuestException,
                                instr_addr: int) -> None:
        """Public hook used by CMS to deliver a fault found during recovery."""
        self._deliver_exception(exc, instr_addr)

    # ------------------------------------------------------------------
    # Data access helpers (order matters for precision)
    # ------------------------------------------------------------------

    def _load(self, vaddr: int, size: int) -> int:
        paddr = self.machine.vtranslate(vaddr, size, is_write=False)
        if self.machine.bus.is_io(paddr, size):
            self._touched_mmio = True
        return self.machine.bus.read(paddr, size)

    def _store(self, vaddr: int, value: int, size: int) -> None:
        paddr = self.machine.vtranslate(vaddr, size, is_write=True)
        if self.machine.bus.is_io(paddr, size):
            self._touched_mmio = True
        elif self.store_hook is not None:
            self.store_hook(paddr, size)
        self.machine.bus.write(paddr, value, size)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def execute(self, instr: Instruction) -> None:
        """Execute one decoded instruction, updating state precisely."""
        handler = _DISPATCH.get(instr.op)
        if handler is None:
            raise AssertionError(f"no handler for {instr.op!r}")
        handler(self, instr)

    # -- address computation ------------------------------------------------

    def _ea(self, instr: Instruction) -> int:
        """Effective address for RM/MR/MI formats."""
        return (self.state.get_reg(instr.r2) + instr.disp) & MASK32

    def _ea_indexed(self, instr: Instruction) -> int:
        base = self.state.get_reg(instr.r2)
        index = self.state.get_reg(instr.index) << instr.scale_log2
        return (base + index + instr.disp) & MASK32

    # -- movement ------------------------------------------------------------

    def _op_nop(self, instr: Instruction) -> None:
        self.state.eip = instr.next_addr

    def _op_mov_rr(self, instr: Instruction) -> None:
        self.state.set_reg(instr.r1, self.state.get_reg(instr.r2))
        self.state.eip = instr.next_addr

    def _op_mov_ri(self, instr: Instruction) -> None:
        self.state.set_reg(instr.r1, instr.imm)
        self.state.eip = instr.next_addr

    def _op_xchg(self, instr: Instruction) -> None:
        state = self.state
        a, b = state.get_reg(instr.r1), state.get_reg(instr.r2)
        state.set_reg(instr.r1, b)
        state.set_reg(instr.r2, a)
        state.eip = instr.next_addr

    def _op_load(self, instr: Instruction) -> None:
        value = self._load(self._ea(instr), 4)
        self.state.set_reg(instr.r1, value)
        self.state.eip = instr.next_addr

    def _op_loadb(self, instr: Instruction) -> None:
        value = self._load(self._ea(instr), 1)
        self.state.set_reg(instr.r1, value)
        self.state.eip = instr.next_addr

    def _op_loadx(self, instr: Instruction) -> None:
        value = self._load(self._ea_indexed(instr), 4)
        self.state.set_reg(instr.r1, value)
        self.state.eip = instr.next_addr

    def _op_loadbx(self, instr: Instruction) -> None:
        value = self._load(self._ea_indexed(instr), 1)
        self.state.set_reg(instr.r1, value)
        self.state.eip = instr.next_addr

    def _op_store(self, instr: Instruction) -> None:
        self._store(self._ea(instr), self.state.get_reg(instr.r1), 4)
        self.state.eip = instr.next_addr

    def _op_storeb(self, instr: Instruction) -> None:
        self._store(self._ea(instr), self.state.get_reg(instr.r1), 1)
        self.state.eip = instr.next_addr

    def _op_storex(self, instr: Instruction) -> None:
        self._store(self._ea_indexed(instr), self.state.get_reg(instr.r1), 4)
        self.state.eip = instr.next_addr

    def _op_storebx(self, instr: Instruction) -> None:
        self._store(self._ea_indexed(instr), self.state.get_reg(instr.r1), 1)
        self.state.eip = instr.next_addr

    def _op_storei(self, instr: Instruction) -> None:
        self._store(self._ea(instr), instr.imm, 4)
        self.state.eip = instr.next_addr

    def _op_lea(self, instr: Instruction) -> None:
        self.state.set_reg(instr.r1, self._ea(instr))
        self.state.eip = instr.next_addr

    def _op_leax(self, instr: Instruction) -> None:
        self.state.set_reg(instr.r1, self._ea_indexed(instr))
        self.state.eip = instr.next_addr

    # -- two-operand ALU -------------------------------------------------

    def _binary(self, instr: Instruction, rhs: int) -> None:
        state = self.state
        op = instr.op
        lhs = state.get_reg(instr.r1)
        write = True
        if op in (Op.ADD_RR, Op.ADD_RI):
            result, flags = fl.flags_add(lhs, rhs)
        elif op in (Op.ADC_RR, Op.ADC_RI):
            result, flags = fl.flags_add(lhs, rhs, state.get_flag(0))
        elif op in (Op.SUB_RR, Op.SUB_RI):
            result, flags = fl.flags_sub(lhs, rhs)
        elif op in (Op.SBB_RR, Op.SBB_RI):
            result, flags = fl.flags_sub(lhs, rhs, state.get_flag(0))
        elif op in (Op.CMP_RR, Op.CMP_RI):
            result, flags = fl.flags_sub(lhs, rhs)
            write = False
        elif op in (Op.AND_RR, Op.AND_RI):
            result, flags = fl.flags_logic(lhs & rhs)
        elif op in (Op.TEST_RR, Op.TEST_RI):
            result, flags = fl.flags_logic(lhs & rhs)
            write = False
        elif op in (Op.OR_RR, Op.OR_RI):
            result, flags = fl.flags_logic(lhs | rhs)
        elif op in (Op.XOR_RR, Op.XOR_RI):
            result, flags = fl.flags_logic(lhs ^ rhs)
        elif op in (Op.IMUL_RR, Op.IMUL_RI):
            lhs_signed = lhs - (1 << 32) if lhs & SIGN32 else lhs
            rhs_signed = rhs - (1 << 32) if rhs & SIGN32 else rhs
            full = lhs_signed * rhs_signed
            result = full & MASK32
            flags = fl.flags_imul(result, full)
        else:
            raise AssertionError(f"not a binary op: {op!r}")
        if write:
            state.set_reg(instr.r1, result)
        state.set_arith_flags(flags)
        state.eip = instr.next_addr

    def _op_binary_rr(self, instr: Instruction) -> None:
        self._binary(instr, self.state.get_reg(instr.r2))

    def _op_binary_ri(self, instr: Instruction) -> None:
        self._binary(instr, instr.imm)

    # -- unary ALU ---------------------------------------------------------

    def _op_not(self, instr: Instruction) -> None:
        state = self.state
        state.set_reg(instr.r1, ~state.get_reg(instr.r1) & MASK32)
        state.eip = instr.next_addr

    def _op_neg(self, instr: Instruction) -> None:
        state = self.state
        result, flags = fl.flags_neg(state.get_reg(instr.r1))
        state.set_reg(instr.r1, result)
        state.set_arith_flags(flags)
        state.eip = instr.next_addr

    def _op_inc(self, instr: Instruction) -> None:
        state = self.state
        result, flags, mask = fl.flags_inc(state.get_reg(instr.r1))
        state.set_reg(instr.r1, result)
        state.set_arith_flags(flags, mask)
        state.eip = instr.next_addr

    def _op_dec(self, instr: Instruction) -> None:
        state = self.state
        result, flags, mask = fl.flags_dec(state.get_reg(instr.r1))
        state.set_reg(instr.r1, result)
        state.set_arith_flags(flags, mask)
        state.eip = instr.next_addr

    def _op_mul(self, instr: Instruction) -> None:
        state = self.state
        full = state.get_reg(regs.EAX) * state.get_reg(instr.r1)
        low, high = full & MASK32, (full >> 32) & MASK32
        state.set_reg(regs.EAX, low)
        state.set_reg(regs.EDX, high)
        state.set_arith_flags(fl.flags_mul(low, high))
        state.eip = instr.next_addr

    def _op_div(self, instr: Instruction) -> None:
        from repro.isa.exceptions import divide_error

        state = self.state
        divisor = state.get_reg(instr.r1)
        dividend = (state.get_reg(regs.EDX) << 32) | state.get_reg(regs.EAX)
        if divisor == 0:
            raise divide_error(instr.addr)
        quotient, remainder = divmod(dividend, divisor)
        if quotient > MASK32:
            raise divide_error(instr.addr)
        state.set_reg(regs.EAX, quotient)
        state.set_reg(regs.EDX, remainder)
        state.eip = instr.next_addr

    def _op_idiv(self, instr: Instruction) -> None:
        from repro.isa.exceptions import divide_error

        state = self.state
        divisor = state.get_reg(instr.r1)
        divisor = divisor - (1 << 32) if divisor & SIGN32 else divisor
        dividend = (state.get_reg(regs.EDX) << 32) | state.get_reg(regs.EAX)
        dividend = dividend - (1 << 64) if dividend & (1 << 63) else dividend
        if divisor == 0:
            raise divide_error(instr.addr)
        quotient = int(dividend / divisor)  # truncate toward zero, like x86
        remainder = dividend - quotient * divisor
        if not -(1 << 31) <= quotient <= (1 << 31) - 1:
            raise divide_error(instr.addr)
        state.set_reg(regs.EAX, quotient & MASK32)
        state.set_reg(regs.EDX, remainder & MASK32)
        state.eip = instr.next_addr

    # -- shifts ----------------------------------------------------------

    _SHIFT_FUNCS = {
        Op.SHL_RI8: fl.flags_shl,
        Op.SHR_RI8: fl.flags_shr,
        Op.SAR_RI8: fl.flags_sar,
        Op.ROL_RI8: fl.flags_rol,
        Op.ROR_RI8: fl.flags_ror,
        Op.SHL_RCL: fl.flags_shl,
        Op.SHR_RCL: fl.flags_shr,
        Op.SAR_RCL: fl.flags_sar,
    }

    def _op_shift(self, instr: Instruction) -> None:
        state = self.state
        if instr.op in (Op.SHL_RCL, Op.SHR_RCL, Op.SAR_RCL):
            count = state.get_reg(regs.ECX) & 0xFF
        else:
            count = instr.imm
        func = self._SHIFT_FUNCS[instr.op]
        result, flags, mask = func(state.get_reg(instr.r1), count)
        state.set_reg(instr.r1, result)
        if mask:
            state.set_arith_flags(flags, mask)
        state.eip = instr.next_addr

    # -- stack -------------------------------------------------------------

    def _op_push_r(self, instr: Instruction) -> None:
        self._push(self.state.get_reg(instr.r1))
        self.state.eip = instr.next_addr

    def _op_push_i(self, instr: Instruction) -> None:
        self._push(instr.imm)
        self.state.eip = instr.next_addr

    def _op_pop_r(self, instr: Instruction) -> None:
        self.state.set_reg(instr.r1, self._pop())
        self.state.eip = instr.next_addr

    def _op_pushf(self, instr: Instruction) -> None:
        self._push(self.state.eflags)
        self.state.eip = instr.next_addr

    def _op_popf(self, instr: Instruction) -> None:
        self.state.eflags = self._pop()
        self.state.eip = instr.next_addr

    # -- control flow ------------------------------------------------------

    def _op_jmp(self, instr: Instruction) -> None:
        self.state.eip = instr.branch_target

    def _op_jmp_r(self, instr: Instruction) -> None:
        self.state.eip = self.state.get_reg(instr.r1)

    def _op_call(self, instr: Instruction) -> None:
        self._push(instr.next_addr)
        self.state.eip = instr.branch_target

    def _op_call_r(self, instr: Instruction) -> None:
        target = self.state.get_reg(instr.r1)
        self._push(instr.next_addr)
        self.state.eip = target

    def _op_ret(self, instr: Instruction) -> None:
        self.state.eip = self._pop()

    def condition(self, op: Op) -> bool:
        """Evaluate a Jcc condition against the current flags."""
        return self.condition_code(op - Op.JO)

    def condition_code(self, index: int) -> bool:
        """Evaluate x86 condition code ``index`` (0..15)."""
        state = self.state
        cf, pf_, zf, sf, of = (state.get_flag(i) for i in range(5))
        base = index >> 1
        value = (
            of,  # jo/jno
            cf,  # jb/jae
            zf,  # je/jne
            cf | zf,  # jbe/ja
            sf,  # js/jns
            pf_,  # jp/jnp
            sf ^ of,  # jl/jge
            (sf ^ of) | zf,  # jle/jg
        )[base]
        taken = bool(value)
        if index & 1:
            taken = not taken
        return taken

    def _op_setcc(self, instr: Instruction) -> None:
        value = 1 if self.condition_code(instr.op - Op.SETO) else 0
        self.state.set_reg(instr.r1, value)
        self.state.eip = instr.next_addr

    def _op_cmovcc(self, instr: Instruction) -> None:
        if self.condition_code(instr.op - Op.CMOVO):
            self.state.set_reg(instr.r1, self.state.get_reg(instr.r2))
        self.state.eip = instr.next_addr

    def _op_jcc(self, instr: Instruction) -> None:
        taken = self.condition(instr.op)
        if self.profile is not None:
            self.profile.on_branch(instr.addr, taken)
        self.state.eip = instr.branch_target if taken else instr.next_addr

    # -- I/O and system -----------------------------------------------------

    def _op_in(self, instr: Instruction) -> None:
        self.state.set_reg(regs.EAX, self.machine.ports.read(instr.imm))
        self.state.eip = instr.next_addr

    def _op_out(self, instr: Instruction) -> None:
        self.machine.ports.write(instr.imm, self.state.get_reg(regs.EAX))
        self.state.eip = instr.next_addr

    def _op_int(self, instr: Instruction) -> None:
        state = self.state
        self._push(state.eflags)
        self._push(instr.next_addr)
        state.set_flag(IF_SLOT, 0)
        state.eip = self._read_vector(instr.imm)

    def _op_iret(self, instr: Instruction) -> None:
        state = self.state
        eip = self._pop()
        state.eflags = self._pop()
        state.eip = eip

    def _op_hlt(self, instr: Instruction) -> None:
        if not self.state.interrupts_enabled:
            raise Halted()
        self.state.eip = instr.next_addr
        self._halted_waiting = True

    def _op_sti(self, instr: Instruction) -> None:
        self.state.set_flag(IF_SLOT, 1)
        self.state.eip = instr.next_addr

    def _op_cli(self, instr: Instruction) -> None:
        self.state.set_flag(IF_SLOT, 0)
        self.state.eip = instr.next_addr

    def _op_setpt(self, instr: Instruction) -> None:
        self.machine.mmu.set_page_table(self.state.get_reg(instr.r1))
        self.state.eip = instr.next_addr

    def _op_pgon(self, instr: Instruction) -> None:
        self.machine.mmu.enable_paging()
        self.state.eip = instr.next_addr

    def _op_pgoff(self, instr: Instruction) -> None:
        self.machine.mmu.disable_paging()
        self.state.eip = instr.next_addr


def _build_dispatch() -> dict[Op, object]:
    i = Interpreter
    table: dict[Op, object] = {
        Op.NOP: i._op_nop,
        Op.HLT: i._op_hlt,
        Op.STI: i._op_sti,
        Op.CLI: i._op_cli,
        Op.IRET: i._op_iret,
        Op.INT: i._op_int,
        Op.MOV_RR: i._op_mov_rr,
        Op.MOV_RI: i._op_mov_ri,
        Op.XCHG_RR: i._op_xchg,
        Op.LOAD: i._op_load,
        Op.STORE: i._op_store,
        Op.LOADX: i._op_loadx,
        Op.STOREX: i._op_storex,
        Op.LOADB: i._op_loadb,
        Op.STOREB: i._op_storeb,
        Op.LOADBX: i._op_loadbx,
        Op.STOREBX: i._op_storebx,
        Op.STOREI: i._op_storei,
        Op.LEA: i._op_lea,
        Op.LEAX: i._op_leax,
        Op.NOT_R: i._op_not,
        Op.NEG_R: i._op_neg,
        Op.INC_R: i._op_inc,
        Op.DEC_R: i._op_dec,
        Op.MUL_R: i._op_mul,
        Op.DIV_R: i._op_div,
        Op.IDIV_R: i._op_idiv,
        Op.PUSH_R: i._op_push_r,
        Op.PUSH_I: i._op_push_i,
        Op.POP_R: i._op_pop_r,
        Op.PUSHF: i._op_pushf,
        Op.POPF: i._op_popf,
        Op.JMP: i._op_jmp,
        Op.JMP_R: i._op_jmp_r,
        Op.CALL: i._op_call,
        Op.CALL_R: i._op_call_r,
        Op.RET: i._op_ret,
        Op.IN: i._op_in,
        Op.OUT: i._op_out,
        Op.SETPT: i._op_setpt,
        Op.PGON: i._op_pgon,
        Op.PGOFF: i._op_pgoff,
    }
    for op in (Op.ADD_RR, Op.SUB_RR, Op.AND_RR, Op.OR_RR, Op.XOR_RR,
               Op.CMP_RR, Op.TEST_RR, Op.ADC_RR, Op.SBB_RR, Op.IMUL_RR):
        table[op] = i._op_binary_rr
    for op in (Op.ADD_RI, Op.SUB_RI, Op.AND_RI, Op.OR_RI, Op.XOR_RI,
               Op.CMP_RI, Op.TEST_RI, Op.ADC_RI, Op.SBB_RI, Op.IMUL_RI):
        table[op] = i._op_binary_ri
    for op in (Op.SHL_RI8, Op.SHR_RI8, Op.SAR_RI8, Op.ROL_RI8, Op.ROR_RI8,
               Op.SHL_RCL, Op.SHR_RCL, Op.SAR_RCL):
        table[op] = i._op_shift
    for op_value in range(Op.JO, Op.JG + 1):
        table[Op(op_value)] = i._op_jcc
    for op_value in range(Op.SETO, Op.SETG + 1):
        table[Op(op_value)] = i._op_setcc
    for op_value in range(Op.CMOVO, Op.CMOVG + 1):
        table[Op(op_value)] = i._op_cmovcc
    return table


_DISPATCH = _build_dispatch()
