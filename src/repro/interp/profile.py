"""Execution profiling collected by the interpreter.

Paper §2: the interpreter collects "data on execution frequency, branch
directions, and memory-mapped I/O operations" while it runs.  The
translator consumes this profile: execution counts trigger translation
at the threshold, branch bias steers trace growth through conditional
branches, and the observed-MMIO set lets the translator avoid
speculatively reordering accesses it already knows touch devices.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass


@dataclass
class BranchBias:
    """Taken/not-taken counts for one conditional branch site."""

    taken: int = 0
    not_taken: int = 0

    @property
    def total(self) -> int:
        return self.taken + self.not_taken

    @property
    def taken_fraction(self) -> float:
        return self.taken / self.total if self.total else 0.5

    def likely_taken(self, threshold: float = 0.5) -> bool:
        return self.taken_fraction > threshold


class ExecutionProfile:
    """Per-address execution counts, branch bias, and MMIO observations."""

    def __init__(self) -> None:
        self.exec_counts: Counter[int] = Counter()
        self.branch_bias: dict[int, BranchBias] = {}
        self.mmio_sites: set[int] = set()
        self.anchor_counts: Counter[int] = Counter()

    def on_exec(self, addr: int) -> None:
        self.exec_counts[addr] += 1

    def on_anchor(self, addr: int) -> None:
        """Count an execution at a potential translation entry.

        Anchors are the addresses the dispatcher looked up and missed —
        branch targets reached from outside any translation.  The
        translation threshold applies to anchors, so translations start
        at real control-flow join points rather than mid-trace.
        """
        self.anchor_counts[addr] += 1

    def on_branch(self, addr: int, taken: bool) -> None:
        bias = self.branch_bias.get(addr)
        if bias is None:
            bias = self.branch_bias[addr] = BranchBias()
        if taken:
            bias.taken += 1
        else:
            bias.not_taken += 1

    def on_mmio(self, instr_addr: int) -> None:
        self.mmio_sites.add(instr_addr)

    def bias_for(self, addr: int) -> BranchBias:
        return self.branch_bias.get(addr, BranchBias())

    def is_mmio_site(self, instr_addr: int) -> bool:
        return instr_addr in self.mmio_sites
