"""The guest machine: RAM, bus, MMU, and the standard device complement.

A ``Machine`` is everything *outside* the CPU.  The pure interpreter and
the full CMS system both execute against the same ``Machine``, which is
what makes the golden equivalence tests possible: identical devices,
identical memory, two execution engines.

Default physical memory map::

    0x0000_0000 .. ram_size      guest RAM (default 4 MiB)
    0x000A_0000 .. +0x1_0000     framebuffer MMIO (shadows RAM, VGA-style)
    0xFFF0_0000 .. +0x1000       console MMIO window
    0xFFF1_0000 .. +0x1000       timer MMIO window
    0xFFF2_0000 .. +0x1000       DMA controller MMIO window
    0xFFF3_0000 .. +0x1000       network interface MMIO window
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.devices.console import Console
from repro.devices.disk import Disk
from repro.devices.dma import DMAController
from repro.devices.framebuffer import Framebuffer
from repro.devices.nic import NetworkInterface
from repro.devices.pic import InterruptController
from repro.devices.port_bus import PortBus
from repro.devices.timer import Timer
from repro.isa.assembler import Program, assemble
from repro.isa.exceptions import general_protection
from repro.memory.bus import MemoryBus, MMIORegion
from repro.memory.mmu import MMU
from repro.memory.physical import PhysicalMemory

MASK32 = 0xFFFFFFFF

FRAMEBUFFER_BASE = 0x000A0000
CONSOLE_MMIO_BASE = 0xFFF00000
TIMER_MMIO_BASE = 0xFFF10000
DMA_MMIO_BASE = 0xFFF20000
NIC_MMIO_BASE = 0xFFF30000
MMIO_WINDOW_SIZE = 0x1000

DEFAULT_RAM_SIZE = 4 * 1024 * 1024


@dataclass
class MachineConfig:
    """Construction options for a guest machine."""

    ram_size: int = DEFAULT_RAM_SIZE
    with_framebuffer: bool = True
    framebuffer_base: int = FRAMEBUFFER_BASE
    timer_period: int = 10_000


class Machine:
    """Guest RAM, MMU, buses and devices, wired to a default map."""

    def __init__(self, config: MachineConfig | None = None) -> None:
        self.config = config or MachineConfig()
        self.ram = PhysicalMemory(self.config.ram_size)
        self.bus = MemoryBus(self.ram)
        self.mmu = MMU(self.bus)
        self.ports = PortBus()
        self.pic = InterruptController()
        self.console = Console()
        self.timer = Timer(self.pic, period=self.config.timer_period)
        self.dma = DMAController(self.bus, self.pic)
        self.disk = Disk(self.bus, self.pic)
        self.nic = NetworkInterface(self.bus, self.pic)
        self.framebuffer: Framebuffer | None = None

        self.pic.attach(self.ports)
        self.console.attach(self.ports)
        self.timer.attach(self.ports)
        self.dma.attach(self.ports)
        self.disk.attach(self.ports)
        self.nic.attach(self.ports)

        self.bus.add_region(
            MMIORegion(CONSOLE_MMIO_BASE, MMIO_WINDOW_SIZE, self.console,
                       "console")
        )
        self.bus.add_region(
            MMIORegion(TIMER_MMIO_BASE, MMIO_WINDOW_SIZE, self.timer, "timer")
        )
        self.bus.add_region(
            MMIORegion(DMA_MMIO_BASE, MMIO_WINDOW_SIZE, self.dma, "dma")
        )
        self.bus.add_region(
            MMIORegion(NIC_MMIO_BASE, MMIO_WINDOW_SIZE, self.nic, "nic")
        )
        if self.config.with_framebuffer:
            self.framebuffer = Framebuffer()
            self.framebuffer.attach(self.ports)
            self.bus.add_region(
                MMIORegion(self.config.framebuffer_base,
                           self.framebuffer.size, self.framebuffer,
                           "framebuffer")
            )

        self._tickers = (self.timer, self.dma, self.disk, self.nic)
        self.instructions_retired = 0

    def add_ticker(self, device) -> None:
        """Register an extra device on the instruction-time tick list.

        Used by the fault-injection harness to advance schedule-driven
        injectors in device time, so that two machines running the same
        guest observe identical asynchronous event timing.
        """
        self._tickers = (*self._tickers, device)

    # ------------------------------------------------------------------
    # Program loading
    # ------------------------------------------------------------------

    def load_program(self, program: Program) -> int:
        """Load an assembled program; returns its entry address."""
        self.ram.load_image(program.segments)
        return program.entry

    def load_source(self, source: str) -> int:
        """Assemble and load t86 source; returns the entry address."""
        return self.load_program(assemble(source))

    # ------------------------------------------------------------------
    # Virtual memory paths (MMU + bus)
    # ------------------------------------------------------------------

    def fetch_byte(self, vaddr: int) -> int:
        """Instruction fetch: one code byte at virtual ``vaddr``."""
        paddr = self.mmu.translate(vaddr & MASK32, is_write=False)
        if self.bus.is_io(paddr, 1):
            raise general_protection()
        try:
            return self.ram.read8(paddr)
        except IndexError:
            raise general_protection() from None

    def vread(self, vaddr: int, size: int) -> int:
        """Data read at virtual ``vaddr`` (may hit MMIO)."""
        paddr = self.mmu.translate_range(vaddr & MASK32, size, is_write=False)
        return self.bus.read(paddr, size)

    def vwrite(self, vaddr: int, value: int, size: int) -> None:
        """Data write at virtual ``vaddr`` (may hit MMIO)."""
        paddr = self.mmu.translate_range(vaddr & MASK32, size, is_write=True)
        self.bus.write(paddr, value, size)

    def vtranslate(self, vaddr: int, size: int, is_write: bool) -> int:
        """Translate without performing the access (the host's TLB path)."""
        return self.mmu.translate_range(vaddr & MASK32, size, is_write)

    # ------------------------------------------------------------------
    # Time
    # ------------------------------------------------------------------

    def tick(self, instructions: int) -> None:
        """Advance device time by ``instructions`` retired instructions."""
        if instructions <= 0:
            return
        self.instructions_retired += instructions
        for device in self._tickers:
            device.tick(instructions)

    def pending_vector(self) -> int | None:
        """Highest-priority deliverable interrupt vector, if any."""
        return self.pic.pending_vector()
