"""Intermediate representation of the translator.

The IR is deliberately close to the host atom set: one IR op lowers to
exactly one atom.  What the IR adds over atoms is *symbolic operands*:

* ``Temp(n)``   — an SSA-ish virtual register (each temp is assigned
  exactly once by the frontend; optimization passes preserve this);
* ``GuestReg(n)``, ``GuestEip``, ``GuestFlag(slot)`` — the guest
  architectural locations, which live in dedicated host registers.
  Reads of guest locations appear as sources; the *only* writes to
  guest locations are explicit writeback ops, which is what gives the
  scheduler its freedom: computations into temps may be hoisted
  speculatively, while architectural writebacks stay ordered relative
  to exits (paper §3.2 — speculation "without the bookkeeping required
  by traditional control speculation").

Guest flags are first-class locations.  The frontend emits the full
flag computation for every instruction; dead-flag elimination (a
liveness-based DCE over flag locations) then removes the overwhelming
majority, which is one of the classic wins of trace-based translation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.host.atoms import AluOp
from repro.host.registers import R_EIP, R_FLAG_BASE


# --------------------------------------------------------------------------
# Operands
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class Temp:
    """A virtual register, single static assignment."""

    index: int

    def __repr__(self) -> str:
        return f"t{self.index}"


@dataclass(frozen=True)
class GuestReg:
    """Guest GPR location (host register 0..7)."""

    index: int

    def __repr__(self) -> str:
        from repro.isa.registers import reg_name

        return f"%{reg_name(self.index)}"

    @property
    def host_reg(self) -> int:
        return self.index


@dataclass(frozen=True)
class GuestEip:
    """Guest EIP location (host register 8)."""

    def __repr__(self) -> str:
        return "%eip"

    @property
    def host_reg(self) -> int:
        return R_EIP


@dataclass(frozen=True)
class GuestFlag:
    """One unpacked guest flag location (host registers 10..15)."""

    slot: int  # index into repro.state.FLAG_SLOTS

    def __repr__(self) -> str:
        from repro.state import FLAG_SLOTS

        return f"%{FLAG_SLOTS[self.slot]}"

    @property
    def host_reg(self) -> int:
        return R_FLAG_BASE + self.slot


Operand = Temp | GuestReg | GuestEip | GuestFlag
GuestLoc = GuestReg | GuestEip | GuestFlag


def is_guest_loc(operand) -> bool:
    return isinstance(operand, (GuestReg, GuestEip, GuestFlag))


# --------------------------------------------------------------------------
# Ops
# --------------------------------------------------------------------------


class IROpKind(enum.Enum):
    MOVI = enum.auto()  # dest <- imm
    MOV = enum.auto()  # dest <- src1 (includes guest-loc writebacks)
    ALU = enum.auto()  # dest <- src1 (aluop) src2
    ALUI = enum.auto()  # dest <- src1 (aluop) imm
    SEL = enum.auto()  # dest <- src1 ? src2 : src3
    DIVU = enum.auto()  # dest, dest2 <- (src3:src1) divmod src2
    DIVS = enum.auto()
    LD = enum.auto()  # dest <- mem[src1 + disp]
    ST = enum.auto()  # mem[src1 + disp] <- src2
    PORT_IN = enum.auto()  # dest <- port[imm]; barrier
    PORT_OUT = enum.auto()  # port[imm] <- src1; barrier
    EXIT_IF = enum.auto()  # leave trace to exit_target when src1 != 0
    EXIT = enum.auto()  # final unconditional exit to exit_target
    EXIT_IND = enum.auto()  # final exit to the address in src1
    LOOP = enum.auto()  # final back-edge to the trace entry
    COMMIT = enum.auto()  # mid-trace commit point (full barrier)


# Kinds with side effects that DCE must never remove.
SIDE_EFFECT_KINDS = frozenset(
    {
        IROpKind.LD,  # may fault (removing would lose a genuine #PF)
        IROpKind.ST,
        IROpKind.DIVU,
        IROpKind.DIVS,
        IROpKind.PORT_IN,
        IROpKind.PORT_OUT,
        IROpKind.EXIT_IF,
        IROpKind.EXIT,
        IROpKind.EXIT_IND,
        IROpKind.LOOP,
        IROpKind.COMMIT,
    }
)

PURE_KINDS = frozenset(
    {IROpKind.MOVI, IROpKind.MOV, IROpKind.ALU, IROpKind.ALUI, IROpKind.SEL}
)


@dataclass
class IROp:
    """One IR operation.

    ``guest_index`` is the position of the originating guest instruction
    within the region — the program-order coordinate the scheduler uses
    for speculation decisions. ``barrier`` marks commit-fenced operations
    (port I/O, known-MMIO accesses) that nothing may cross.
    """

    kind: IROpKind
    dest: Operand | None = None
    dest2: Operand | None = None
    srcs: tuple[Operand, ...] = ()
    aluop: AluOp | None = None
    imm: int = 0
    disp: int = 0
    size: int = 4
    guest_index: int = 0
    guest_addr: int | None = None
    exit_target: int | None = None  # EXIT/EXIT_IF: guest target address
    barrier: bool = False
    io_ok: bool = False
    no_speculate: bool = False  # keep in program order (adaptive policy)
    commit_count: int = 0  # COMMIT/exits: guest instrs retired here
    # COMMIT/exits: [window_start, window_end) are the region-instruction
    # indices retired by this commit — self-checking translations verify
    # exactly these instructions' code bytes before committing (§3.6.3's
    # "fetches for checking must appear logically after any stores up to
    # and including the operation being checked").
    window_start: int = 0
    window_end: int = 0
    # Filled by the scheduler:
    reordered: bool = False
    alias_entry: int | None = None
    alias_check: int = 0

    def operands(self) -> tuple[Operand, ...]:
        return self.srcs

    def writes(self) -> tuple[Operand, ...]:
        out = []
        if self.dest is not None:
            out.append(self.dest)
        if self.dest2 is not None:
            out.append(self.dest2)
        return tuple(out)

    @property
    def is_memory(self) -> bool:
        return self.kind in (IROpKind.LD, IROpKind.ST)

    @property
    def is_exit(self) -> bool:
        return self.kind in (IROpKind.EXIT_IF, IROpKind.EXIT,
                             IROpKind.EXIT_IND, IROpKind.LOOP)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        name = self.kind.name.lower()
        if self.aluop is not None:
            name = self.aluop.value + ("i" if self.kind is IROpKind.ALUI else "")
        dests = ",".join(repr(d) for d in self.writes())
        srcs = ",".join(repr(s) for s in self.srcs)
        extra = []
        if self.kind in (IROpKind.MOVI, IROpKind.ALUI, IROpKind.PORT_IN,
                         IROpKind.PORT_OUT):
            extra.append(f"imm={self.imm:#x}")
        if self.is_memory:
            extra.append(f"disp={self.disp:#x} size={self.size}")
        if self.exit_target is not None:
            extra.append(f"-> {self.exit_target:#x}")
        if self.barrier:
            extra.append("barrier")
        joined = " ".join(extra)
        return f"{name} {dests} <- {srcs} {joined}".strip()


@dataclass
class TraceIR:
    """The IR of one region: a straight-line trace with side exits."""

    ops: list[IROp] = field(default_factory=list)
    entry_eip: int = 0
    is_loop: bool = False  # final op is LOOP back to the entry
    next_temp: int = 0

    def new_temp(self) -> Temp:
        temp = Temp(self.next_temp)
        self.next_temp += 1
        return temp

    def dump(self) -> str:  # pragma: no cover - debugging aid
        return "\n".join(
            f"{i:4d} [g{op.guest_index:3d}] {op}" for i, op in enumerate(self.ops)
        )
