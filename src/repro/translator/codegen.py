"""Code generation: scheduled IR -> molecules -> a Translation.

Responsibilities:

* map temps onto the host temp registers (16..59; 60..63 are reserved
  scratch for check prologues) with a linear-scan over the schedule;
* lower each scheduled cycle to one molecule (empty cycles become
  explicit no-op molecules — the scheduling gaps the VLIW really pays);
* expand exits into stubs: update the working EIP, commit (retiring the
  guest instructions of the window), and leave through an EXIT atom that
  the dispatcher can chain (§2);
* emit self-checking entry code (§3.6.3) or a self-revalidation
  prologue (§3.6.2) comparing the translated guest bytes against their
  translation-time snapshot — honoring stylized-SMC immediate masking
  (§3.6.4), which excludes runtime-reloaded immediate fields from the
  comparison;
* loop regions branch back to the self-check label when checking is
  enabled, so a translation that rewrites its own region is caught at
  the next iteration boundary.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass

from repro.cache.tcache import Translation
from repro.host.atoms import AluOp, Atom, AtomKind
from repro.host.molecule import Molecule
from repro.host.registers import R_EIP, TEMP_BASE
from repro.isa.encoder import immediate_field_offset
from repro.translator.ir import (
    GuestEip,
    GuestFlag,
    GuestReg,
    IROp,
    IROpKind,
    Temp,
    TraceIR,
)
from repro.translator.policies import TranslationPolicy
from repro.translator.region import Region, RegionEnd
from repro.translator.schedule import Schedule

TEMP_POOL_END = 56  # host regs 56..63 reserved for check prologues
SCRATCH_BASE = 56


class CodegenError(Exception):
    """Code generation could not complete (e.g. out of temp registers)."""


@dataclass
class _CheckPlan:
    """What the self-check/prologue code must verify."""

    words: list[tuple[int, int, int]]  # (guest addr, expected, byte mask)


class CodeGenerator:
    """Lowers one scheduled trace into a Translation."""

    def __init__(self, policy: TranslationPolicy) -> None:
        self.policy = policy

    def generate(
        self,
        region: Region,
        trace: TraceIR,
        schedule: Schedule,
        code_snapshot: bytes,
    ) -> Translation:
        temp_map = self._allocate_temps(schedule)
        molecules: list[Molecule] = []
        labels: dict[str, int] = {}
        exit_atoms: list[Atom] = []
        stub_queue: list[tuple[str, IROp]] = []
        needs_fail_stub = False

        checking = self.policy.self_check
        prologue = self.policy.self_revalidate and not checking
        self._check_context = (
            self._build_check_context(region, code_snapshot)
            if (checking or prologue) else None
        )
        if prologue:
            # Self-revalidation prologue (§3.6.2): verify the whole
            # region's code bytes, then exit back to CMS so it can
            # re-enable protection and disarm the prologue before the
            # body runs.
            labels["prologue"] = len(molecules)
            plan = self._plan_words(region.instrs)
            molecules.extend(self._emit_check(plan))
            needs_fail_stub = True
            done = Molecule()
            done.add(Atom(AtomKind.MOVI, rd=R_EIP, imm=region.entry_eip))
            done.add(Atom(AtomKind.COMMIT))
            molecules.append(done)
            exit_mol = Molecule()
            exit_atom = Atom(AtomKind.EXIT, exit_target=region.entry_eip)
            exit_atom.prologue_success = True
            exit_mol.add(exit_atom)
            molecules.append(exit_mol)
        if checking:
            needs_fail_stub = True

        labels["body"] = len(molecules)

        def host(operand) -> int:
            if isinstance(operand, Temp):
                return temp_map[operand]
            return operand.host_reg

        # Superblock traces: map each guest instruction *position* to
        # its constituent block so exit stubs can be tagged with the
        # block they leave from (the dispatcher counts exits from
        # non-final blocks as trace mispredicts).  Keyed by region
        # index, not guest address — an unrolled loop repeats the same
        # addresses in every copy, and a guard must report the copy it
        # actually sits in, or a shallow loop's first-copy exit would
        # masquerade as the final copy's normal completion.
        last_block = region.num_blocks - 1
        bounds = (region.block_bounds + [len(region.instrs)]
                  if last_block > 0 else [0, len(region.instrs)])

        def trace_block_of(op: IROp) -> int:
            if last_block == 0:
                return 0
            block = bisect_right(bounds, op.guest_index) - 1
            return min(max(block, 0), last_block)

        # Incremental self-checking (§3.6.3): each instruction's code
        # bytes are verified exactly once per body pass, on the main
        # path, *after* every store that precedes it in program order
        # (stores have DAG edges to the exit/commit that retires them,
        # so emitting the check just before that branch/commit molecule
        # is sound).  The check loads forward from the gated store
        # buffer, so a translation that patches its own bytes fails its
        # check before the stale results can commit.
        checked_upto = 0

        def emit_check_upto(end_index: int) -> None:
            nonlocal checked_upto
            if not checking or end_index <= checked_upto:
                return
            plan = self._plan_words(region.instrs[checked_upto:end_index])
            molecules.extend(self._emit_check(plan))
            checked_upto = end_index

        exit_counter = 0
        for cycle in schedule.cycles:
            # Checks guarding an exit in this cycle must precede the
            # whole cycle's molecule.
            for op in cycle:
                if op.kind in (IROpKind.EXIT_IF, IROpKind.COMMIT,
                               IROpKind.EXIT, IROpKind.EXIT_IND,
                               IROpKind.LOOP):
                    emit_check_upto(op.window_end)
            molecule = Molecule()
            pending_stub: IROp | None = None
            pending_commit: IROp | None = None
            for op in cycle:
                kind = op.kind
                if kind is IROpKind.EXIT_IF:
                    label = f"exit{exit_counter}"
                    exit_counter += 1
                    molecule.add(
                        Atom(AtomKind.BRNZ, rs1=host(op.srcs[0]), label=label,
                             guest_addr=op.guest_addr)
                    )
                    stub_queue.append((label, op))
                elif kind in (IROpKind.EXIT, IROpKind.EXIT_IND, IROpKind.LOOP):
                    pending_stub = op
                elif kind is IROpKind.COMMIT:
                    pending_commit = op
                else:
                    molecule.add(self._lower(op, host))
            if not molecule.atoms and pending_stub is None and \
                    pending_commit is None:
                molecule.add(Atom(AtomKind.NOPA))  # latency gap
            if molecule.atoms:
                molecules.append(molecule)
            if pending_commit is not None:
                op = pending_commit
                commit_mol = Molecule()
                commit_mol.add(Atom(AtomKind.MOVI, rd=R_EIP,
                                    imm=op.exit_target))
                commit_mol.add(Atom(AtomKind.COMMIT,
                                    instr_count=op.commit_count,
                                    guest_addr=op.guest_addr))
                molecules.append(commit_mol)
            if pending_stub is not None:
                exit_atom = self._emit_final_stub(
                    molecules, pending_stub, host, "body", region.entry_eip
                )
                if exit_atom is not None:
                    exit_atom.trace_block = last_block
                    exit_atoms.append(exit_atom)

        for label, op in stub_queue:
            labels[label] = len(molecules)
            head = Molecule()
            head.add(Atom(AtomKind.MOVI, rd=R_EIP, imm=op.exit_target))
            head.add(Atom(AtomKind.COMMIT, instr_count=op.commit_count,
                          guest_addr=op.guest_addr))
            molecules.append(head)
            tail = Molecule()
            exit_atom = Atom(AtomKind.EXIT, exit_target=op.exit_target,
                             guest_addr=op.guest_addr,
                             trace_block=trace_block_of(op))
            tail.add(exit_atom)
            molecules.append(tail)
            exit_atoms.append(exit_atom)

        if needs_fail_stub:
            labels["smc_fail"] = len(molecules)
            fail = Molecule()
            fail.add(Atom(AtomKind.FAIL, fail_reason="self-check mismatch",
                          guest_addr=region.entry_eip))
            molecules.append(fail)

        translation = Translation(
            entry_eip=region.entry_eip,
            molecules=molecules,
            labels=labels,
            entry_label="body",
            policy=self.policy,
            code_ranges=region.code_ranges(),
            code_snapshot=code_snapshot,
            guest_instr_count=len(region.instrs),
            exit_atoms=exit_atoms,
            prologue_label="prologue" if prologue else None,
            trace_blocks=region.num_blocks,
            block_entries=(tuple(region.block_entries)
                           or (region.entry_eip,)),
            modeled_cycles=schedule.modeled_cycles,
            loop_trace=region.end is RegionEnd.LOOP,
        )
        return translation

    # ------------------------------------------------------------------
    # Temp register allocation
    # ------------------------------------------------------------------

    def _allocate_temps(self, schedule: Schedule) -> dict[Temp, int]:
        first_def: dict[Temp, int] = {}
        last_use: dict[Temp, int] = {}
        for position, cycle in enumerate(schedule.cycles):
            for op in cycle:
                for dest in op.writes():
                    if isinstance(dest, Temp) and dest not in first_def:
                        first_def[dest] = position
                        last_use.setdefault(dest, position)
                for src in op.srcs:
                    if isinstance(src, Temp):
                        if op.kind is IROpKind.EXIT_IND:
                            last_use[src] = len(schedule.cycles) + 1
                        else:
                            last_use[src] = max(
                                last_use.get(src, 0), position
                            )
        free = list(range(TEMP_POOL_END - 1, TEMP_BASE - 1, -1))
        active: list[tuple[int, Temp]] = []  # (last_use, temp)
        mapping: dict[Temp, int] = {}
        for temp in sorted(first_def, key=lambda t: (first_def[t], t.index)):
            start = first_def[temp]
            for end, other in list(active):
                if end < start:
                    active.remove((end, other))
                    free.append(mapping[other])
            if not free:
                raise CodegenError("out of host temp registers")
            mapping[temp] = free.pop()
            active.append((last_use[temp], temp))
        return mapping

    # ------------------------------------------------------------------
    # Op lowering
    # ------------------------------------------------------------------

    def _lower(self, op: IROp, host) -> Atom:
        kind = op.kind
        if kind is IROpKind.MOVI:
            return Atom(AtomKind.MOVI, rd=host(op.dest), imm=op.imm,
                        guest_addr=op.guest_addr)
        if kind is IROpKind.MOV:
            return Atom(AtomKind.MOV, rd=host(op.dest),
                        rs1=host(op.srcs[0]), guest_addr=op.guest_addr)
        if kind is IROpKind.ALU:
            return Atom(AtomKind.ALU, aluop=op.aluop, rd=host(op.dest),
                        rs1=host(op.srcs[0]), rs2=host(op.srcs[1]),
                        guest_addr=op.guest_addr)
        if kind is IROpKind.ALUI:
            return Atom(AtomKind.ALUI, aluop=op.aluop, rd=host(op.dest),
                        rs1=host(op.srcs[0]), imm=op.imm,
                        guest_addr=op.guest_addr)
        if kind is IROpKind.SEL:
            return Atom(AtomKind.SEL, rd=host(op.dest),
                        rs1=host(op.srcs[0]), rs2=host(op.srcs[1]),
                        rs3=host(op.srcs[2]), guest_addr=op.guest_addr)
        if kind in (IROpKind.DIVU, IROpKind.DIVS):
            atom_kind = (AtomKind.DIVU if kind is IROpKind.DIVU
                         else AtomKind.DIVS)
            return Atom(atom_kind, rd=host(op.dest), rd2=host(op.dest2),
                        rs1=host(op.srcs[0]), rs2=host(op.srcs[1]),
                        rs3=host(op.srcs[2]), guest_addr=op.guest_addr)
        if kind is IROpKind.LD:
            return Atom(AtomKind.LD, rd=host(op.dest),
                        rs1=host(op.srcs[0]), disp=op.disp, size=op.size,
                        reordered=op.reordered, alias_entry=op.alias_entry,
                        io_ok=op.io_ok, guest_addr=op.guest_addr)
        if kind is IROpKind.ST:
            return Atom(AtomKind.ST, rs1=host(op.srcs[0]),
                        rs2=host(op.srcs[1]), disp=op.disp, size=op.size,
                        reordered=op.reordered,
                        alias_check=op.alias_check, io_ok=op.io_ok,
                        guest_addr=op.guest_addr)
        if kind is IROpKind.PORT_IN:
            return Atom(AtomKind.PORT_IN, rd=host(op.dest), imm=op.imm,
                        guest_addr=op.guest_addr)
        if kind is IROpKind.PORT_OUT:
            return Atom(AtomKind.PORT_OUT, rs1=host(op.srcs[0]), imm=op.imm,
                        guest_addr=op.guest_addr)
        raise AssertionError(f"unloterable op {op}")

    # ------------------------------------------------------------------
    # Exit stubs
    # ------------------------------------------------------------------

    def _emit_final_stub(self, molecules: list[Molecule], op: IROp, host,
                         loop_target: str, entry_eip: int) -> Atom | None:
        head = Molecule()
        if op.kind is IROpKind.EXIT_IND:
            head.add(Atom(AtomKind.MOV, rd=R_EIP, rs1=host(op.srcs[0]),
                          guest_addr=op.guest_addr))
        else:
            target = (entry_eip if op.kind is IROpKind.LOOP
                      else op.exit_target)
            head.add(Atom(AtomKind.MOVI, rd=R_EIP, imm=target,
                          guest_addr=op.guest_addr))
        head.add(Atom(AtomKind.COMMIT, instr_count=op.commit_count,
                      guest_addr=op.guest_addr))
        molecules.append(head)
        tail = Molecule()
        if op.kind is IROpKind.LOOP:
            tail.add(Atom(AtomKind.BR, label=loop_target,
                          guest_addr=op.guest_addr))
            molecules.append(tail)
            return None
        exit_atom = Atom(AtomKind.EXIT, exit_target=op.exit_target,
                         guest_addr=op.guest_addr)
        tail.add(exit_atom)
        molecules.append(tail)
        return exit_atom

    # ------------------------------------------------------------------
    # Self-check / prologue emission
    # ------------------------------------------------------------------

    def _build_check_context(self, region: Region,
                             code_snapshot: bytes):
        """Precompute snapshot offsets and stylized-immediate skips."""
        cursor = 0
        offsets: dict[int, int] = {}  # guest addr -> snapshot offset
        for start, length in region.code_ranges():
            for i in range(length):
                offsets[start + i] = cursor + i
            cursor += length
        skip: set[int] = set()  # guest addrs excluded from checking
        for instr in region.instrs:
            if instr.addr in self.policy.stylized_imm_addrs:
                field_off = immediate_field_offset(instr)
                if field_off is not None:
                    skip.update(range(instr.addr + field_off,
                                      instr.addr + field_off + 4))
        return offsets, skip, code_snapshot

    def _plan_words(self, instrs) -> _CheckPlan:
        """Word-granular expected values for a set of instructions, with
        stylized-immediate masking (§3.6.4).

        Adjacent instruction byte ranges are merged before word
        splitting so that a run of instructions checks with dense,
        full-mask words (partial masks only at run tails and at
        stylized immediate fields).
        """
        offsets, skip, snapshot = self._check_context
        spans = sorted((i.addr, i.end) for i in instrs)
        merged: list[list[int]] = []
        for start, end in spans:
            if merged and start <= merged[-1][1]:
                merged[-1][1] = max(merged[-1][1], end)
            else:
                merged.append([start, end])
        words: list[tuple[int, int, int]] = []
        for start, end in merged:
            for word_addr in range(start, end, 4):
                size = min(4, end - word_addr)
                mask = 0
                expected = 0
                for i in range(size):
                    addr = word_addr + i
                    if addr in skip:
                        continue
                    mask |= 0xFF << (8 * i)
                    expected |= snapshot[offsets[addr]] << (8 * i)
                if mask:
                    words.append((word_addr, expected, mask))
        return _CheckPlan(words=words)

    def _emit_check(self, plan: _CheckPlan) -> list[Molecule]:
        """Software-pipelined compare of code words against the snapshot.

        Steady state is one molecule per checked word: each molecule
        loads word *i*, compares word *i-2* (honouring the two-cycle
        load latency), and branches on the comparison of word *i-3*.
        Atoms within a molecule execute left-to-right, so comparisons
        are placed before the load that reuses their word register.

        Scratch registers (reserved out of the temp pool): the base
        address, two rotating load targets, two rotating comparison
        results, and one masked-word temporary.
        """
        words = plan.words
        if not words:
            return []
        molecules: list[Molecule] = []
        base_reg = SCRATCH_BASE
        load_regs = (SCRATCH_BASE + 1, SCRATCH_BASE + 2)
        cmp_regs = (SCRATCH_BASE + 3, SCRATCH_BASE + 4)
        mask_reg = SCRATCH_BASE + 5

        base_addr = words[0][0]
        setup = Molecule()
        setup.add(Atom(AtomKind.MOVI, rd=base_reg, imm=base_addr))
        molecules.append(setup)

        n = len(words)
        # Pipeline stages: LD at step i, CMPNE at step i+2, BRNZ at
        # step i+3; total steps n+3.
        for step in range(n + 3):
            molecule = Molecule()
            cmp_index = step - 2
            if 0 <= cmp_index < n:
                _, expected, mask = words[cmp_index]
                source = load_regs[cmp_index % 2]
                if mask != 0xFFFFFFFF:
                    # Masked word: drain-style extra molecule for the
                    # AND (rare: run tails and stylized immediates).
                    masked = Molecule()
                    masked.add(Atom(AtomKind.ALUI, aluop=AluOp.AND,
                                    rd=mask_reg, rs1=source, imm=mask))
                    molecules.append(masked)
                    source = mask_reg
                    expected &= mask
                molecule.add(Atom(AtomKind.ALUI, aluop=AluOp.CMPNE,
                                  rd=cmp_regs[cmp_index % 2], rs1=source,
                                  imm=expected))
            if step < n:
                addr, _, _ = words[step]
                molecule.add(Atom(AtomKind.LD, rd=load_regs[step % 2],
                                  rs1=base_reg, disp=addr - base_addr,
                                  size=4))
            branch_index = step - 3
            if 0 <= branch_index < n:
                molecule.add(Atom(AtomKind.BRNZ,
                                  rs1=cmp_regs[branch_index % 2],
                                  label="smc_fail"))
            if molecule.atoms:
                molecules.append(molecule)
        return molecules
