"""Frontend: lower a selected guest region to trace IR.

This is the "analyze x86 data and control flow within the region,
generate native VLIW code" stage (paper §2), up to but excluding
scheduling.  Key properties:

* every guest flag an instruction defines is computed explicitly into a
  temp and written back to its flag location — the optimizer's dead-flag
  elimination then deletes the computations no later consumer or exit
  needs;
* guest register writebacks are the only writes to architectural
  locations; all intermediate computation is in single-assignment temps,
  which is what lets the scheduler hoist work above side exits without
  compensation code (§3.2);
* conditional branches become ``EXIT_IF`` ops leaving the trace on the
  unlikely direction;
* a mid-trace ``COMMIT`` is emitted every ``policy.commit_interval``
  guest instructions, bounding rollback and interrupt-response cost;
* port I/O — and any instruction listed in ``policy.io_fence_addrs``
  (learned MMIO sites, §3.4) — becomes a commit-fenced barrier op;
* instructions in ``policy.stylized_imm_addrs`` reload their immediate
  fields from the code bytes at runtime (§3.6.4).
"""

from __future__ import annotations

from repro.host.atoms import AluOp
from repro.isa import flags as fl
from repro.isa import registers as greg
from repro.isa.encoder import immediate_field_offset
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Kind, Op
from repro.state import FLAG_SLOTS
from repro.translator.ir import (
    GuestEip,
    GuestFlag,
    GuestReg,
    IROp,
    IROpKind,
    Operand,
    Temp,
    TraceIR,
)
from repro.translator.policies import TranslationPolicy
from repro.translator.region import Region, RegionEnd

MASK32 = 0xFFFFFFFF

CF_S = FLAG_SLOTS.index("cf")
PF_S = FLAG_SLOTS.index("pf")
ZF_S = FLAG_SLOTS.index("zf")
SF_S = FLAG_SLOTS.index("sf")
OF_S = FLAG_SLOTS.index("of")


class FrontendError(Exception):
    """The region contains something the frontend cannot lower."""


class _Builder:
    """IR construction helpers bound to one trace."""

    def __init__(self, trace: TraceIR) -> None:
        self.trace = trace
        self.guest_index = 0
        self.guest_addr: int | None = None
        # Current value of each guest location (temp after a writeback).
        self.regmap: dict[int, Operand] = {
            i: GuestReg(i) for i in range(greg.NUM_REGS)
        }
        self.flagmap: dict[int, Operand] = {
            s: GuestFlag(s) for s in range(len(FLAG_SLOTS))
        }

    def emit(self, op: IROp) -> IROp:
        op.guest_index = self.guest_index
        op.guest_addr = self.guest_addr
        self.trace.ops.append(op)
        return op

    # -- value helpers ---------------------------------------------------

    def movi(self, imm: int) -> Temp:
        dest = self.trace.new_temp()
        self.emit(IROp(IROpKind.MOVI, dest=dest, imm=imm & MASK32))
        return dest

    def alu(self, aluop: AluOp, a: Operand, b: Operand) -> Temp:
        dest = self.trace.new_temp()
        self.emit(IROp(IROpKind.ALU, dest=dest, srcs=(a, b), aluop=aluop))
        return dest

    def alui(self, aluop: AluOp, a: Operand, imm: int) -> Temp:
        dest = self.trace.new_temp()
        self.emit(
            IROp(IROpKind.ALUI, dest=dest, srcs=(a,), aluop=aluop,
                 imm=imm & MASK32)
        )
        return dest

    def sel(self, cond: Operand, if_true: Operand,
            if_false: Operand) -> Temp:
        dest = self.trace.new_temp()
        self.emit(IROp(IROpKind.SEL, dest=dest, srcs=(cond, if_true, if_false)))
        return dest

    def load(self, base: Operand, disp: int, size: int = 4,
             io_ok: bool = False, barrier: bool = False,
             no_speculate: bool = False) -> Temp:
        dest = self.trace.new_temp()
        self.emit(
            IROp(IROpKind.LD, dest=dest, srcs=(base,), disp=disp, size=size,
                 io_ok=io_ok, barrier=barrier, no_speculate=no_speculate)
        )
        return dest

    def store(self, base: Operand, value: Operand, disp: int,
              size: int = 4, io_ok: bool = False, barrier: bool = False,
              no_speculate: bool = False) -> None:
        self.emit(
            IROp(IROpKind.ST, srcs=(base, value), disp=disp, size=size,
                 io_ok=io_ok, barrier=barrier, no_speculate=no_speculate)
        )

    # -- guest locations ---------------------------------------------------

    def read_reg(self, index: int) -> Operand:
        return self.regmap[index]

    def write_reg(self, index: int, value: Operand) -> None:
        self._preserve_forwards(GuestReg(index))
        self.emit(IROp(IROpKind.MOV, dest=GuestReg(index), srcs=(value,)))
        self.regmap[index] = value

    def read_flag(self, slot: int) -> Operand:
        return self.flagmap[slot]

    def write_flag(self, slot: int, value: Operand) -> None:
        self._preserve_forwards(GuestFlag(slot))
        self.emit(IROp(IROpKind.MOV, dest=GuestFlag(slot), srcs=(value,)))
        self.flagmap[slot] = value

    def _preserve_forwards(self, loc: Operand) -> None:
        """Snapshot stale forwards of ``loc`` before it is rewritten.

        The value maps may say e.g. "eax currently lives in %edx" (after
        ``mov eax, edx``).  When %edx itself is about to be redefined,
        the old value must be captured into a temp, or every later use
        of eax would silently read the *new* %edx.
        """
        stale_regs = [
            index for index, operand in self.regmap.items()
            if operand == loc and not (
                isinstance(loc, GuestReg) and index == loc.index
            )
        ]
        stale_flags = [
            slot for slot, operand in self.flagmap.items()
            if operand == loc and not (
                isinstance(loc, GuestFlag) and slot == loc.slot
            )
        ]
        if not stale_regs and not stale_flags:
            return
        snapshot = self.trace.new_temp()
        self.emit(IROp(IROpKind.MOV, dest=snapshot, srcs=(loc,)))
        for index in stale_regs:
            self.regmap[index] = snapshot
        for slot in stale_flags:
            self.flagmap[slot] = snapshot

    def invert(self, value: Operand) -> Temp:
        return self.alui(AluOp.XOR, value, 1)

    # -- flag recipes --------------------------------------------------------

    def flags_pzs(self, result: Operand) -> None:
        self.write_flag(ZF_S, self.alui(AluOp.CMPEQ, result, 0))
        self.write_flag(SF_S, self.alui(AluOp.SHR, result, 31))
        self.write_flag(PF_S, self.parity(result))

    def parity(self, result: Operand) -> Temp:
        """Even-parity of the low byte via the PARITY assist atom.

        The TM5800 grew x86-assist atoms over the TM3000 generations
        (paper §2 — segmentation, 16-bit operations); parity is modelled
        the same way, since materializing PF from plain ALU ops would
        put a seven-operation serial chain on every commit's critical
        path.
        """
        return self.alui(AluOp.PARITY, result, 0)

    def flags_of_add(self, a: Operand, b: Operand, result: Operand) -> None:
        x = self.alu(AluOp.XOR, a, result)
        y = self.alu(AluOp.XOR, b, result)
        self.write_flag(OF_S, self.alui(AluOp.SHR, self.alu(AluOp.AND, x, y), 31))

    def flags_of_sub(self, a: Operand, b: Operand, result: Operand) -> None:
        x = self.alu(AluOp.XOR, a, b)
        y = self.alu(AluOp.XOR, a, result)
        self.write_flag(OF_S, self.alui(AluOp.SHR, self.alu(AluOp.AND, x, y), 31))


class Frontend:
    """Lowers one region to trace IR under a policy."""

    def __init__(self, policy: TranslationPolicy) -> None:
        self.policy = policy

    def lower(self, region: Region) -> TraceIR:
        trace = TraceIR(entry_eip=region.entry_eip,
                        is_loop=region.end is RegionEnd.LOOP)
        b = _Builder(trace)
        since_commit = 0
        indirect_target: Operand | None = None

        for index, instr in enumerate(region.instrs):
            b.guest_index = index
            b.guest_addr = instr.addr
            since_commit += 1
            is_last = index == len(region.instrs) - 1
            indirect_target = self._lower_instr(b, instr, region,
                                                since_commit)
            if instr.addr in self.policy.io_fence_addrs or \
                    instr.info.kind is Kind.IO:
                # The device interaction is irrevocable: commit right
                # after it so no later rollback can ever replay it.  The
                # host suppresses interrupt exits until this commit.
                if not is_last:
                    next_addr = region.instrs[index + 1].addr
                    b.emit(IROp(IROpKind.COMMIT, exit_target=next_addr,
                                commit_count=since_commit,
                                window_start=index + 1 - since_commit,
                                window_end=index + 1))
                since_commit = 0
            elif (since_commit >= self.policy.commit_interval
                    and not is_last):
                next_addr = region.instrs[index + 1].addr
                b.emit(IROp(IROpKind.COMMIT, exit_target=next_addr,
                            commit_count=since_commit,
                            window_start=index + 1 - since_commit,
                            window_end=index + 1))
                since_commit = 0

        # Final exit.
        total = len(region.instrs)
        b.guest_index = total
        b.guest_addr = (region.instrs[-1].addr if region.instrs else
                        region.entry_eip)
        window = dict(commit_count=since_commit,
                      window_start=total - since_commit, window_end=total)
        if region.end is RegionEnd.LOOP:
            b.emit(IROp(IROpKind.LOOP, exit_target=region.entry_eip,
                        **window))
        elif region.end is RegionEnd.INDIRECT:
            assert indirect_target is not None
            b.emit(IROp(IROpKind.EXIT_IND, srcs=(indirect_target,),
                        **window))
        else:
            assert region.end_target is not None
            b.emit(IROp(IROpKind.EXIT, exit_target=region.end_target,
                        **window))
        return trace

    # ------------------------------------------------------------------

    def _imm_operand(self, b: _Builder, instr: Instruction) -> Operand:
        """Immediate as an operand, honoring stylized-SMC reloading."""
        if instr.addr in self.policy.stylized_imm_addrs:
            offset = immediate_field_offset(instr)
            if offset is not None:
                base = b.movi(instr.addr + offset)
                return b.load(base, 0, size=4, no_speculate=True)
        return b.movi(instr.imm)

    def _ea(self, b: _Builder, instr: Instruction) -> tuple[Operand, int]:
        """(base operand, displacement) for an RM/MR/MI access."""
        return b.read_reg(instr.r2), instr.disp

    def _ea_indexed(self, b: _Builder, instr: Instruction) -> tuple[Operand, int]:
        index = b.read_reg(instr.index)
        scaled = (b.alui(AluOp.SHL, index, instr.scale_log2)
                  if instr.scale_log2 else index)
        base = b.alu(AluOp.ADD, b.read_reg(instr.r2), scaled)
        return base, instr.disp

    def _mem_attrs(self, instr: Instruction) -> dict:
        """LD/ST attributes for this guest instruction under the policy."""
        fenced = instr.addr in self.policy.io_fence_addrs
        return {
            "io_ok": fenced,
            "barrier": fenced,
            "no_speculate": fenced or instr.addr in self.policy.no_reorder_addrs,
        }

    def _lower_instr(self, b: _Builder, instr: Instruction, region: Region,
                     since_commit: int) -> Operand | None:
        """Lower one instruction; returns the indirect exit target if any."""
        op = instr.op
        handler = _HANDLERS.get(op)
        if handler is not None:
            handler(self, b, instr)
            return None
        if op in _BINARY_OPS:
            self._lower_binary(b, instr)
            return None
        if op in _SHIFT_IMM_OPS or op in _SHIFT_CL_OPS:
            self._lower_shift(b, instr)
            return None
        if Op.JO <= op <= Op.JG:
            self._lower_jcc(b, instr, region, since_commit)
            return None
        if Op.SETO <= op <= Op.SETG:
            cond = self._condition_code(b, op - Op.SETO)
            b.write_reg(instr.r1, cond)
            return None
        if Op.CMOVO <= op <= Op.CMOVG:
            cond = self._condition_code(b, op - Op.CMOVO)
            value = b.sel(cond, b.read_reg(instr.r2), b.read_reg(instr.r1))
            b.write_reg(instr.r1, value)
            return None
        if op in (Op.JMP_R, Op.CALL_R, Op.RET):
            return self._lower_indirect(b, instr)
        if op is Op.JMP or op is Op.CALL:
            if op is Op.CALL:
                self._push(b, b.movi(instr.next_addr))
            return None  # trace follows direct jumps/calls
        raise FrontendError(f"frontend cannot lower {instr}")

    # -- simple moves and memory ------------------------------------------

    def _lower_nop(self, b: _Builder, instr: Instruction) -> None:
        pass

    def _lower_mov_rr(self, b: _Builder, instr: Instruction) -> None:
        b.write_reg(instr.r1, b.read_reg(instr.r2))

    def _lower_mov_ri(self, b: _Builder, instr: Instruction) -> None:
        b.write_reg(instr.r1, self._imm_operand(b, instr))

    def _lower_xchg(self, b: _Builder, instr: Instruction) -> None:
        a, c = b.read_reg(instr.r1), b.read_reg(instr.r2)
        b.write_reg(instr.r1, c)
        b.write_reg(instr.r2, a)

    def _lower_load(self, b: _Builder, instr: Instruction) -> None:
        indexed = instr.op in (Op.LOADX, Op.LOADBX)
        base, disp = (self._ea_indexed(b, instr) if indexed
                      else self._ea(b, instr))
        size = 1 if instr.op in (Op.LOADB, Op.LOADBX) else 4
        value = b.load(base, disp, size=size, **self._mem_attrs(instr))
        b.write_reg(instr.r1, value)

    def _lower_store(self, b: _Builder, instr: Instruction) -> None:
        indexed = instr.op in (Op.STOREX, Op.STOREBX)
        base, disp = (self._ea_indexed(b, instr) if indexed
                      else self._ea(b, instr))
        size = 1 if instr.op in (Op.STOREB, Op.STOREBX) else 4
        b.store(base, b.read_reg(instr.r1), disp, size=size,
                **self._mem_attrs(instr))

    def _lower_storei(self, b: _Builder, instr: Instruction) -> None:
        base, disp = self._ea(b, instr)
        b.store(base, self._imm_operand(b, instr), disp,
                **self._mem_attrs(instr))

    def _lower_lea(self, b: _Builder, instr: Instruction) -> None:
        if instr.op is Op.LEAX:
            base, disp = self._ea_indexed(b, instr)
        else:
            base, disp = self._ea(b, instr)
        value = b.alui(AluOp.ADD, base, disp) if disp else base
        b.write_reg(instr.r1, value)

    # -- binary ALU ---------------------------------------------------------

    def _lower_binary(self, b: _Builder, instr: Instruction) -> None:
        op = instr.op
        a = b.read_reg(instr.r1)
        if instr.info.fmt.name == "RI":
            rhs = self._imm_operand(b, instr)
        else:
            rhs = b.read_reg(instr.r2)
        kind = _BINARY_OPS[op]
        if kind == "add":
            result = b.alu(AluOp.ADD, a, rhs)
            b.write_flag(CF_S, b.alu(AluOp.CMPLTU, result, a))
            b.flags_of_add(a, rhs, result)
            b.flags_pzs(result)
            b.write_reg(instr.r1, result)
        elif kind == "adc":
            carry = b.read_flag(CF_S)
            partial = b.alu(AluOp.ADD, a, rhs)
            c1 = b.alu(AluOp.CMPLTU, partial, a)
            result = b.alu(AluOp.ADD, partial, carry)
            c2 = b.alu(AluOp.CMPLTU, result, partial)
            b.write_flag(CF_S, b.alu(AluOp.OR, c1, c2))
            b.flags_of_add(a, rhs, result)
            b.flags_pzs(result)
            b.write_reg(instr.r1, result)
        elif kind in ("sub", "cmp"):
            result = b.alu(AluOp.SUB, a, rhs)
            b.write_flag(CF_S, b.alu(AluOp.CMPLTU, a, rhs))
            b.flags_of_sub(a, rhs, result)
            b.flags_pzs(result)
            if kind == "sub":
                b.write_reg(instr.r1, result)
        elif kind == "sbb":
            borrow = b.read_flag(CF_S)
            partial = b.alu(AluOp.SUB, a, rhs)
            c1 = b.alu(AluOp.CMPLTU, a, rhs)
            result = b.alu(AluOp.SUB, partial, borrow)
            c2 = b.alu(AluOp.CMPLTU, partial, borrow)
            b.write_flag(CF_S, b.alu(AluOp.OR, c1, c2))
            b.flags_of_sub(a, rhs, result)
            b.flags_pzs(result)
            b.write_reg(instr.r1, result)
        elif kind in ("and", "test"):
            result = b.alu(AluOp.AND, a, rhs)
            self._logic_flags(b, result)
            if kind == "and":
                b.write_reg(instr.r1, result)
        elif kind == "or":
            result = b.alu(AluOp.OR, a, rhs)
            self._logic_flags(b, result)
            b.write_reg(instr.r1, result)
        elif kind == "xor":
            result = b.alu(AluOp.XOR, a, rhs)
            self._logic_flags(b, result)
            b.write_reg(instr.r1, result)
        elif kind == "imul":
            result = b.alu(AluOp.MUL, a, rhs)
            high = b.alu(AluOp.SMULH, a, rhs)
            sign = b.alui(AluOp.SAR, result, 31)
            overflow = b.alu(AluOp.CMPNE, high, sign)
            b.write_flag(CF_S, overflow)
            b.write_flag(OF_S, overflow)
            b.flags_pzs(result)
            b.write_reg(instr.r1, result)
        else:  # pragma: no cover - table is exhaustive
            raise AssertionError(kind)

    def _logic_flags(self, b: _Builder, result: Operand) -> None:
        zero = b.movi(0)
        b.write_flag(CF_S, zero)
        b.write_flag(OF_S, zero)
        b.flags_pzs(result)

    # -- unary ALU ---------------------------------------------------------

    def _lower_not(self, b: _Builder, instr: Instruction) -> None:
        b.write_reg(instr.r1, b.alui(AluOp.XOR, b.read_reg(instr.r1),
                                     MASK32))

    def _lower_neg(self, b: _Builder, instr: Instruction) -> None:
        a = b.read_reg(instr.r1)
        zero = b.movi(0)
        result = b.alu(AluOp.SUB, zero, a)
        b.write_flag(CF_S, b.alui(AluOp.CMPNE, a, 0))
        b.write_flag(OF_S, b.alui(AluOp.CMPEQ, a, 0x80000000))
        b.flags_pzs(result)
        b.write_reg(instr.r1, result)

    def _lower_inc(self, b: _Builder, instr: Instruction) -> None:
        a = b.read_reg(instr.r1)
        result = b.alui(AluOp.ADD, a, 1)
        b.write_flag(OF_S, b.alui(AluOp.CMPEQ, result, 0x80000000))
        b.flags_pzs(result)
        b.write_reg(instr.r1, result)

    def _lower_dec(self, b: _Builder, instr: Instruction) -> None:
        a = b.read_reg(instr.r1)
        result = b.alui(AluOp.SUB, a, 1)
        b.write_flag(OF_S, b.alui(AluOp.CMPEQ, result, 0x7FFFFFFF))
        b.flags_pzs(result)
        b.write_reg(instr.r1, result)

    def _lower_mul(self, b: _Builder, instr: Instruction) -> None:
        a = b.read_reg(greg.EAX)
        src = b.read_reg(instr.r1)
        low = b.alu(AluOp.MUL, a, src)
        high = b.alu(AluOp.UMULH, a, src)
        nonzero = b.alui(AluOp.CMPNE, high, 0)
        b.write_flag(CF_S, nonzero)
        b.write_flag(OF_S, nonzero)
        b.flags_pzs(low)
        b.write_reg(greg.EAX, low)
        b.write_reg(greg.EDX, high)

    def _lower_div(self, b: _Builder, instr: Instruction) -> None:
        low = b.read_reg(greg.EAX)
        high = b.read_reg(greg.EDX)
        divisor = b.read_reg(instr.r1)
        quotient = b.trace.new_temp()
        remainder = b.trace.new_temp()
        kind = IROpKind.DIVU if instr.op is Op.DIV_R else IROpKind.DIVS
        b.emit(IROp(kind, dest=quotient, dest2=remainder,
                    srcs=(low, divisor, high)))
        b.write_reg(greg.EAX, quotient)
        b.write_reg(greg.EDX, remainder)

    # -- shifts --------------------------------------------------------------

    def _lower_shift(self, b: _Builder, instr: Instruction) -> None:
        if instr.op in _SHIFT_CL_OPS:
            self._lower_shift_cl(b, instr)
            return
        count = instr.imm & 31
        a = b.read_reg(instr.r1)
        op = instr.op
        if count == 0:
            return  # x86: masked count 0 changes nothing, defines no flags
        if op is Op.SHL_RI8:
            result = b.alui(AluOp.SHL, a, count)
            b.write_flag(CF_S, b.alui(
                AluOp.AND, b.alui(AluOp.SHR, a, 32 - count), 1))
            before_last = b.alui(AluOp.SHL, a, count - 1)
            b.write_flag(OF_S, b.alui(
                AluOp.SHR, b.alu(AluOp.XOR, result, before_last), 31))
            b.flags_pzs(result)
        elif op is Op.SHR_RI8:
            result = b.alui(AluOp.SHR, a, count)
            b.write_flag(CF_S, b.alui(
                AluOp.AND, b.alui(AluOp.SHR, a, count - 1), 1))
            b.write_flag(OF_S, b.alui(AluOp.SHR, a, 31))
            b.flags_pzs(result)
        elif op is Op.SAR_RI8:
            result = b.alui(AluOp.SAR, a, count)
            b.write_flag(CF_S, b.alui(
                AluOp.AND, b.alui(AluOp.SAR, a, count - 1), 1))
            b.write_flag(OF_S, b.movi(0))
            b.flags_pzs(result)
        elif op in (Op.ROL_RI8, Op.ROR_RI8):
            if op is Op.ROL_RI8:
                result = b.alu(AluOp.OR, b.alui(AluOp.SHL, a, count),
                               b.alui(AluOp.SHR, a, 32 - count))
                b.write_flag(CF_S, b.alui(AluOp.AND, result, 1))
            else:
                result = b.alu(AluOp.OR, b.alui(AluOp.SHR, a, count),
                               b.alui(AluOp.SHL, a, 32 - count))
                b.write_flag(CF_S, b.alui(AluOp.SHR, result, 31))
            if count == 1:
                b.write_flag(OF_S, b.alui(
                    AluOp.SHR, b.alu(AluOp.XOR, result, a), 31))
            else:
                b.write_flag(OF_S, b.movi(0))
        else:  # pragma: no cover
            raise AssertionError(op)
        b.write_reg(instr.r1, result)

    def _lower_shift_cl(self, b: _Builder, instr: Instruction) -> None:
        a = b.read_reg(instr.r1)
        count = b.alui(AluOp.AND, b.read_reg(greg.ECX), 31)
        zero_count = b.alui(AluOp.CMPEQ, count, 0)
        count_m1 = b.alui(AluOp.SUB, count, 1)
        op = instr.op
        if op is Op.SHL_RCL:
            result = b.alu(AluOp.SHL, a, count)
            inv = b.alu(AluOp.SUB, b.movi(32), count)
            cf_new = b.alui(AluOp.AND, b.alu(AluOp.SHR, a, inv), 1)
            before_last = b.alu(AluOp.SHL, a, count_m1)
            of_new = b.alui(AluOp.SHR,
                            b.alu(AluOp.XOR, result, before_last), 31)
        elif op is Op.SHR_RCL:
            result = b.alu(AluOp.SHR, a, count)
            cf_new = b.alui(AluOp.AND, b.alu(AluOp.SHR, a, count_m1), 1)
            of_new = b.alui(AluOp.SHR, a, 31)
        else:  # SAR_RCL
            result = b.alu(AluOp.SAR, a, count)
            cf_new = b.alui(AluOp.AND, b.alu(AluOp.SAR, a, count_m1), 1)
            of_new = b.movi(0)
        self._write_flag_guarded(b, CF_S, zero_count, cf_new)
        self._write_flag_guarded(b, OF_S, zero_count, of_new)
        self._write_flag_guarded(
            b, ZF_S, zero_count, b.alui(AluOp.CMPEQ, result, 0))
        self._write_flag_guarded(
            b, SF_S, zero_count, b.alui(AluOp.SHR, result, 31))
        self._write_flag_guarded(b, PF_S, zero_count, b.parity(result))
        b.write_reg(instr.r1, result)

    @staticmethod
    def _write_flag_guarded(b: _Builder, slot: int, zero_count: Operand,
                            new_value: Operand) -> None:
        """flags keep their old value when the dynamic count is zero."""
        b.write_flag(slot, b.sel(zero_count, b.read_flag(slot), new_value))

    # -- stack ---------------------------------------------------------------

    def _push(self, b: _Builder, value: Operand) -> None:
        esp = b.read_reg(greg.ESP)
        addr = b.alui(AluOp.SUB, esp, 4)
        b.store(addr, value, 0)
        b.write_reg(greg.ESP, addr)

    def _lower_push_r(self, b: _Builder, instr: Instruction) -> None:
        self._push(b, b.read_reg(instr.r1))

    def _lower_push_i(self, b: _Builder, instr: Instruction) -> None:
        self._push(b, self._imm_operand(b, instr))

    def _lower_pop_r(self, b: _Builder, instr: Instruction) -> None:
        esp = b.read_reg(greg.ESP)
        value = b.load(esp, 0)
        b.write_reg(greg.ESP, b.alui(AluOp.ADD, esp, 4))
        b.write_reg(instr.r1, value)  # pop esp: popped value wins

    # -- conditional branches -------------------------------------------------

    def _condition(self, b: _Builder, op: Op) -> Operand:
        """Taken-condition of a Jcc as a 0/1 operand."""
        return self._condition_code(b, op - Op.JO)

    def _condition_code(self, b: _Builder, index: int) -> Operand:
        """x86 condition code ``index`` (0..15) as a 0/1 operand."""
        base = index >> 1
        if base == 0:
            value = b.read_flag(OF_S)
        elif base == 1:
            value = b.read_flag(CF_S)
        elif base == 2:
            value = b.read_flag(ZF_S)
        elif base == 3:
            value = b.alu(AluOp.OR, b.read_flag(CF_S), b.read_flag(ZF_S))
        elif base == 4:
            value = b.read_flag(SF_S)
        elif base == 5:
            value = b.read_flag(PF_S)
        elif base == 6:
            value = b.alu(AluOp.XOR, b.read_flag(SF_S), b.read_flag(OF_S))
        else:
            lt = b.alu(AluOp.XOR, b.read_flag(SF_S), b.read_flag(OF_S))
            value = b.alu(AluOp.OR, lt, b.read_flag(ZF_S))
        if index & 1:
            value = b.invert(value)
        return value

    def _lower_jcc(self, b: _Builder, instr: Instruction, region: Region,
                   since_commit: int) -> None:
        follow_taken = region.follow_taken.get(instr.addr, False)
        cond = self._condition(b, instr.op)
        if follow_taken:
            # Trace follows the taken path: exit when NOT taken.
            cond = b.invert(cond)
            target = instr.next_addr
        else:
            target = instr.branch_target
        b.emit(IROp(IROpKind.EXIT_IF, srcs=(cond,), exit_target=target,
                    commit_count=since_commit,
                    window_start=b.guest_index + 1 - since_commit,
                    window_end=b.guest_index + 1))

    # -- indirect exits --------------------------------------------------------

    def _lower_indirect(self, b: _Builder,
                        instr: Instruction) -> Operand | None:
        if instr.op is Op.JMP_R:
            return b.read_reg(instr.r1)
        if instr.op is Op.CALL_R:
            target = b.read_reg(instr.r1)
            self._push(b, b.movi(instr.next_addr))
            return target
        # RET
        esp = b.read_reg(greg.ESP)
        target = b.load(esp, 0)
        b.write_reg(greg.ESP, b.alui(AluOp.ADD, esp, 4))
        return target

    # -- port I/O (barriers) ----------------------------------------------------

    def _lower_in(self, b: _Builder, instr: Instruction) -> None:
        dest = b.trace.new_temp()
        b.emit(IROp(IROpKind.PORT_IN, dest=dest, imm=instr.imm,
                    barrier=True))
        b.write_reg(greg.EAX, dest)

    def _lower_out(self, b: _Builder, instr: Instruction) -> None:
        b.emit(IROp(IROpKind.PORT_OUT, srcs=(b.read_reg(greg.EAX),),
                    imm=instr.imm, barrier=True))


_BINARY_OPS = {
    Op.ADD_RR: "add", Op.ADD_RI: "add",
    Op.ADC_RR: "adc", Op.ADC_RI: "adc",
    Op.SUB_RR: "sub", Op.SUB_RI: "sub",
    Op.SBB_RR: "sbb", Op.SBB_RI: "sbb",
    Op.CMP_RR: "cmp", Op.CMP_RI: "cmp",
    Op.AND_RR: "and", Op.AND_RI: "and",
    Op.TEST_RR: "test", Op.TEST_RI: "test",
    Op.OR_RR: "or", Op.OR_RI: "or",
    Op.XOR_RR: "xor", Op.XOR_RI: "xor",
    Op.IMUL_RR: "imul", Op.IMUL_RI: "imul",
}

_SHIFT_IMM_OPS = (Op.SHL_RI8, Op.SHR_RI8, Op.SAR_RI8, Op.ROL_RI8,
                  Op.ROR_RI8)
_SHIFT_CL_OPS = (Op.SHL_RCL, Op.SHR_RCL, Op.SAR_RCL)

_HANDLERS = {
    Op.NOP: Frontend._lower_nop,
    Op.MOV_RR: Frontend._lower_mov_rr,
    Op.MOV_RI: Frontend._lower_mov_ri,
    Op.XCHG_RR: Frontend._lower_xchg,
    Op.LOAD: Frontend._lower_load,
    Op.LOADB: Frontend._lower_load,
    Op.LOADX: Frontend._lower_load,
    Op.LOADBX: Frontend._lower_load,
    Op.STORE: Frontend._lower_store,
    Op.STOREB: Frontend._lower_store,
    Op.STOREX: Frontend._lower_store,
    Op.STOREBX: Frontend._lower_store,
    Op.STOREI: Frontend._lower_storei,
    Op.LEA: Frontend._lower_lea,
    Op.LEAX: Frontend._lower_lea,
    Op.NOT_R: Frontend._lower_not,
    Op.NEG_R: Frontend._lower_neg,
    Op.INC_R: Frontend._lower_inc,
    Op.DEC_R: Frontend._lower_dec,
    Op.MUL_R: Frontend._lower_mul,
    Op.DIV_R: Frontend._lower_div,
    Op.IDIV_R: Frontend._lower_div,
    Op.PUSH_R: Frontend._lower_push_r,
    Op.PUSH_I: Frontend._lower_push_i,
    Op.POP_R: Frontend._lower_pop_r,
    Op.IN: Frontend._lower_in,
    Op.OUT: Frontend._lower_out,
}
