"""VLIW trace scheduling with speculation.

This is where the paper's performance story lives.  The scheduler builds
a dependence DAG over the optimized trace IR and then list-schedules it
into VLIW cycles (future molecules).  Ordering edges:

* data dependences through temps and guest locations;
* store-store order (the gated store buffer drains in issue order);
* load-store anti order (a program-earlier load never sinks below a
  store);
* **store-load order, speculatively omitted**: a program-later load may
  be hoisted above an earlier store when the policy allows it — either
  because the addresses are provably disjoint, or under alias-hardware
  protection (§3.5): the load records its address in an alias entry and
  every store it crossed carries a check mask;
* exits order all architectural effects (guest-location writebacks,
  stores, potentially-faulting ops must complete before a later exit),
  but *loads may be hoisted above side exits* under control speculation
  (§3.2) — a hoisted load that faults produces a speculative fault that
  rollback-and-reinterpret discovers to be harmless;
* commits and barrier (I/O) ops order everything.

Any load actually scheduled out of program order is marked
``reordered`` so the hardware can detect speculative accesses to
memory-mapped I/O space at runtime (§3.4).

Cycles with no issued atoms become explicit no-op molecules: the
TM5800 has "very few hardware interlocks — CMS guarantees correct
operation by careful scheduling, inserting no-ops if necessary" (§2),
so schedule length is honestly visible in the executed-molecule metric.

Issue widths, per-class latencies, and the modeled-cycle (completion
time) objective all come from ``translator.costmodel`` — the same
tables the trace-growth heuristic prices extensions with.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.translator.costmodel import DEFAULT_COST_MODEL, MachineCostModel
from repro.translator.ir import (
    IROp,
    IROpKind,
    Temp,
    TraceIR,
    is_guest_loc,
)
from repro.translator.policies import TranslationPolicy


@dataclass
class Schedule:
    """The scheduler's result: ops grouped into issue cycles.

    ``modeled_cycles`` is the cost model's completion-time estimate for
    this placement — the cycle in which the last result lands, not just
    the issue-cycle count (see ``translator.costmodel``).
    """

    cycles: list[list[IROp]] = field(default_factory=list)
    speculated_loads: int = 0
    hoisted_over_exits: int = 0
    modeled_cycles: int = 0

    @property
    def num_cycles(self) -> int:
        return len(self.cycles)


class _Dag:
    """Dependence graph over trace ops."""

    def __init__(self, n: int) -> None:
        self.succs: list[dict[int, int]] = [dict() for _ in range(n)]
        self.pred_count = [0] * n

    def add_edge(self, src: int, dst: int, latency: int = 1) -> None:
        if src == dst:
            return
        existing = self.succs[src].get(dst)
        if existing is None:
            self.succs[src][dst] = latency
            self.pred_count[dst] += 1
        elif latency > existing:
            self.succs[src][dst] = latency


def _provably_disjoint(a: IROp, b: IROp) -> bool:
    """True when two memory ops certainly do not overlap.

    Requires the same symbolic base operand and non-overlapping
    displacement ranges — the "overlap is not obvious" test from §3.5.
    """
    if a.srcs[0] != b.srcs[0]:
        return False
    return a.disp + a.size <= b.disp or b.disp + b.size <= a.disp


def _provably_overlapping(a: IROp, b: IROp) -> bool:
    """True when two memory ops certainly DO overlap (same base operand,
    intersecting ranges).  Speculating on such a pair would fault every
    single execution; the scheduler keeps them ordered instead."""
    if a.srcs[0] != b.srcs[0]:
        return False
    return not (a.disp + a.size <= b.disp or b.disp + b.size <= a.disp)


class Scheduler:
    """DAG construction + list scheduling for one trace."""

    def __init__(self, policy: TranslationPolicy,
                 alias_entries: int = 8,
                 model: MachineCostModel | None = None) -> None:
        self.policy = policy
        self.alias_entries = alias_entries
        self.model = model if model is not None else DEFAULT_COST_MODEL

    # ------------------------------------------------------------------
    # DAG construction
    # ------------------------------------------------------------------

    def build_dag(self, trace: TraceIR) -> tuple[_Dag, list[tuple[int, int]]]:
        """Returns the DAG and the list of speculative (store, load) pairs
        whose ordering edge was omitted under alias protection."""
        ops = trace.ops
        n = len(ops)
        dag = _Dag(n)
        policy = self.policy
        latency = self.model.latency

        last_def: dict = {}  # operand -> op index of last writer
        readers: dict = {}  # operand -> list of reader indices since write
        stores: list[int] = []  # store indices since last barrier
        loads: list[int] = []
        faulting: list[int] = []  # LD/ST/DIV since last barrier
        guest_effects: list[int] = []  # guest-loc writes + STs + exits
        exits: list[int] = []
        last_barrier: int | None = None
        spec_pairs: list[tuple[int, int]] = []
        spec_budget = self.alias_entries

        for j, op in enumerate(ops):
            kind = op.kind

            # Data dependences.
            for src in op.srcs:
                definer = last_def.get(src)
                if definer is not None:
                    dag.add_edge(definer, j, latency(ops[definer]))
                if is_guest_loc(src):
                    readers.setdefault(src, []).append(j)
            for dest in op.writes():
                definer = last_def.get(dest)
                if definer is not None:
                    dag.add_edge(definer, j, 1)  # output dependence
                for reader in readers.get(dest, ()):  # anti dependence
                    dag.add_edge(reader, j, 1)
                readers[dest] = []
                last_def[dest] = j

            if last_barrier is not None:
                dag.add_edge(last_barrier, j, 1)

            is_barrier = op.barrier or kind in (
                IROpKind.COMMIT, IROpKind.PORT_IN, IROpKind.PORT_OUT
            )
            is_final = kind in (IROpKind.EXIT, IROpKind.EXIT_IND,
                                IROpKind.LOOP)

            if is_barrier or is_final:
                # Full barrier: ordered after everything so far.
                for i in range(j):
                    dag.add_edge(i, j, latency(ops[i])
                                 if ops[i].writes() else 1)
                last_barrier = j
                stores, loads, faulting = [], [], []
                guest_effects, exits = [], []
                if kind is IROpKind.COMMIT:
                    continue

            if kind is IROpKind.ST and not is_barrier:
                for i in stores:
                    dag.add_edge(i, j, 1)  # store-store order
                for i in loads:
                    # A program-earlier load must not sink below a store
                    # unless provably disjoint.
                    if not _provably_disjoint(ops[i], op):
                        dag.add_edge(i, j, 1)
                for e in exits:
                    dag.add_edge(e, j, 1)  # stores never cross exits
                stores.append(j)
                faulting.append(j)
                guest_effects.append(j)
            elif kind is IROpKind.LD and not is_barrier:
                for i in stores:
                    if _provably_disjoint(ops[i], op):
                        continue
                    can_speculate = (
                        policy.reorder_memory
                        and policy.use_alias_hw
                        and not _provably_overlapping(ops[i], op)
                        and not op.no_speculate
                        and not ops[i].no_speculate
                        and spec_budget > 0
                    )
                    if can_speculate:
                        spec_pairs.append((i, j))
                    else:
                        dag.add_edge(i, j, 1)
                if any(pair[1] == j for pair in spec_pairs):
                    spec_budget -= 1
                if not policy.control_speculation or op.no_speculate:
                    for e in exits:
                        dag.add_edge(e, j, 1)
                loads.append(j)
                faulting.append(j)
            elif kind in (IROpKind.DIVU, IROpKind.DIVS):
                if not policy.control_speculation:
                    for e in exits:
                        dag.add_edge(e, j, 1)
                faulting.append(j)
            elif kind is IROpKind.MOV and is_guest_loc(op.dest):
                for e in exits:
                    dag.add_edge(e, j, 1)  # writebacks stay below exits
                guest_effects.append(j)
            elif kind is IROpKind.EXIT_IF:
                # All architectural effects and fault sources before the
                # exit must complete first; later ones wait (handled when
                # they are visited).
                for i in guest_effects:
                    dag.add_edge(i, j, 1)
                for i in faulting:
                    dag.add_edge(i, j, 1)
                for e in exits:
                    dag.add_edge(e, j, 1)  # exits stay ordered
                exits.append(j)
                guest_effects.append(j)

        # Reset the per-window speculation budget at commits: entries are
        # cleared by commit, so each window gets the full set.  (The
        # budget bookkeeping above is conservative across the whole
        # trace; refine it per window.)
        return dag, spec_pairs

    # ------------------------------------------------------------------
    # List scheduling
    # ------------------------------------------------------------------

    def schedule(self, trace: TraceIR) -> Schedule:
        ops = trace.ops
        n = len(ops)
        if n == 0:
            return Schedule()
        dag, spec_pairs = self.build_dag(trace)

        # Critical-path priorities.
        priority = [1] * n
        for i in range(n - 1, -1, -1):
            best = 0
            for j, lat in dag.succs[i].items():
                best = max(best, priority[j] + lat)
            priority[i] = best + 1

        pred_count = dag.pred_count[:]
        earliest = [0] * n
        placed_cycle = [-1] * n
        ready: list[int] = [i for i in range(n) if pred_count[i] == 0]
        remaining = n
        cycles: list[list[IROp]] = []
        cycle_index = 0

        while remaining > 0:
            issued: list[int] = []
            slots = dict(self.model.ports)
            atom_budget = self.model.issue_width
            barrier_in_cycle = False
            candidates = sorted(
                (i for i in ready if earliest[i] <= cycle_index),
                key=lambda i: -priority[i],
            )
            for i in candidates:
                if atom_budget == 0 or barrier_in_cycle:
                    break
                op = ops[i]
                is_barrier = op.barrier or op.kind in (
                    IROpKind.PORT_IN, IROpKind.PORT_OUT
                )
                if is_barrier and issued:
                    continue  # barrier ops issue alone
                slot = self._slot_for(op, slots)
                if slot is None:
                    continue
                slots[slot] -= 1
                atom_budget -= 1
                issued.append(i)
                if is_barrier:
                    barrier_in_cycle = True

            for i in issued:
                ready.remove(i)
                placed_cycle[i] = cycle_index
                remaining -= 1
                for j, lat in dag.succs[i].items():
                    pred_count[j] -= 1
                    earliest[j] = max(earliest[j], cycle_index + lat)
                    if pred_count[j] == 0:
                        ready.append(j)

            cycles.append([ops[i] for i in issued])
            cycle_index += 1
            if cycle_index > 40 * n + 64:  # pragma: no cover - safety net
                raise RuntimeError("scheduler failed to converge")

        schedule = Schedule(cycles=cycles)
        schedule.modeled_cycles = self.model.completion_cycles(cycles)
        self._apply_speculation_marks(ops, placed_cycle, spec_pairs, schedule)
        return schedule

    def _slot_for(self, op: IROp, slots: dict[str, int]) -> str | None:
        for port in self.model.port_preferences(op.kind):
            if slots[port]:
                return port
        return None

    def _apply_speculation_marks(
        self,
        ops: list[IROp],
        placed_cycle: list[int],
        spec_pairs: list[tuple[int, int]],
        schedule: Schedule,
    ) -> None:
        """Set reordered/alias attributes from the final placement."""
        # Alias protection: loads actually hoisted above a store they
        # could alias with.
        load_entry: dict[int, int] = {}
        next_entry = 0
        for store_idx, load_idx in spec_pairs:
            if placed_cycle[load_idx] <= placed_cycle[store_idx]:
                load = ops[load_idx]
                store = ops[store_idx]
                entry = load_entry.get(load_idx)
                if entry is None:
                    entry = next_entry % self.alias_entries
                    next_entry += 1
                    load_entry[load_idx] = entry
                    load.alias_entry = entry
                    load.reordered = True
                    schedule.speculated_loads += 1
                store.alias_check |= 1 << entry

        # Control speculation: loads hoisted above a program-earlier exit.
        exit_positions = [
            (i, placed_cycle[i])
            for i, op in enumerate(ops)
            if op.kind is IROpKind.EXIT_IF
        ]
        for i, op in enumerate(ops):
            if op.kind is not IROpKind.LD or op.reordered:
                continue
            for exit_idx, exit_cycle in exit_positions:
                if exit_idx < i and placed_cycle[i] <= exit_cycle:
                    op.reordered = True
                    schedule.hoisted_over_exits += 1
                    break
