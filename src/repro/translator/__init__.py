"""The dynamic binary translator.

"The translator is the largest, most complex component of CMS.  It
comprises modules that decode x86 instructions, select a region for
translation, analyze x86 data and control flow within the region,
generate native VLIW code for the region, optimize it, and schedule it."
(paper §2)

Pipeline::

    region.py    select a hot trace region from the profile
    frontend.py  guest instructions -> IR (flags fully explicit)
    optimize.py  constant folding, copy propagation, CSE, dead-code
                 (and dead-flag) elimination
    schedule.py  dependence DAG -> VLIW list schedule, with speculative
                 load reordering under alias-hardware protection
    codegen.py   temp allocation, molecule emission, exit stubs,
                 self-check / self-revalidation prologues, chaining stubs

Everything is driven by a ``TranslationPolicy`` (policies.py): the
adaptive retranslation controller reruns this pipeline with increasingly
conservative policies when a translation keeps failing its speculative
assumptions.
"""

from repro.translator.policies import TranslationPolicy
from repro.translator.region import Region, RegionSelector
from repro.translator.translator import TranslationError, Translator

__all__ = [
    "TranslationPolicy",
    "Region",
    "RegionSelector",
    "TranslationError",
    "Translator",
]
