"""Optimization passes over trace IR.

"The optimizer performs a number of traditional and Crusoe-specific
optimizations on the region" (paper §2).  Implemented here:

* **constant folding and propagation** — MOVI-fed ALU ops collapse;
  immediate forms are substituted for register forms;
* **local value numbering / CSE** — repeated pure computations (flag
  recipes, address arithmetic) are reused, with guest-location
  versioning so writebacks invalidate stale values;
* **redundant load elimination and store-to-load forwarding** — loads
  that re-read an address just stored to (or loaded from) are replaced,
  with conservative invalidation at possibly-aliasing stores, barriers
  and commits;
* **dead code and dead flag elimination** — a backward liveness pass
  over temps *and* guest locations; exits make every architectural
  location live (committed state must be complete, §3.1), interior flag
  definitions that are overwritten before the next exit die.  This is
  the classic dead-flag win of trace-based dynamic translators.

Potentially faulting operations (loads, stores, divides) are never
deleted even when their results are dead: removing one would remove a
genuine guest exception, which no amount of rollback could recover.
"""

from __future__ import annotations

from repro.host.atoms import AluOp
from repro.translator.ir import (
    GuestFlag,
    GuestReg,
    IROp,
    IROpKind,
    Operand,
    PURE_KINDS,
    Temp,
    TraceIR,
    is_guest_loc,
)

MASK32 = 0xFFFFFFFF
SIGN32 = 0x80000000

_COMMUTATIVE = {
    AluOp.ADD, AluOp.AND, AluOp.OR, AluOp.XOR, AluOp.MUL,
    AluOp.UMULH, AluOp.SMULH, AluOp.CMPEQ, AluOp.CMPNE,
}

# ALU ops that have a meaningful immediate form.
_IMMEDIATE_OK = {
    AluOp.ADD, AluOp.SUB, AluOp.AND, AluOp.OR, AluOp.XOR, AluOp.SHL,
    AluOp.SHR, AluOp.SAR, AluOp.MUL, AluOp.CMPEQ, AluOp.CMPNE,
    AluOp.CMPLTU, AluOp.CMPLTS, AluOp.CMPLEU, AluOp.CMPLES,
}


def optimize(trace: TraceIR, enable_cse: bool = True) -> TraceIR:
    """Run the full pass pipeline in place and return the trace."""
    _fold_constants(trace)
    if enable_cse:
        _value_number(trace)
    _eliminate_dead_code(trace)
    return trace


# --------------------------------------------------------------------------
# Constant folding and propagation
# --------------------------------------------------------------------------


def _alu_eval(op: AluOp, a: int, b: int) -> int:
    from repro.host.cpu import _alu

    return _alu(op, a, b)


def _fold_constants(trace: TraceIR) -> None:
    consts: dict[Temp, int] = {}
    alias: dict[Temp, Operand] = {}
    out: list[IROp] = []

    def resolve(operand: Operand) -> Operand:
        while isinstance(operand, Temp) and operand in alias:
            operand = alias[operand]
        return operand

    for op in trace.ops:
        op.srcs = tuple(resolve(s) for s in op.srcs)
        kind = op.kind
        if kind is IROpKind.MOVI and isinstance(op.dest, Temp):
            consts[op.dest] = op.imm & MASK32
            out.append(op)
            continue
        if kind is IROpKind.ALU:
            a, b = op.srcs
            ca = consts.get(a) if isinstance(a, Temp) else None
            cb = consts.get(b) if isinstance(b, Temp) else None
            if ca is not None and cb is not None and isinstance(op.dest, Temp):
                value = _alu_eval(op.aluop, ca, cb)
                consts[op.dest] = value
                out.append(IROp(IROpKind.MOVI, dest=op.dest, imm=value,
                                guest_index=op.guest_index,
                                guest_addr=op.guest_addr))
                continue
            if cb is not None and op.aluop in _IMMEDIATE_OK:
                op.kind = IROpKind.ALUI
                op.srcs = (a,)
                op.imm = cb
            elif ca is not None and op.aluop in _COMMUTATIVE and \
                    op.aluop in _IMMEDIATE_OK:
                op.kind = IROpKind.ALUI
                op.srcs = (b,)
                op.imm = ca
            out.append(op)
            continue
        if kind is IROpKind.ALUI:
            (a,) = op.srcs
            ca = consts.get(a) if isinstance(a, Temp) else None
            if ca is not None and isinstance(op.dest, Temp):
                value = _alu_eval(op.aluop, ca, op.imm)
                consts[op.dest] = value
                out.append(IROp(IROpKind.MOVI, dest=op.dest, imm=value,
                                guest_index=op.guest_index,
                                guest_addr=op.guest_addr))
                continue
            # Identity simplifications.  Aliasing is only sound for temp
            # sources: a guest-location operand may be redefined between
            # here and a later use, so it must not be substituted
            # forward.
            if op.aluop in (AluOp.ADD, AluOp.SUB, AluOp.OR, AluOp.XOR,
                            AluOp.SHL, AluOp.SHR, AluOp.SAR) and \
                    op.imm == 0 and isinstance(op.dest, Temp) and \
                    isinstance(a, Temp):
                alias[op.dest] = a
                continue
            out.append(op)
            continue
        if kind is IROpKind.SEL:
            cond, if_true, if_false = op.srcs
            cc = consts.get(cond) if isinstance(cond, Temp) else None
            if cc is not None and isinstance(op.dest, Temp):
                chosen = if_true if cc else if_false
                if isinstance(chosen, Temp):
                    alias[op.dest] = chosen
                    continue
                op.kind = IROpKind.MOV
                op.srcs = (chosen,)
                out.append(op)
                continue
            out.append(op)
            continue
        if kind is IROpKind.EXIT_IF:
            (cond,) = op.srcs
            cc = consts.get(cond) if isinstance(cond, Temp) else None
            if cc == 0:
                continue  # never-taken exit
            if cc is not None and cc != 0:
                # Always-taken exit: the rest of the trace is dead.
                op.kind = IROpKind.EXIT
                op.srcs = ()
                out.append(op)
                trace.ops[:] = out
                return
            out.append(op)
            continue
        out.append(op)
    trace.ops[:] = out


# --------------------------------------------------------------------------
# Value numbering (CSE) + memory forwarding
# --------------------------------------------------------------------------


def _value_number(trace: TraceIR) -> None:
    versions: dict[Operand, int] = {}
    available: dict[tuple, Temp] = {}
    alias: dict[Temp, Operand] = {}
    # (base_operand_vn, disp, size) -> value operand for forwarding.
    memory: dict[tuple, Operand] = {}
    out: list[IROp] = []

    def resolve(operand: Operand) -> Operand:
        while isinstance(operand, Temp) and operand in alias:
            operand = alias[operand]
        return operand

    def vn(operand: Operand):
        operand = resolve(operand)
        if is_guest_loc(operand):
            return (operand, versions.get(operand, 0))
        return operand

    def clobber_memory() -> None:
        memory.clear()

    for op in trace.ops:
        op.srcs = tuple(resolve(s) for s in op.srcs)
        kind = op.kind
        if kind in PURE_KINDS and isinstance(op.dest, Temp):
            if kind is IROpKind.MOV:
                source = op.srcs[0]
                if isinstance(source, Temp):
                    alias[op.dest] = source
                    continue
                # A snapshot copy of a guest location (emitted by the
                # frontend before the location is redefined): it must
                # stay an op — substituting the location forward would
                # read the new value.  Value-number it so repeated
                # snapshots of the same version coalesce.
                key = (kind, None, (vn(source),), 0)
                hit = available.get(key)
                if hit is not None:
                    alias[op.dest] = hit
                    continue
                available[key] = op.dest
                out.append(op)
                continue
            key = (kind, op.aluop, tuple(vn(s) for s in op.srcs), op.imm)
            hit = available.get(key)
            if hit is not None:
                alias[op.dest] = hit
                continue
            available[key] = op.dest
            out.append(op)
            continue
        if kind is IROpKind.MOV and is_guest_loc(op.dest):
            versions[op.dest] = versions.get(op.dest, 0) + 1
            out.append(op)
            continue
        if kind is IROpKind.LD:
            if op.barrier or op.io_ok:
                clobber_memory()
                out.append(op)
                continue
            key = (vn(op.srcs[0]), op.disp, op.size)
            hit = memory.get(key)
            if hit is not None and isinstance(op.dest, Temp):
                alias[op.dest] = hit
                continue
            if isinstance(op.dest, Temp):
                memory[key] = op.dest
            out.append(op)
            continue
        if kind is IROpKind.ST:
            if op.barrier or op.io_ok:
                clobber_memory()
                out.append(op)
                continue
            base_vn = vn(op.srcs[0])
            # Invalidate everything that may alias; keep entries with the
            # same base whose ranges provably do not overlap.
            for key in list(memory):
                kbase, kdisp, ksize = key
                if kbase != base_vn or not (
                    kdisp + ksize <= op.disp or op.disp + op.size <= kdisp
                ):
                    del memory[key]
            if op.size == 4 and isinstance(op.srcs[1], Temp):
                # Forward only temp values: a guest-location value may
                # be redefined before the forwarded load.
                memory[(base_vn, op.disp, 4)] = op.srcs[1]
            out.append(op)
            continue
        if kind in (IROpKind.COMMIT, IROpKind.PORT_IN, IROpKind.PORT_OUT):
            clobber_memory()
            out.append(op)
            continue
        if op.is_exit:
            out.append(op)
            continue
        out.append(op)
    trace.ops[:] = out


# --------------------------------------------------------------------------
# Dead code (and dead flag) elimination
# --------------------------------------------------------------------------

_ALL_GUEST_LOCS = tuple(GuestReg(i) for i in range(8)) + tuple(
    GuestFlag(s) for s in range(6)
)


def _eliminate_dead_code(trace: TraceIR) -> None:
    live: set = set()
    kept_reversed: list[IROp] = []

    for op in reversed(trace.ops):
        kind = op.kind
        if op.is_exit or kind is IROpKind.COMMIT:
            live.update(_ALL_GUEST_LOCS)
            live.update(op.srcs)
            kept_reversed.append(op)
            continue
        if kind in PURE_KINDS:
            dests = op.writes()
            if not any(d in live for d in dests):
                continue  # dead computation (e.g. an unread flag recipe)
            for d in dests:
                live.discard(d)
            live.update(op.srcs)
            kept_reversed.append(op)
            continue
        # Side-effecting op: always kept; its dest may still be dead.
        for d in op.writes():
            live.discard(d)
        live.update(op.srcs)
        kept_reversed.append(op)

    kept_reversed.reverse()
    trace.ops[:] = kept_reversed
