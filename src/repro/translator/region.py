"""Region selection.

Paper §2: translation regions "may be fairly large and complex, contain
long traces, IF statements, and nested loops, and include up to 200 x86
instructions".  This reproduction selects *traces*: straight-line
instruction sequences that follow unconditional jumps and direct calls,
follow the profiled-likely direction of conditional branches (the other
direction becomes a side exit), and recognize the common case of a
backward branch to the region entry, which produces a loop region whose
translation iterates entirely inside the translation cache.

Regions stop at indirect control flow (the exit target is computed at
runtime), at interpreter-only system instructions, and at the
instruction-count cap.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.interp.profile import ExecutionProfile
from repro.isa.decoder import decode
from repro.isa.exceptions import GuestException
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Kind, Op
from repro.translator.policies import TranslationPolicy


class RegionEnd(enum.Enum):
    CONT = enum.auto()  # exit to the fall-through address
    BRANCH = enum.auto()  # exit to a direct branch target
    LOOP = enum.auto()  # back-edge to the region entry
    INDIRECT = enum.auto()  # final instruction computes the target


@dataclass
class Region:
    """A selected trace, ready for the frontend.

    ``block_bounds``/``block_entries`` describe superblock structure
    when the trace builder chained several selector blocks together:
    ``block_bounds[k]`` is the index into ``instrs`` where constituent
    block ``k`` starts and ``block_entries[k]`` its guest entry address.
    A plain single-block region leaves them empty (equivalent to
    ``[0]`` / ``[entry_eip]``).
    """

    entry_eip: int
    instrs: list[Instruction] = field(default_factory=list)
    follow_taken: dict[int, bool] = field(default_factory=dict)
    end: RegionEnd = RegionEnd.CONT
    end_target: int | None = None
    block_bounds: list[int] = field(default_factory=list)
    block_entries: list[int] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.instrs)

    @property
    def num_blocks(self) -> int:
        return max(1, len(self.block_entries))

    @property
    def addresses(self) -> set[int]:
        return {instr.addr for instr in self.instrs}

    def code_ranges(self) -> list[tuple[int, int]]:
        """Merged (start, length) byte ranges covering the region's code."""
        spans = sorted((i.addr, i.end) for i in self.instrs)
        merged: list[list[int]] = []
        for start, end in spans:
            if merged and start <= merged[-1][1]:
                merged[-1][1] = max(merged[-1][1], end)
            else:
                merged.append([start, end])
        return [(start, end - start) for start, end in merged]

    def describe(self) -> str:
        blocks = f" blocks={self.num_blocks}" if self.num_blocks > 1 else ""
        return (
            f"region@{self.entry_eip:#x} n={len(self.instrs)}{blocks} "
            f"end={self.end.name}"
            + (f"->{self.end_target:#x}" if self.end_target is not None else "")
        )


class RegionSelector:
    """Grows a trace from a hot entry address using the profile."""

    def __init__(self, fetcher, profile: ExecutionProfile) -> None:
        self._fetcher = fetcher
        self._profile = profile

    def select(self, entry_eip: int,
               policy: TranslationPolicy) -> Region | None:
        """Select a region starting at ``entry_eip``.

        Returns None when the entry instruction itself cannot be
        translated (undecodable or interpreter-only) — the dispatcher
        then leaves that address to the interpreter.
        """
        region = Region(entry_eip=entry_eip)
        addr = entry_eip
        seen: set[int] = set()
        limit = policy.max_instructions

        while len(region.instrs) < limit:
            if addr in policy.stop_addrs:
                # The adaptive controller pinned this instruction to the
                # interpreter (recurring genuine faults, §3.2).
                region.end = RegionEnd.CONT
                region.end_target = addr
                break
            if addr == entry_eip and region.instrs:
                # Control returned to the entry (by branch or by falling
                # through): a loop region with an internal back-edge.
                region.end = RegionEnd.LOOP
                region.end_target = entry_eip
                break
            if addr in seen:
                # A join inside the trace that is not the entry: end the
                # region with a direct exit to it (chaining will link a
                # separate translation there).
                region.end = RegionEnd.BRANCH
                region.end_target = addr
                break
            try:
                instr = decode(self._fetcher, addr)
            except GuestException:
                # Undecodable or unfetchable: leave it to the interpreter.
                region.end = RegionEnd.CONT
                region.end_target = addr
                break
            info = instr.info
            if info.interp_only:
                region.end = RegionEnd.CONT
                region.end_target = addr
                break
            seen.add(addr)
            region.instrs.append(instr)
            kind = info.kind

            if kind is Kind.BRANCH:  # direct jmp: follow it
                target = instr.branch_target
                if target == entry_eip:
                    region.end = RegionEnd.LOOP
                    region.end_target = entry_eip
                    break
                addr = target
                continue
            if kind is Kind.COND_BRANCH:
                taken = self._likely_taken(instr)
                region.follow_taken[instr.addr] = taken
                target = instr.branch_target if taken else instr.next_addr
                if target == entry_eip:
                    region.end = RegionEnd.LOOP
                    region.end_target = entry_eip
                    break
                addr = target
                continue
            if kind is Kind.CALL and instr.op is Op.CALL:
                # Follow direct calls (partial inlining into the trace).
                target = instr.branch_target
                if target == entry_eip:
                    region.end = RegionEnd.LOOP
                    region.end_target = entry_eip
                    break
                addr = target
                continue
            if kind in (Kind.INDIRECT, Kind.RET):
                region.end = RegionEnd.INDIRECT
                region.end_target = None
                break
            addr = instr.next_addr
        else:
            region.end = RegionEnd.CONT
            region.end_target = addr

        if not region.instrs:
            return None
        if region.end is RegionEnd.CONT and region.end_target is None:
            region.end_target = region.instrs[-1].next_addr
        return region

    def _likely_taken(self, instr: Instruction) -> bool:
        bias = self._profile.bias_for(instr.addr)
        if bias.total == 0:
            # Static heuristic: backward branches are loops, predict
            # taken; forward branches predict fall-through.
            return instr.branch_target <= instr.addr
        return bias.likely_taken()
