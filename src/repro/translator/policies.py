"""Translation policies: the dials of adaptive retranslation.

Paper §3: "For frequently recurring speculative faults, we retranslate
with more conservative policies that are likely to eliminate the sort of
fault encountered ... The new translation keeps track of the policies
used, so that if another problem arises requiring different conservative
policies, CMS will add them to the existing ones to avoid bouncing
between translations with incomparable policies."

A ``TranslationPolicy`` is therefore *monotone*: the adaptive controller
only ever tightens it (clears speculation bits, adds addresses to the
per-instruction conservative sets, shrinks the region).  ``merge``
implements the paper's add-don't-bounce rule.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class TranslationPolicy:
    """Immutable translation-time policy for one region."""

    # Global speculation dials (also forced off by experiment configs).
    reorder_memory: bool = True  # hoist loads over stores (§3.4/§3.5)
    use_alias_hw: bool = True  # hardware-checked reordering (§3.5)
    control_speculation: bool = True  # hoist loads over side exits (§3.2)

    # Region shaping.
    max_instructions: int = 200  # paper: regions of up to 200 instrs
    commit_interval: int = 24  # guest instrs between mid-trace commits
    max_blocks: int = 8  # superblock cap; 1 disables trace formation
    # Loop unrolling is an *earned* aggression: off at first translation
    # (cheap, low latency) and switched on by the dispatcher only for
    # loops that prove hot at runtime — the adaptive-retranslation story
    # of the paper applied upward instead of downward.
    unroll_loops: bool = False

    # Self-modifying-code strategies (§3.6).
    self_check: bool = False  # verify code bytes on every entry (§3.6.3)
    self_revalidate: bool = False  # prologue-on-demand checking (§3.6.2)
    group_enabled: bool = True  # keep retired versions around (§3.6.5)

    # Per-guest-instruction conservatism, accumulated by the controller.
    no_reorder_addrs: frozenset[int] = frozenset()  # never reorder these
    io_fence_addrs: frozenset[int] = frozenset()  # treat as MMIO, fence
    stylized_imm_addrs: frozenset[int] = frozenset()  # reload imm at runtime
    stop_addrs: frozenset[int] = frozenset()  # regions never include these
    # (an address that is both hot and in stop_addrs becomes the paper's
    # "zero-instruction translation that simply calls the interpreter")

    def merge(self, other: "TranslationPolicy") -> "TranslationPolicy":
        """Combine two policies, keeping the more conservative choice."""
        return TranslationPolicy(
            reorder_memory=self.reorder_memory and other.reorder_memory,
            use_alias_hw=self.use_alias_hw and other.use_alias_hw,
            control_speculation=(
                self.control_speculation and other.control_speculation
            ),
            max_instructions=min(self.max_instructions,
                                 other.max_instructions),
            commit_interval=min(self.commit_interval, other.commit_interval),
            max_blocks=min(self.max_blocks, other.max_blocks),
            # The one deliberately *upward* dial: once either side has
            # earned the unroll, it sticks (otherwise the base policy
            # would erase it on every controller merge).  Conservatism
            # still wins overall because ``max_blocks`` — min-merged —
            # gates whether the unroll can actually grow anything.
            unroll_loops=self.unroll_loops or other.unroll_loops,
            self_check=self.self_check or other.self_check,
            self_revalidate=self.self_revalidate or other.self_revalidate,
            group_enabled=self.group_enabled and other.group_enabled,
            no_reorder_addrs=self.no_reorder_addrs | other.no_reorder_addrs,
            io_fence_addrs=self.io_fence_addrs | other.io_fence_addrs,
            stylized_imm_addrs=(
                self.stylized_imm_addrs | other.stylized_imm_addrs
            ),
            stop_addrs=self.stop_addrs | other.stop_addrs,
        )

    def with_(self, **changes) -> "TranslationPolicy":
        """Return a copy with ``changes`` applied."""
        return replace(self, **changes)

    def describe(self) -> str:
        parts = []
        if not self.reorder_memory:
            parts.append("no-reorder")
        if not self.use_alias_hw:
            parts.append("no-alias-hw")
        if not self.control_speculation:
            parts.append("no-control-spec")
        if self.max_instructions != 200:
            parts.append(f"max={self.max_instructions}")
        if self.max_blocks != 8:
            parts.append(f"blocks={self.max_blocks}")
        if self.unroll_loops:
            parts.append("unroll")
        if self.self_check:
            parts.append("self-check")
        if self.self_revalidate:
            parts.append("self-revalidate")
        if self.no_reorder_addrs:
            parts.append(f"no-reorder@{len(self.no_reorder_addrs)}")
        if self.io_fence_addrs:
            parts.append(f"io-fence@{len(self.io_fence_addrs)}")
        if self.stylized_imm_addrs:
            parts.append(f"stylized@{len(self.stylized_imm_addrs)}")
        return ",".join(parts) if parts else "default"
