"""Port/latency cost model for the VLIW scheduler and trace growth.

The scheduler used to optimize raw molecule count.  This module gives
it (and the trace-growth heuristic) a shared machine model in the uiCA
idiom: per-atom-class tables — issue-port widths (the throughput side)
and result latencies (the dependence side) — plus a *completion time*
metric over a placed schedule.  Modeled cycles for a schedule are the
cycle in which the last result becomes available, not merely the number
of issue slots consumed, so a schedule that hides a load's three-cycle
latency under independent work is rewarded even when the molecule count
ties.

The tables mirror ``host.molecule`` (``SLOT_CLASSES`` / ``LATENCIES``):
two ALUs, one memory unit, one FP/media unit, one branch unit, at most
four atoms per molecule (§2).  They are defined once here and consumed
by ``translator.schedule``; keeping one source of truth is the point.

Trace-growth economics (§3.6.5-adjacent): extending a translation
across a biased branch saves a dispatcher round trip on the likely path
but costs a side-exit stub on the unlikely one.  ``extension_gain``
prices that trade in modeled cycles using the probability mass that
execution actually reaches the candidate block.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.host.atoms import AluOp
from repro.translator.ir import IROp, IROpKind

# Result latencies in cycles by IR kind (multiply is special-cased: it
# takes the FPM-latency path on the real part).
_LATENCIES: dict[IROpKind, int] = {
    IROpKind.LD: 3,
    IROpKind.DIVU: 10,
    IROpKind.DIVS: 10,
    IROpKind.PORT_IN: 4,
}
_LAT_DEFAULT = 1
_MUL_LATENCY = 3
_MUL_OPS = {AluOp.MUL, AluOp.UMULH, AluOp.SMULH}

# Issue ports and their per-cycle widths (throughput table).
_PORTS: dict[str, int] = {"alu": 2, "mem": 1, "fpm": 1, "br": 1}
_ISSUE_WIDTH = 4

# Which ports each IR kind can issue to, in preference order.  Moves
# fall back to the FP/media unit when both ALUs are busy, exactly as
# ``host.molecule.SLOT_CLASSES`` allows for MOV/MOVI atoms.
_PORT_PREFS: dict[IROpKind, tuple[str, ...]] = {
    IROpKind.LD: ("mem",),
    IROpKind.ST: ("mem",),
    IROpKind.PORT_IN: ("mem",),
    IROpKind.PORT_OUT: ("mem",),
    IROpKind.DIVU: ("fpm",),
    IROpKind.DIVS: ("fpm",),
    IROpKind.EXIT_IF: ("br",),
    IROpKind.EXIT: ("br",),
    IROpKind.EXIT_IND: ("br",),
    IROpKind.LOOP: ("br",),
    IROpKind.COMMIT: ("br",),
    IROpKind.MOVI: ("alu", "fpm"),
    IROpKind.MOV: ("alu", "fpm"),
    IROpKind.ALU: ("alu",),
    IROpKind.ALUI: ("alu",),
    IROpKind.SEL: ("alu",),
}


@dataclass(frozen=True)
class MachineCostModel:
    """Latency/throughput tables plus derived metrics.

    Frozen: a model is a pure table set, shared between the scheduler
    and the trace builder.  ``dispatch_cycles`` and ``side_exit_cycles``
    price the dispatcher round trip a trace extension avoids and the
    stub executed when a side exit fires (mirroring the accounting
    model's ``dispatch_lookup`` charge and the two-molecule exit stub).
    """

    latencies: dict[IROpKind, int] = field(default_factory=lambda:
                                           dict(_LATENCIES))
    default_latency: int = _LAT_DEFAULT
    mul_latency: int = _MUL_LATENCY
    ports: dict[str, int] = field(default_factory=lambda: dict(_PORTS))
    issue_width: int = _ISSUE_WIDTH
    dispatch_cycles: int = 14
    side_exit_cycles: int = 4

    def latency(self, op: IROp) -> int:
        if op.kind in (IROpKind.ALU, IROpKind.ALUI) and op.aluop in _MUL_OPS:
            return self.mul_latency
        return self.latencies.get(op.kind, self.default_latency)

    def port_preferences(self, kind: IROpKind) -> tuple[str, ...]:
        try:
            return _PORT_PREFS[kind]
        except KeyError:
            raise AssertionError(f"unslottable kind {kind}") from None

    def completion_cycles(self, cycles: list[list[IROp]]) -> int:
        """Modeled cycles: when the last scheduled result is available.

        ``max(issue_cycle + latency)`` over every placed op.  For serial
        code this is strictly monotone in molecule count; for parallel
        code it rewards packing *and* latency hiding.  Deterministic by
        construction — a pure fold over the placement.
        """
        modeled = 0
        for index, molecule in enumerate(cycles):
            for op in molecule:
                done = index + self.latency(op)
                if done > modeled:
                    modeled = done
        return modeled

    def extension_gain(self, reach: float) -> float:
        """Expected modeled-cycle gain of growing a trace by one block.

        ``reach`` is the probability that execution entering the trace
        reaches the candidate block (the product of the followed-
        direction probabilities of every conditional branch before it).
        The likely path saves a dispatcher round trip; the unlikely
        paths pay a side-exit stub they would not otherwise execute.
        """
        return reach * self.dispatch_cycles - (1.0 - reach) \
            * self.side_exit_cycles


DEFAULT_COST_MODEL = MachineCostModel()
