"""Profile-driven superblock/trace formation.

The region selector (``translator.region``) grows a single block: it
follows unconditional jumps, direct calls, and the profiled-likely arm
of conditional branches, but stops at joins (an address it already
visited) and at the instruction cap.  The trace builder chains several
such blocks into one extended translation region — a superblock: single
entry, multiple guarded side exits — when the profile says execution
overwhelmingly falls through the seam.

Two growth shapes, both priced by ``translator.costmodel``:

* **Seam chaining** — only ``BRANCH``/``CONT`` region ends are seams
  (an ``INDIRECT`` end has no static successor); the candidate block
  must not overlap the trace, and ``reach`` — the probability that
  execution entering the trace is still on-trace at the seam, the
  product of the followed-direction probabilities of every conditional
  branch so far — must clear the configured floor *and* the cost
  model's expected-gain test (dispatch-cycles saved on the likely path
  vs. side-exit stub cycles on the unlikely ones).  A chained block
  that ends with a back-edge to its own entry is rewritten into a
  direct exit to that entry: chaining links the loop translation there.
* **Loop unrolling** — a region that ends with a back-edge to its own
  entry (``LOOP``) grows by tail duplication along that back edge:
  extra copies of the body are peeled into the trace, the loop-exit
  branch of each copy becomes an ordinary guarded side exit, and the
  final copy keeps the back edge, so the unrolled loop still iterates
  entirely inside the translation cache.  Reach decays by the
  whole-body survival probability per copy, so hot counted loops
  unroll deep while short or unbiased loops stay single.  The
  translator accepts an unroll only when the scheduler's cost model
  reports strictly fewer modeled cycles per guest instruction than the
  single body — cross-iteration overlap has to pay for itself.

Duplicated guest addresses are sound throughout the pipeline: follow
decisions are keyed by address and identical for every copy, the
self-check snapshot maps each address to one offset (``code_ranges``
merges duplicate spans), and SMC protection invalidates the whole
translation whichever copy's bytes are written.

Side exits reuse the ordinary guarded-exit machinery: a mispredicted
branch rolls back to the last commit and re-enters the dispatcher, so
bit-identity with the interpreter is preserved by construction.  The
dispatcher counts early side exits per trace and asks the adaptive
controller to split storming traces back toward single blocks
(§3.6.5-style demotion) — see ``cms.system``.
"""

from __future__ import annotations

from repro.interp.profile import ExecutionProfile
from repro.translator.costmodel import DEFAULT_COST_MODEL, MachineCostModel
from repro.translator.policies import TranslationPolicy
from repro.translator.region import Region, RegionEnd, RegionSelector

# Followed-direction confidence assumed for a branch the profile has
# never seen (the selector's static heuristic picked the arm): low
# enough that unprofiled chains stop growing after a couple of seams.
_STATIC_CONFIDENCE = 0.6


class TraceBuilder:
    """Chains profile-selected blocks into superblock regions."""

    def __init__(self, selector: RegionSelector, profile: ExecutionProfile,
                 min_reach: float = 0.35,
                 model: MachineCostModel | None = None) -> None:
        self._selector = selector
        self._profile = profile
        self._min_reach = min_reach
        self._model = model if model is not None else DEFAULT_COST_MODEL

    def build(self, entry_eip: int,
              policy: TranslationPolicy) -> Region | None:
        region = self._selector.select(entry_eip, policy)
        if region is None:
            return None
        region.block_bounds = [0]
        region.block_entries = [entry_eip]
        if policy.max_blocks <= 1:
            return region
        if region.end is RegionEnd.LOOP and region.end_target == entry_eip:
            # Unrolling is gated on runtime-proven hotness (the
            # dispatcher escalates ``unroll_loops``), so cold loops get
            # the cheap single-body translation.
            if policy.unroll_loops:
                self._unroll(region, policy)
            return region

        addresses = region.addresses
        reach = self._block_reach(region.follow_taken)

        while len(region.block_entries) < policy.max_blocks:
            if region.end not in (RegionEnd.BRANCH, RegionEnd.CONT):
                break
            target = region.end_target
            if target is None or target in addresses:
                # A seam back into the trace itself would need tail
                # duplication; leave it to chaining instead.
                break
            budget = policy.max_instructions - len(region.instrs)
            if budget < 1:
                break
            if reach < self._min_reach:
                break
            if self._model.extension_gain(reach) <= 0:
                break
            block = self._selector.select(
                target, policy.with_(max_instructions=budget))
            if block is None:
                break
            block_addresses = block.addresses
            if block_addresses & addresses:
                break

            region.block_bounds.append(len(region.instrs))
            region.block_entries.append(target)
            region.instrs.extend(block.instrs)
            region.follow_taken.update(block.follow_taken)
            addresses |= block_addresses

            if block.end is RegionEnd.LOOP:
                # The chained block loops back to its own entry, which
                # is mid-trace here and cannot be a back-edge target;
                # exit to it and let chaining link the loop translation.
                region.end = RegionEnd.BRANCH
                region.end_target = target
                break
            region.end = block.end
            region.end_target = block.end_target
            reach *= self._block_reach(block.follow_taken)

        return region

    def _unroll(self, region: Region, policy: TranslationPolicy) -> None:
        """Peel extra copies of a loop body into the trace.

        Tail duplication along the back edge: every copy's loop-exit
        branch is already a guarded side exit (the frontend lowers the
        not-followed direction of each conditional to ``EXIT_IF``), and
        the back-edge branch of every copy but the last simply falls
        through to the next copy in trace order.  ``follow_taken`` needs
        no update — the copies repeat addresses with identical followed
        directions.  The region keeps its ``LOOP`` end, so the unrolled
        translation still iterates in-cache.

        ``body_reach`` is the probability one iteration survives all of
        its side exits *including* the back edge staying taken, so the
        probability of reaching copy ``k`` is ``body_reach ** (k - 1)``;
        growth stops when that falls under the reach floor.  Whether the
        unroll actually schedules denser is judged afterwards by the
        translator against the cost model.
        """
        body = list(region.instrs)
        body_reach = self._block_reach(region.follow_taken)
        reach = body_reach
        while len(region.block_entries) < policy.max_blocks:
            if len(region.instrs) + len(body) > policy.max_instructions:
                break
            if reach < self._min_reach:
                break
            region.block_bounds.append(len(region.instrs))
            region.block_entries.append(region.entry_eip)
            region.instrs.extend(body)
            reach *= body_reach

    def _block_reach(self, follow_taken: dict[int, bool]) -> float:
        """Probability of surviving every side exit in one block."""
        reach = 1.0
        for addr, taken in follow_taken.items():
            bias = self._profile.bias_for(addr)
            if bias.total == 0:
                reach *= _STATIC_CONFIDENCE
                continue
            fraction = bias.taken_fraction
            reach *= fraction if taken else 1.0 - fraction
        return reach
