"""Translator orchestrator: the full pipeline for one region.

Decode/select -> lower -> optimize -> schedule -> generate, with the
fallback ladder the paper implies: if code generation fails (e.g. the
temp pool is exhausted on a pathological trace), retry with CSE off and
then with progressively smaller regions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.tcache import Translation, compute_range_digests
from repro.interp.profile import ExecutionProfile
from repro.translator.codegen import CodegenError, CodeGenerator
from repro.translator.frontend import Frontend, FrontendError
from repro.translator.optimize import optimize
from repro.translator.policies import TranslationPolicy
from repro.translator.region import Region, RegionEnd, RegionSelector
from repro.translator.schedule import Scheduler
from repro.translator.traces import TraceBuilder


class TranslationError(Exception):
    """The region could not be translated at any fallback level."""


@dataclass
class TranslatorStats:
    translations: int = 0
    guest_instructions: int = 0
    molecules_emitted: int = 0
    modeled_cycles: int = 0
    fallback_retries: int = 0
    speculated_loads: int = 0
    hoisted_over_exits: int = 0
    traces_formed: int = 0  # translations spanning > 1 block
    trace_blocks: int = 0  # blocks chained into those traces


class Translator:
    """Builds translations from hot guest code."""

    def __init__(self, machine, profile: ExecutionProfile,
                 alias_entries: int = 8,
                 trace_min_reach: float = 0.35) -> None:
        self.machine = machine
        self.profile = profile
        self.alias_entries = alias_entries
        self.trace_min_reach = trace_min_reach
        self.stats = TranslatorStats()

    def translate(self, entry_eip: int, policy: TranslationPolicy,
                  unroll_baseline: Translation | None = None
                  ) -> Translation | None:
        """Translate the region at ``entry_eip``; None if untranslatable.

        ``unroll_baseline`` is the resident single-block translation of
        the same region, when the caller has one (the hot-loop promotion
        path always does): the unroll judge then compares against its
        codegen numbers directly instead of re-running the pipeline on a
        freshly built single body, halving the real cost of a promotion.
        """
        selector = RegionSelector(self.machine, self.profile)
        builder = TraceBuilder(selector, self.profile,
                               min_reach=self.trace_min_reach)
        attempt_policy = policy
        for attempt in range(6):
            region = builder.build(entry_eip, attempt_policy)
            if region is None:
                return None
            effective = self._learn_mmio(region, attempt_policy)
            try:
                translation = self._pipeline(region, effective,
                                             enable_cse=attempt == 0)
            except (CodegenError, FrontendError):
                self.stats.fallback_retries += 1
                attempt_policy = attempt_policy.with_(
                    max_instructions=max(
                        8, attempt_policy.max_instructions // 2),
                    max_blocks=max(1, attempt_policy.max_blocks // 2),
                )
                continue
            if region.num_blocks > 1 and region.end is RegionEnd.LOOP:
                translation = self._judge_unroll(
                    builder, entry_eip, attempt_policy, effective,
                    translation, enable_cse=attempt == 0,
                    baseline=unroll_baseline)
            self.stats.translations += 1
            self.stats.guest_instructions += translation.guest_instr_count
            self.stats.molecules_emitted += translation.num_molecules
            self.stats.modeled_cycles += translation.modeled_cycles
            if translation.trace_blocks > 1:
                self.stats.traces_formed += 1
                self.stats.trace_blocks += translation.trace_blocks
            return translation
        raise TranslationError(f"cannot translate region at {entry_eip:#x}")

    def _judge_unroll(self, builder: TraceBuilder, entry_eip: int,
                      policy: TranslationPolicy,
                      effective: TranslationPolicy,
                      unrolled: Translation,
                      enable_cse: bool,
                      baseline: Translation | None = None) -> Translation:
        """Keep an unrolled loop trace only if it schedules denser.

        The cost model is the arbiter of region growth: the unroll is
        accepted when its *molecules per guest instruction* are strictly
        lower than the single body's — i.e. the scheduler packed enough
        work across the peeled iterations to pay for the per-copy side
        exits and mid-trace commits.  Modeled cycles alone are not
        enough: a serial dependence chain unrolls with better latency
        hiding but an identical (or worse) molecule count, and molecule
        count is what drives both the paper's mol/instr metric and
        execution time here.  If the
        unroll loses, the single-body translation (already built as the
        comparison baseline) is returned instead.  If the single body
        cannot be rebuilt (it just translated as part of the unroll, so
        it should), the unroll stands.

        Both sides go through the full pipeline so the comparison is
        codegen-to-codegen: generated molecule counts include the
        prologue/epilogue molecules scheduler cycle counts miss, and
        comparing across the two layers would bias the test against
        whichever side paid codegen's fixed overhead.

        A resident single-block ``baseline`` (the translation being
        promoted) already carries those codegen numbers, so when one is
        supplied and the unroll wins against it the single pipeline run
        is skipped entirely; a rejected unroll still rebuilds the single
        body fresh (the caller is replacing the resident either way).
        """
        if (baseline is not None and baseline.trace_blocks == 1
                and unrolled.num_molecules * baseline.guest_instr_count
                < baseline.num_molecules * unrolled.guest_instr_count):
            return unrolled
        single = builder.build(entry_eip, policy.with_(max_blocks=1))
        if single is None:
            return unrolled
        base_policy = effective.with_(max_blocks=1)
        try:
            single_t = self._pipeline(single, base_policy,
                                      enable_cse=enable_cse)
        except (CodegenError, FrontendError):
            return unrolled
        # Cross-multiplied per-instruction comparison, no float rounding.
        if (unrolled.num_molecules * single_t.guest_instr_count
                < single_t.num_molecules * unrolled.guest_instr_count):
            return unrolled
        return single_t

    def _learn_mmio(self, region: Region,
                    policy: TranslationPolicy) -> TranslationPolicy:
        """Pre-fence instructions the profile observed touching MMIO.

        Paper §2: the interpreter collects memory-mapped I/O data, so
        most MMIO sites are known before the first translation and never
        need to take a speculation fault at all.
        """
        known = {
            instr.addr
            for instr in region.instrs
            if self.profile.is_mmio_site(instr.addr)
        }
        if not known:
            return policy
        return policy.with_(io_fence_addrs=policy.io_fence_addrs
                            | frozenset(known))

    def _pipeline(self, region: Region, policy: TranslationPolicy,
                  enable_cse: bool) -> Translation:
        trace = Frontend(policy).lower(region)
        optimize(trace, enable_cse=enable_cse)
        schedule = Scheduler(policy, self.alias_entries).schedule(trace)
        self.stats.speculated_loads += schedule.speculated_loads
        self.stats.hoisted_over_exits += schedule.hoisted_over_exits
        snapshot = self._snapshot(region)
        translation = CodeGenerator(policy).generate(region, trace, schedule,
                                                     snapshot)
        # Digest capture at translation time: the persistent-snapshot
        # loader revalidates these against guest RAM (§3.6.2 across runs).
        translation.range_digests = compute_range_digests(
            translation.code_ranges, translation.code_snapshot)
        return translation

    def _snapshot(self, region: Region) -> bytes:
        chunks = []
        for start, length in region.code_ranges():
            chunks.append(self.machine.bus.read_code_bytes(start, length))
        return b"".join(chunks)
