"""Translator orchestrator: the full pipeline for one region.

Decode/select -> lower -> optimize -> schedule -> generate, with the
fallback ladder the paper implies: if code generation fails (e.g. the
temp pool is exhausted on a pathological trace), retry with CSE off and
then with progressively smaller regions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.tcache import Translation, compute_range_digests
from repro.interp.profile import ExecutionProfile
from repro.translator.codegen import CodegenError, CodeGenerator
from repro.translator.frontend import Frontend, FrontendError
from repro.translator.optimize import optimize
from repro.translator.policies import TranslationPolicy
from repro.translator.region import Region, RegionSelector
from repro.translator.schedule import Scheduler


class TranslationError(Exception):
    """The region could not be translated at any fallback level."""


@dataclass
class TranslatorStats:
    translations: int = 0
    guest_instructions: int = 0
    molecules_emitted: int = 0
    fallback_retries: int = 0
    speculated_loads: int = 0
    hoisted_over_exits: int = 0


class Translator:
    """Builds translations from hot guest code."""

    def __init__(self, machine, profile: ExecutionProfile,
                 alias_entries: int = 8) -> None:
        self.machine = machine
        self.profile = profile
        self.alias_entries = alias_entries
        self.stats = TranslatorStats()

    def translate(self, entry_eip: int,
                  policy: TranslationPolicy) -> Translation | None:
        """Translate the region at ``entry_eip``; None if untranslatable."""
        selector = RegionSelector(self.machine, self.profile)
        attempt_policy = policy
        for attempt in range(6):
            region = selector.select(entry_eip, attempt_policy)
            if region is None:
                return None
            effective = self._learn_mmio(region, attempt_policy)
            try:
                translation = self._pipeline(region, effective,
                                             enable_cse=attempt == 0)
            except (CodegenError, FrontendError):
                self.stats.fallback_retries += 1
                attempt_policy = attempt_policy.with_(
                    max_instructions=max(
                        8, attempt_policy.max_instructions // 2)
                )
                continue
            self.stats.translations += 1
            self.stats.guest_instructions += translation.guest_instr_count
            self.stats.molecules_emitted += translation.num_molecules
            return translation
        raise TranslationError(f"cannot translate region at {entry_eip:#x}")

    def _learn_mmio(self, region: Region,
                    policy: TranslationPolicy) -> TranslationPolicy:
        """Pre-fence instructions the profile observed touching MMIO.

        Paper §2: the interpreter collects memory-mapped I/O data, so
        most MMIO sites are known before the first translation and never
        need to take a speculation fault at all.
        """
        known = {
            instr.addr
            for instr in region.instrs
            if self.profile.is_mmio_site(instr.addr)
        }
        if not known:
            return policy
        return policy.with_(io_fence_addrs=policy.io_fence_addrs
                            | frozenset(known))

    def _pipeline(self, region: Region, policy: TranslationPolicy,
                  enable_cse: bool) -> Translation:
        trace = Frontend(policy).lower(region)
        optimize(trace, enable_cse=enable_cse)
        schedule = Scheduler(policy, self.alias_entries).schedule(trace)
        self.stats.speculated_loads += schedule.speculated_loads
        self.stats.hoisted_over_exits += schedule.hoisted_over_exits
        snapshot = self._snapshot(region)
        translation = CodeGenerator(policy).generate(region, trace, schedule,
                                                     snapshot)
        # Digest capture at translation time: the persistent-snapshot
        # loader revalidates these against guest RAM (§3.6.2 across runs).
        translation.range_digests = compute_range_digests(
            translation.code_ranges, translation.code_snapshot)
        return translation

    def _snapshot(self, region: Region) -> bytes:
        chunks = []
        for start, length in region.code_ranges():
            chunks.append(self.machine.bus.read_code_bytes(start, length))
        return b"".join(chunks)
