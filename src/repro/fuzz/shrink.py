"""Delta-debugging shrinker for mismatching fuzz programs.

Classic ddmin (Zeller & Hildebrandt) over the program's body blocks:
try removing ever-finer-grained chunks, keeping any reduction that
still reproduces the mismatch, until no single block can be removed.
A final pass shrinks the loop iteration count.  The result is the
small, human-readable reproducer that gets frozen into
``tests/corpus/``.
"""

from __future__ import annotations

from typing import Callable

from repro.fuzz.genprog import FuzzProgram

IsFailing = Callable[[FuzzProgram], bool]


def _ddmin(program: FuzzProgram, is_failing: IsFailing) -> FuzzProgram:
    blocks = list(program.body_blocks)
    granularity = 2
    while len(blocks) >= 2:
        chunk = max(1, len(blocks) // granularity)
        reduced = False
        start = 0
        while start < len(blocks):
            candidate = blocks[:start] + blocks[start + chunk:]
            if candidate and is_failing(program.with_body(candidate)):
                blocks = candidate
                granularity = max(granularity - 1, 2)
                reduced = True
                start = 0
            else:
                start += chunk
        if not reduced:
            if chunk == 1:
                break
            granularity = min(granularity * 2, len(blocks))
    return program.with_body(blocks)


def _shrink_iterations(program: FuzzProgram,
                       is_failing: IsFailing) -> FuzzProgram:
    for iterations in (1, 2, 4, 8):
        if iterations >= program.iterations:
            break
        candidate = program.with_body(program.body_blocks, iterations)
        if is_failing(candidate):
            return candidate
    return program


def shrink_program(program: FuzzProgram, is_failing: IsFailing,
                   max_rounds: int = 4) -> FuzzProgram:
    """Minimize ``program`` while ``is_failing`` stays true.

    ``is_failing`` must return True for ``program`` itself; the returned
    program is 1-minimal over body blocks (no single block can be
    dropped) with the smallest failing iteration count from a
    log-spaced probe.
    """
    if not is_failing(program):
        raise ValueError("shrink_program needs a failing program")
    current = program
    for _ in range(max_rounds):
        candidate = _shrink_iterations(_ddmin(current, is_failing),
                                       is_failing)
        if candidate.body_blocks == current.body_blocks and \
                candidate.iterations == current.iterations:
            break
        current = candidate
    return current
