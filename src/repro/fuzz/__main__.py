"""``python -m repro.fuzz`` — same entry point as ``repro-fuzz``."""

import sys

from repro.tools.cli import fuzz_main

if __name__ == "__main__":
    sys.exit(fuzz_main())
