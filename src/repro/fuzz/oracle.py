"""Differential oracle: interpreter vs CMS across a matrix of dials.

The reference semantics is the pure interpreter
(``CMSConfig.interpreter_only``), which executes one guest instruction
at a time with no speculation and therefore *is* the sequential x86 the
paper's correctness story appeals to.  Each generated program runs once
under the reference, then once per dial variant under full CMS; any
difference in final architectural state — registers, eip, flags,
console output, guest RAM, or delivered fault counts — is a mismatch.

For injected (asynchronous) runs the stack scratch region is excluded
from the RAM comparison: interrupt *delivery points* are not
architecturally pinned, so the dead frames below the stack top may
legitimately differ while everything the program actually computed must
still agree (the guest converges on an interrupt counter before
halting, see ``genprog``).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.cms.config import CMSConfig
from repro.cms.system import CodeMorphingSystem
from repro.fuzz.genprog import FuzzProgram, generate
from repro.fuzz.inject import FaultInjector
from repro.isa.registers import REG_NAMES
from repro.machine import Machine
from repro.state import FLAG_SLOTS

# Every variant translates eagerly so short fuzz programs actually
# exercise the translated paths, and re-faults adapt quickly.
_BASE = CMSConfig(translation_threshold=4, fault_threshold=2)


@dataclass(frozen=True)
class DialVariant:
    """One named point in the CMSConfig dial space.

    ``snapshot_roundtrip`` runs the program twice — a cold run that
    saves a warm-start snapshot, then a warm run that reloads it — and
    differentially checks the *warm* outcome, so the persistence layer
    (PR 5) sits inside the fuzzing oracle.
    """

    name: str
    config: CMSConfig
    snapshot_roundtrip: bool = False


def default_matrix() -> tuple[DialVariant, ...]:
    """The dial matrix every program is checked against."""
    return (
        DialVariant("full", _BASE),
        DialVariant("no-reorder", replace(_BASE, reorder_memory=False,
                                          control_speculation=False)),
        DialVariant("no-alias-hw", replace(_BASE, use_alias_hw=False)),
        DialVariant("no-fine-grain",
                    replace(_BASE, fine_grain_protection=False)),
        DialVariant("forced-self-check",
                    replace(_BASE, force_self_check=True)),
        DialVariant("tiny-regions",
                    replace(_BASE, max_region_instructions=6,
                            commit_interval=4, store_buffer_capacity=8,
                            alias_entries=2)),
        DialVariant("no-groups-no-reval",
                    replace(_BASE, translation_groups=False,
                            self_revalidation=False, stylized_smc=False)),
        DialVariant("seed-paths", _BASE.seed_performance()),
        # Template JIT (PR 6): _BASE runs with the JIT on, so every
        # variant above already differentially checks JIT-generated code
        # against the interpreter; this variant pins the simulated-VLIW
        # path on the same programs, closing the three-way
        # JIT / VLIW / interpreter comparison.
        DialVariant("no-template-jit", replace(_BASE, template_jit=False)),
        # Every campaign also exercises the conservative rungs of the
        # degradation ladder: regions start (and stay) at NO_REORDER, so
        # the clamped-policy translation paths are differentially
        # checked even when no storm occurs.
        DialVariant("degraded-ladder",
                    replace(_BASE, degrade_tier_floor=2,
                            ladder_promote_clean=8)),
        # Persistence (PR 5): cold run saves, warm run reloads and
        # revalidates; the warm run must still match the interpreter.
        DialVariant("snapshot-roundtrip", _BASE,
                    snapshot_roundtrip=True),
        # Superblock traces (PR 7): _BASE runs with trace formation on
        # at production thresholds; these two pin the extremes.
        # ``no-traces`` is the single-block control, ``deep-traces``
        # forces promotion almost immediately, unrolls deep past the
        # reach floor, and splits aggressively — the most duplicated
        # addresses, guarded side exits, and retranslation churn per
        # program the dials can produce.
        DialVariant("no-traces", replace(_BASE, trace_formation=False)),
        DialVariant("deep-traces",
                    replace(_BASE, trace_hot_molecules=16,
                            trace_max_blocks=8, trace_min_reach=0.05,
                            trace_mispredict_threshold=4)),
    )


def chaos_matrix(variants: tuple[DialVariant, ...], rate: float,
                 seed: int) -> tuple[DialVariant, ...]:
    """Arm every variant with chaos injection at ``rate``.

    The reference engine stays chaos-free (it never translates), so a
    chaos campaign checks the full containment contract: injected
    internal translator failures must never change architectural
    outcomes — only make the run slower.
    """
    return tuple(
        replace(
            variant,
            name=f"{variant.name}+chaos",
            config=replace(variant.config, chaos_rate=rate,
                           chaos_seed=seed * 7_919 + index),
        )
        for index, variant in enumerate(variants)
    )


def variant_by_name(name: str) -> DialVariant:
    for variant in default_matrix():
        if variant.name == name:
            return variant
    raise KeyError(f"unknown dial variant {name!r}; "
                   f"known: {[v.name for v in default_matrix()]}")


@dataclass
class RunOutcome:
    """Architectural outcome of one engine running one program."""

    halted: bool
    console: str
    regs: tuple[int, ...]
    eip: int
    flags: tuple[int, ...]
    ram: bytes
    exceptions: int
    interrupts: int
    guest_instructions: int


def execute(program: FuzzProgram, config: CMSConfig,
            max_instructions: int = 400_000,
            cms_factory=None) -> RunOutcome:
    """Run one program to completion under one configuration.

    ``cms_factory``, when given, is called with the freshly built
    ``CodeMorphingSystem`` before the run starts — the hook the
    broken-dial tests use to sabotage one engine.
    """
    machine = Machine()
    entry = machine.load_source(program.source)
    system = CodeMorphingSystem(machine, config)
    if cms_factory is not None:
        cms_factory(system)
    if program.plan is not None:
        FaultInjector(machine, program.plan)
    result = system.run(entry, max_instructions=max_instructions)
    system.shutdown()  # persists the warm-start snapshot when configured
    regs, eip, flags = system.state.snapshot()
    ram = bytearray(machine.ram.read_bytes(0, machine.ram.size))
    for start, end in program.ram_masks():
        ram[start:end] = b"\x00" * (end - start)
    return RunOutcome(
        halted=result.halted,
        console=result.console_output,
        regs=regs,
        eip=eip,
        flags=flags,
        ram=bytes(ram),
        exceptions=system.interpreter.exceptions_delivered,
        interrupts=system.interpreter.interrupts_delivered,
        guest_instructions=result.guest_instructions,
    )


def execute_roundtrip(program: FuzzProgram, config: CMSConfig,
                      max_instructions: int = 400_000,
                      cms_factory=None) -> RunOutcome:
    """Run cold (saving a snapshot), then warm (reloading it).

    The warm run starts from a fresh machine, so every persisted
    translation is revalidated against the pristine program image —
    translations the cold run made *after* SMC or DMA rewrote code
    bytes must be dropped at load, never trusted.  The returned warm
    outcome is what the differential harness compares.
    """
    import os
    import tempfile

    handle, path = tempfile.mkstemp(suffix=".cms-snapshot.json")
    os.close(handle)
    os.unlink(path)  # let the cold run's save create it
    try:
        execute(program,
                replace(config, snapshot_path=path, snapshot_save=True),
                max_instructions, cms_factory)
        return execute(program,
                       replace(config, snapshot_path=path,
                               snapshot_save=False),
                       max_instructions, cms_factory)
    finally:
        if os.path.exists(path):
            os.unlink(path)


def compare(ref: RunOutcome, cms: RunOutcome) -> list[str]:
    """All architectural differences between two outcomes."""
    diffs: list[str] = []
    if ref.halted != cms.halted:
        diffs.append(f"halted: ref={ref.halted} cms={cms.halted}")
    if ref.console != cms.console:
        diffs.append(f"console: ref={ref.console!r} cms={cms.console!r}")
    for i, name in enumerate(REG_NAMES):
        if ref.regs[i] != cms.regs[i]:
            diffs.append(f"{name}: ref={ref.regs[i]:#010x} "
                         f"cms={cms.regs[i]:#010x}")
    if ref.eip != cms.eip:
        diffs.append(f"eip: ref={ref.eip:#010x} cms={cms.eip:#010x}")
    for i, name in enumerate(FLAG_SLOTS):
        if ref.flags[i] != cms.flags[i]:
            diffs.append(f"flag {name}: ref={ref.flags[i]} "
                         f"cms={cms.flags[i]}")
    if ref.exceptions != cms.exceptions:
        diffs.append(f"exceptions_delivered: ref={ref.exceptions} "
                     f"cms={cms.exceptions}")
    if ref.interrupts != cms.interrupts:
        diffs.append(f"interrupts_delivered: ref={ref.interrupts} "
                     f"cms={cms.interrupts}")
    if ref.ram != cms.ram:
        first = [i for i in range(len(ref.ram))
                 if ref.ram[i] != cms.ram[i]][:8]
        diffs.append(f"ram: first diffs at {[hex(a) for a in first]}")
    return diffs


@dataclass
class Mismatch:
    """One confirmed differential failure."""

    program: FuzzProgram
    variant: DialVariant
    diffs: list[str]

    def describe(self) -> str:
        lines = [f"seed {self.program.seed} x variant {self.variant.name} "
                 f"({len(self.diffs)} diffs):"]
        lines += [f"  {d}" for d in self.diffs]
        return "\n".join(lines)


def run_differential(program: FuzzProgram,
                     variants: tuple[DialVariant, ...] | None = None,
                     max_instructions: int = 400_000,
                     cms_factory=None) -> list[Mismatch]:
    """Check one program against the reference across ``variants``."""
    variants = variants or default_matrix()
    ref = execute(program, _BASE.interpreter_only(), max_instructions)
    if not ref.halted:
        # The reference itself ran out of budget — the program is not a
        # valid differential subject (should not happen: generated
        # programs are bounded loops).
        return []
    mismatches = []
    for variant in variants:
        runner = execute_roundtrip if variant.snapshot_roundtrip \
            else execute
        cms = runner(program, variant.config, max_instructions,
                     cms_factory=cms_factory)
        diffs = compare(ref, cms)
        if diffs:
            mismatches.append(Mismatch(program, variant, diffs))
    return mismatches


@dataclass
class CampaignResult:
    """Aggregate outcome of one fuzzing campaign."""

    programs: int = 0
    trials: int = 0
    injected_programs: int = 0
    mismatches: list[Mismatch] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches


def run_campaign(budget: int, seed: int,
                 variants: tuple[DialVariant, ...] | None = None,
                 inject_every: int = 4,
                 max_instructions: int = 400_000,
                 cms_factory=None,
                 on_program=None,
                 stop_on_mismatch: bool = True) -> CampaignResult:
    """Run differential trials until ``budget`` (program, variant)
    comparisons have been spent.

    Every ``inject_every``-th program carries an injection plan; program
    seeds are derived from ``seed`` so a campaign is reproducible from
    its command line alone.
    """
    variants = variants or default_matrix()
    result = CampaignResult()
    index = 0
    while result.trials < budget:
        inject = inject_every > 0 and index % inject_every == inject_every - 1
        program = generate(seed * 1_000_003 + index, inject=inject)
        index += 1
        result.programs += 1
        if inject:
            result.injected_programs += 1
        if on_program is not None:
            on_program(program)
        remaining = budget - result.trials
        subset = variants[:remaining]
        result.trials += len(subset)
        found = run_differential(program, subset, max_instructions,
                                 cms_factory=cms_factory)
        result.mismatches.extend(found)
        if found and stop_on_mismatch:
            break
    return result
