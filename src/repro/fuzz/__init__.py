"""Differential fuzzing and fault injection for interpreter↔CMS
equivalence (ISSUE 2).

``genprog`` generates constrained random guest programs, ``oracle``
diffs their outcome between the pure interpreter and full CMS across a
matrix of configuration dials, ``inject`` adds deterministic
asynchronous interrupts and DMA, ``shrink`` minimizes failures, and
``corpus`` freezes them as permanent regression seeds.
"""

from repro.fuzz.corpus import (CorpusEntry, entry_from_program, load_corpus,
                               parse_entry, write_entry)
from repro.fuzz.genprog import FuzzProgram, generate
from repro.fuzz.inject import FaultInjector, InjectionEvent, InjectionPlan
from repro.fuzz.oracle import (CampaignResult, DialVariant, Mismatch,
                               chaos_matrix, compare, default_matrix,
                               execute, run_campaign, run_differential,
                               variant_by_name)
from repro.fuzz.shrink import shrink_program

__all__ = [
    "CampaignResult",
    "CorpusEntry",
    "DialVariant",
    "FaultInjector",
    "FuzzProgram",
    "InjectionEvent",
    "InjectionPlan",
    "Mismatch",
    "chaos_matrix",
    "compare",
    "default_matrix",
    "entry_from_program",
    "execute",
    "generate",
    "load_corpus",
    "parse_entry",
    "run_campaign",
    "run_differential",
    "shrink_program",
    "variant_by_name",
    "write_entry",
]
