"""Fault injection: asynchronous events on a deterministic schedule.

The differential oracle compares a program's architectural outcome under
two execution engines, so injected asynchrony must be *reproducible*:
both engines have to observe the same interrupts and DMA traffic at the
same points in device time.  Device time in this reproduction is the
retired-instruction count (``Machine.tick``), which advances identically
for the same architectural instruction stream — exactly like the timer
device, whose interrupts the existing stress tests already prove
deliverable on either engine.

``FaultInjector`` is therefore just another ticker: it carries a sorted
schedule of events and fires each one when the machine's device clock
passes its timestamp.  Under CMS the resulting interrupts land at
whatever molecule boundary the host notices them, forcing rollback to
the last commit and precise redelivery through the interpreter (§3.3);
DMA writes stream through the memory bus where the SMC manager's store
observer applies the §3.6.1 invalidation rule.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace

from repro.machine import Machine

# IRQ lines free for injection (0 = timer, 1 = disk, 2 = DMA complete).
INJECTABLE_IRQ_LINES = (3, 4, 5)
DMA_COMPLETE_IRQ = 2
# When a DMA start finds the engine busy (schedules drawn too tightly),
# the event is retried this many ticks later — still deterministic,
# because the retry time is derived from device time alone.
DMA_RETRY_TICKS = 16


@dataclass(frozen=True)
class InjectionEvent:
    """One scheduled asynchronous event.

    ``kind`` is ``"irq"`` (raise ``line`` at device time ``at``) or
    ``"dma"`` (start a ``length``-byte copy ``source`` -> ``dest``).
    """

    kind: str
    at: int
    line: int = 0
    source: int = 0
    dest: int = 0
    length: int = 0

    def to_dict(self) -> dict:
        if self.kind == "irq":
            return {"kind": "irq", "at": self.at, "line": self.line}
        return {"kind": "dma", "at": self.at, "source": self.source,
                "dest": self.dest, "length": self.length}

    @staticmethod
    def from_dict(data: dict) -> "InjectionEvent":
        return InjectionEvent(
            kind=data["kind"], at=data["at"], line=data.get("line", 0),
            source=data.get("source", 0), dest=data.get("dest", 0),
            length=data.get("length", 0),
        )


@dataclass(frozen=True)
class InjectionPlan:
    """A full schedule of injected events for one program run."""

    events: tuple[InjectionEvent, ...] = ()

    @property
    def expected_interrupts(self) -> int:
        """Interrupts the guest must see: one per IRQ event, plus the
        completion IRQ of every DMA transfer."""
        return len(self.events)

    def irq_lines(self) -> tuple[int, ...]:
        return tuple(sorted({e.line for e in self.events
                             if e.kind == "irq"}))

    def has_dma(self) -> bool:
        return any(e.kind == "dma" for e in self.events)

    def to_json(self) -> str:
        return json.dumps([e.to_dict() for e in self.events],
                          separators=(",", ":"))

    @staticmethod
    def from_json(text: str) -> "InjectionPlan":
        return InjectionPlan(tuple(
            InjectionEvent.from_dict(item) for item in json.loads(text)
        ))


@dataclass
class FaultInjector:
    """Ticker that replays an ``InjectionPlan`` against one machine."""

    machine: Machine
    plan: InjectionPlan
    clock: int = 0
    fired: int = 0
    dma_retries: int = 0
    _queue: list = field(default_factory=list)

    def __post_init__(self) -> None:
        self._queue = sorted(self.plan.events, key=lambda e: e.at)
        self.machine.add_ticker(self)

    def tick(self, instructions: int) -> None:
        self.clock += instructions
        while self._queue and self._queue[0].at <= self.clock:
            event = self._queue.pop(0)
            if event.kind == "irq":
                self.machine.pic.request_irq(event.line)
                self.fired += 1
            elif self.machine.dma.start_transfer(event.source, event.dest,
                                                 event.length):
                self.fired += 1
            else:
                # Engine busy: push the start back a fixed device-time
                # amount.  Deterministic, since both engines reach this
                # device time with the DMA engine in the same state.
                self.dma_retries += 1
                self._queue.append(
                    replace(event, at=self.clock + DMA_RETRY_TICKS)
                )
                self._queue.sort(key=lambda e: e.at)
                break

    @property
    def exhausted(self) -> bool:
        return not self._queue
