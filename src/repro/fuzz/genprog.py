"""Constrained random t86 program generator for differential fuzzing.

Programs are generated as assembly text and assembled with
``repro.isa.assembler`` (so the code genuinely lives as bytes in guest
RAM), from a ``random.Random`` seeded stream: the same seed always
yields the same program and the same injection schedule.

Every program has the same skeleton — register seeding, a counted loop
over a random body, ``cli; hlt`` — and the body is drawn from blocks
chosen to hit the paper's hard cases:

* plain ALU/shift/flag traffic (dead-flag elimination, scheduling);
* aliasing store/load clusters, including byte stores into the middle
  of just-stored words (store-buffer forwarding, alias hardware §3.5);
* flag-consuming forward branches (side exits, condition recipes);
* MMIO touches on the console window and port I/O (§3.4 speculation
  barriers);
* self-modifying stores that patch an immediate inside the loop
  (§3.6 protection, self-checking, stylized SMC);
* divisions that genuinely fault, delivered through a vector-0 handler
  (§3.2 precise exceptions, speculative-vs-genuine classification).

In inject mode the skeleton additionally installs interrupt handlers,
enables interrupts, and spins after the loop until every scheduled
asynchronous event (see ``repro.fuzz.inject``) has been observed, so
runs converge no matter which molecule boundary an interrupt hit.
"""

from __future__ import annotations

import random
import re
from dataclasses import dataclass, replace

from repro.fuzz.inject import (INJECTABLE_IRQ_LINES, DMA_COMPLETE_IRQ,
                               InjectionEvent, InjectionPlan)

ARENA = 0x00100000  # data arena, ebp-relative loads/stores live here
ARENA_WORDS = 64  # random nonzero words seeded at [ARENA, ARENA+0x100)
COUNTER_ADDR = ARENA + 0x800  # interrupt counter, above every body disp
DMA_SRC = ARENA + 0x1000
DMA_DST = ARENA + 0x2000
STACK_TOP = 0x0007F000
CONSOLE_MMIO = 0xFFF00000
IRQ_VECTOR_BASE = 32

BODY_REGS = ("eax", "ebx", "edx", "esi", "edi")  # ecx/esp/ebp reserved
ALU_RR = ("add", "sub", "and", "or", "xor", "adc", "sbb", "imul", "cmp",
          "test")
SHIFTS = ("shl", "shr", "sar", "rol", "ror")
UNARY = ("not", "neg", "inc", "dec")
CONDS = ("jz", "jnz", "jc", "jnc", "js", "jns", "jo", "jno", "jl", "jge",
         "jle", "jg", "jb", "jbe", "ja", "jae", "jp", "jnp")
SETCC = ("setz", "setnz", "setc", "setl", "setg", "setle", "setae", "sets")
CMOVCC = ("cmovz", "cmovnz", "cmovc", "cmovl", "cmovg", "cmovs", "cmovae")

_LABEL_LINE = re.compile(r"^\s*[A-Za-z_.$][\w.$]*:\s*$")


@dataclass(frozen=True)
class FuzzProgram:
    """A generated guest program plus its injection schedule."""

    seed: int
    body_blocks: tuple[str, ...]
    iterations: int
    reg_seeds: tuple[tuple[str, int], ...]
    plan: InjectionPlan | None = None

    @property
    def source(self) -> str:
        return _render(self)

    def body_instruction_count(self) -> int:
        """Instructions in the loop body (labels excluded)."""
        count = 0
        for block in self.body_blocks:
            for line in block.splitlines():
                if line.strip() and not _LABEL_LINE.match(line):
                    count += 1
        return count

    def with_body(self, body_blocks, iterations=None) -> "FuzzProgram":
        return replace(
            self, body_blocks=tuple(body_blocks),
            iterations=self.iterations if iterations is None else iterations,
        )

    def ram_masks(self) -> list[tuple[int, int]]:
        """RAM ranges excluded from the differential comparison.

        With asynchronous interrupts the *delivery boundary* is not an
        architectural invariant, so the transient frames pushed below
        the stack top legitimately differ between engines; everything
        else must still match exactly.
        """
        if self.plan is None:
            return []
        return [(STACK_TOP - 0x1000, STACK_TOP)]


# --------------------------------------------------------------------------
# Body blocks
# --------------------------------------------------------------------------


def _reg(rng: random.Random) -> str:
    return rng.choice(BODY_REGS)


def _imm(rng: random.Random) -> int:
    # Mix small constants (flag corner cases) with full-width values.
    return rng.choice((
        rng.randint(0, 16),
        0x7FFFFFFF + rng.randint(0, 2),
        rng.randint(0, 0xFFFFFFFF),
    ))


def _disp(rng: random.Random) -> int:
    return rng.randint(0, 255) * 4


def _block_mov_imm(rng, index):
    return f"    mov {_reg(rng)}, {_imm(rng):#x}"


def _block_mov_rr(rng, index):
    return f"    mov {_reg(rng)}, {_reg(rng)}"


def _block_alu_rr(rng, index):
    return f"    {rng.choice(ALU_RR)} {_reg(rng)}, {_reg(rng)}"


def _block_alu_ri(rng, index):
    return f"    {rng.choice(ALU_RR)} {_reg(rng)}, {_imm(rng):#x}"


def _block_shift(rng, index):
    return f"    {rng.choice(SHIFTS)} {_reg(rng)}, {rng.randint(0, 31)}"


def _block_unary(rng, index):
    return f"    {rng.choice(UNARY)} {_reg(rng)}"


def _block_load(rng, index):
    return f"    load {_reg(rng)}, [ebp+{_disp(rng):#x}]"


def _block_store(rng, index):
    return f"    store [ebp+{_disp(rng):#x}], {_reg(rng)}"


def _block_alias_cluster(rng, index):
    """Overlapping store/load traffic inside one commit window."""
    d = _disp(rng)
    lines = [f"    store [ebp+{d:#x}], {_reg(rng)}"]
    if rng.random() < 0.5:
        lines.append(f"    storeb [ebp+{d + rng.randint(0, 3):#x}], "
                     f"{_reg(rng)}")
    if rng.random() < 0.3:
        lines.append(f"    store [ebp+{d + 4:#x}], {_reg(rng)}")
    lines.append(f"    load {_reg(rng)}, [ebp+{d:#x}]")
    return "\n".join(lines)


def _block_branch_skip(rng, index):
    cond = rng.choice(CONDS)
    inner = rng.choice(ALU_RR)
    return (f"    {cond} skip_{index}\n"
            f"    {inner} {_reg(rng)}, {_reg(rng)}\n"
            f"skip_{index}:")


def _block_setcc_cmov(rng, index):
    lines = [f"    cmp {_reg(rng)}, {_reg(rng)}"]
    if rng.random() < 0.5:
        lines.append(f"    {rng.choice(SETCC)} {_reg(rng)}")
    else:
        lines.append(f"    {rng.choice(CMOVCC)} {_reg(rng)}, {_reg(rng)}")
    return "\n".join(lines)


def _block_safe_div(rng, index):
    """A division that cannot fault (high half zeroed, divisor odd)."""
    return (f"    mov eax, {_imm(rng):#x}\n"
            f"    mov edx, 0\n"
            f"    or esi, 1\n"
            f"    div esi")


def _block_faulting_div(rng, index):
    """A division that faults whenever the drawn divisor register is 0
    (or the quotient overflows); the vector-0 handler resumes after it."""
    divisor = rng.choice(("ebx", "esi", "edi"))
    high = "0" if rng.random() < 0.7 else f"{rng.randint(1, 7):#x}"
    return (f"    mov eax, {_imm(rng):#x}\n"
            f"    mov edx, {high}\n"
            f"    div {divisor}")


def _block_mmio_write(rng, index):
    r = _reg(rng)
    return (f"    mov {r}, {CONSOLE_MMIO:#x}\n"
            f"    storeb [{r}], {_reg(rng)}")


def _block_mmio_read(rng, index):
    r = _reg(rng)
    return (f"    mov {r}, {CONSOLE_MMIO:#x}\n"
            f"    load {_reg(rng)}, [{r}+4]")


def _block_port_io(rng, index):
    if rng.random() < 0.5:
        return "    out 0xE9"  # prints EAX's low byte
    return "    in 0xEA"  # console status: always 1


def _block_push_pop(rng, index):
    return f"    push {_reg(rng)}\n    pop {_reg(rng)}"


def _block_smc_patch(rng, index):
    """Patch the immediate of an instruction inside the loop body.

    RI encodings carry their 32-bit immediate at byte offset 2; the
    patched value is whatever the drawn register holds, so the rewrite
    is deterministic and the next iteration executes the new bytes.
    """
    r_addr = _reg(rng)
    target = rng.choice(("add", "xor", "or"))
    return (f"    mov {r_addr}, patch_{index} + 2\n"
            f"    store [{r_addr}], {_reg(rng)}\n"
            f"patch_{index}:\n"
            f"    {target} {_reg(rng)}, {0x11111111:#x}")


# (generator, weight) — weights skew toward plain dataflow so programs
# stay mostly well-behaved, with regular spikes of the hard cases.
_BLOCKS = (
    (_block_mov_imm, 8),
    (_block_mov_rr, 6),
    (_block_alu_rr, 10),
    (_block_alu_ri, 10),
    (_block_shift, 6),
    (_block_unary, 5),
    (_block_load, 8),
    (_block_store, 8),
    (_block_alias_cluster, 8),
    (_block_branch_skip, 8),
    (_block_setcc_cmov, 5),
    (_block_safe_div, 3),
    (_block_faulting_div, 3),
    (_block_mmio_write, 4),
    (_block_mmio_read, 2),
    (_block_port_io, 2),
    (_block_push_pop, 3),
    (_block_smc_patch, 4),
)
_BLOCK_FUNCS = tuple(f for f, _ in _BLOCKS)
_BLOCK_WEIGHTS = tuple(w for _, w in _BLOCKS)


# --------------------------------------------------------------------------
# Generation
# --------------------------------------------------------------------------


def generate(seed: int, inject: bool = False,
             min_blocks: int = 4, max_blocks: int = 18,
             tenant: int = 0) -> FuzzProgram:
    """Generate one deterministic program (and schedule) from ``seed``.

    ``tenant`` salts only the *injection schedule* (asynchronous
    events), never the program body: fleet tenants run byte-identical
    guest code but see independently timed interrupts/DMA, so
    same-seed tenants cannot fault in lockstep.  Tenant 0 keeps the
    historical stream (existing campaigns replay unchanged).
    """
    rng = random.Random(seed)
    count = rng.randint(min_blocks, max_blocks)
    blocks = tuple(
        rng.choices(_BLOCK_FUNCS, weights=_BLOCK_WEIGHTS, k=1)[0](rng, i)
        for i, count_i in enumerate(range(count))
    )
    iterations = rng.randint(8, 32)
    reg_seeds = tuple((reg, rng.randint(0, 0xFFFFFFFF))
                      for reg in BODY_REGS)
    plan = None
    if inject:
        if tenant != 0:
            from repro.cms.degrade import derive_seed

            rng = random.Random(derive_seed(seed, tenant, "inject"))
        plan = _generate_plan(rng)
    return FuzzProgram(seed=seed, body_blocks=blocks, iterations=iterations,
                       reg_seeds=reg_seeds, plan=plan)


def _generate_plan(rng: random.Random) -> InjectionPlan:
    events = []
    at = rng.randint(80, 200)
    for _ in range(rng.randint(1, 4)):
        events.append(InjectionEvent(
            kind="irq", at=at, line=rng.choice(INJECTABLE_IRQ_LINES)
        ))
        at += rng.randint(150, 900)
    for _ in range(rng.randint(0, 2)):
        length = rng.choice((32, 64, 128, 256))
        events.append(InjectionEvent(
            kind="dma", at=at, source=DMA_SRC, dest=DMA_DST, length=length
        ))
        at += rng.randint(200, 900)
    return InjectionPlan(tuple(events))


# --------------------------------------------------------------------------
# Rendering
# --------------------------------------------------------------------------


def _render(program: FuzzProgram) -> str:
    rng = random.Random(program.seed ^ 0x5EED_DA7A)
    lines = [".org 0x1000", "start:", f"    mov esp, {STACK_TOP:#x}"]
    lines += ["    mov eax, 0", "    storei [eax+0], de_handler"]
    plan = program.plan
    if plan is not None:
        vectors = {IRQ_VECTOR_BASE + line for line in plan.irq_lines()}
        if plan.has_dma():
            vectors.add(IRQ_VECTOR_BASE + DMA_COMPLETE_IRQ)
        for vector in sorted(vectors):
            lines.append(f"    storei [eax+{vector * 4:#x}], irq_isr")
    lines.append(f"    mov ebp, {ARENA:#x}")
    for reg, value in program.reg_seeds:
        lines.append(f"    mov {reg}, {value:#x}")
    lines.append(f"    mov ecx, {program.iterations}")
    if plan is not None:
        lines.append("    sti")
    lines.append("loop:")
    for block in program.body_blocks:
        lines.append(block)
    lines += ["    dec ecx", "    jnz loop"]
    if plan is not None:
        lines += [
            f"    mov eax, {plan.expected_interrupts}",
            f"    mov ebx, {COUNTER_ADDR:#x}",
            "wait_irqs:",
            "    load edx, [ebx]",
            "    cmp edx, eax",
            "    jl wait_irqs",
        ]
    lines += ["    cli", "    hlt", ""]
    # Vector-0 handler: skip the faulting 2-byte div (leaves EAX holding
    # the resume address — deterministic on both engines).
    lines += [
        "de_handler:",
        "    pop eax",
        "    add eax, 2",
        "    push eax",
        "    iret",
        "",
    ]
    if plan is not None:
        lines += [
            "irq_isr:",
            "    push eax",
            "    push ebx",
            f"    mov ebx, {COUNTER_ADDR:#x}",
            "    load eax, [ebx]",
            "    inc eax",
            "    store [ebx], eax",
            "    mov eax, 0x20",
            "    out 0x20",
            "    pop ebx",
            "    pop eax",
            "    iret",
            "",
        ]
    # Data arena: nonzero words so loads observe interesting values.
    lines.append(f".org {ARENA:#x}")
    lines.append("arena:")
    for i in range(0, ARENA_WORDS, 8):
        words = ", ".join(f"{rng.randint(0, 0xFFFFFFFF):#x}"
                          for _ in range(8))
        lines.append(f"    .word {words}")
    if plan is not None and plan.has_dma():
        lines.append(f".org {DMA_SRC:#x}")
        lines.append("dmasrc:")
        for i in range(0, 256, 16):
            data = ", ".join(f"{rng.randint(0, 255):#x}"
                             for _ in range(16))
            lines.append(f"    .byte {data}")
    return "\n".join(lines) + "\n"
