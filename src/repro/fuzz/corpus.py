"""Corpus format: shrunk reproducers frozen as ``.t86`` files.

Every mismatch the fuzzer finds (after shrinking) is written to
``tests/corpus/`` and replayed forever by ``tests/test_fuzz_corpus.py``.
A corpus entry is a plain t86 assembly file whose header comments carry
the replay metadata::

    ; fuzz-corpus
    ; seed: 12345
    ; variant: tiny-regions
    ; inject: [{"kind":"irq","at":150,"line":3}]
    <assembly...>

``variant`` names the dial point that diverged (the replay test still
checks *all* variants — the name is for triage).  ``inject`` is the
JSON injection plan, or absent for synchronous programs.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from pathlib import Path

from repro.fuzz.genprog import STACK_TOP, FuzzProgram
from repro.fuzz.inject import InjectionPlan

MAGIC = "; fuzz-corpus"

_HEADER = re.compile(r"^;\s*(seed|variant|inject):\s*(.*)$")


@dataclass(frozen=True)
class CorpusEntry:
    """One replayable corpus program."""

    name: str
    source: str
    seed: int = 0
    variant: str = ""
    plan: InjectionPlan | None = None

    def ram_masks(self) -> list[tuple[int, int]]:
        if self.plan is None:
            return []
        return [(STACK_TOP - 0x1000, STACK_TOP)]

    def render(self) -> str:
        lines = [MAGIC, f"; seed: {self.seed}"]
        if self.variant:
            lines.append(f"; variant: {self.variant}")
        if self.plan is not None:
            lines.append(f"; inject: {self.plan.to_json()}")
        return "\n".join(lines) + "\n" + self.source


def entry_from_program(name: str, program: FuzzProgram,
                       variant: str = "") -> CorpusEntry:
    return CorpusEntry(name=name, source=program.source,
                       seed=program.seed, variant=variant,
                       plan=program.plan)


def parse_entry(name: str, text: str) -> CorpusEntry:
    seed, variant, plan = 0, "", None
    body_start = 0
    for line in text.splitlines(keepends=True):
        stripped = line.strip()
        match = _HEADER.match(stripped)
        if stripped == MAGIC or match:
            body_start += len(line)
            if match:
                key, value = match.group(1), match.group(2).strip()
                if key == "seed":
                    seed = int(value)
                elif key == "variant":
                    variant = value
                elif key == "inject":
                    plan = InjectionPlan.from_json(value)
            continue
        break
    return CorpusEntry(name=name, source=text[body_start:], seed=seed,
                       variant=variant, plan=plan)


def write_entry(directory: Path, entry: CorpusEntry) -> Path:
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{entry.name}.t86"
    path.write_text(entry.render())
    return path


def load_corpus(directory: Path) -> list[CorpusEntry]:
    entries = []
    for path in sorted(Path(directory).glob("*.t86")):
        entries.append(parse_entry(path.stem, path.read_text()))
    return entries
