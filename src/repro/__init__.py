"""repro — a reproduction of the Transmeta Code Morphing Software.

Dehnert et al., *The Transmeta Code Morphing Software: Using
Speculation, Recovery, and Adaptive Retranslation to Address Real-Life
Challenges*, CGO 2003.

The package is a complete co-designed virtual machine:

* a binary-encoded x86-subset guest ISA ("t86") with an assembler
  (:mod:`repro.isa`),
* a guest machine with MMU, MMIO devices, DMA, interrupts
  (:mod:`repro.machine`, :mod:`repro.memory`, :mod:`repro.devices`),
* a Crusoe-style VLIW host with shadowed registers, a gated store
  buffer, alias hardware and commit/rollback (:mod:`repro.host`),
* a precise interpreter (:mod:`repro.interp`),
* an optimizing, speculating dynamic binary translator
  (:mod:`repro.translator`),
* and the CMS runtime tying it together (:mod:`repro.cms`).

Quickstart::

    from repro import Machine, CodeMorphingSystem, CMSConfig

    machine = Machine()
    entry = machine.load_source(r'''
    start:
        mov ecx, 0
    loop:
        mov eax, 72        ; 'H'
        out 0xE9
        inc ecx
        cmp ecx, 10
        jne loop
        cli
        hlt
    ''')
    system = CodeMorphingSystem(machine, CMSConfig())
    result = system.run(entry)
    print(result.console_output)
    print(result.stats.summary(system.config.cost))
"""

from repro.cms.config import CMSConfig, CostModel
from repro.cms.stats import CMSStats
from repro.cms.system import CodeMorphingSystem, RunResult, run_reference
from repro.isa.assembler import AssemblyError, Program, assemble
from repro.machine import Machine, MachineConfig
from repro.state import SimpleGuestState

__version__ = "1.0.0"

__all__ = [
    "CMSConfig",
    "CostModel",
    "CMSStats",
    "CodeMorphingSystem",
    "RunResult",
    "run_reference",
    "AssemblyError",
    "Program",
    "assemble",
    "Machine",
    "MachineConfig",
    "SimpleGuestState",
    "__version__",
]
