"""Command-line tools for running and inspecting CMS."""
