"""``repro-cms`` — command-line front end.

Subcommands::

    repro-cms list                       # available workloads
    repro-cms run  <workload>            # run under full CMS, print stats
    repro-cms compare <workload>         # run under contrasting configs
    repro-cms disasm <workload>          # disassemble the guest program
    repro-cms translations <workload>    # dump translated molecules
    repro-cms trace <workload>           # dump the CMS event trace
    repro-cms top <workload>             # per-region hot-spot profile
    repro-cms health [workloads...]      # self-audit + health report
                                         # (also installed as repro-health)
    repro-cms health --fleet             # aggregate multi-tenant health
    repro-cms snapshot <action> <path>   # save/load/inspect warm-start
                                         # snapshots (PR 5)
    repro-cms fleet run [workloads...]   # serve N workloads under the
                                         # fault-isolated fleet supervisor
    repro-cms fleet campaign             # seeded fleet chaos campaign
                                         # (kill / corrupt / storm modes)
    repro-cms scenario list              # adversarial scenario matrix
    repro-cms scenario run [names...]    # run scenarios differentially,
                                         # print/emit pass+perf records
    repro-cms scenario fleet [names...]  # host one scenario guest per
                                         # tenant under the supervisor

``top`` and ``health`` also accept ``--session PATH`` (a JSONL
telemetry file) or ``--snapshot PATH`` (a warm-start snapshot) to
report offline; inputs produced with ``obs_enabled=False`` yield a
clear diagnostic and exit status 2 instead of an empty table.

Configuration toggles (for ``run``/``trace``/``translations``):
``--no-reorder``, ``--no-alias-hw``, ``--no-fine-grain``,
``--no-revalidation``, ``--no-groups``, ``--force-self-check``,
``--no-adaptive``, ``--threshold N``, ``--interp-only``.
Warm start: ``--snapshot-path PATH`` (load), ``--snapshot-save``
(write back at shutdown), ``--no-strict-snapshot``.
Observability: ``--obs`` enables the metrics/phase/hot-spot layer,
``--obs-jsonl PATH`` additionally streams JSONL telemetry (implies
``--obs``).
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace

from repro.cms.config import CMSConfig
from repro.obs.hotspots import SORT_KEYS
from repro.workloads import get_workload, run_workload, workload_names


def config_from_args(args: argparse.Namespace) -> CMSConfig:
    config = CMSConfig()
    overrides = {}
    if getattr(args, "threshold", None) is not None:
        overrides["translation_threshold"] = args.threshold
    if getattr(args, "no_reorder", False):
        overrides["reorder_memory"] = False
        overrides["control_speculation"] = False
    if getattr(args, "no_alias_hw", False):
        overrides["use_alias_hw"] = False
    if getattr(args, "no_fine_grain", False):
        overrides["fine_grain_protection"] = False
    if getattr(args, "no_revalidation", False):
        overrides["self_revalidation"] = False
    if getattr(args, "no_groups", False):
        overrides["translation_groups"] = False
    if getattr(args, "force_self_check", False):
        overrides["force_self_check"] = True
    if getattr(args, "no_adaptive", False):
        overrides["adaptive_retranslation"] = False
    if getattr(args, "obs", False):
        overrides["obs_enabled"] = True
    if getattr(args, "obs_jsonl", None):
        overrides["obs_enabled"] = True
        overrides["obs_jsonl_path"] = args.obs_jsonl
    if getattr(args, "snapshot_path", None):
        overrides["snapshot_path"] = args.snapshot_path
    if getattr(args, "snapshot_save", False):
        overrides["snapshot_save"] = True
    if getattr(args, "no_strict_snapshot", False):
        overrides["snapshot_strict_config"] = False
    config = replace(config, **overrides)
    if getattr(args, "interp_only", False):
        config = config.interpreter_only()
    return config


def add_config_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--threshold", type=int, default=None,
                        help="translation threshold")
    for flag in ("no-reorder", "no-alias-hw", "no-fine-grain",
                 "no-revalidation", "no-groups", "force-self-check",
                 "no-adaptive", "interp-only"):
        parser.add_argument(f"--{flag}", action="store_true")
    parser.add_argument("--obs", action="store_true",
                        help="enable the observability layer")
    parser.add_argument("--obs-jsonl", metavar="PATH", default=None,
                        help="stream JSONL telemetry to PATH "
                             "(implies --obs)")
    parser.add_argument("--snapshot-path", metavar="PATH", default=None,
                        help="warm-start from this snapshot when it "
                             "exists (translations revalidate against "
                             "guest RAM at load)")
    parser.add_argument("--snapshot-save", action="store_true",
                        help="write the snapshot back at shutdown "
                             "(needs --snapshot-path)")
    parser.add_argument("--no-strict-snapshot", action="store_true",
                        help="accept snapshots taken under a different "
                             "configuration")


def cmd_list(args: argparse.Namespace) -> int:
    from repro.workloads import ALL_WORKLOADS

    print(f"{'name':<16} {'category':<8} description")
    for name in workload_names():
        workload = ALL_WORKLOADS[name]
        print(f"{name:<16} {workload.category:<8} {workload.description}")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    workload = get_workload(args.workload)
    config = config_from_args(args)
    result = run_workload(workload, config)
    print(f"workload  : {workload.name} ({workload.description})")
    if result.system.snapshot_error is not None:
        print(f"snapshot  : cold start ({result.system.snapshot_error})")
    elif result.system.snapshot_report is not None:
        report = result.system.snapshot_report
        print(f"snapshot  : warm start, {report.loaded} loaded, "
              f"{report.dropped} dropped, "
              f"{report.group_versions} group versions")
    print(f"halted    : {result.halted}")
    print(f"output    : {result.console_output.strip()!r}")
    print(f"mol/instr : {result.mpx:.2f}")
    if result.frames:
        print(f"frames    : {result.frames}")
    print()
    print(result.system.stats.summary(config.cost))
    if result.system.obs is not None:
        print()
        print(result.system.obs.phases.describe())
    return 0


def _print_hotspot_table(hotspots: dict, count: int, sort: str) -> None:
    """Render a ``HotSpotProfiler.snapshot()``-shaped mapping."""
    regions = sorted(hotspots.get("regions", []),
                     key=lambda r: -r.get(sort, r.get("instructions", 0)))
    print(f"{'entry':>10} {'instructions':>13} {'molecules':>11} "
          f"{'dispatches':>10} {'faults':>7} {'trans':>6}")
    for region in regions[:count]:
        print(f"{region['entry_eip']:>#10x} {region['instructions']:>13} "
              f"{region['molecules']:>11} {region['dispatches']:>10} "
              f"{region['faults']:>7} {region['translations']:>6}")
    interp = hotspots.get("interp_instructions", 0)
    print(f"{'(interp)':>10} {interp:>13} {'-':>11} {'-':>10} {'-':>7} "
          f"{'-':>6}")


def _no_obs_data(what: str) -> int:
    """Satellite 3: a clear diagnosis instead of a traceback/empty
    table when the input was produced with observability off."""
    print(f"error: {what} carries no observability data — it was "
          f"produced with obs_enabled=False.\n"
          f"Re-run the workload with --obs (or --obs-jsonl PATH, or "
          f"snapshot-save under --obs) to record per-region profiles.",
          file=sys.stderr)
    return 2


def _top_offline(args: argparse.Namespace) -> int:
    """`repro-cms top` against a saved session or snapshot file."""
    if args.snapshot:
        from repro.cache.persist import SnapshotError, read_snapshot_file

        try:
            payload = read_snapshot_file(args.snapshot)
        except SnapshotError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        obs = payload.get("obs")
        if not obs or not obs.get("hotspots", {}).get("regions"):
            return _no_obs_data(f"snapshot {args.snapshot}")
        print(f"snapshot  : {args.snapshot}")
        _print_hotspot_table(obs["hotspots"], args.count, args.sort)
        return 0
    from repro.obs.telemetry import read_jsonl

    try:
        records = read_jsonl(args.session)
    except OSError as error:
        print(f"error: cannot read session: {error}", file=sys.stderr)
        return 2
    summaries = [r for r in records if r.get("kind") == "run-summary"]
    if not summaries or not summaries[-1].get("hotspots", {}).get("regions"):
        return _no_obs_data(f"session {args.session}")
    print(f"session   : {args.session}")
    _print_hotspot_table(summaries[-1]["hotspots"], args.count, args.sort)
    return 0


def cmd_top(args: argparse.Namespace) -> int:
    """Per-region hot-spot ranking (runs with observability forced on)."""
    from repro.cms.system import CodeMorphingSystem

    if args.session or args.snapshot:
        return _top_offline(args)
    if args.workload is None:
        print("error: a workload name, --session PATH, or "
              "--snapshot PATH is required", file=sys.stderr)
        return 2
    workload = get_workload(args.workload)
    config = config_from_args(args)
    config = replace(config, obs_enabled=True)
    machine, entry = workload.build_machine()
    system = CodeMorphingSystem(machine, config)
    result = system.run(entry, max_instructions=workload.max_instructions)
    obs = system.obs
    print(f"workload  : {workload.name} ({workload.description})")
    print(f"halted    : {result.halted}  "
          f"guest instructions: {result.guest_instructions}")
    print()
    print(f"top {args.count} regions by {args.sort}:")
    print(f"{'entry':>10} {'instructions':>13} {'molecules':>11} "
          f"{'dispatches':>10} {'faults':>7} {'trans':>6} {'jit':>4} tier")
    for region in obs.hotspots.top(args.count, args.sort):
        tier = system.degrade.tier_of(region.entry_eip).name
        # "yes" = a template-JIT function is resident for the region's
        # current translation; "-" = VLIW-only (dial off, degraded tier,
        # uncompilable, or the translation was invalidated).
        resident = system.tcache.lookup(region.entry_eip)
        jit = "yes" if resident is not None and \
            resident.host_code is not None else "-"
        print(f"{region.entry_eip:>#10x} {region.instructions:>13} "
              f"{region.molecules:>11} {region.dispatches:>10} "
              f"{region.faults:>7} {region.translations:>6} {jit:>4} "
              f"{tier}")
    print(f"{'(interp)':>10} {obs.hotspots.interp_instructions:>13} "
          f"{'-':>11} {'-':>10} {'-':>7} {'-':>6} {'-':>4} "
          f"untranslated pool")
    print()
    print(obs.phases.describe())
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    workload = get_workload(args.workload)
    # Hold trace formation fixed across rows: the unroll judge keys off
    # schedule density, so the scheduling dials below could otherwise
    # flip a promotion and swamp the dial's own cost in the comparison.
    base = CMSConfig(trace_formation=False)
    variants = {
        "baseline": base,
        "no reordering": replace(base, reorder_memory=False,
                                 control_speculation=False),
        "no alias hw": replace(base, use_alias_hw=False),
        "no fine-grain": replace(base, fine_grain_protection=False),
        "forced self-check": replace(base, force_self_check=True),
        "interpreter only": base.interpreter_only(),
    }
    baseline = None
    print(f"{'configuration':<20} {'molecules':>12} {'mol/instr':>10} "
          f"{'vs baseline':>12}")
    for label, config in variants.items():
        result = run_workload(workload, config)
        if baseline is None:
            baseline = result
        else:
            assert result.console_output == baseline.console_output, (
                f"{label}: output diverged"
            )
        delta = result.degradation_vs(baseline)
        print(f"{label:<20} {result.total_molecules:>12} "
              f"{result.mpx:>10.2f} {delta:>+11.1%}")
    return 0


def cmd_disasm(args: argparse.Namespace) -> int:
    from repro.isa.disasm import disassemble_text

    workload = get_workload(args.workload)
    machine, entry = workload.build_machine()
    start = args.addr if args.addr is not None else entry
    print(disassemble_text(machine, start, count=args.count))
    return 0


def cmd_translations(args: argparse.Namespace) -> int:
    from repro.cms.system import CodeMorphingSystem

    workload = get_workload(args.workload)
    machine, entry = workload.build_machine()
    system = CodeMorphingSystem(machine, config_from_args(args))
    system.run(entry, max_instructions=workload.max_instructions)
    translations = sorted(system.tcache.translations(),
                          key=lambda t: -t.executions_molecules)
    for translation in translations[: args.count]:
        print(f"== {translation.describe()}  entries={translation.entries}"
              f"  molecules-executed={translation.executions_molecules}")
        for index, molecule in enumerate(translation.molecules):
            label = "/".join(k for k, v in translation.labels.items()
                             if v == index)
            print(f"  {index:4d} {label:>9} {molecule}")
        print()
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    from repro.cms.system import CodeMorphingSystem

    workload = get_workload(args.workload)
    machine, entry = workload.build_machine()
    system = CodeMorphingSystem(machine, config_from_args(args))
    system.run(entry, max_instructions=workload.max_instructions)
    print(system.trace.dump(args.count))
    print()
    print("event totals (lifetime):")
    for event, count in sorted(system.trace.lifetime_counts.items(),
                               key=lambda item: -item[1]):
        print(f"  {event.value:<20} {count}")
    return 0


def cmd_snapshot(args: argparse.Namespace) -> int:
    """Save, load-check, or inspect a warm-start snapshot."""
    from repro.cache.persist import SnapshotError, inspect_snapshot

    if args.action == "inspect":
        try:
            info = inspect_snapshot(args.path)
        except SnapshotError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        print(f"snapshot             {info['path']}")
        print(f"format               {info['format']} "
              f"v{info['version']}")
        print(f"config digest        {info['config_digest'][:16]}…")
        print(f"translations         {info['translations']:>8} "
              f"({info['resident']} resident, "
              f"{info['group_versions']} group versions in "
              f"{info['group_entries']} groups)")
        print(f"controller policies  {info['controller_policies']:>8}")
        print(f"profile anchors      {info['profile_anchors']:>8}")
        print(f"observability data   {'yes' if info['has_obs'] else 'no':>8}")
        entries = ", ".join(f"{e:#x}" for e in info["resident_entries"][:8])
        if entries:
            print(f"resident entries     {entries}")
        return 0

    if args.workload is None:
        print(f"error: `snapshot {args.action}` needs a workload name",
              file=sys.stderr)
        return 2
    from repro.cms.system import CodeMorphingSystem

    workload = get_workload(args.workload)
    config = config_from_args(args)
    if args.action == "save":
        config = replace(config, snapshot_path=args.path,
                         snapshot_save=True)
        result = run_workload(workload, config)
        print(f"ran {workload.name}: halted={result.halted}, "
              f"{result.guest_instructions} guest instructions")
        print(f"snapshot written to {args.path}")
        return 0
    # load: construct the system (which loads + revalidates) and report.
    config = replace(config, snapshot_path=args.path)
    machine, _ = workload.build_machine()
    system = CodeMorphingSystem(machine, config)
    if system.snapshot_error is not None:
        print(f"error: {system.snapshot_error}", file=sys.stderr)
        return 2
    if system.snapshot_report is None:
        print(f"error: no snapshot at {args.path}", file=sys.stderr)
        return 2
    print(system.snapshot_report.describe())
    return 0


# ----------------------------------------------------------------------
# repro-health — run workloads, self-audit the runtime, report health
# ----------------------------------------------------------------------

# A representative default slice: a boot (paging, interrupts), a
# self-modifying game (SMC ladder), and an alias-heavy app (speculation
# recovery) — the three ways CMS state usually goes wrong.
DEFAULT_HEALTH_WORKLOADS = ("dos_boot", "quake_demo2", "alias_stress")


def _fleet_specs(names: list[str], config: CMSConfig) -> list:
    """Build one TenantSpec per named workload."""
    from repro.fleet import TenantSpec

    specs = []
    for tenant_id, name in enumerate(names):
        workload = get_workload(name)
        specs.append(TenantSpec(
            tenant_id=tenant_id,
            source=workload.source,
            name=workload.name,
            max_instructions=workload.max_instructions,
            config=config,
            machine_config=workload.machine_config,
        ))
    return specs


def _fleet_health_offline(args: argparse.Namespace) -> int:
    """`repro-cms health --fleet --session PATH`: report from the
    fleet-health records a supervisor run streamed to JSONL."""
    from repro.obs.telemetry import read_jsonl

    try:
        records = read_jsonl(args.session)
    except OSError as error:
        print(f"error: cannot read session: {error}", file=sys.stderr)
        return 2
    reports = [r for r in records if r.get("kind") == "fleet-health"]
    if not reports:
        return _no_obs_data(f"session {args.session} (no fleet-health "
                            f"records)")
    latest = reports[-1]
    healthy = bool(latest.get("healthy"))
    print(f"session   : {args.session} "
          f"({len(reports)} fleet-health records, showing latest)")
    print(f"status               "
          f"{'HEALTHY' if healthy else 'DEGRADED'}")
    print(f"rounds               {latest.get('rounds', 0):>8}")
    share = latest.get("share", {}) or {}
    print(f"shared cache         {share.get('published', 0):>8} "
          f"published, {share.get('imported', 0)} imported "
          f"(hit rate {share.get('hit_rate', 0.0):.2f})")
    print(f"negative cache       {latest.get('negative_cache', 0):>8}")
    print(f"uncontained errors   {latest.get('uncontained', 0):>8}")
    for row in latest.get("tenants", []):
        print(f"  tenant {row.get('tenant')} ({row.get('name')}): "
              f"{row.get('state')} restarts={row.get('restarts', 0)} "
              f"quarantines={row.get('quarantines', 0)} "
              f"contained={row.get('contained_errors', 0)}")
    return 0 if healthy else 1


def _health_fleet_live(args: argparse.Namespace,
                       config: CMSConfig) -> int:
    """`repro-cms health --fleet`: serve the health workloads as
    isolated tenants and print the aggregate fleet report."""
    from repro.fleet import FleetConfig, FleetSupervisor

    names = (workload_names() if args.all
             else (args.workloads or list(DEFAULT_HEALTH_WORKLOADS)))
    config = replace(config, obs_jsonl_path=None)
    fleet = FleetConfig(
        slice_guest_instructions=20_000,
        telemetry_path=getattr(args, "obs_jsonl", None),
    )
    supervisor = FleetSupervisor(_fleet_specs(names, config), fleet)
    result = supervisor.run()
    print(result.health.describe())
    print()
    print(f"aggregate guest instructions: "
          f"{result.total_guest_instructions}")
    return 0 if result.health.healthy else 1


def _health_offline(args: argparse.Namespace) -> int:
    """`repro-cms health` against a saved session or snapshot file."""
    if getattr(args, "fleet", False) and getattr(args, "session", None):
        return _fleet_health_offline(args)
    if getattr(args, "snapshot", None):
        from repro.cache.persist import SnapshotError, read_snapshot_file

        try:
            payload = read_snapshot_file(args.snapshot)
        except SnapshotError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        stats = payload.get("stats")
        if not stats:
            return _no_obs_data(f"snapshot {args.snapshot}")
        print(f"snapshot  : {args.snapshot}")
        contained = stats.get("contained_errors", 0)
        repairs = stats.get("audit_repairs", 0)
        healthy = contained == 0 and repairs == 0
        print(f"status               "
              f"{'HEALTHY' if healthy else 'CONTAINED'}")
        for key in ("contained_errors", "quarantines", "storm_demotions",
                    "audit_runs", "audit_repairs", "controller_pruned",
                    "snapshot_translations_loaded",
                    "snapshot_translations_dropped"):
            print(f"{key:<30} {stats.get(key, 0):>8}")
        return 0 if healthy else 1
    from repro.obs.telemetry import read_jsonl

    try:
        records = read_jsonl(args.session)
    except OSError as error:
        print(f"error: cannot read session: {error}", file=sys.stderr)
        return 2
    reports = [r for r in records if r.get("kind") == "health"]
    if not reports:
        return _no_obs_data(f"session {args.session}")
    unhealthy = 0
    for report in reports:
        healthy = (report.get("contained_errors", 0) == 0
                   and report.get("audit_repairs", 0) == 0)
        unhealthy += 0 if healthy else 1
        print(f"health record seq={report.get('seq')}: "
              f"{'HEALTHY' if healthy else 'CONTAINED'} "
              f"(contained={report.get('contained_errors', 0)}, "
              f"repairs={report.get('audit_repairs', 0)}, "
              f"quarantines={report.get('quarantines', 0)})")
    print(f"{len(reports) - unhealthy}/{len(reports)} health records clean")
    return 0 if unhealthy == 0 else 1


def cmd_health(args: argparse.Namespace) -> int:
    from repro.cms.system import CodeMorphingSystem

    if getattr(args, "session", None) or getattr(args, "snapshot", None):
        return _health_offline(args)
    config = config_from_args(args)
    if getattr(args, "fleet", False):
        return _health_fleet_live(args, config)
    overrides = {}
    if args.chaos_rate > 0.0:
        overrides["chaos_rate"] = args.chaos_rate
        overrides["chaos_seed"] = args.chaos_seed
    if args.audit_interval is not None:
        overrides["audit_interval"] = args.audit_interval
    if overrides:
        config = replace(config, **overrides)
    names = (workload_names() if args.all
             else (args.workloads or list(DEFAULT_HEALTH_WORKLOADS)))
    unhealthy = []
    for name in names:
        workload = get_workload(name)
        machine, entry = workload.build_machine()
        system = CodeMorphingSystem(machine, config)
        result = system.run(entry,
                            max_instructions=workload.max_instructions)
        report = system.health_report()
        print(f"== {name}: halted={result.halted} "
              f"({result.guest_instructions} guest instructions)")
        print(report.describe())
        print()
        if not report.healthy:
            unhealthy.append(name)
    if unhealthy:
        verdict = ("contained (expected under chaos injection)"
                   if args.chaos_rate > 0.0 else "NOT healthy")
        print(f"{len(unhealthy)}/{len(names)} workloads {verdict}: "
              f"{', '.join(unhealthy)}")
        return 0 if args.chaos_rate > 0.0 else 1
    print(f"all {len(names)} workloads healthy")
    return 0


def build_health_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-health",
        description="Run workloads under CMS, self-audit the runtime "
                    "invariants, and print a health report",
    )
    add_health_flags(parser)
    add_config_flags(parser)
    return parser


def add_health_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("workloads", nargs="*",
                        help="workload names (default: "
                             f"{', '.join(DEFAULT_HEALTH_WORKLOADS)})")
    parser.add_argument("--all", action="store_true",
                        help="audit every registered workload")
    parser.add_argument("--chaos-rate", type=float, default=0.0,
                        help="inject internal translator failures at "
                             "this rate (demonstrates containment)")
    parser.add_argument("--chaos-seed", type=int, default=0)
    parser.add_argument("--audit-interval", type=int, default=None,
                        help="dispatches between periodic self-audits "
                             "(default: CMSConfig.audit_interval)")
    parser.add_argument("--session", metavar="PATH", default=None,
                        help="report from a saved JSONL telemetry "
                             "session instead of running")
    parser.add_argument("--snapshot", metavar="PATH", default=None,
                        help="report from a warm-start snapshot file "
                             "instead of running")
    parser.add_argument("--fleet", action="store_true",
                        help="serve the workloads as isolated tenants "
                             "under the fleet supervisor and report "
                             "aggregate fleet health (with --session: "
                             "read fleet-health telemetry records)")


def health_main(argv: list[str] | None = None) -> int:
    return cmd_health(build_health_parser().parse_args(argv))


# ----------------------------------------------------------------------
# repro-cms fleet — multi-tenant serving and the fleet chaos campaign
# ----------------------------------------------------------------------


def cmd_fleet(args: argparse.Namespace) -> int:
    if args.action == "campaign":
        return _fleet_campaign(args)
    return _fleet_run(args)


def _fleet_run(args: argparse.Namespace) -> int:
    """Serve named workloads as fault-isolated tenants to completion."""
    from repro.fleet import FleetConfig, FleetSupervisor

    names = args.workloads or list(DEFAULT_HEALTH_WORKLOADS)
    # The supervisor owns the telemetry file; tenants keep their
    # in-memory metrics but never write to the shared JSONL.
    config = replace(config_from_args(args), obs_jsonl_path=None)
    fleet = FleetConfig(
        slice_guest_instructions=args.slice,
        slice_wall_budget=args.wall_budget,
        snapshot_dir=args.snapshot_dir,
        share_translations=not args.no_share,
        telemetry_path=args.obs_jsonl,
        park_policy=args.park_policy,
    )
    supervisor = FleetSupervisor(_fleet_specs(names, config), fleet)
    result = supervisor.run()
    print(result.health.describe())
    print()
    print(f"rounds               {result.rounds:>8}")
    print(f"guest instructions   {result.total_guest_instructions:>8}")
    print(f"wall seconds         {result.wall_seconds:>8.3f}  "
          f"(aggregate {result.aggregate_ips():,.0f} IPS)")
    print(f"slice p50/p99        {result.latency_us.quantile(0.5):>8.0f}"
          f" / {result.latency_us.quantile(0.99):.0f} µs")
    return 0 if result.health.healthy else 1


def _fleet_campaign(args: argparse.Namespace) -> int:
    """The CI fleet lane: seeded kill/corrupt/storm trials, every
    tenant differentially checked against its solo interpreter run."""
    from repro.fleet.chaos import run_fleet_campaign

    progress = [0]

    def on_trial(report):
        progress[0] += 1
        if not args.quiet and progress[0] % 10 == 0:
            print(f"... trial {progress[0]} (seed {report.seed}, "
                  f"mode {report.mode})")

    result = run_fleet_campaign(
        trials=args.trials, seed=args.seed, tenants=args.tenants,
        max_instructions=args.max_instructions,
        inject_every=args.inject_every, on_trial=on_trial,
    )
    print(f"fleet campaign: {result.trials} trials "
          f"({result.kills} kills, {result.corruptions} corruptions, "
          f"{result.storms} storms; {result.injected_trials} with "
          f"device-fault injection)")
    print(f"  {result.restarts} snapshot restarts, "
          f"{result.poisoned} poisoned entries, "
          f"{result.imported} cross-tenant imports")
    print(f"  {len(result.contaminations)} cross-tenant contaminations, "
          f"{result.uncontained} uncontained exceptions")
    if args.obs_jsonl:
        from repro.obs import TelemetrySink

        with TelemetrySink(args.obs_jsonl, source="fleet") as sink:
            sink.emit("fleet-campaign", {
                "trials": result.trials,
                "seed": args.seed,
                "kills": result.kills,
                "corruptions": result.corruptions,
                "storms": result.storms,
                "restarts": result.restarts,
                "poisoned": result.poisoned,
                "imported": result.imported,
                "contaminations": len(result.contaminations),
                "uncontained": result.uncontained,
            })
    for contamination in result.contaminations:
        print(f"  CONTAMINATION: {contamination}")
    return 0 if result.ok else 1


def add_fleet_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("action", choices=("run", "campaign"))
    parser.add_argument("workloads", nargs="*",
                        help="workload names for `run` (default: "
                             f"{', '.join(DEFAULT_HEALTH_WORKLOADS)})")
    parser.add_argument("--slice", type=int, default=20_000,
                        help="guest instructions per tenant slice")
    parser.add_argument("--wall-budget", type=float, default=0.0,
                        help="host-wall seconds per slice before the "
                             "watchdog preempts (0 disables)")
    parser.add_argument("--snapshot-dir", default=None,
                        help="directory for per-tenant last-good "
                             "warm snapshots")
    parser.add_argument("--no-share", action="store_true",
                        help="disable the shared translation service")
    parser.add_argument("--park-policy", choices=("park", "evict"),
                        default="park")
    parser.add_argument("--trials", type=int, default=100,
                        help="campaign trials (default 100)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--tenants", type=int, default=3,
                        help="tenants per campaign trial")
    parser.add_argument("--max-instructions", type=int, default=400_000)
    parser.add_argument("--inject-every", type=int, default=4,
                        help="every Nth trial adds asynchronous "
                             "interrupt/DMA injection (0 disables)")
    parser.add_argument("--quiet", action="store_true")
    # --obs-jsonl comes from add_config_flags; the fleet run routes it
    # to the supervisor's sink rather than per-tenant sinks.


# ----------------------------------------------------------------------
# repro-cms scenario — the adversarial guest scenario matrix
# ----------------------------------------------------------------------


def cmd_scenario(args: argparse.Namespace) -> int:
    from repro.scenarios.matrix import SCENARIOS

    if args.action == "list":
        print(f"{'name':<14} {'pinned':<7} description")
        for scenario in SCENARIOS:
            pinned = "yes" if scenario.pin_interrupts else "no"
            print(f"{scenario.name:<14} {pinned:<7} "
                  f"{scenario.description}")
        return 0

    import json

    if args.action == "fleet":
        from repro.scenarios.fleet import run_scenario_fleet

        names = args.scenarios or ["paging"]
        clean = True
        for name in names:
            report = run_scenario_fleet(
                name, tenants=args.tenants, budget=args.budget,
                seed=args.seed, config=config_from_args(args))
            print(f"== fleet:{name} x{report.tenants}: "
                  f"{'PASS' if report.ok else 'FAIL'}")
            print(f"   rounds {report.rounds}"
                  f"  restarts {report.restarts}"
                  f"  shared imports {report.imported_translations}"
                  f"  uncontained {report.uncontained}")
            for diff in report.divergences:
                print(f"   DIFF {diff}")
            clean = clean and report.ok
        if clean:
            print("all fleet-hosted scenarios differentially clean")
            return 0
        print("FLEET SCENARIO DIVERGENCE — see DIFF lines above",
              file=sys.stderr)
        return 1

    from repro.scenarios.runner import all_passed, run_matrix

    report = run_matrix(
        args.budget, args.seed, names=args.scenarios or None,
        config=config_from_args(args),
        chaos_rate=args.chaos_rate, chaos_seed=args.chaos_seed,
    )
    for name, record in report["scenarios"].items():
        counters = record["counters"]
        dispatch = record["dispatch"]
        print(f"== {name} ({record['title']}): "
              f"{'PASS' if record['pass'] else 'FAIL'}")
        print(f"   instructions {counters.get('guest_instructions', 0):>9}"
              f"  molecules {counters.get('total_molecules', 0):>11}"
              f"  smc invalidations "
              f"{counters.get('smc_invalidations', 0)}")
        print(f"   dispatch p50/p99 {dispatch['p50_instructions']:.1f}/"
              f"{dispatch['p99_instructions']:.1f} instr"
              f"  audit sweeps {record['sweeps']}"
              f"  speedup {record['timing']['speedup']:.2f}x")
        for diff in record["diffs"]:
            print(f"   DIFF {diff}")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"report written to {args.json}")
    if all_passed(report):
        print("all scenarios differentially clean")
        return 0
    print("SCENARIO DIVERGENCE — see DIFF lines above", file=sys.stderr)
    return 1


def add_scenario_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("action", choices=("list", "run", "fleet"))
    parser.add_argument("scenarios", nargs="*",
                        help="scenario names for `run`/`fleet` "
                             "(default: whole matrix / paging)")
    parser.add_argument("--tenants", type=int, default=3,
                        help="tenant count for `fleet` (default 3)")
    parser.add_argument("--budget", type=int, default=120_000,
                        help="guest-instruction sizing budget per "
                             "scenario (default 120000)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write the BENCH_scenarios report here")
    parser.add_argument("--chaos-rate", type=float, default=0.0,
                        help="inject internal translator failures into "
                             "the CMS leg (containment must hold)")
    parser.add_argument("--chaos-seed", type=int, default=0)


# ----------------------------------------------------------------------
# repro-fuzz — the differential fuzzing campaign driver
# ----------------------------------------------------------------------


def build_fuzz_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-fuzz",
        description="Differential fuzzing: interpreter vs CMS across the "
                    "configuration dial matrix",
    )
    parser.add_argument("--budget", type=int, default=200,
                        help="(program, variant) trials to spend "
                             "(default 200)")
    parser.add_argument("--seed", type=int, default=0,
                        help="campaign seed (default 0)")
    parser.add_argument("--max-instructions", type=int, default=400_000,
                        help="per-run guest instruction cap")
    parser.add_argument("--inject-every", type=int, default=4,
                        help="every Nth program carries asynchronous "
                             "interrupt/DMA injection (0 disables)")
    parser.add_argument("--variants", default=None,
                        help="comma-separated dial variant names "
                             "(default: full matrix)")
    parser.add_argument("--chaos", action="store_true",
                        help="chaos mode: deterministically inject "
                             "internal translator failures into every "
                             "CMS variant; the containment layer must "
                             "keep outcomes identical to the reference")
    parser.add_argument("--chaos-rate", type=float, default=0.02,
                        help="per-operation injection probability in "
                             "chaos mode (default 0.02)")
    parser.add_argument("--corpus-dir", default="tests/corpus",
                        help="where shrunk reproducers are written")
    parser.add_argument("--no-shrink", action="store_true",
                        help="report mismatches without shrinking")
    parser.add_argument("--list-variants", action="store_true",
                        help="print the dial matrix and exit")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-program progress")
    parser.add_argument("--obs-jsonl", metavar="PATH", default=None,
                        help="append a campaign-summary telemetry "
                             "record to PATH")
    return parser


def fuzz_main(argv: list[str] | None = None) -> int:
    from pathlib import Path

    from repro.fuzz import (chaos_matrix, default_matrix,
                            entry_from_program, run_campaign,
                            run_differential, shrink_program, variant_by_name,
                            write_entry)

    args = build_fuzz_parser().parse_args(argv)
    matrix = default_matrix()
    if args.list_variants:
        for variant in matrix:
            print(variant.name)
        return 0
    if args.variants:
        matrix = tuple(variant_by_name(name.strip())
                       for name in args.variants.split(","))
    systems = []
    cms_factory = None
    if args.chaos:
        matrix = chaos_matrix(matrix, args.chaos_rate, args.seed)
        cms_factory = systems.append  # health accounting after the run

    progress = [0]

    def on_program(program):
        progress[0] += 1
        if not args.quiet and progress[0] % 10 == 0:
            print(f"... program {progress[0]} (seed {program.seed})")

    result = run_campaign(
        budget=args.budget, seed=args.seed, variants=matrix,
        inject_every=args.inject_every,
        max_instructions=args.max_instructions,
        on_program=on_program,
        cms_factory=cms_factory,
    )
    print(f"campaign: {result.trials} trials over {result.programs} "
          f"programs ({result.injected_programs} with fault injection), "
          f"{len(result.mismatches)} mismatches")
    if args.obs_jsonl:
        from repro.obs import TelemetrySink

        with TelemetrySink(args.obs_jsonl, source="fuzz") as sink:
            sink.emit("fuzz-campaign", {
                "budget": args.budget,
                "seed": args.seed,
                "trials": result.trials,
                "programs": result.programs,
                "injected_programs": result.injected_programs,
                "mismatches": len(result.mismatches),
                "chaos": bool(args.chaos),
            })
    if args.chaos:
        injected = sum(s.chaos.injected for s in systems
                       if s.chaos is not None)
        contained = sum(s.stats.contained_errors for s in systems)
        quarantines = sum(s.stats.quarantines for s in systems)
        readmitted = sum(s.stats.quarantine_readmissions for s in systems)
        print(f"chaos: {injected} injected faults, {contained} contained "
              f"incidents, {quarantines} quarantines "
              f"({readmitted} re-admitted), 0 uncontained exceptions")
    if result.ok:
        return 0

    for mismatch in result.mismatches:
        print()
        print(mismatch.describe())
        if args.no_shrink:
            continue
        variant = mismatch.variant

        def is_failing(candidate):
            return any(m.variant.name == variant.name for m in
                       run_differential(candidate, (variant,),
                                        args.max_instructions))

        shrunk = shrink_program(mismatch.program, is_failing)
        print(f"shrunk to {shrunk.body_instruction_count()} body "
              f"instructions, {shrunk.iterations} iterations")
        entry = entry_from_program(
            f"fuzz_seed{shrunk.seed}_{variant.name}", shrunk,
            variant=variant.name,
        )
        path = write_entry(Path(args.corpus_dir), entry)
        print(f"reproducer written to {path}")
    return 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-cms",
        description="Transmeta Code Morphing Software reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list workloads").set_defaults(func=cmd_list)

    run_parser = sub.add_parser("run", help="run a workload")
    run_parser.add_argument("workload")
    add_config_flags(run_parser)
    run_parser.set_defaults(func=cmd_run)

    compare_parser = sub.add_parser("compare",
                                    help="compare configurations")
    compare_parser.add_argument("workload")
    compare_parser.set_defaults(func=cmd_compare)

    disasm_parser = sub.add_parser("disasm", help="disassemble guest code")
    disasm_parser.add_argument("workload")
    disasm_parser.add_argument("--addr", type=lambda v: int(v, 0),
                               default=None)
    disasm_parser.add_argument("--count", type=int, default=32)
    disasm_parser.set_defaults(func=cmd_disasm)

    trans_parser = sub.add_parser("translations",
                                  help="dump hot translations")
    trans_parser.add_argument("workload")
    trans_parser.add_argument("--count", type=int, default=3)
    add_config_flags(trans_parser)
    trans_parser.set_defaults(func=cmd_translations)

    trace_parser = sub.add_parser("trace", help="dump the event trace")
    trace_parser.add_argument("workload")
    trace_parser.add_argument("--count", type=int, default=60)
    add_config_flags(trace_parser)
    trace_parser.set_defaults(func=cmd_trace)

    top_parser = sub.add_parser(
        "top", help="per-region hot-spot profile (forces --obs)")
    top_parser.add_argument("workload", nargs="?", default=None)
    top_parser.add_argument("--count", type=int, default=10)
    top_parser.add_argument("--sort", default="instructions",
                            choices=list(SORT_KEYS))
    top_parser.add_argument("--session", metavar="PATH", default=None,
                            help="rank regions from a saved JSONL "
                                 "telemetry session instead of running")
    top_parser.add_argument("--snapshot", metavar="PATH", default=None,
                            help="rank regions from a warm-start "
                                 "snapshot file instead of running")
    add_config_flags(top_parser)
    top_parser.set_defaults(func=cmd_top)

    snapshot_parser = sub.add_parser(
        "snapshot", help="save / load-check / inspect warm-start "
                         "snapshots")
    snapshot_parser.add_argument("action",
                                 choices=("save", "load", "inspect"))
    snapshot_parser.add_argument("path", help="snapshot file")
    snapshot_parser.add_argument("workload", nargs="?", default=None,
                                 help="workload (required for "
                                      "save/load)")
    add_config_flags(snapshot_parser)
    snapshot_parser.set_defaults(func=cmd_snapshot)

    health_parser = sub.add_parser(
        "health", help="self-audit the runtime and report health")
    add_health_flags(health_parser)
    add_config_flags(health_parser)
    health_parser.set_defaults(func=cmd_health)

    fleet_parser = sub.add_parser(
        "fleet", help="multi-tenant serving under the fault-isolated "
                      "fleet supervisor / seeded fleet chaos campaign")
    add_fleet_flags(fleet_parser)
    add_config_flags(fleet_parser)
    fleet_parser.set_defaults(func=cmd_fleet)

    scenario_parser = sub.add_parser(
        "scenario", help="adversarial guest scenario matrix: run each "
                         "class differentially and report pass + perf")
    add_scenario_flags(scenario_parser)
    add_config_flags(scenario_parser)
    scenario_parser.set_defaults(func=cmd_scenario)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
