"""Metrics registry: counters, gauges, and fixed-bucket histograms.

The registry is the deterministic half of the observability layer: it
never reads a clock, so any metric derived from it is bit-identical
between runs of the same workload.  Wall-clock data lives exclusively
in :mod:`repro.obs.phases`; keeping the two apart is what lets the
perf-regression gate treat counter metrics as exact and timing metrics
as advisory (see ``benchmarks/compare.py``).

Histogram buckets are fixed at construction (Prometheus-style ``le``
upper bounds with an implicit ``+Inf`` overflow bucket), so snapshots
of two runs are structurally comparable without re-binning.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Default histogram upper bounds: powers of two covering one guest
#: instruction up to a whole dispatch-fuel quantum of molecules.
DEFAULT_BUCKETS: tuple[int, ...] = tuple(2**i for i in range(13))


@dataclass
class CounterMetric:
    """A monotonically increasing count."""

    name: str
    value: int = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def reset(self) -> None:
        self.value = 0


@dataclass
class GaugeMetric:
    """A point-in-time value (set, not accumulated)."""

    name: str
    value: float = 0

    def set(self, value: float) -> None:
        self.value = value

    def reset(self) -> None:
        self.value = 0


@dataclass
class HistogramMetric:
    """Fixed-boundary histogram of a deterministic quantity.

    ``bounds`` are inclusive upper limits; an observation lands in the
    first bucket whose bound is >= the value, or in the implicit
    overflow bucket past the last bound.  ``counts`` therefore has
    ``len(bounds) + 1`` entries.
    """

    name: str
    bounds: tuple[int, ...]
    counts: list[int] = field(default_factory=list)
    count: int = 0
    total: int = 0
    min_seen: int | None = None
    max_seen: int | None = None

    def __post_init__(self) -> None:
        if not self.bounds:
            raise ValueError(f"histogram {self.name}: no bucket bounds")
        if list(self.bounds) != sorted(set(self.bounds)):
            raise ValueError(
                f"histogram {self.name}: bounds must strictly increase"
            )
        if not self.counts:
            self.counts = [0] * (len(self.bounds) + 1)

    def observe(self, value: int) -> None:
        self.counts[self._bucket_index(value)] += 1
        self.count += 1
        self.total += value
        if self.min_seen is None or value < self.min_seen:
            self.min_seen = value
        if self.max_seen is None or value > self.max_seen:
            self.max_seen = value

    def _bucket_index(self, value: int) -> int:
        # Linear scan: bucket lists are short and the registry sits off
        # the per-instruction hot path (per-dispatch at worst).
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                return index
        return len(self.bounds)

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (0..1) from the bucket counts.

        Linear interpolation inside the landing bucket (Prometheus
        ``histogram_quantile`` style); the overflow bucket reports the
        largest value actually seen, so an estimate never exceeds
        reality.  Returns 0.0 for an empty histogram.
        """
        if self.count == 0:
            return 0.0
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q} outside [0, 1]")
        rank = q * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            cumulative += bucket_count
            if cumulative < rank or bucket_count == 0:
                continue
            if index >= len(self.bounds):
                return float(self.max_seen)
            hi = self.bounds[index]
            lo = self.bounds[index - 1] if index > 0 else 0
            fraction = 1.0 - (cumulative - rank) / bucket_count
            return lo + (hi - lo) * fraction
        return float(self.max_seen)

    def reset(self) -> None:
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0
        self.min_seen = None
        self.max_seen = None

    def snapshot(self) -> dict:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.total,
            "min": self.min_seen,
            "max": self.max_seen,
        }


class MetricsRegistry:
    """Named metrics, created on first use and snapshot as one dict."""

    def __init__(
        self, histogram_buckets: tuple[int, ...] = DEFAULT_BUCKETS
    ) -> None:
        self.default_buckets = tuple(histogram_buckets)
        self._counters: dict[str, CounterMetric] = {}
        self._gauges: dict[str, GaugeMetric] = {}
        self._histograms: dict[str, HistogramMetric] = {}

    # -- creation / lookup -------------------------------------------------

    def counter(self, name: str) -> CounterMetric:
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = CounterMetric(name)
        return metric

    def gauge(self, name: str) -> GaugeMetric:
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = GaugeMetric(name)
        return metric

    def histogram(
        self, name: str, bounds: tuple[int, ...] | None = None
    ) -> HistogramMetric:
        metric = self._histograms.get(name)
        if metric is None:
            metric = self._histograms[name] = HistogramMetric(
                name, tuple(bounds or self.default_buckets)
            )
        return metric

    # -- bulk helpers ------------------------------------------------------

    def set_counters(self, values: dict[str, int], prefix: str = "") -> None:
        """Load a flat mapping (e.g. ``CMSStats.as_dict()``) as counters."""
        for name, value in values.items():
            self.counter(prefix + name).value = value

    def snapshot(self) -> dict:
        """Everything, as plain JSON-serializable data."""
        return {
            "counters": {
                name: metric.value
                for name, metric in sorted(self._counters.items())
            },
            "gauges": {
                name: metric.value
                for name, metric in sorted(self._gauges.items())
            },
            "histograms": {
                name: metric.snapshot()
                for name, metric in sorted(self._histograms.items())
            },
        }

    def reset(self) -> None:
        """Zero every metric but keep registrations (and bucket shapes)."""
        for metric in self._counters.values():
            metric.reset()
        for metric in self._gauges.values():
            metric.reset()
        for metric in self._histograms.values():
            metric.reset()
