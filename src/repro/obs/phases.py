"""Hierarchical phase profiler for the dispatch loop.

Times the major phases of the dispatcher — interpret, translate,
execute-translation, fault-service, rollback, SMC-service, audit —
as a tree: a phase entered while another is open becomes its child,
and each node tracks inclusive time, self time (inclusive minus
children), and entry count.

This is the *only* place in the observability layer that reads a
clock.  Phase times are engineering telemetry about the host; nothing
in the deterministic core (metrics, molecule accounting, adaptation
decisions) may consume them, which is why the perf-regression gate
treats them as advisory.  The clock is injectable so the unit tests
run against a synthetic deterministic one.
"""

from __future__ import annotations

import time
from dataclasses import dataclass


@dataclass
class PhaseStat:
    """Accumulated data for one node of the phase tree."""

    path: tuple[str, ...]
    calls: int = 0
    seconds: float = 0.0
    self_seconds: float = 0.0

    @property
    def name(self) -> str:
        return "/".join(self.path)


@dataclass
class _Frame:
    name: str
    start: float
    child_seconds: float = 0.0


class _Phase:
    """Context manager handed out by :meth:`PhaseProfiler.phase`."""

    __slots__ = ("_profiler", "_name")

    def __init__(self, profiler: "PhaseProfiler", name: str) -> None:
        self._profiler = profiler
        self._name = name

    def __enter__(self) -> None:
        self._profiler._enter(self._name)

    def __exit__(self, exc_type, exc, tb) -> None:
        self._profiler._exit()


class PhaseProfiler:
    """Nested wall-clock phase accounting."""

    def __init__(self, clock=time.perf_counter) -> None:
        self._clock = clock
        self._stack: list[_Frame] = []
        self._nodes: dict[tuple[str, ...], PhaseStat] = {}

    def phase(self, name: str) -> _Phase:
        return _Phase(self, name)

    def _enter(self, name: str) -> None:
        self._stack.append(_Frame(name, self._clock()))

    def _exit(self) -> None:
        frame = self._stack.pop()
        elapsed = self._clock() - frame.start
        path = tuple(f.name for f in self._stack) + (frame.name,)
        node = self._nodes.get(path)
        if node is None:
            node = self._nodes[path] = PhaseStat(path)
        node.calls += 1
        node.seconds += elapsed
        node.self_seconds += elapsed - frame.child_seconds
        if self._stack:
            self._stack[-1].child_seconds += elapsed

    # -- reporting ---------------------------------------------------------

    def stats(self) -> list[PhaseStat]:
        """All nodes, outermost first, siblings by descending time."""
        return sorted(
            self._nodes.values(), key=lambda n: (len(n.path), -n.seconds)
        )

    def snapshot(self) -> dict:
        """JSON-serializable view keyed by slash-joined phase path."""
        return {
            node.name: {
                "calls": node.calls,
                "seconds": round(node.seconds, 6),
                "self_seconds": round(node.self_seconds, 6),
            }
            for node in self.stats()
        }

    def describe(self) -> str:
        lines = [f"{'phase':<32} {'calls':>10} {'seconds':>10} {'self':>10}"]
        for node in self.stats():
            indent = "  " * (len(node.path) - 1)
            label = indent + node.path[-1]
            lines.append(
                f"{label:<32} {node.calls:>10} {node.seconds:>10.4f} "
                f"{node.self_seconds:>10.4f}"
            )
        return "\n".join(lines)

    def reset(self) -> None:
        self._nodes.clear()
        self._stack.clear()
