"""Observability: metrics, phase timing, hot-spots, JSONL telemetry.

See DESIGN notes in each module.  The split is deliberate:

* :mod:`repro.obs.metrics` — deterministic counters/gauges/histograms;
* :mod:`repro.obs.phases` — the only wall-clock consumer;
* :mod:`repro.obs.hotspots` — per-region attribution for ``top``;
* :mod:`repro.obs.telemetry` — schema-versioned JSONL with rotation;
* :mod:`repro.obs.bus` — the fan-out EventTrace/metrics/telemetry
  share;
* :mod:`repro.obs.core` — the facade the dispatcher drives.
"""

from repro.obs.bus import EventCountSink, ObservationBus
from repro.obs.core import Observability
from repro.obs.hotspots import SORT_KEYS, HotSpotProfiler, RegionProfile
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    CounterMetric,
    GaugeMetric,
    HistogramMetric,
    MetricsRegistry,
)
from repro.obs.phases import PhaseProfiler, PhaseStat
from repro.obs.telemetry import SCHEMA_VERSION, TelemetrySink, read_jsonl

__all__ = [
    "EventCountSink",
    "ObservationBus",
    "Observability",
    "SORT_KEYS",
    "HotSpotProfiler",
    "RegionProfile",
    "DEFAULT_BUCKETS",
    "CounterMetric",
    "GaugeMetric",
    "HistogramMetric",
    "MetricsRegistry",
    "PhaseProfiler",
    "PhaseStat",
    "SCHEMA_VERSION",
    "TelemetrySink",
    "read_jsonl",
]
