"""Structured JSONL telemetry sink with bounded file rotation.

Every record is one JSON object per line carrying the schema version
(``"v"``), a record kind (``"kind"``), and a per-sink sequence number
(``"seq"``); consumers can therefore mix records from the CMS runtime,
the benchmarks, the fuzz harness, and ``repro-health`` in one file and
still demultiplex them.  When the active file would exceed
``max_bytes`` it is rotated to ``<path>.1`` (shifting older
generations up to ``max_files``), so long campaigns cannot grow a log
without bound.

The sink also speaks the :class:`repro.obs.bus.ObservationBus` sink
protocol (``record(event, eip, detail)``), turning every traced CMS
event into an ``event`` record.
"""

from __future__ import annotations

import json
import os

#: Version of the record envelope.  Bump when the envelope or the
#: payload layout of a built-in record kind changes shape.
SCHEMA_VERSION = 1


class TelemetrySink:
    """Append-only JSONL writer with size-bounded rotation."""

    def __init__(
        self,
        path: str,
        max_bytes: int = 4_000_000,
        max_files: int = 3,
        source: str = "cms",
    ) -> None:
        self.path = path
        self.max_bytes = max_bytes
        self.max_files = max(1, max_files)
        self.source = source
        self._seq = 0
        self._handle = None
        self._bytes = 0

    # -- core --------------------------------------------------------------

    def emit(self, kind: str, payload: dict) -> None:
        """Write one schema-versioned record."""
        self._seq += 1
        record = {
            "v": SCHEMA_VERSION,
            "kind": kind,
            "seq": self._seq,
            "source": self.source,
        }
        record.update(payload)
        line = json.dumps(record, sort_keys=True, default=str) + "\n"
        data = line.encode("utf-8")
        if self._handle is None:
            self._open()
        if self._bytes and self._bytes + len(data) > self.max_bytes:
            self._rotate()
        self._handle.write(data)
        self._bytes += len(data)

    def _open(self) -> None:
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        self._handle = open(self.path, "ab")
        self._bytes = self._handle.tell()

    def _rotate(self) -> None:
        self._handle.close()
        self._handle = None
        oldest = f"{self.path}.{self.max_files - 1}"
        if self.max_files == 1:
            os.remove(self.path)
        else:
            if os.path.exists(oldest):
                os.remove(oldest)
            for index in range(self.max_files - 2, 0, -1):
                older = f"{self.path}.{index}"
                if os.path.exists(older):
                    os.replace(older, f"{self.path}.{index + 1}")
            os.replace(self.path, f"{self.path}.1")
        self._open()

    def flush(self) -> None:
        if self._handle is not None:
            self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "TelemetrySink":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- ObservationBus sink protocol --------------------------------------

    def record(self, event, eip=None, detail: str = "") -> None:
        payload = {"event": getattr(event, "value", str(event))}
        if eip is not None:
            payload["eip"] = eip
        if detail:
            payload["detail"] = detail
        self.emit("event", payload)


def read_jsonl(path: str) -> list[dict]:
    """Parse one telemetry file (skipping blank lines)."""
    records = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records
