"""Per-region hot-spot profiler behind ``repro-cms top``.

Attributes retired guest instructions, executed host molecules,
dispatches, faults, and (re)translations to the translated region
(keyed by entry EIP) they occurred in.  The dispatcher feeds it deltas
measured around each translation execution, so the data is exact for
translated code; instructions retired in the interpreter are tracked
as a single untranslated pool (the interpreter has no region notion —
its per-anchor profile already lives in ``ExecutionProfile``).

Everything here is counter-based and deterministic; ranking two runs
of the same workload produces the same table.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Valid ``repro-cms top --sort`` keys, mapping to attributes below.
SORT_KEYS = ("instructions", "molecules", "dispatches", "faults", "entries")


@dataclass
class RegionProfile:
    """Accumulated hot-spot data for one translated region."""

    entry_eip: int
    instructions: int = 0  # guest instructions retired in the region
    molecules: int = 0  # host molecules executed in the region
    dispatches: int = 0  # dispatcher entries into the region
    faults: int = 0  # host faults attributed to the region
    translations: int = 0  # times (re)translated
    rollbacks: int = 0

    @property
    def entries(self) -> int:
        return self.dispatches


class HotSpotProfiler:
    """Region-granular execution accounting."""

    def __init__(self) -> None:
        self._regions: dict[int, RegionProfile] = {}
        self.interp_instructions = 0  # untranslated pool

    def _region(self, entry_eip: int) -> RegionProfile:
        region = self._regions.get(entry_eip)
        if region is None:
            region = self._regions[entry_eip] = RegionProfile(entry_eip)
        return region

    # -- feed (called by the dispatcher when observability is on) ----------

    def note_dispatch(
        self, entry_eip: int, instructions: int, molecules: int
    ) -> None:
        region = self._region(entry_eip)
        region.dispatches += 1
        region.instructions += instructions
        region.molecules += molecules

    def note_fault(self, entry_eip: int) -> None:
        self._region(entry_eip).faults += 1

    def note_rollback(self, entry_eip: int) -> None:
        self._region(entry_eip).rollbacks += 1

    def note_translation(self, entry_eip: int) -> None:
        self._region(entry_eip).translations += 1

    def note_interp(self, instructions: int = 1) -> None:
        self.interp_instructions += instructions

    # -- reporting ---------------------------------------------------------

    def top(
        self, count: int = 10, sort: str = "instructions"
    ) -> list[RegionProfile]:
        if sort not in SORT_KEYS:
            raise ValueError(
                f"sort key {sort!r} not one of {', '.join(SORT_KEYS)}"
            )
        ranked = sorted(
            self._regions.values(),
            key=lambda r: (-getattr(r, sort), r.entry_eip),
        )
        return ranked[:count]

    def snapshot(self, count: int = 20) -> dict:
        return {
            "interp_instructions": self.interp_instructions,
            "regions": [
                {
                    "entry_eip": region.entry_eip,
                    "instructions": region.instructions,
                    "molecules": region.molecules,
                    "dispatches": region.dispatches,
                    "faults": region.faults,
                    "translations": region.translations,
                    "rollbacks": region.rollbacks,
                }
                for region in self.top(count)
            ],
        }
