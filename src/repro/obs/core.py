"""The per-system observability facade.

One :class:`Observability` instance bundles the four pillars —
metrics registry, phase profiler, hot-spot profiler, telemetry sink —
behind the handful of calls the dispatcher makes.  The dispatcher
holds ``None`` instead when ``CMSConfig.obs_enabled`` is off, so the
disabled cost is a single attribute test on paths that matter.
"""

from __future__ import annotations

from repro.obs.bus import EventCountSink
from repro.obs.hotspots import HotSpotProfiler
from repro.obs.metrics import MetricsRegistry
from repro.obs.phases import PhaseProfiler
from repro.obs.telemetry import TelemetrySink


class Observability:
    """Metrics + phases + hot-spots + telemetry for one CMS instance."""

    def __init__(self, config) -> None:
        self.registry = MetricsRegistry(tuple(config.obs_histogram_buckets))
        self.phases = PhaseProfiler()
        self.hotspots = HotSpotProfiler()
        self.telemetry = (
            TelemetrySink(config.obs_jsonl_path)
            if config.obs_jsonl_path
            else None
        )
        self._dispatch_instr = self.registry.histogram(
            "dispatch.guest_instructions"
        )
        self._dispatch_mols = self.registry.histogram("dispatch.molecules")
        self._region_sizes = self.registry.histogram(
            "translation.guest_instructions"
        )

    def event_sinks(self) -> list:
        """The bus sinks this facade contributes."""
        sinks: list = [EventCountSink(self.registry)]
        if self.telemetry is not None:
            sinks.append(self.telemetry)
        return sinks

    # -- dispatcher feed ---------------------------------------------------

    def note_dispatch(
        self, entry_eip: int, instructions: int, molecules: int
    ) -> None:
        self.hotspots.note_dispatch(entry_eip, instructions, molecules)
        self._dispatch_instr.observe(instructions)
        self._dispatch_mols.observe(molecules)

    def note_fault(self, entry_eip: int) -> None:
        self.hotspots.note_fault(entry_eip)

    def note_rollback(self, entry_eip: int) -> None:
        self.hotspots.note_rollback(entry_eip)

    def note_translation(self, entry_eip: int, guest_instructions: int) -> None:
        self.hotspots.note_translation(entry_eip)
        self._region_sizes.observe(guest_instructions)

    def note_interp(self, instructions: int = 1) -> None:
        self.hotspots.note_interp(instructions)

    def dispatch_summary(self) -> dict:
        """Deterministic dispatch-size quantiles for per-run records.

        Interpolated from the fixed power-of-two histogram buckets, so
        the values depend only on the observation multiset — safe to
        gate exactly in CI (see the scenario matrix).
        """
        return {
            "count": self._dispatch_instr.count,
            "p50_instructions": round(self._dispatch_instr.quantile(0.5), 6),
            "p99_instructions": round(self._dispatch_instr.quantile(0.99), 6),
            "p50_molecules": round(self._dispatch_mols.quantile(0.5), 6),
            "p99_molecules": round(self._dispatch_mols.quantile(0.99), 6),
        }

    # -- finalization ------------------------------------------------------

    def finalize(self, stats_dict: dict, run_info: dict | None = None) -> None:
        """Fold run totals into the registry and emit the summary record."""
        self.registry.set_counters(stats_dict, prefix="stats.")
        if self.telemetry is None:
            return
        self.telemetry.emit(
            "run-summary",
            {
                "run": run_info or {},
                "metrics": self.registry.snapshot(),
                "phases": self.phases.snapshot(),
                "hotspots": self.hotspots.snapshot(),
            },
        )
        self.telemetry.flush()
