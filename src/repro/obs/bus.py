"""The observation bus: one fan-out point for runtime events.

The CMS dispatcher (and the subsystems it hands a recorder to — the
SMC manager, the degradation ladder) publish events through the bus
instead of writing into :class:`~repro.cms.trace.EventTrace` directly.
The trace is simply one sink among several: the ring buffer keeps its
debugging role, while the metrics registry counts events and the JSONL
telemetry sink streams them, all from the same publication.

The sink protocol is exactly ``EventTrace.record``'s signature —
``record(event, eip=None, detail="")`` — so an ``EventTrace`` *is* a
valid sink with no adapter, and the bus itself can be passed anywhere
a trace recorder is expected.
"""

from __future__ import annotations

from repro.obs.metrics import MetricsRegistry


class ObservationBus:
    """Duck-typed EventTrace fan-out."""

    def __init__(self) -> None:
        self._sinks = []

    def add_sink(self, sink) -> None:
        """Attach a sink exposing ``record(event, eip, detail)``."""
        self._sinks.append(sink)

    def remove_sink(self, sink) -> None:
        self._sinks.remove(sink)

    def record(self, event, eip=None, detail: str = "") -> None:
        for sink in self._sinks:
            sink.record(event, eip, detail)


class EventCountSink:
    """Bus sink bumping one registry counter per event kind."""

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = registry

    def record(self, event, eip=None, detail: str = "") -> None:
        name = getattr(event, "value", str(event))
        self.registry.counter(f"events.{name}").inc()
