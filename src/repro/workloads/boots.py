"""Synthetic OS-boot workloads.

The paper's boot benchmarks (DOS, Linux, OS/2, Windows 95/98/ME/NT/XP)
stress exactly the system-level behaviours CMS must survive: port and
memory-mapped device probing, interrupt handlers, DMA/disk traffic into
RAM, large one-shot initialization sequences that never get hot, kernel
memcpy/table loops that do, and driver code that mixes code and data on
the same pages (the dominant source of Table 1's protection faults).

``make_boot`` assembles those phases with per-OS intensity knobs chosen
to reproduce the *spread* of the paper's figures: memcpy/table-heavy
boots (DOS, 98, ME, XP) are the most sensitive to suppressed memory
reordering (Figure 2), interpretation-heavy boots with large one-shot
init (Linux, NT, 95) the least, and the Win9x family generates the most
mixed code/data driver traffic (Table 1).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.machine import TIMER_MMIO_BASE, DMA_MMIO_BASE
from repro.workloads.base import Workload
from repro.workloads.builder import (
    DATA_BASE,
    RUNTIME_LIBRARY,
    STACK_TOP,
    random_words,
    word_table,
)

IRQ_TIMER_VECTOR = 32
IRQ_DMA_VECTOR = 34


@dataclass(frozen=True)
class BootProfile:
    """Phase intensities for one synthetic boot."""

    name: str
    cold_init_blocks: int = 4  # one-shot unique code blocks (dilution)
    probe_rounds: int = 30  # port + MMIO device probing iterations
    memcpy_rounds: int = 20  # hot kernel copy loops (reorder-sensitive)
    memcpy_words: int = 192
    table_rounds: int = 15  # pointer-table initialization loops
    driver_routines: int = 6  # routines with data beside code
    driver_rounds: int = 40  # calls per routine (Table 1 pressure)
    timer_ticks: int = 4  # interrupts to wait for
    timer_period: int = 3000
    dma_rounds: int = 3  # DMA transfers (paging-style traffic)
    paging: bool = False  # identity paging on


def _cold_init(profile: BootProfile) -> str:
    """One-shot straight-line code: executed once, never translated."""
    rng = random.Random(hash(profile.name) & 0xFFFF)
    blocks = []
    for block in range(profile.cold_init_blocks):
        lines = [f"cold_{block}:"]
        for _ in range(60):
            op = rng.choice(["add", "xor", "or", "and", "sub"])
            reg = rng.choice(["eax", "ebx", "ecx", "edx"])
            lines.append(f"    {op} {reg}, {rng.randint(1, 0xFFFF)}")
        lines.append("    xor esi, eax")
        blocks.append("\n".join(lines))
    return "\n".join(blocks)


def _driver_section(profile: BootProfile) -> tuple[str, str]:
    """Driver routines each followed by their own state word.

    The state word shares a page (usually a granule) with the routine's
    code — the Windows/9X driver pattern §3.6.1 is about.
    """
    routines = []
    calls = []
    for k in range(profile.driver_routines):
        # Device state lives on the same *page* as the routine's code
        # but (via alignment) in a different 64-byte granule — the
        # common mixed code/data layout that fine-grain protection
        # handles without faulting (§3.6.1, Table 1).  Page-granularity
        # protection faults on every one of these stores.
        routines.append(f"""
drv_{k}:
    mov ebx, drvdata_{k}
    load eax, [ebx]
    add eax, {k + 3}
    store [ebx], eax
    xor esi, eax
    ret
.align 64
drvdata_{k}:
    .word {k * 17 + 1}
.space 60
""")
        calls.append(f"    call drv_{k}")
    call_block = "\n".join(calls)
    driver_loop = f"""
    mov edi, {profile.driver_rounds}
driver_loop:
{call_block}
    dec edi
    jnz driver_loop
"""
    return driver_loop, "\n".join(routines)


def make_boot(profile: BootProfile) -> Workload:
    paging_setup = ""
    if profile.paging:
        paging_setup = """
    ; build an identity page table for the first 2 MiB and enable paging
    mov ebx, 0x00200000
    mov ecx, 0
pt_build:
    mov eax, ecx
    shl eax, 12
    or eax, 3
    storex [ebx+ecx*4], eax
    inc ecx
    cmp ecx, 512
    jne pt_build
    mov eax, 0x00200000
    setpt eax
    pgon
"""

    driver_loop, driver_routines = _driver_section(profile)
    cold = _cold_init(profile)
    kernel_image = word_table("kimage", random_words(7, profile.memcpy_words),
                              org=DATA_BASE)

    source = f"""
.org 0x1000
start:
    mov esp, {STACK_TOP:#x}
    mov esi, 0

    ; ---- interrupt vector table -------------------------------------
    mov ebx, 0
    storei [ebx+{IRQ_TIMER_VECTOR * 4}], timer_isr
    storei [ebx+{IRQ_DMA_VECTOR * 4}], dma_isr

    ; ---- one-shot platform init (interpreted, never hot) -------------
    call cold_entry

    ; ---- device probing: ports and memory-mapped registers -----------
    ; (performed with paging off: the identity table below only covers
    ; low RAM, as on a real early-boot path)
    mov edi, {profile.probe_rounds}
probe_loop:
    in 0xEA                    ; console status
    xor esi, eax
    mov ebx, {TIMER_MMIO_BASE:#x}
    load eax, [ebx]            ; timer period register (MMIO)
    add esi, eax
    mov ebx, {DMA_MMIO_BASE:#x}
    load eax, [ebx+12]         ; DMA status register (MMIO)
    add esi, eax
    in 0x53                    ; DMA status via port too
    xor esi, eax
    rol esi, 1
    dec edi
    jnz probe_loop
{paging_setup}
    ; ---- kernel relocation: hot memcpy loops --------------------------
    ; source and destination behind different pointer registers with a
    ; two-element unroll: the next load hoists above the previous store
    ; only under speculative reordering (Figures 2 and 3)
    mov edi, {profile.memcpy_rounds}
kcopy_round:
    mov ebx, kimage
    mov ebp, kdest
    mov ecx, 0
kcopy_loop:
    ; relocation applies a cheap fixup to each word: a short
    ; load->compute->store chain, moderately reorder-sensitive
    loadx eax, [ebx+ecx*4]
    xor eax, ecx
    storex [ebp+ecx*4], eax
    loadx edx, [ebx+ecx*4+4]
    xor edx, ecx
    storex [ebp+ecx*4+4], edx
    add esi, eax
    xor esi, edx
    add ecx, 2
    cmp ecx, {profile.memcpy_words}
    jne kcopy_loop
    dec edi
    jnz kcopy_round

    ; ---- system table initialization ---------------------------------
    mov edi, {profile.table_rounds}
tab_round:
    mov ebx, systab          ; descriptor source
    mov ebp, systab + 704    ; descriptor shadow copy
    mov ecx, 0
tab_loop:
    loadx eax, [ebx+ecx*4]
    shl eax, 3
    or eax, 5                ; descriptor present+dpl bits
    add eax, ecx
    storex [ebp+ecx*4], eax
    loadx edx, [ebx+ecx*4+4] ; next descriptor: hoists over the store
    xor esi, edx
    inc ecx
    cmp ecx, 159
    jne tab_loop
    dec edi
    jnz tab_round
    mov ebx, 0

    ; ---- driver initialization: code and data on shared pages ---------
{driver_loop}

    ; ---- disk/DMA paging traffic --------------------------------------
    mov ebx, 0
    mov edi, {profile.dma_rounds}
dma_round:
    mov eax, kimage
    out 0x50                   ; DMA source
    mov eax, dmadest
    out 0x51                   ; DMA destination
    mov eax, 256
    out 0x52                   ; length
    mov eax, 1
    out 0x53                   ; go
dma_wait:
    in 0x53
    test eax, eax
    jnz dma_wait
    load eax, [ebx+dmadest]
    xor esi, eax
    dec edi
    jnz dma_round

    ; ---- timer interrupts: idle until enough ticks ---------------------
    mov ebx, tickcount
    storei [ebx], 0
    mov eax, {profile.timer_period}
    out 0x40                   ; timer period
    mov eax, 1
    out 0x41                   ; timer on
    sti
idle_loop:
    mov ebx, tickcount
    load eax, [ebx]
    cmp eax, {profile.timer_ticks}
    jl idle_loop
    cli
    mov eax, 0
    out 0x41                   ; timer off
    add esi, eax

    call print_checksum
    cli
    hlt

cold_entry:
{cold}
    ret

timer_isr:
    push eax
    push ebx
    mov ebx, tickcount
    load eax, [ebx]
    inc eax
    store [ebx], eax
    mov eax, 0x20
    out 0x20                   ; EOI
    pop ebx
    pop eax
    iret

dma_isr:
    push eax
    mov eax, 0x20
    out 0x20
    pop eax
    iret

{driver_routines}
{RUNTIME_LIBRARY}

{kernel_image}
kdest:
    .space {profile.memcpy_words * 4}
systab:
    .space 1408
dmadest:
    .space 1024
tickcount:
    .word 0
"""
    return Workload(
        name=profile.name,
        category="boot",
        source=source,
        description=f"synthetic OS boot ({profile.name})",
    )


# Per-OS intensity profiles.  Knob meanings are described on
# BootProfile; relative settings aim to reproduce the figures' spread.
BOOT_PROFILES = {
    "dos_boot": BootProfile(
        "dos_boot", cold_init_blocks=2, probe_rounds=20, memcpy_rounds=45,
        memcpy_words=160, table_rounds=8, driver_routines=3,
        driver_rounds=20, timer_ticks=3, dma_rounds=1,
    ),
    "linux_boot": BootProfile(
        "linux_boot", cold_init_blocks=10, probe_rounds=25,
        memcpy_rounds=4, table_rounds=4, driver_routines=4,
        driver_rounds=15, timer_ticks=4, dma_rounds=4, paging=True,
    ),
    "os2_boot": BootProfile(
        "os2_boot", cold_init_blocks=7, probe_rounds=30, memcpy_rounds=12,
        table_rounds=8, driver_routines=5, driver_rounds=25,
        timer_ticks=4, dma_rounds=3,
    ),
    "win95_boot": BootProfile(
        "win95_boot", cold_init_blocks=10, probe_rounds=40,
        memcpy_rounds=5, table_rounds=5, driver_routines=8,
        driver_rounds=70, timer_ticks=4, dma_rounds=3,
    ),
    "win98_boot": BootProfile(
        "win98_boot", cold_init_blocks=6, probe_rounds=40,
        memcpy_rounds=28, table_rounds=12, driver_routines=8,
        driver_rounds=80, timer_ticks=5, dma_rounds=4,
    ),
    "winme_boot": BootProfile(
        "winme_boot", cold_init_blocks=4, probe_rounds=35,
        memcpy_rounds=40, memcpy_words=224, table_rounds=16,
        driver_routines=7, driver_rounds=60, timer_ticks=5, dma_rounds=4,
    ),
    "winnt_boot": BootProfile(
        "winnt_boot", cold_init_blocks=10, probe_rounds=30,
        memcpy_rounds=7, table_rounds=6, driver_routines=5,
        driver_rounds=25, timer_ticks=5, dma_rounds=5, paging=True,
    ),
    "winxp_boot": BootProfile(
        "winxp_boot", cold_init_blocks=8, probe_rounds=35,
        memcpy_rounds=30, table_rounds=14, driver_routines=6,
        driver_rounds=40, timer_ticks=6, dma_rounds=5, paging=True,
    ),
}


def make_all_boots() -> dict[str, Workload]:
    return {name: make_boot(profile)
            for name, profile in BOOT_PROFILES.items()}
