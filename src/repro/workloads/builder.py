"""Assembly-generation helpers shared by the workload suite."""

from __future__ import annotations

import random

STACK_TOP = 0x0007F000
DATA_BASE = 0x00100000  # workload data arena (well above code)

# Standard library routines appended to every workload: hex-printing of
# the ESI checksum through the console port, so runs are comparable.
RUNTIME_LIBRARY = """
; --- standard workload runtime ---------------------------------------
print_checksum:              ; prints ESI as 8 hex digits + newline
    mov ecx, 8
pc_loop:
    rol esi, 4
    mov eax, esi
    and eax, 0xF
    cmp eax, 10
    jl pc_digit
    add eax, 'A' - 10
    jmp pc_emit
pc_digit:
    add eax, '0'
pc_emit:
    out 0xE9
    dec ecx
    jnz pc_loop
    mov eax, 10              ; '\\n'
    out 0xE9
    ret
"""


# Macro library for interrupt-driven scenarios (see repro.scenarios).
# Included once per program; expansions are textual, so these cost
# nothing unless invoked.
MACRO_LIBRARY = """
; --- scenario macro library ------------------------------------------
.macro eoi                   ; acknowledge the PIC (clobbers EAX)
    mov eax, 0x20
    out 0x20
.endm
.macro isr_save              ; scratch registers an ISR may clobber
    push eax
    push ecx
    push edx
    push ebx
.endm
.macro isr_restore
    pop ebx
    pop edx
    pop ecx
    pop eax
.endm
.macro mix reg               ; fold reg into the ESI checksum
    xor esi, reg
    rol esi, 5
    add esi, 0x9E3779B9
.endm
.macro spin_until cell, bound  ; busy-wait until [cell] >= bound
spin_\\@:
    mov eax, cell
    load eax, [eax]
    cmp eax, bound
    jb spin_\\@
.endm
"""


def wrap(body: str, data: str = "", org: int = 0x1000,
         stack: int = STACK_TOP) -> str:
    """Wrap a workload body in the standard prologue and epilogue.

    The body runs with ESP initialized and is expected to leave its
    checksum in ESI; the wrapper prints it and halts.
    """
    return f"""
.org {org:#x}
start:
    mov esp, {stack:#x}
    mov esi, 0
{body}
    call print_checksum
    cli
    hlt
{RUNTIME_LIBRARY}
{data}
"""


def word_table(label: str, values, org: int | None = None) -> str:
    """Emit a .word table, 12 values per line."""
    lines = [f".org {org:#x}" if org is not None else "", f"{label}:"]
    values = list(values)
    for i in range(0, len(values), 12):
        chunk = ", ".join(str(v & 0xFFFFFFFF) for v in values[i:i + 12])
        lines.append(f"    .word {chunk}")
    return "\n".join(line for line in lines if line)


def random_words(seed: int, count: int,
                 limit: int = 0xFFFFFFFF) -> list[int]:
    """Deterministic pseudo-random table contents."""
    rng = random.Random(seed)
    return [rng.randint(0, limit) for _ in range(count)]


def mix_checksum(register: str = "eax") -> str:
    """Fold a value into the running ESI checksum (xor/rotate/add mix
    so that repeated values do not cancel out)."""
    return f"""
    xor esi, {register}
    rol esi, 5
    add esi, 0x9E3779B9
"""
