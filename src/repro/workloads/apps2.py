"""Additional application workloads completing the Appendix-A suite.

SPECcpu92 kernels (espresso, li, spice2g6, su2cor, wave5), the
remaining Winstone productivity applications (Access, PowerPoint,
Navigator, Corel), and the WindowsME help workload.  Several use the
SETcc/CMOVcc families, as compiled x86 productivity code does.
"""

from __future__ import annotations

from repro.workloads.base import Workload
from repro.workloads.builder import (
    DATA_BASE,
    mix_checksum,
    random_words,
    word_table,
    wrap,
)

ARENA = DATA_BASE


def espresso_like(scale: int = 1) -> Workload:
    """Two-level logic minimization: cube containment checks
    (SPECcpu92 espresso flavour) — bit ops plus SETcc accumulation."""
    cubes = word_table("cubes", random_words(201, 256), org=ARENA)
    body = f"""
    mov edi, {14 * scale}
es_pass:
    mov ebx, cubes
    mov ecx, 0
es_loop:
    loadx eax, [ebx+ecx*4]        ; cube A
    loadx edx, [ebx+ecx*4+4]      ; cube B
    ; containment: A & B == A  ->  A covered by B
    mov ebp, eax
    and ebp, edx
    cmp ebp, eax
    sete ebp                      ; covered?
    add esi, ebp
    ; distance-1 merge test: popcount(A ^ B) == 1 approximated by
    ; power-of-two check on the difference
    xor eax, edx
    mov edx, eax
    dec edx
    test eax, edx
    setz edx
    add esi, edx
    rol esi, 1
    add esi, 0x9E3779B9
    inc ecx
    cmp ecx, 254
    jne es_loop
    dec edi
    jnz es_pass
"""
    return Workload("espresso", "app", wrap(body, cubes),
                    "logic minimization kernel (SPECcpu92 espresso)")


def li_like(scale: int = 1) -> Workload:
    """Lisp interpreter: tagged-cell dispatch and cons-walking
    (SPECcpu92 li flavour)."""
    # Cells: [tag, payload] pairs; tag 0 = number, 1 = cons (payload is
    # a cell index), 2 = symbol.
    cells = []
    values = random_words(202, 160, 0xFFFF)
    for i in range(160):
        tag = values[i] % 3
        payload = (values[i] >> 4) % 160 if tag == 1 else values[i]
        cells.append(tag)
        cells.append(payload)
    table = word_table("cells", cells, org=ARENA)
    body = f"""
    mov edi, {420 * scale}
    mov edx, 0                    ; current cell index
li_loop:
    mov ebx, cells
    mov eax, edx
    shl eax, 3                    ; 8 bytes per cell
    add ebx, eax
    load eax, [ebx]               ; tag
    load ebp, [ebx+4]             ; payload
    cmp eax, 1
    je li_cons
    cmp eax, 0
    je li_number
    ; symbol: hash it into the checksum
    xor esi, ebp
    rol esi, 7
    jmp li_next
li_number:
    add esi, ebp
    jmp li_next
li_cons:
    mov edx, ebp                  ; follow the cons pointer
    xor esi, 0x11
    jmp li_step
li_next:
    inc edx
li_step:
    ; keep the index in range
    mov eax, edx
    cmp eax, 160
    jb li_ok
    mov edx, 0
li_ok:
    dec edi
    jnz li_loop
"""
    return Workload("li", "app", wrap(body, table),
                    "Lisp cell dispatch kernel (SPECcpu92 li)")


def spice_like(scale: int = 1) -> Workload:
    """Sparse matrix-vector products (SPECcpu92 spice2g6 flavour)."""
    # Sparse rows: (column index, value) pairs, 4 nonzeros per row.
    entries = []
    values = random_words(203, 256, 0xFFF)
    for i in range(128):
        entries.append(values[i] % 64)  # column
        entries.append(values[i + 128])  # value
    matrix = word_table("matrix", entries, org=ARENA)
    vector = word_table("vector", random_words(204, 64, 0xFFF))
    body = f"""
    mov edi, {30 * scale}
sp_pass:
    mov ebx, matrix
    mov ebp, vector
    mov ecx, 0
    mov edx, 0                    ; row accumulator
sp_loop:
    loadx eax, [ebx+ecx*8]        ; column index
    loadx eax, [ebp+eax*4]        ; vector[column] (indirect)
    push eax
    loadx eax, [ebx+ecx*8+4]      ; value
    pop edx
    imul eax, edx
    sar eax, 6
    add esi, eax
    rol esi, 1
    inc ecx
    cmp ecx, 128
    jne sp_loop
    dec edi
    jnz sp_pass
"""
    data = f"{matrix}\n{vector}\n"
    return Workload("spice2g6", "app", wrap(body, data),
                    "sparse matrix-vector kernel (SPECcpu92 spice2g6)")


def su2cor_like(scale: int = 1) -> Workload:
    """Lattice field update with nearest neighbours (su2cor flavour)."""
    lattice = word_table("lattice", random_words(205, 260, 0xFFFF),
                         org=ARENA)
    body = f"""
    mov edi, {14 * scale}
su_pass:
    mov ebx, lattice
    mov ebp, latout
    mov ecx, 1
su_loop:
    mov edx, ecx
    dec edx
    loadx eax, [ebx+edx*4]        ; left neighbour
    loadx edx, [ebx+ecx*4+4]      ; right neighbour
    add eax, edx
    loadx edx, [ebx+ecx*4]        ; self
    imul edx, 3
    add eax, edx
    imul eax, 0x3334              ; /5 in fixed point
    shr eax, 16
    storex [ebp+ecx*4], eax
    xor esi, eax
    rol esi, 1
    inc ecx
    cmp ecx, 258
    jne su_loop
    dec edi
    jnz su_pass
"""
    data = f"{lattice}\nlatout:\n    .space 1056\n"
    return Workload("su2cor", "app", wrap(body, data),
                    "lattice update kernel (SPECcpu92 su2cor)")


def wave5_like(scale: int = 1) -> Workload:
    """Particle-in-cell field scatter/gather (wave5 flavour)."""
    particles = word_table("particles", random_words(206, 128, 255),
                           org=ARENA)
    body = f"""
    mov edi, {24 * scale}
wv_pass:
    mov ebx, particles
    mov ebp, field
    mov ecx, 0
wv_loop:
    loadx eax, [ebx+ecx*4]        ; particle cell index (0..255)
    ; gather the field at the particle, update, scatter back
    loadx edx, [ebp+eax*4]
    add edx, ecx
    and edx, 0xFFFF
    storex [ebp+eax*4], edx
    xor esi, edx
    rol esi, 1
    inc ecx
    cmp ecx, 128
    jne wv_loop
    dec edi
    jnz wv_pass
"""
    data = f"{particles}\nfield:\n    .space 1024\n"
    return Workload("wave5", "app", wrap(body, data),
                    "particle-in-cell kernel (SPECcpu92 wave5)")


def access_like(scale: int = 1) -> Workload:
    """Database record filtering with branchless predicates
    (Winstone Access flavour) — heavy on SETcc/CMOVcc."""
    records = word_table("records", random_words(207, 300, 100_000),
                         org=ARENA)
    body = f"""
    mov edi, {12 * scale}
ac_pass:
    mov ebx, records
    mov ecx, 0
    mov edx, 0                    ; match count
    mov ebp, 0                    ; running max
ac_loop:
    loadx eax, [ebx+ecx*4]
    ; branchless predicate count: 1000 <= value < 50000
    push eax
    cmp eax, 1000
    setae eax
    add edx, eax
    pop eax
    ; branchless running max
    cmp eax, ebp
    cmova ebp, eax
    inc ecx
    cmp ecx, 300
    jne ac_loop
    xor esi, edx
    add esi, ebp
    rol esi, 5
    dec edi
    jnz ac_pass
"""
    return Workload("access", "app", wrap(body, records),
                    "record filtering kernel (Winstone Access)")


def powerpoint_like(scale: int = 1) -> Workload:
    """Shape transform and clipping (Winstone PowerPoint flavour)."""
    points = word_table("points", random_words(208, 256, 1023), org=ARENA)
    body = f"""
    mov edi, {12 * scale}
pp_pass:
    mov ebx, points
    mov ebp, clipped
    mov ecx, 0
pp_loop:
    loadx eax, [ebx+ecx*4]
    ; scale by 3/2 and translate
    mov edx, eax
    shr edx, 1
    add eax, edx
    add eax, 37
    ; clip to [0, 1024), branchless
    mov edx, 1023
    cmp eax, edx
    cmova eax, edx
    storex [ebp+ecx*4], eax
    loadx edx, [ebx+ecx*4+4]  ; prefetch next point over the store
    add esi, eax
    xor esi, edx
    rol esi, 1
    inc ecx
    cmp ecx, 255
    jne pp_loop
    dec edi
    jnz pp_pass
"""
    data = f"{points}\nclipped:\n    .space 1040\n"
    return Workload("powerpoint", "app", wrap(body, data),
                    "shape transform kernel (Winstone PowerPoint)")


def navigator_like(scale: int = 1) -> Workload:
    """HTML-ish tokenizer: byte scanning with class lookup
    (Winstone Navigator flavour)."""
    # A synthetic byte stream of printable characters and brackets.
    stream = random_words(209, 384, 0x5F)
    text = word_table("stream", [(b % 0x5F) + 0x20 for b in stream],
                      org=ARENA)
    body = f"""
    mov edi, {10 * scale}
nv_pass:
    mov ebx, stream
    mov ecx, 0
    mov edx, 0                    ; tag depth
nv_loop:
    loadx eax, [ebx+ecx*4]
    and eax, 0x7F
    cmp eax, '<'
    jne nv_not_open
    inc edx
    jmp nv_advance
nv_not_open:
    cmp eax, '>'
    jne nv_text
    ; branchless saturating decrement of the depth
    mov ebp, edx
    dec ebp
    cmp edx, 0
    cmovne edx, ebp
    jmp nv_advance
nv_text:
    xor esi, eax
    rol esi, 1
nv_advance:
    add esi, edx
    inc ecx
    cmp ecx, 384
    jne nv_loop
    dec edi
    jnz nv_pass
"""
    return Workload("navigator", "app", wrap(body, text),
                    "tokenizer kernel (Winstone Navigator)")


def corel_like(scale: int = 1) -> Workload:
    """Vector-graphics path flattening (Winstone Corel flavour), with
    path statistics on the code page — a Table-1 style mixed page."""
    paths = word_table("paths", random_words(210, 200, 0x3FF), org=ARENA)
    body = f"""
    mov edi, {12 * scale}
co_pass:
    mov ebx, paths
    mov ebp, flat
    mov ecx, 0
co_loop:
    loadx eax, [ebx+ecx*4]        ; control point
    loadx edx, [ebx+ecx*4+4]
    add eax, edx
    shr eax, 1                    ; midpoint subdivision
    storex [ebp+ecx*4], eax
    loadx edx, [ebx+ecx*4+8]  ; next control point over the store
    add esi, eax
    xor esi, edx
    rol esi, 1
    inc ecx
    cmp ecx, 198
    jne co_loop
    ; per-pass statistics on the code page (own granule)
    mov ebx, co_stats
    load eax, [ebx]
    inc eax
    store [ebx], eax
    dec edi
    jnz co_pass
    jmp co_done
.align 64
co_stats:
    .word 0
.space 60
co_done:
"""
    data = f"{paths}\nflat:\n    .space 816\n"
    return Workload("corel", "app", wrap(body, data),
                    "path flattening kernel (Winstone Corel)")


def winme_help_like(scale: int = 1) -> Workload:
    """Help-viewer rendering: string search plus table walk
    (the paper's 'WindowsME help' miscellaneous workload)."""
    haystack = word_table(
        "haystack", [(v % 26) + 0x61 for v in random_words(211, 512)],
        org=ARENA)
    body = f"""
    mov edi, {8 * scale}
wh_pass:
    mov ebx, haystack
    mov ecx, 0
    mov edx, 0                    ; matches of the pattern 'he'
wh_loop:
    loadx eax, [ebx+ecx*4]
    and eax, 0x7F
    cmp eax, 'h'
    jne wh_next
    mov ebp, ecx
    inc ebp
    loadx eax, [ebx+ebp*4]
    and eax, 0x7F
    cmp eax, 'e'
    sete eax
    add edx, eax
wh_next:
    inc ecx
    cmp ecx, 511
    jne wh_loop
    xor esi, edx
    rol esi, 9
    dec edi
    jnz wh_pass
"""
    return Workload("winme_help", "app", wrap(body, haystack),
                    "help viewer kernel (WindowsME help)")


EXTRA_APP_FACTORIES = {
    "espresso": espresso_like,
    "li": li_like,
    "spice2g6": spice_like,
    "su2cor": su2cor_like,
    "wave5": wave5_like,
    "access": access_like,
    "powerpoint": powerpoint_like,
    "navigator": navigator_like,
    "corel": corel_like,
    "winme_help": winme_help_like,
}
