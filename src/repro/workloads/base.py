"""Workload model and runner."""

from __future__ import annotations

from dataclasses import dataclass

from repro.cms.config import CMSConfig
from repro.cms.system import CodeMorphingSystem
from repro.machine import Machine, MachineConfig


@dataclass
class Workload:
    """One guest program with its machine requirements."""

    name: str
    category: str  # "boot" | "app" | "game"
    source: str
    description: str = ""
    max_instructions: int = 20_000_000
    machine_config: MachineConfig | None = None

    def build_machine(self) -> tuple[Machine, int]:
        machine = Machine(self.machine_config)
        entry = machine.load_source(self.source)
        return machine, entry


@dataclass
class WorkloadResult:
    """Outcome of running a workload under one configuration."""

    workload: Workload
    system: CodeMorphingSystem
    halted: bool
    guest_instructions: int
    console_output: str
    total_molecules: int
    frames: int = 0

    @property
    def mpx(self) -> float:
        """Molecules executed per guest instruction (the paper's metric)."""
        if self.guest_instructions == 0:
            return 0.0
        return self.total_molecules / self.guest_instructions

    def degradation_vs(self, baseline: "WorkloadResult") -> float:
        """Relative slowdown against a baseline run (e.g. Figure 2/3)."""
        if baseline.total_molecules == 0:
            return 0.0
        return (self.total_molecules - baseline.total_molecules) \
            / baseline.total_molecules


def run_workload(workload: Workload,
                 config: CMSConfig | None = None) -> WorkloadResult:
    """Run a workload to completion under the given configuration."""
    config = config or CMSConfig()
    machine, entry = workload.build_machine()
    system = CodeMorphingSystem(machine, config)
    result = system.run(entry, max_instructions=workload.max_instructions)
    system.shutdown()  # persists the warm-start snapshot when configured
    frames = machine.framebuffer.frames if machine.framebuffer else 0
    return WorkloadResult(
        workload=workload,
        system=system,
        halted=result.halted,
        guest_instructions=result.guest_instructions,
        console_output=result.console_output,
        total_molecules=result.stats.total_molecules(config.cost),
        frames=frames,
    )
