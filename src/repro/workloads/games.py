"""Game workloads: the self-modifying-code stress cases.

``quake_demo2`` models the paper's Quake benchmark: a renderer whose
blit inner loop has its immediate fields patched before entry each
frame (the Doom/Premiere stylized-SMC pattern, §3.6.4), game-logic
state stored beside its own code (the self-revalidation case, §3.6.2),
and output through the memory-mapped framebuffer with a frame-flip
port.  Frame rate = frames retired per million molecule-equivalents.

``blt_driver`` models the Windows/9X device-independent BLT driver
(§3.6.5): one routine is rewritten among N precompiled variants and
translation groups should reactivate old versions instead of
retranslating.
"""

from __future__ import annotations

from repro.workloads.base import Workload
from repro.workloads.builder import (
    DATA_BASE,
    RUNTIME_LIBRARY,
    STACK_TOP,
    random_words,
    word_table,
)

FRAMEBUFFER = 0xA0000


def quake_demo2(scale: int = 1, frames: int | None = None) -> Workload:
    # Long enough that the one-time SMC adaptation cost (stylized
    # retranslation, revalidation flagging) amortizes, as it does over
    # the paper's minutes-long demo run.
    frames = frames if frames is not None else 60 * scale
    texture = word_table("texture", random_words(42, 64, 0xFF),
                         org=DATA_BASE)
    source = f"""
.org 0x1000
start:
    mov esp, {STACK_TOP:#x}
    mov esi, 0
    mov edi, 0                 ; frame counter

frame_loop:
    ; ---- per-frame setup: patch the blit kernel's immediates ---------
    mov eax, edi
    imul eax, 0x01010101
    and eax, 0x3F3F3F3F
    mov ebx, color_site + 2    ; imm32 field of 'add edx, COLOR'
    store [ebx], eax
    mov eax, edi
    and eax, 7
    mov ebx, bias_site + 2     ; imm32 field of 'xor edx, BIAS'
    store [ebx], eax

    ; ---- game logic: entity state lives beside its own code ----------
    call update_entities

    ; ---- render 4 spans of 64 texels into the RAM back buffer --------
    mov ebp, 0                 ; span
span_loop:
    mov ecx, 0
    mov ebx, 0
texel_loop:
    loadx edx, [ebx+ecx*4+texture]
color_site:
    add edx, 0x10101010        ; immediate patched every frame
bias_site:
    xor edx, 0x00000000        ; immediate patched every frame
    mov eax, ebp
    shl eax, 6
    add eax, ecx
    mov ebx, backbuf
    storebx [ebx+eax*1], edx
    mov ebx, 0
    inc ecx
    cmp ecx, 64
    jne texel_loop
    inc ebp
    cmp ebp, 4
    jne span_loop

    ; ---- blit the back buffer to the memory-mapped framebuffer -------
    mov ecx, 0
    mov ebp, {FRAMEBUFFER:#x}
    mov ebx, backbuf
blit_loop:
    loadbx eax, [ebx+ecx*1]
    storebx [ebp+ecx*1], eax
    add esi, eax
    inc ecx
    cmp ecx, 256
    jne blit_loop
    mov eax, 1
    out 0xF0                   ; frame flip

    inc edi
    cmp edi, {frames}
    jne frame_loop

    call print_checksum
    cli
    hlt

; Game logic whose working state shares granules with its code: the
; per-frame stores here are the paper's "data stores in the same region
; as code" (§3.6.2).
update_entities:
    mov ebx, entity_state
    mov ecx, 0
ent_loop:
    loadx eax, [ebx+ecx*4]
    add eax, ecx
    rol eax, 1
    storex [ebx+ecx*4], eax
    xor esi, eax
    inc ecx
    cmp ecx, 4
    jne ent_loop
    ret
.align 64
entity_state:                  ; same page as the code, own granule
    .word 1, 2, 3, 4

{RUNTIME_LIBRARY}

{texture}
backbuf:
    .space 256
"""
    return Workload("quake_demo2", "game", source,
                    "self-modifying software renderer (Quake Demo2)")


def blt_driver(scale: int = 1, versions: int = 8) -> Workload:
    """Multi-version blitter: §3.6.5's translation-group workload.

    ``versions`` precompiled variants of the inner operation are copied
    over the live routine in rotation; each variant is then executed
    hot.  The paper saw up to 33 versions in the Windows/9X BLT driver.
    """
    # Variant bodies: op over (eax, edx) — all RR-format, same length.
    ops = ["add", "sub", "xor", "or", "and", "adc", "sbb", "imul"]
    variant_blobs = []
    for v in range(versions):
        op = ops[v % len(ops)]
        variant_blobs.append(f"""
variant_{v}:
    {op} eax, edx
    rol eax, {v % 7 + 1}
    ret
""")
    variants = "\n".join(variant_blobs)
    rounds = 18 * scale

    source = f"""
.org 0x1000
VARIANT_LEN = 6               ; {ops[0]} (2) + rol (3) + ret (1)
start:
    mov esp, {STACK_TOP:#x}
    mov esi, 0
    mov edi, 0                 ; round counter

round_loop:
    ; ---- select and install the variant for this round ----------------
    mov eax, edi
    mov edx, 0
    mov ecx, {versions}
    div ecx                    ; edx = round % versions
    mov eax, edx
    imul eax, VARIANT_LEN
    add eax, variant_0         ; source of this variant's bytes
    ; copy VARIANT_LEN bytes over the live routine
    mov ecx, 0
install_loop:
    mov ebx, eax
    add ebx, ecx
    loadb edx, [ebx]
    mov ebx, blt_op
    add ebx, ecx
    storeb [ebx], edx
    inc ecx
    cmp ecx, VARIANT_LEN
    jne install_loop

    ; ---- run the blit hot with the installed operation -----------------
    mov ebp, 0
    mov ebx, 0
blt_loop:
    loadx eax, [ebx+ebp*4+blt_src]
    mov edx, ebp
    call blt_op
    xor esi, eax
    rol esi, 1
    inc ebp
    cmp ebp, 96
    jne blt_loop

    inc edi
    cmp edi, {rounds}
    jne round_loop

    call print_checksum
    cli
    hlt

.align 64
blt_op:                        ; the rewritten routine (one variant long)
    add eax, edx
    rol eax, 1
    ret
.space 16

{variants}

{RUNTIME_LIBRARY}

{word_table("blt_src", random_words(77, 96), org=DATA_BASE)}
"""
    return Workload("blt_driver", "game", source,
                    "multi-version BLT driver (translation groups)")


GAME_FACTORIES = {
    "quake_demo2": quake_demo2,
    "blt_driver": blt_driver,
}
