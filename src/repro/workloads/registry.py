"""Workload registry.

Mirrors the paper's Appendix A benchmark list with this reproduction's
synthetic equivalents.  ``REPRO_SCALE`` (environment variable, default
1) multiplies workload iteration counts for longer, steadier runs.
"""

from __future__ import annotations

import os

from repro.workloads.apps import APP_FACTORIES
from repro.workloads.apps2 import EXTRA_APP_FACTORIES
from repro.workloads.base import Workload
from repro.workloads.boots import make_all_boots
from repro.workloads.games import GAME_FACTORIES


def _scale() -> int:
    try:
        return max(1, int(os.environ.get("REPRO_SCALE", "1")))
    except ValueError:
        return 1


def build_all(scale: int | None = None) -> dict[str, Workload]:
    scale = scale if scale is not None else _scale()
    workloads: dict[str, Workload] = {}
    workloads.update(make_all_boots())
    for name, factory in APP_FACTORIES.items():
        workloads[name] = factory(scale)
    for name, factory in EXTRA_APP_FACTORIES.items():
        workloads[name] = factory(scale)
    for name, factory in GAME_FACTORIES.items():
        workloads[name] = factory(scale)
    return workloads


ALL_WORKLOADS = build_all()
BOOT_WORKLOADS = {name: w for name, w in ALL_WORKLOADS.items()
                  if w.category == "boot"}
APP_WORKLOADS = {name: w for name, w in ALL_WORKLOADS.items()
                 if w.category == "app"}
GAME_WORKLOADS = {name: w for name, w in ALL_WORKLOADS.items()
                  if w.category == "game"}


def get_workload(name: str, scale: int | None = None) -> Workload:
    if scale is None:
        workload = ALL_WORKLOADS.get(name)
        if workload is None:
            raise KeyError(f"unknown workload {name!r}; "
                           f"known: {sorted(ALL_WORKLOADS)}")
        return workload
    return build_all(scale)[name]


def workload_names() -> list[str]:
    return sorted(ALL_WORKLOADS)
