"""Application workloads: SPECcpu-style kernels, productivity, media.

Each kernel is a t86 program exercising a characteristic memory/compute
mix, standing in for the paper's application benchmarks (Appendix A).
The interesting spread, for Figures 2 and 3, is in how much each kernel
benefits from speculative load/store reordering:

* ``tomcatv``/``wordperfect``/``compress`` interleave stores with loads
  whose addresses the translator cannot disambiguate — big wins from
  alias-hardware speculation, big degradation without it;
* ``ora``/``alvinn`` are arithmetic-dominated — small degradation;
* ``multimedia`` mixes buffer compute with memory-mapped framebuffer
  output.
"""

from __future__ import annotations

from repro.workloads.base import Workload
from repro.workloads.builder import (
    DATA_BASE,
    mix_checksum,
    random_words,
    word_table,
    wrap,
)

ARENA = DATA_BASE


def eqntott_like(scale: int = 1) -> Workload:
    """Bit-vector truth-table intersection (eqntott's inner loops).

    Input vectors and the output vector live behind *different pointer
    registers*, so the next element's input loads can only be hoisted
    above the previous element's output store by alias-hardware
    speculation (§3.5).
    """
    table_a = word_table("vec_a", random_words(101, 258), org=ARENA)
    table_b = word_table("vec_b", random_words(102, 258))
    body = f"""
    mov edi, {12 * scale}        ; passes
eq_pass:
    mov ebx, vec_a
    mov ebp, vec_out
    mov ecx, 0
eq_loop:
    ; element i: intersect, normalize, store
    loadx eax, [ebx+ecx*4]       ; a[i]
    loadx edx, [ebx+ecx*4+1032]  ; b[i] (vec_b follows vec_a)
    and eax, edx
    mov edx, eax
    shr edx, 16
    xor eax, edx                 ; fold high bits (real latency chain)
    imul eax, 0x9E3B
    storex [ebp+ecx*4], eax      ; out[i]
    xor esi, eax
    ; element i+1: loads hoist above out[i]'s store
    loadx eax, [ebx+ecx*4+4]
    loadx edx, [ebx+ecx*4+1036]
    and eax, edx
    mov edx, eax
    shr edx, 16
    xor eax, edx
    imul eax, 0x9E3B
    storex [ebp+ecx*4+4], eax
    add esi, eax
    add ecx, 2
    cmp ecx, 256
    jne eq_loop
    dec edi
    jnz eq_pass
"""
    data = f"{table_a}\n{table_b}\nvec_out:\n    .space 1040\n"
    return Workload("eqntott", "app", wrap(body, data),
                    "bit-vector intersection kernel (SPECcpu92 eqntott)")


def compress_like(scale: int = 1) -> Workload:
    """Hash-table compressor loop (SPECcpu92 compress flavour)."""
    input_table = word_table("cin", random_words(103, 512, 0xFF),
                             org=ARENA)
    body = f"""
    mov edi, {10 * scale}
cp_pass:
    mov ebx, cin
    mov ebp, ctab
    mov ecx, 0
    mov edx, 5381                ; running hash
cp_loop:
    ; symbol 1
    loadx eax, [ebx+ecx*4]       ; next input symbol
    shl edx, 5
    add edx, eax                 ; h = h*32 + c
    mov eax, edx
    and eax, 1023
    storex [ebp+eax*4], edx      ; update the code table at h
    ; probe the prefix table at a rotated hash: the addresses never
    ; truly collide, but the translator cannot prove it, so the load
    ; only hoists above the store via alias-hardware speculation
    mov eax, edx
    shr eax, 7
    and eax, 1023
    loadx eax, [ebp+eax*4+4096]
    xor esi, eax
    ; symbol 2 (unrolled: its input load and probe overlap symbol 1's
    ; table update only under speculation)
    loadx eax, [ebx+ecx*4+4]
    shl edx, 5
    add edx, eax
    mov eax, edx
    and eax, 1023
    storex [ebp+eax*4], edx
    mov eax, edx
    shr eax, 7
    and eax, 1023
    loadx eax, [ebp+eax*4+4096]
    {mix_checksum("eax")}
    add ecx, 2
    cmp ecx, 512
    jne cp_loop
    dec edi
    jnz cp_pass
"""
    data = f"{input_table}\nctab:\n    .space 8192\n"
    return Workload("compress", "app", wrap(body, data),
                    "hash-table compression kernel (SPECcpu92 compress)")


def sc_like(scale: int = 1) -> Workload:
    """Spreadsheet column recalculation (SPECcpu92 sc flavour)."""
    table = word_table("cells", random_words(104, 400, 10_000), org=ARENA)
    body = f"""
    mov edi, {14 * scale}
sc_pass:
    mov ecx, 1
sc_loop:
    ; cells[i] = cells[i-1] + cells[i]*3 (dependent recalculation)
    mov edx, ecx
    dec edx
    loadx eax, [ebx+edx*4+cells]
    loadx ebp, [ebx+ecx*4+cells]
    imul ebp, 3
    add eax, ebp
    storex [ebx+ecx*4+cells], eax
    inc ecx
    cmp ecx, 400
    jne sc_loop
    load eax, [ebx+cells+1596]   ; cells[399]
    {mix_checksum("eax")}
    dec edi
    jnz sc_pass
"""
    data = table
    return Workload("sc", "app", wrap(body, data),
                    "spreadsheet recalculation kernel (SPECcpu92 sc)")


def gcc_like(scale: int = 1) -> Workload:
    """Pointer-chasing with data-dependent branches (gcc flavour)."""
    # A ring of 128 nodes: [next, value] pairs, shuffled order.
    order = random_words(105, 128, 127)
    nodes = []
    for i in range(128):
        succ = (i * 17 + 5) % 128
        nodes.append(ARENA + succ * 8)  # next pointer
        nodes.append(order[i])  # value
    table = word_table("nodes", nodes, org=ARENA)
    body = f"""
    mov edi, {900 * scale}
    mov eax, nodes
gc_loop:
    load edx, [eax]          ; next
    load ebx, [eax+4]        ; value
    test ebx, 1
    jz gc_even
    add esi, ebx
    jmp gc_next
gc_even:
    xor esi, ebx
gc_next:
    rol esi, 3
    mov eax, edx
    dec edi
    jnz gc_loop
"""
    return Workload("gcc", "app", wrap(body, table),
                    "pointer-chasing compiler kernel (SPECcpu92 gcc)")


def tomcatv_like(scale: int = 1) -> Workload:
    """Mesh-relaxation stencil (SPECcpu92 tomcatv flavour).

    Stores to the output row are immediately re-read as inputs of the
    next element — exactly the pattern where alias speculation wins.
    """
    table = word_table("meshx", random_words(106, 604, 0xFFFF), org=ARENA)
    body = f"""
    mov edi, {8 * scale}
tv_pass:
    mov ebx, meshx
    mov ebp, meshy
    mov ecx, 0
tv_loop:
    ; element i: 3-point stencil from X with relaxation weighting,
    ; write Y — a long load->compute->store chain per element
    loadx eax, [ebx+ecx*4]
    loadx edx, [ebx+ecx*4+4]
    add eax, edx
    loadx edx, [ebx+ecx*4+8]
    add eax, edx
    imul eax, 0x5556             ; ~1/3 in fixed point
    shr eax, 16
    storex [ebp+ecx*4], eax
    xor esi, eax
    ; element i+1: its X loads hoist above the Y store (different
    ; pointer registers — unprovable disjointness, §3.5)
    loadx eax, [ebx+ecx*4+4]
    loadx edx, [ebx+ecx*4+8]
    add eax, edx
    loadx edx, [ebx+ecx*4+12]
    add eax, edx
    imul eax, 0x5556
    shr eax, 16
    storex [ebp+ecx*4+4], eax
    add esi, eax
    rol esi, 3
    add ecx, 2
    cmp ecx, 600
    jne tv_loop
    dec edi
    jnz tv_pass
"""
    data = f"{table}\nmeshy:\n    .space 2432\n"
    return Workload("tomcatv", "app", wrap(body, data),
                    "mesh stencil kernel (SPECcpu92 tomcatv)")


def ora_like(scale: int = 1) -> Workload:
    """Arithmetic-dominated ray tracer core (SPECcpu92 ora flavour)."""
    body = f"""
    mov edi, {2600 * scale}
    mov eax, 0x12345
or_loop:
    ; fixed-point Newton iteration-ish arithmetic, no memory traffic
    mov ebx, eax
    imul ebx, eax
    shr ebx, 8
    add ebx, 0x10001
    mov ecx, eax
    shl ecx, 1
    or ecx, 1
    mov edx, 0
    div ecx
    add eax, ebx
    rol eax, 7
    {mix_checksum("eax")}
    dec edi
    jnz or_loop
"""
    return Workload("ora", "app", wrap(body),
                    "arithmetic ray-tracing kernel (SPECcpu92 ora)")


def alvinn_like(scale: int = 1) -> Workload:
    """Neural-net dot products (SPECcpu92 alvinn flavour)."""
    weights = word_table("weights", random_words(107, 256, 0xFFFF),
                         org=ARENA)
    inputs = word_table("inputs", random_words(108, 256, 0xFFFF))
    body = f"""
    mov edi, {20 * scale}
al_pass:
    mov ebx, weights
    mov ebp, activations
    mov ecx, 0
    mov edx, 0               ; accumulator
al_loop:
    loadx eax, [ebx+ecx*4]        ; weight[i]
    imul eax, ecx
    add edx, eax
    storex [ebp+ecx*4], edx       ; activation[i]
    loadx eax, [ebx+ecx*4+4]      ; weight[i+1]: hoists over the store
    imul eax, ecx
    add edx, eax
    storex [ebp+ecx*4+4], edx
    inc ecx
    inc ecx
    cmp ecx, 256
    jne al_loop
    {mix_checksum("edx")}
    dec edi
    jnz al_pass
"""
    data = f"{weights}\n{inputs}\nactivations:\n    .space 1040\n"
    return Workload("alvinn", "app", wrap(body, data),
                    "neural-net dot-product kernel (SPECcpu92 alvinn)")


def mdljsp2_like(scale: int = 1) -> Workload:
    """Molecular-dynamics particle update (SPECcpu92 mdljsp2 flavour)."""
    positions = word_table("posn", random_words(109, 300, 0xFFFF),
                           org=ARENA)
    velocities = word_table("veln", random_words(110, 300, 0xFF))
    body = f"""
    mov edi, {12 * scale}
md_pass:
    mov ebx, posn
    mov ebp, veln
    mov ecx, 0
md_loop:
    ; particle i: force evaluation (multiply chain), integrate, store
    loadx eax, [ebx+ecx*4]
    loadx edx, [ebp+ecx*4]
    imul edx, 0x0101             ; force scaling
    sar edx, 8
    add eax, edx
    storex [ebx+ecx*4], eax
    sar edx, 1
    add edx, 3
    storex [ebp+ecx*4], edx
    xor esi, eax
    ; particle i+1: loads hoist over particle i's stores
    loadx eax, [ebx+ecx*4+4]
    loadx edx, [ebp+ecx*4+4]
    imul edx, 0x0101
    sar edx, 8
    add eax, edx
    storex [ebx+ecx*4+4], eax
    sar edx, 1
    add edx, 3
    storex [ebp+ecx*4+4], edx
    add esi, eax
    rol esi, 5
    add ecx, 2
    cmp ecx, 300
    jne md_loop
    dec edi
    jnz md_pass
"""
    data = f"{positions}\n{velocities}\n"
    return Workload("mdljsp2", "app", wrap(body, data),
                    "molecular dynamics kernel (SPECcpu92 mdljsp2)")


def multimedia_like(scale: int = 1) -> Workload:
    """Saturating pixel blend plus framebuffer output (MultimediaMark)."""
    frame_src = word_table("srcpix", random_words(111, 256, 0xFF),
                           org=ARENA)
    body = f"""
    mov edi, {12 * scale}
mm_frame:
    mov ebx, srcpix
    mov ebp, mixbuf
    mov ecx, 0
mm_loop:
    loadx eax, [ebx+ecx*4]
    loadx edx, [ebp+ecx*4]
    add eax, edx
    cmp eax, 255
    jbe mm_ok
    mov eax, 255
mm_ok:
    storex [ebp+ecx*4], eax
    loadx edx, [ebx+ecx*4+4]  ; next source pixel: hoists over the store
    add esi, edx
    {mix_checksum("eax")}
    inc ecx
    cmp ecx, 256
    jne mm_loop
    ; blit one scan segment to the memory-mapped framebuffer
    mov ecx, 0
    mov ebx, mixbuf
    mov ebp, 0xA0000
mm_blit:
    loadx eax, [ebx+ecx*4]
    storebx [ebp+ecx*1], eax
    inc ecx
    cmp ecx, 64
    jne mm_blit
    mov eax, 1
    out 0xF0                 ; frame flip
    ; frame statistics live on the code page (different granule): a
    ; per-frame store that page-granularity protection faults on
    mov ebx, mm_stats
    load eax, [ebx]
    inc eax
    store [ebx], eax
    load edx, [ebx+4]
    add edx, esi
    store [ebx+4], edx
    dec edi
    jnz mm_frame
    jmp mm_done
.align 64
mm_stats:
    .word 0, 0
.space 56
mm_done:
"""
    data = f"{frame_src}\nmixbuf:\n    .space 1024\n"
    return Workload("multimedia", "app", wrap(body, data),
                    "pixel blend + MMIO framebuffer (MultimediaMark99)")


def cpumark_like(scale: int = 1) -> Workload:
    """Synthetic CPU benchmark: tight store/load dependency chains."""
    body = f"""
    mov edi, {700 * scale}
    mov ebx, scratch
    mov ebp, scratch + 256
cm_loop:
    ; mixed ALU and memory work over two regions the translator cannot
    ; prove disjoint: a mid-sensitivity synthetic benchmark
    load eax, [ebx]
    imul eax, 13
    xor eax, edi
    store [ebp], eax
    load ecx, [ebx+4]
    add ecx, eax
    store [ebp+4], ecx
    load eax, [ebx+8]
    shr eax, 3
    add eax, ecx
    store [ebp+8], eax
    {mix_checksum("eax")}
    dec edi
    jnz cm_loop
"""
    data = f".org {ARENA:#x}\nscratch:\n    .space 512\n"
    return Workload("cpumark", "app", wrap(body, data),
                    "synthetic CPU benchmark (CpuMark99)")


def alias_stress(scale: int = 1) -> Workload:
    """§3.5's recurring-failure microbenchmark (not in the figures).

    ``edx`` aliases ``ebx`` exactly, but through arithmetic the
    translator cannot see through (edi is loop-variant): the hoisted
    re-reads violate their alias protection on *every* execution until
    adaptive retranslation pins the stores to program order.
    """
    body = f"""
    mov edi, {1400 * scale}
    mov ebx, scratch
as_loop:
    mov edx, ebx
    add edx, edi
    sub edx, edi
    store [ebx], edi
    load eax, [edx]
    add eax, 7
    store [ebx+4], eax
    load ecx, [edx+4]
    xor ecx, edi
    store [ebx+8], ecx
    load eax, [edx+8]
    {mix_checksum("eax")}
    dec edi
    jnz as_loop
"""
    data = f".org {ARENA:#x}\nscratch:\n    .space 64\n"
    return Workload("alias_stress", "app", wrap(body, data),
                    "always-aliasing speculation stress (§3.5)")


def quattro_like(scale: int = 1) -> Workload:
    """Spreadsheet app: cell grid updates with bounds branches."""
    grid = word_table("grid", random_words(112, 320, 1000), org=ARENA)
    body = f"""
    mov edi, {10 * scale}
qp_pass:
    mov ebx, grid            ; the row above
    mov ebp, grid + 64       ; the current row
    mov ecx, 0
qp_loop:
    loadx eax, [ebx+ecx*4]
    loadx edx, [ebp+ecx*4]
    add eax, edx
    cmp eax, 100000
    jl qp_store
    mov eax, 0
qp_store:
    storex [ebp+ecx*4], eax
    loadx edx, [ebx+ecx*4+4] ; next cell above: hoists over the store
    add esi, edx
    {mix_checksum("eax")}
    inc ecx
    cmp ecx, 300
    jne qp_loop
    ; recalculation statistics on the code page (own granule)
    mov ebx, qp_stats
    load eax, [ebx]
    inc eax
    store [ebx], eax
    load edx, [ebx+4]
    xor edx, esi
    store [ebx+4], edx
    dec edi
    jnz qp_pass
    jmp qp_done
.align 64
qp_stats:
    .word 0, 0
.space 56
qp_done:
"""
    return Workload("quattro_pro", "app", wrap(body, grid),
                    "spreadsheet grid updates (Winstone QuattroPro)")


def wordperfect_like(scale: int = 1) -> Workload:
    """Word processor: byte-level buffer editing (insert/shift)."""
    text = word_table("doc", random_words(113, 300, 0x7F), org=ARENA)
    body = f"""
    mov edi, {22 * scale}
wp_pass:
    ; shift a window of bytes right by one (memmove inner loop): source
    ; and destination pointers differ by one byte, so disjointness of
    ; the unrolled steps is real but unprovable
    mov ebx, docbytes        ; source cursor base
    mov ebp, docbytes + 1    ; destination cursor base
    mov ecx, 252
wp_shift:
    ; four bytes per iteration, each transformed (case-fold style)
    ; while shifting: the per-byte load->compute->store chains only
    ; overlap when later loads are hoisted over earlier stores
    loadbx eax, [ebx+ecx*1]
    add eax, 1
    and eax, 0x7F
    storebx [ebp+ecx*1], eax
    loadbx eax, [ebx+ecx*1-1]
    add eax, 1
    and eax, 0x7F
    storebx [ebp+ecx*1-1], eax
    loadbx eax, [ebx+ecx*1-2]
    add eax, 1
    and eax, 0x7F
    storebx [ebp+ecx*1-2], eax
    loadbx eax, [ebx+ecx*1-3]
    add eax, 1
    and eax, 0x7F
    storebx [ebp+ecx*1-3], eax
    sub ecx, 4
    jnz wp_shift
    ; fold the document into the checksum
    mov ecx, 0
wp_sum:
    loadbx eax, [ebx+ecx*1]
    add esi, eax
    rol esi, 1
    inc ecx
    cmp ecx, 255
    jne wp_sum
    dec edi
    jnz wp_pass
"""
    data = f"{text}\ndocbytes:\n    .space 512, 0x41\n"
    return Workload("wordperfect", "app", wrap(body, data),
                    "document buffer editing (Winstone WordPerfect)")


def crafty_like(scale: int = 1) -> Workload:
    """Board scanning with bit tricks (SPECint2000 crafty flavour)."""
    board = word_table("board", random_words(114, 64), org=ARENA)
    body = f"""
    mov edi, {160 * scale}
cr_pass:
    mov ecx, 0
cr_loop:
    loadx eax, [ebx+ecx*4+board]
    ; popcount-ish folding
    mov edx, eax
    shr edx, 1
    and edx, 0x55555555
    sub eax, edx
    mov edx, eax
    and eax, 0x33333333
    shr edx, 2
    and edx, 0x33333333
    add eax, edx
    {mix_checksum("eax")}
    inc ecx
    cmp ecx, 64
    jne cr_loop
    dec edi
    jnz cr_pass
"""
    return Workload("crafty", "app", wrap(body, board),
                    "bitboard scanning kernel (SPECint2000 crafty)")


APP_FACTORIES = {
    "eqntott": eqntott_like,
    "compress": compress_like,
    "sc": sc_like,
    "gcc": gcc_like,
    "tomcatv": tomcatv_like,
    "ora": ora_like,
    "alvinn": alvinn_like,
    "mdljsp2": mdljsp2_like,
    "multimedia": multimedia_like,
    "cpumark": cpumark_like,
    "alias_stress": alias_stress,
    "quattro_pro": quattro_like,
    "wordperfect": wordperfect_like,
    "crafty": crafty_like,
}
