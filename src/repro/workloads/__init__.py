"""Synthetic workload suite.

Stand-ins for the paper's benchmark set (Appendix A): OS boots,
SPECcpu-style kernels, Windows productivity applications, multimedia,
and the self-modifying game workloads.  Each workload is a complete t86
guest program plus machine setup; every workload prints a checksum to
the console so any two runs (different CMS configurations, or CMS vs
the pure interpreter) can be compared for correctness.
"""

from repro.workloads.base import Workload, WorkloadResult, run_workload
from repro.workloads.registry import (
    ALL_WORKLOADS,
    APP_WORKLOADS,
    BOOT_WORKLOADS,
    get_workload,
    workload_names,
)

__all__ = [
    "Workload",
    "WorkloadResult",
    "run_workload",
    "ALL_WORKLOADS",
    "APP_WORKLOADS",
    "BOOT_WORKLOADS",
    "get_workload",
    "workload_names",
]
