"""Binary decoder for t86 instructions.

``decode`` works over any object exposing ``fetch_byte(addr) -> int``
(an MMU-translating fetcher, a raw bytearray wrapper, ...) so that both
the interpreter (which must take page faults on instruction fetch) and
the translator (which reads through committed memory) share one decoder.
"""

from __future__ import annotations

from typing import Protocol

from repro.isa.exceptions import GuestException, invalid_opcode
from repro.isa.instruction import Instruction
from repro.isa.opcodes import BYTE_TABLE, Fmt

MASK32 = 0xFFFFFFFF


class ByteFetcher(Protocol):
    """Anything that can produce code bytes for the decoder."""

    def fetch_byte(self, addr: int) -> int:  # pragma: no cover - protocol
        ...


class BytesFetcher:
    """Adapter: decode out of a plain bytes-like object with a base address."""

    def __init__(self, data: bytes | bytearray, base: int = 0) -> None:
        self._data = data
        self._base = base

    def fetch_byte(self, addr: int) -> int:
        offset = addr - self._base
        if not 0 <= offset < len(self._data):
            raise IndexError(f"fetch outside buffer: {addr:#x}")
        return self._data[offset]


def _fetch_u16(fetch: ByteFetcher, addr: int) -> int:
    return fetch.fetch_byte(addr) | (fetch.fetch_byte(addr + 1) << 8)


def _fetch_u32(fetch: ByteFetcher, addr: int) -> int:
    return (
        fetch.fetch_byte(addr)
        | (fetch.fetch_byte(addr + 1) << 8)
        | (fetch.fetch_byte(addr + 2) << 16)
        | (fetch.fetch_byte(addr + 3) << 24)
    )


def _fetch_s32(fetch: ByteFetcher, addr: int) -> int:
    value = _fetch_u32(fetch, addr)
    return value - (1 << 32) if value & 0x80000000 else value


def decode(fetch: ByteFetcher, addr: int) -> Instruction:
    """Decode one instruction at guest address ``addr``.

    Raises ``GuestException`` (#UD) for an invalid opcode byte.  Fetch
    faults (e.g. #PF during instruction fetch) propagate from the
    fetcher.
    """
    opcode_byte = fetch.fetch_byte(addr)
    info = BYTE_TABLE[opcode_byte]
    if info is None:
        raise invalid_opcode(instr_addr=addr)
    op = info.op
    fmt = info.fmt
    if fmt is Fmt.NONE:
        return Instruction(op, addr=addr)
    if fmt is Fmt.R:
        reg = fetch.fetch_byte(addr + 1) & 0x0F
        _check_reg(reg, addr)
        return Instruction(op, r1=reg, addr=addr)
    if fmt is Fmt.RR:
        b = fetch.fetch_byte(addr + 1)
        r1, r2 = b >> 4, b & 0x0F
        _check_reg(r1, addr)
        _check_reg(r2, addr)
        return Instruction(op, r1=r1, r2=r2, addr=addr)
    if fmt is Fmt.RI:
        reg = fetch.fetch_byte(addr + 1) & 0x0F
        _check_reg(reg, addr)
        return Instruction(op, r1=reg, imm=_fetch_u32(fetch, addr + 2), addr=addr)
    if fmt is Fmt.RI8:
        reg = fetch.fetch_byte(addr + 1) & 0x0F
        _check_reg(reg, addr)
        return Instruction(op, r1=reg, imm=fetch.fetch_byte(addr + 2), addr=addr)
    if fmt is Fmt.RM:
        b = fetch.fetch_byte(addr + 1)
        r1, base = b >> 4, b & 0x0F
        _check_reg(r1, addr)
        _check_reg(base, addr)
        return Instruction(
            op, r1=r1, r2=base, disp=_fetch_s32(fetch, addr + 2), addr=addr
        )
    if fmt is Fmt.MR:
        b = fetch.fetch_byte(addr + 1)
        base, src = b >> 4, b & 0x0F
        _check_reg(base, addr)
        _check_reg(src, addr)
        return Instruction(
            op, r1=src, r2=base, disp=_fetch_s32(fetch, addr + 2), addr=addr
        )
    if fmt in (Fmt.RMX, Fmt.MRX):
        b = fetch.fetch_byte(addr + 1)
        c = fetch.fetch_byte(addr + 2)
        index, scale = c >> 4, c & 0x0F
        disp = _fetch_s32(fetch, addr + 3)
        if scale > 3:
            raise invalid_opcode(instr_addr=addr)
        if fmt is Fmt.RMX:
            r1, base = b >> 4, b & 0x0F
        else:
            base, r1 = b >> 4, b & 0x0F
        for reg in (r1, base, index):
            _check_reg(reg, addr)
        return Instruction(
            op,
            r1=r1,
            r2=base,
            index=index,
            scale_log2=scale,
            disp=disp,
            addr=addr,
        )
    if fmt is Fmt.MI:
        base = fetch.fetch_byte(addr + 1) & 0x0F
        _check_reg(base, addr)
        return Instruction(
            op,
            r2=base,
            disp=_fetch_s32(fetch, addr + 2),
            imm=_fetch_u32(fetch, addr + 6),
            addr=addr,
        )
    if fmt is Fmt.I32:
        return Instruction(op, imm=_fetch_u32(fetch, addr + 1), addr=addr)
    if fmt is Fmt.I16:
        return Instruction(op, imm=_fetch_u16(fetch, addr + 1), addr=addr)
    if fmt is Fmt.I8:
        return Instruction(op, imm=fetch.fetch_byte(addr + 1), addr=addr)
    if fmt is Fmt.REL:
        return Instruction(op, disp=_fetch_s32(fetch, addr + 1), addr=addr)
    raise AssertionError(f"unhandled format {fmt}")


def _check_reg(reg: int, addr: int) -> None:
    if reg > 7:
        raise invalid_opcode(instr_addr=addr)
