"""General-purpose register definitions for the t86 guest ISA.

The register numbering follows x86: EAX=0, ECX=1, EDX=2, EBX=3, ESP=4,
EBP=5, ESI=6, EDI=7.  ESP is the hardware stack pointer used implicitly
by ``push``/``pop``/``call``/``ret``/``int``/``iret``; ECX's low byte
(CL) is the implicit shift count for the ``shl r, cl`` family; EAX/EDX
are implicit in ``mul``/``div`` and port I/O, mirroring x86.
"""

from __future__ import annotations

EAX = 0
ECX = 1
EDX = 2
EBX = 3
ESP = 4
EBP = 5
ESI = 6
EDI = 7

NUM_REGS = 8

REG_NAMES = ("eax", "ecx", "edx", "ebx", "esp", "ebp", "esi", "edi")

_NAME_TO_NUM = {name: number for number, name in enumerate(REG_NAMES)}


def reg_name(number: int) -> str:
    """Return the assembly name for register ``number``."""
    if not 0 <= number < NUM_REGS:
        raise ValueError(f"register number out of range: {number}")
    return REG_NAMES[number]


def reg_number(name: str) -> int:
    """Return the register number for assembly name ``name``.

    Raises ``KeyError`` for unknown names; callers that parse user text
    (the assembler) catch this and report a syntax error.
    """
    return _NAME_TO_NUM[name.lower()]


def is_reg_name(name: str) -> bool:
    """Return True if ``name`` names a general-purpose register."""
    return name.lower() in _NAME_TO_NUM
