"""A two-pass text assembler for the t86 guest ISA.

All workloads in this reproduction are written in t86 assembly and
assembled to guest memory images, so that code genuinely lives as bytes
in guest RAM (a precondition for studying self-modifying code).

Syntax overview::

    ; line comment (also '#')
    .org 0x1000           ; set location counter
    .entry start          ; program entry point (default: label 'start')
    CONST = 40            ; symbol definition (also .equ CONST, 40)

    start:
        mov eax, CONST    ; register, immediate-expression operands
        load ebx, [eax+8] ; memory operands: [base], [base+disp],
        loadx ecx, [eax+ebx*4+table]   ; [base+index*scale+disp]
        store [eax], ebx
        storei [eax+4], 0x1234
        shl eax, 3
        shl eax, cl
        jne start
        out 0xE9
        hlt

    table:
        .word 1, 2, 3     ; 32-bit words
        .byte 0x41, "AB"  ; bytes and byte strings
        .ascii "hello"
        .space 64         ; zero fill
        .align 4096

Expressions support ``+``/``-`` over integers (decimal, 0x hex, 0b
binary, character literals) and symbols, including forward references.

Macros are expanded textually before parsing::

    .macro bump reg, delta
        add reg, delta
        jnc skip_\\@
        inc reg
    skip_\\@:
    .endm

        bump eax, 5       ; expands the body with reg=eax, delta=5

Parameters substitute on word boundaries; ``\\@`` substitutes a counter
that is unique per expansion, so labels defined inside a macro body do
not collide across invocations.  Macros may invoke other macros (depth
is bounded to catch accidental recursion).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.isa import registers
from repro.isa.encoder import encode
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Op, op_info
from repro.isa.registers import is_reg_name, reg_number

MASK32 = 0xFFFFFFFF


class AssemblyError(Exception):
    """A syntax or semantic error in assembly source."""

    def __init__(self, message: str, line: int | None = None) -> None:
        self.line = line
        prefix = f"line {line}: " if line is not None else ""
        super().__init__(prefix + message)


@dataclass
class Segment:
    """A contiguous run of assembled bytes at a fixed guest address."""

    base: int
    data: bytearray

    @property
    def end(self) -> int:
        return self.base + len(self.data)


@dataclass
class Program:
    """The result of assembling a source file."""

    segments: list[Segment] = field(default_factory=list)
    symbols: dict[str, int] = field(default_factory=dict)
    entry: int = 0

    def flatten(self, size: int | None = None) -> bytearray:
        """Return a flat image covering all segments from address 0."""
        top = max((seg.end for seg in self.segments), default=0)
        image = bytearray(size if size is not None else top)
        for seg in self.segments:
            if seg.end > len(image):
                raise AssemblyError(
                    f"segment at {seg.base:#x} exceeds image size {len(image):#x}"
                )
            image[seg.base : seg.end] = seg.data
        return image


# --------------------------------------------------------------------------
# Tokenizing helpers
# --------------------------------------------------------------------------

_LABEL_RE = re.compile(r"^([A-Za-z_.$][\w.$]*):")
_MACRO_NAME_RE = re.compile(r"^[A-Za-z_]\w*$")
_MACRO_HEAD_RE = re.compile(r"^([A-Za-z_]\w*)\s*,?\s*(.*)$")
_SYMDEF_RE = re.compile(r"^([A-Za-z_][\w.$]*)\s*=\s*(.+)$")
_MEM_RE = re.compile(r"^\[(.+)\]$")
_NUMBER_RE = re.compile(r"^[+-]?(0[xX][0-9a-fA-F]+|0[bB][01]+|\d+)$")


def _strip_comment(line: str) -> str:
    # Respect quotes so ';' inside string literals survives.
    out = []
    in_string = False
    for ch in line:
        if ch == '"':
            in_string = not in_string
        if ch in ";#" and not in_string:
            break
        out.append(ch)
    return "".join(out).strip()


def _split_operands(text: str) -> list[str]:
    """Split an operand list on commas, respecting [] and quotes."""
    operands: list[str] = []
    depth = 0
    in_string = False
    current = []
    for ch in text:
        if ch == '"':
            in_string = not in_string
        if ch == "[" and not in_string:
            depth += 1
        elif ch == "]" and not in_string:
            depth -= 1
        if ch == "," and depth == 0 and not in_string:
            operands.append("".join(current).strip())
            current = []
        else:
            current.append(ch)
    tail = "".join(current).strip()
    if tail:
        operands.append(tail)
    return operands


# --------------------------------------------------------------------------
# Macros
# --------------------------------------------------------------------------


@dataclass
class _MacroDef:
    """A ``.macro`` body captured verbatim for later expansion."""

    name: str
    params: tuple[str, ...]
    lines: list[str] = field(default_factory=list)
    defined_at: int = 0


_MACRO_DEPTH_LIMIT = 32


def _substitute_macro(text: str, mapping: dict[str, str], index: int) -> str:
    """Substitute macro parameters (word-bounded) and the ``\\@`` counter."""
    if mapping:
        pattern = re.compile(
            r"\b(" + "|".join(re.escape(p) for p in mapping) + r")\b"
        )
        text = pattern.sub(lambda m: mapping[m.group(1)], text)
    return text.replace("\\@", str(index))


# --------------------------------------------------------------------------
# Expressions
# --------------------------------------------------------------------------


class _Expr:
    """A +/- expression over numbers and symbols, resolved in pass 2."""

    def __init__(self, text: str, line: int) -> None:
        self.text = text.strip()
        self.line = line
        if not self.text:
            raise AssemblyError("empty expression", line)

    def evaluate(self, symbols: dict[str, int]) -> int:
        total = 0
        sign = 1
        token = ""
        terms: list[tuple[int, str]] = []

        def flush() -> None:
            nonlocal token, sign
            if token:
                terms.append((sign, token.strip()))
                token = ""
            sign = 1

        i = 0
        text = self.text
        while i < len(text):
            ch = text[i]
            if ch in "+-" and token.strip():
                flush()
                sign = 1 if ch == "+" else -1
            elif ch in "+-" and not token.strip():
                sign = sign if ch == "+" else -sign
            else:
                token += ch
            i += 1
        flush()
        if not terms:
            raise AssemblyError(f"bad expression: {self.text!r}", self.line)
        for term_sign, term in terms:
            total += term_sign * self._term(term, symbols)
        return total & MASK32

    def _term(self, term: str, symbols: dict[str, int]) -> int:
        if "*" in term:
            product = 1
            for factor in term.split("*"):
                product *= self._term(factor.strip(), symbols)
            return product
        if _NUMBER_RE.match(term):
            return int(term, 0)
        if len(term) == 3 and term[0] == "'" and term[2] == "'":
            return ord(term[1])
        if term in symbols:
            return symbols[term]
        raise AssemblyError(f"undefined symbol {term!r}", self.line)


# --------------------------------------------------------------------------
# Parsed items
# --------------------------------------------------------------------------


@dataclass
class _MemOperand:
    base: int
    index: int | None
    scale_log2: int
    disp: _Expr | None


@dataclass
class _Item:
    """One assembled unit: an instruction or a data directive payload."""

    line: int
    addr: int = 0
    size: int = 0

    def emit(self, symbols: dict[str, int]) -> bytes:  # pragma: no cover
        raise NotImplementedError


@dataclass
class _InstrItem(_Item):
    op: Op = Op.NOP
    r1: int = 0
    r2: int = 0
    index: int = 0
    scale_log2: int = 0
    disp_expr: _Expr | None = None
    imm_expr: _Expr | None = None
    rel_expr: _Expr | None = None

    def emit(self, symbols: dict[str, int]) -> bytes:
        disp = 0
        imm = 0
        if self.disp_expr is not None:
            disp = _signed32(self.disp_expr.evaluate(symbols))
        if self.imm_expr is not None:
            imm = self.imm_expr.evaluate(symbols)
        if self.rel_expr is not None:
            target = self.rel_expr.evaluate(symbols)
            disp = _signed32((target - (self.addr + self.size)) & MASK32)
        instr = Instruction(
            self.op,
            r1=self.r1,
            r2=self.r2,
            index=self.index,
            scale_log2=self.scale_log2,
            disp=disp,
            imm=imm,
            addr=self.addr,
        )
        return encode(instr)


@dataclass
class _DataItem(_Item):
    unit: int = 1  # bytes per element
    exprs: list[_Expr | bytes] = field(default_factory=list)

    def emit(self, symbols: dict[str, int]) -> bytes:
        out = bytearray()
        for expr in self.exprs:
            if isinstance(expr, bytes):
                out += expr
            else:
                value = expr.evaluate(symbols)
                out += value.to_bytes(self.unit, "little", signed=False)
        return bytes(out)


@dataclass
class _FillItem(_Item):
    fill: int = 0

    def emit(self, symbols: dict[str, int]) -> bytes:
        return bytes([self.fill & 0xFF]) * self.size


def _signed32(value: int) -> int:
    value &= MASK32
    return value - (1 << 32) if value & 0x80000000 else value


# --------------------------------------------------------------------------
# The assembler
# --------------------------------------------------------------------------

_ALU_RR_RI = {
    "add": (Op.ADD_RR, Op.ADD_RI),
    "sub": (Op.SUB_RR, Op.SUB_RI),
    "and": (Op.AND_RR, Op.AND_RI),
    "or": (Op.OR_RR, Op.OR_RI),
    "xor": (Op.XOR_RR, Op.XOR_RI),
    "cmp": (Op.CMP_RR, Op.CMP_RI),
    "test": (Op.TEST_RR, Op.TEST_RI),
    "adc": (Op.ADC_RR, Op.ADC_RI),
    "sbb": (Op.SBB_RR, Op.SBB_RI),
    "imul": (Op.IMUL_RR, Op.IMUL_RI),
}

_UNARY_R = {
    "not": Op.NOT_R,
    "neg": Op.NEG_R,
    "inc": Op.INC_R,
    "dec": Op.DEC_R,
    "mul": Op.MUL_R,
    "div": Op.DIV_R,
    "idiv": Op.IDIV_R,
    "setpt": Op.SETPT,
    "pop": Op.POP_R,
}

_SHIFTS = {
    "shl": (Op.SHL_RI8, Op.SHL_RCL),
    "shr": (Op.SHR_RI8, Op.SHR_RCL),
    "sar": (Op.SAR_RI8, Op.SAR_RCL),
    "rol": (Op.ROL_RI8, None),
    "ror": (Op.ROR_RI8, None),
}

_NO_OPERAND = {
    "nop": Op.NOP,
    "hlt": Op.HLT,
    "sti": Op.STI,
    "cli": Op.CLI,
    "iret": Op.IRET,
    "ret": Op.RET,
    "pushf": Op.PUSHF,
    "popf": Op.POPF,
    "pgon": Op.PGON,
    "pgoff": Op.PGOFF,
}

_CC_SUFFIXES = ("o", "no", "b", "ae", "e", "ne", "be", "a", "s", "ns",
                "p", "np", "l", "ge", "le", "g")
_SETCC = {f"set{cc}": Op(Op.SETO + i)
          for i, cc in enumerate(_CC_SUFFIXES)}
_SETCC["setz"] = Op.SETE
_SETCC["setnz"] = Op.SETNE
_SETCC["setc"] = Op.SETB
_SETCC["setnc"] = Op.SETAE
_CMOVCC = {f"cmov{cc}": Op(Op.CMOVO + i)
           for i, cc in enumerate(_CC_SUFFIXES)}
_CMOVCC["cmovz"] = Op.CMOVE
_CMOVCC["cmovnz"] = Op.CMOVNE
_CMOVCC["cmovc"] = Op.CMOVB
_CMOVCC["cmovnc"] = Op.CMOVAE

_JCC = {
    "jo": Op.JO, "jno": Op.JNO, "jb": Op.JB, "jc": Op.JB, "jae": Op.JAE,
    "jnc": Op.JAE, "je": Op.JE, "jz": Op.JE, "jne": Op.JNE, "jnz": Op.JNE,
    "jbe": Op.JBE, "ja": Op.JA, "js": Op.JS, "jns": Op.JNS, "jp": Op.JP,
    "jnp": Op.JNP, "jl": Op.JL, "jge": Op.JGE, "jle": Op.JLE, "jg": Op.JG,
}


class _Assembler:
    def __init__(self, source: str) -> None:
        self._source = source
        self._items: list[_Item] = []
        self._symbols: dict[str, int] = {}
        self._symbol_exprs: list[tuple[str, _Expr]] = []
        self._entry_expr: _Expr | None = None
        self._origin = 0
        self._location = 0
        self._segments: list[Segment] = []
        self._segment_items: list[list[_Item]] = []
        self._current_items: list[_Item] = []
        self._macros: dict[str, _MacroDef] = {}
        self._macro_def: _MacroDef | None = None
        self._expansions = 0
        self._depth = 0

    # -- pass 1 ------------------------------------------------------------

    def run(self) -> Program:
        self._start_segment(0)
        for line_no, raw in enumerate(self._source.splitlines(), start=1):
            self._parse_line(raw, line_no)
        if self._macro_def is not None:
            raise AssemblyError(
                f"macro {self._macro_def.name!r} is missing .endm",
                self._macro_def.defined_at,
            )
        self._finish_segment()
        for name, expr in self._symbol_exprs:
            self._symbols[name] = expr.evaluate(self._symbols)
        program = Program(symbols=dict(self._symbols))
        for segment, items in zip(self._segments, self._segment_items):
            for item in items:
                data = item.emit(self._symbols)
                if len(data) != item.size:
                    raise AssemblyError(
                        f"size mismatch emitting item ({len(data)} != {item.size})",
                        item.line,
                    )
                offset = item.addr - segment.base
                segment.data[offset : offset + item.size] = data
            program.segments.append(segment)
        if self._entry_expr is not None:
            program.entry = self._entry_expr.evaluate(self._symbols)
        elif "start" in self._symbols:
            program.entry = self._symbols["start"]
        elif program.segments:
            program.entry = program.segments[0].base
        return program

    def _start_segment(self, base: int) -> None:
        self._origin = base
        self._location = base
        self._current_items = []

    def _finish_segment(self) -> None:
        size = self._location - self._origin
        if size > 0 or self._current_items:
            self._segments.append(Segment(self._origin, bytearray(size)))
            self._segment_items.append(self._current_items)
        self._current_items = []

    def _append(self, item: _Item) -> None:
        item.addr = self._location
        self._location += item.size
        self._current_items.append(item)

    def _parse_line(self, raw: str, line: int) -> None:
        text = _strip_comment(raw)
        if self._macro_def is not None:
            # Collecting a macro body: capture lines verbatim until .endm.
            head = text.split(None, 1)[0].lower() if text else ""
            if head == ".endm":
                self._macros[self._macro_def.name] = self._macro_def
                self._macro_def = None
            elif head == ".macro":
                raise AssemblyError("nested .macro definitions", line)
            elif text:
                self._macro_def.lines.append(text)
            return
        while True:
            match = _LABEL_RE.match(text)
            if not match:
                break
            name = match.group(1)
            if name in self._symbols:
                raise AssemblyError(f"duplicate label {name!r}", line)
            self._symbols[name] = self._location
            text = text[match.end():].strip()
        if not text:
            return
        symdef = _SYMDEF_RE.match(text)
        if symdef and not text.split()[0].lower() in _ALL_MNEMONICS:
            self._symbol_exprs.append(
                (symdef.group(1), _Expr(symdef.group(2), line))
            )
            return
        if text.startswith("."):
            self._parse_directive(text, line)
            return
        head = text.split(None, 1)[0].lower()
        if head in self._macros:
            rest = text.split(None, 1)[1] if len(text.split(None, 1)) > 1 else ""
            self._expand_macro(self._macros[head], _split_operands(rest), line)
            return
        self._parse_instruction(text, line)

    # -- macros --------------------------------------------------------------

    def _define_macro(self, rest: str, line: int) -> None:
        match = _MACRO_HEAD_RE.match(rest.strip())
        if not match or not match.group(1):
            raise AssemblyError(".macro needs a name", line)
        name = match.group(1).lower()
        if name in _ALL_MNEMONICS or name in self._macros:
            raise AssemblyError(f"macro name {name!r} already in use", line)
        params = tuple(p for p in _split_operands(match.group(2)) if p)
        for param in params:
            if not _MACRO_NAME_RE.match(param):
                raise AssemblyError(f"bad macro parameter {param!r}", line)
        if len(set(params)) != len(params):
            raise AssemblyError("duplicate macro parameter", line)
        self._macro_def = _MacroDef(name=name, params=params, defined_at=line)

    def _expand_macro(
        self, macro: _MacroDef, operands: list[str], line: int
    ) -> None:
        if len(operands) != len(macro.params):
            raise AssemblyError(
                f"macro {macro.name!r} takes {len(macro.params)} "
                f"argument(s), got {len(operands)}",
                line,
            )
        if self._depth >= _MACRO_DEPTH_LIMIT:
            raise AssemblyError(
                f"macro expansion too deep in {macro.name!r} (recursive?)",
                line,
            )
        mapping = dict(zip(macro.params, operands))
        index = self._expansions
        self._expansions += 1
        self._depth += 1
        try:
            for body_line in macro.lines:
                self._parse_line(
                    _substitute_macro(body_line, mapping, index), line
                )
        finally:
            self._depth -= 1

    # -- directives ----------------------------------------------------------

    def _parse_directive(self, text: str, line: int) -> None:
        parts = text.split(None, 1)
        name = parts[0].lower()
        rest = parts[1] if len(parts) > 1 else ""
        if name == ".macro":
            self._define_macro(rest, line)
        elif name == ".endm":
            raise AssemblyError(".endm outside a macro definition", line)
        elif name == ".org":
            target = _Expr(rest, line).evaluate(self._symbols)
            self._finish_segment()
            self._start_segment(target)
        elif name == ".entry":
            self._entry_expr = _Expr(rest, line)
        elif name == ".equ":
            operands = _split_operands(rest)
            if len(operands) != 2:
                raise AssemblyError(".equ needs name, value", line)
            self._symbol_exprs.append((operands[0], _Expr(operands[1], line)))
        elif name in (".word", ".dd"):
            self._data_directive(rest, 4, line)
        elif name in (".half", ".dw"):
            self._data_directive(rest, 2, line)
        elif name in (".byte", ".db"):
            self._data_directive(rest, 1, line)
        elif name in (".ascii", ".asciz"):
            payload = self._parse_string(rest, line)
            if name == ".asciz":
                payload += b"\x00"
            item = _DataItem(line=line, size=len(payload), exprs=[payload])
            self._append(item)
        elif name == ".space":
            operands = _split_operands(rest)
            size = _Expr(operands[0], line).evaluate(self._symbols)
            fill = (
                _Expr(operands[1], line).evaluate(self._symbols)
                if len(operands) > 1
                else 0
            )
            self._append(_FillItem(line=line, size=size, fill=fill))
        elif name == ".align":
            alignment = _Expr(rest, line).evaluate(self._symbols)
            if alignment <= 0 or alignment & (alignment - 1):
                raise AssemblyError(".align needs a power of two", line)
            padding = (-self._location) % alignment
            if padding:
                self._append(_FillItem(line=line, size=padding, fill=0))
        else:
            raise AssemblyError(f"unknown directive {name}", line)

    def _data_directive(self, rest: str, unit: int, line: int) -> None:
        exprs: list[_Expr | bytes] = []
        size = 0
        for operand in _split_operands(rest):
            if operand.startswith('"'):
                payload = self._parse_string(operand, line)
                if unit != 1:
                    raise AssemblyError("strings only allowed in .byte", line)
                exprs.append(payload)
                size += len(payload)
            else:
                exprs.append(_Expr(operand, line))
                size += unit
        self._append(_DataItem(line=line, size=size, unit=unit, exprs=exprs))

    @staticmethod
    def _parse_string(text: str, line: int) -> bytes:
        text = text.strip()
        if len(text) < 2 or text[0] != '"' or text[-1] != '"':
            raise AssemblyError(f"bad string literal: {text!r}", line)
        body = text[1:-1]
        return body.encode("latin-1").decode("unicode_escape").encode("latin-1")

    # -- instructions --------------------------------------------------------

    def _parse_instruction(self, text: str, line: int) -> None:
        parts = text.split(None, 1)
        mnemonic = parts[0].lower()
        operands = _split_operands(parts[1]) if len(parts) > 1 else []
        item = self._build(mnemonic, operands, line)
        item.size = op_info(item.op).length
        self._append(item)

    def _build(self, m: str, ops: list[str], line: int) -> _InstrItem:
        # The indexed forms are selected automatically from the operand
        # shape; accept the explicit spellings as aliases.
        m = {"loadx": "load", "storex": "store",
             "loadbx": "loadb", "storebx": "storeb"}.get(m, m)

        def err(msg: str) -> AssemblyError:
            return AssemblyError(f"{m}: {msg}", line)

        if m in _NO_OPERAND:
            if ops:
                raise err("takes no operands")
            return _InstrItem(line=line, op=_NO_OPERAND[m])

        if m in _SETCC:
            if len(ops) != 1 or not is_reg_name(ops[0]):
                raise err("needs one register")
            return _InstrItem(line=line, op=_SETCC[m],
                              r1=reg_number(ops[0]))

        if m in _CMOVCC:
            if len(ops) != 2 or not (is_reg_name(ops[0])
                                     and is_reg_name(ops[1])):
                raise err("needs two registers")
            return _InstrItem(line=line, op=_CMOVCC[m],
                              r1=reg_number(ops[0]), r2=reg_number(ops[1]))

        if m in _JCC or m in ("jmp", "call"):
            if len(ops) != 1:
                raise err("needs one operand")
            if m in ("jmp", "call") and is_reg_name(ops[0]):
                op = Op.JMP_R if m == "jmp" else Op.CALL_R
                return _InstrItem(line=line, op=op, r1=reg_number(ops[0]))
            op = _JCC.get(m) or (Op.JMP if m == "jmp" else Op.CALL)
            return _InstrItem(line=line, op=op, rel_expr=_Expr(ops[0], line))

        if m == "mov":
            if len(ops) != 2:
                raise err("needs two operands")
            dst, src = ops
            if not is_reg_name(dst):
                raise err(f"bad destination {dst!r} (use store for memory)")
            if is_reg_name(src):
                return _InstrItem(
                    line=line, op=Op.MOV_RR,
                    r1=reg_number(dst), r2=reg_number(src),
                )
            return _InstrItem(
                line=line, op=Op.MOV_RI,
                r1=reg_number(dst), imm_expr=_Expr(src, line),
            )

        if m == "xchg":
            if len(ops) != 2 or not (is_reg_name(ops[0]) and is_reg_name(ops[1])):
                raise err("needs two registers")
            return _InstrItem(
                line=line, op=Op.XCHG_RR,
                r1=reg_number(ops[0]), r2=reg_number(ops[1]),
            )

        if m in _ALU_RR_RI:
            if len(ops) != 2 or not is_reg_name(ops[0]):
                raise err("needs register, register|immediate")
            rr, ri = _ALU_RR_RI[m]
            if is_reg_name(ops[1]):
                return _InstrItem(
                    line=line, op=rr, r1=reg_number(ops[0]), r2=reg_number(ops[1])
                )
            return _InstrItem(
                line=line, op=ri, r1=reg_number(ops[0]),
                imm_expr=_Expr(ops[1], line),
            )

        if m in _SHIFTS:
            if len(ops) != 2 or not is_reg_name(ops[0]):
                raise err("needs register, count")
            imm_op, cl_op = _SHIFTS[m]
            if ops[1].lower() == "cl":
                if cl_op is None:
                    raise err("cl count not supported for rotates")
                return _InstrItem(line=line, op=cl_op, r1=reg_number(ops[0]))
            return _InstrItem(
                line=line, op=imm_op, r1=reg_number(ops[0]),
                imm_expr=_Expr(ops[1], line),
            )

        if m in _UNARY_R:
            if len(ops) != 1 or not is_reg_name(ops[0]):
                raise err("needs one register")
            return _InstrItem(line=line, op=_UNARY_R[m], r1=reg_number(ops[0]))

        if m == "push":
            if len(ops) != 1:
                raise err("needs one operand")
            if is_reg_name(ops[0]):
                return _InstrItem(line=line, op=Op.PUSH_R, r1=reg_number(ops[0]))
            return _InstrItem(line=line, op=Op.PUSH_I, imm_expr=_Expr(ops[0], line))

        if m in ("load", "loadb", "lea"):
            if len(ops) != 2 or not is_reg_name(ops[0]):
                raise err("needs register, [memory]")
            mem = self._parse_mem(ops[1], line)
            return self._mem_item(m, mem, reg_number(ops[0]), None, line)

        if m in ("store", "storeb"):
            if len(ops) != 2 or not is_reg_name(ops[1]):
                raise err("needs [memory], register")
            mem = self._parse_mem(ops[0], line)
            return self._mem_item(m, mem, reg_number(ops[1]), None, line)

        if m == "storei":
            if len(ops) != 2:
                raise err("needs [memory], immediate")
            mem = self._parse_mem(ops[0], line)
            if mem.index is not None:
                raise err("storei does not support an index register")
            return _InstrItem(
                line=line, op=Op.STOREI, r2=mem.base,
                disp_expr=mem.disp, imm_expr=_Expr(ops[1], line),
            )

        if m in ("in", "out"):
            if len(ops) != 1:
                raise err("needs a port number")
            op = Op.IN if m == "in" else Op.OUT
            return _InstrItem(line=line, op=op, imm_expr=_Expr(ops[0], line))

        if m == "int":
            if len(ops) != 1:
                raise err("needs a vector")
            return _InstrItem(line=line, op=Op.INT, imm_expr=_Expr(ops[0], line))

        raise err("unknown mnemonic")

    def _mem_item(
        self,
        m: str,
        mem: _MemOperand,
        reg: int,
        imm: _Expr | None,
        line: int,
    ) -> _InstrItem:
        indexed = mem.index is not None
        table = {
            ("load", False): Op.LOAD, ("load", True): Op.LOADX,
            ("loadb", False): Op.LOADB, ("loadb", True): Op.LOADBX,
            ("store", False): Op.STORE, ("store", True): Op.STOREX,
            ("storeb", False): Op.STOREB, ("storeb", True): Op.STOREBX,
            ("lea", False): Op.LEA, ("lea", True): Op.LEAX,
        }
        op = table[(m, indexed)]
        return _InstrItem(
            line=line,
            op=op,
            r1=reg,
            r2=mem.base,
            index=mem.index or 0,
            scale_log2=mem.scale_log2,
            disp_expr=mem.disp,
            imm_expr=imm,
        )

    def _parse_mem(self, text: str, line: int) -> _MemOperand:
        match = _MEM_RE.match(text.strip())
        if not match:
            raise AssemblyError(f"expected memory operand, got {text!r}", line)
        body = match.group(1)
        base: int | None = None
        index: int | None = None
        scale_log2 = 0
        disp_terms: list[str] = []
        # Split on top-level +/-, keeping signs with terms.
        terms: list[str] = []
        current = ""
        for ch in body:
            if ch in "+-" and current.strip():
                terms.append(current.strip())
                current = ch if ch == "-" else ""
            else:
                current += ch
        if current.strip():
            terms.append(current.strip())
        for term in terms:
            sign = ""
            if term.startswith("-"):
                sign = "-"
                term = term[1:].strip()
            if "*" in term:
                reg_part, scale_part = (p.strip() for p in term.split("*", 1))
                if not is_reg_name(reg_part) or sign:
                    raise AssemblyError(f"bad index term {term!r}", line)
                scale = int(scale_part, 0)
                if scale not in (1, 2, 4, 8):
                    raise AssemblyError(f"bad scale {scale}", line)
                index = reg_number(reg_part)
                scale_log2 = scale.bit_length() - 1
            elif is_reg_name(term) and not sign:
                if base is None:
                    base = reg_number(term)
                elif index is None:
                    index = reg_number(term)
                    scale_log2 = 0
                else:
                    raise AssemblyError("too many registers in address", line)
            else:
                disp_terms.append(sign + term)
        if base is None:
            raise AssemblyError("memory operand needs a base register", line)
        disp = _Expr("+".join(disp_terms) or "0", line) if disp_terms else None
        return _MemOperand(base, index, scale_log2, disp)


_ALL_MNEMONICS = (
    set(_ALU_RR_RI) | set(_UNARY_R) | set(_SHIFTS) | set(_NO_OPERAND)
    | set(_JCC) | set(_SETCC) | set(_CMOVCC)
    | {"mov", "xchg", "push", "load", "loadb", "store", "storeb", "storei",
       "lea", "loadx", "storex", "in", "out", "int", "jmp", "call"}
)


def assemble(source: str) -> Program:
    """Assemble t86 source text into a ``Program`` image."""
    return _Assembler(source).run()
