"""Decoded-instruction model for the t86 guest ISA.

An ``Instruction`` is the unit shared by the interpreter, the region
selector, and the translator frontend.  It is immutable; its ``addr``
is the guest virtual address it was decoded from (None for instructions
built by the assembler before placement).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa import registers
from repro.isa.opcodes import Fmt, Kind, Op, OpInfo, op_info

MASK32 = 0xFFFFFFFF


@dataclass(frozen=True)
class Instruction:
    """One decoded t86 instruction.

    Field usage by format:

    * ``r1`` — destination (or only) register for R/RR/RI/RI8/RM/RMX;
      the *source* register for MR/MRX stores.
    * ``r2`` — source register (RR), base register (RM/MR/RMX/MRX/MI).
    * ``index``/``scale_log2`` — only for the indexed RMX/MRX formats.
    * ``disp`` — signed displacement (RM/MR/RMX/MRX/MI) or signed rel32
      (REL).
    * ``imm`` — immediate for RI/RI8/MI/I32/I16/I8.
    """

    op: Op
    r1: int = 0
    r2: int = 0
    index: int = 0
    scale_log2: int = 0
    disp: int = 0
    imm: int = 0
    addr: int | None = None

    # Derived attributes, precomputed at construction: ``length``,
    # ``end``, and ``next_addr`` sit on the interpreter's per-step hot
    # path (every handler reads ``next_addr``), where a chain of
    # property and table lookups per access is measurable.  ``end`` and
    # ``next_addr`` are ``None`` for unplaced instructions (addr=None).
    length: int = field(init=False, repr=False, compare=False)
    end: int | None = field(init=False, repr=False, compare=False)
    next_addr: int | None = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        length = op_info(self.op).length
        end = self.addr + length if self.addr is not None else None
        object.__setattr__(self, "length", length)
        object.__setattr__(self, "end", end)
        object.__setattr__(self, "next_addr", end)

    @property
    def info(self) -> OpInfo:
        return op_info(self.op)

    @property
    def kind(self) -> Kind:
        return self.info.kind

    # ------------------------------------------------------------------
    # Control flow
    # ------------------------------------------------------------------

    @property
    def is_control_flow(self) -> bool:
        return self.kind in (
            Kind.BRANCH,
            Kind.COND_BRANCH,
            Kind.CALL,
            Kind.RET,
            Kind.INDIRECT,
        )

    @property
    def branch_target(self) -> int:
        """Target of a direct (REL-format) branch or call."""
        assert self.info.fmt is Fmt.REL and self.addr is not None
        return (self.addr + self.length + self.disp) & MASK32

    # ------------------------------------------------------------------
    # Register effects (used by the translator and by tests)
    # ------------------------------------------------------------------

    def regs_read(self) -> frozenset[int]:
        """Guest GPRs this instruction reads (explicit and implicit)."""
        op, fmt = self.op, self.info.fmt
        reads: set[int] = set()
        if fmt is Fmt.RR:
            reads.add(self.r2)
            if op not in (Op.MOV_RR,):
                reads.add(self.r1)
            if op is Op.XCHG_RR:
                reads.update((self.r1, self.r2))
        elif fmt is Fmt.RI:
            if op not in (Op.MOV_RI,):
                reads.add(self.r1)
        elif fmt is Fmt.RI8:
            reads.add(self.r1)
        elif fmt is Fmt.R:
            if op in (Op.PUSH_R, Op.JMP_R, Op.CALL_R, Op.SETPT):
                reads.add(self.r1)
            elif op in (
                Op.NOT_R,
                Op.NEG_R,
                Op.INC_R,
                Op.DEC_R,
                Op.SHL_RCL,
                Op.SHR_RCL,
                Op.SAR_RCL,
            ):
                reads.add(self.r1)
            if op in (Op.SHL_RCL, Op.SHR_RCL, Op.SAR_RCL):
                reads.add(registers.ECX)
            if op in (Op.MUL_R, Op.DIV_R, Op.IDIV_R):
                reads.update((self.r1, registers.EAX, registers.EDX))
        elif fmt is Fmt.RM:
            reads.add(self.r2)  # base
        elif fmt is Fmt.MR:
            reads.update((self.r1, self.r2))  # value and base
        elif fmt is Fmt.RMX:
            reads.update((self.r2, self.index))
        elif fmt is Fmt.MRX:
            reads.update((self.r1, self.r2, self.index))
        elif fmt is Fmt.MI:
            reads.add(self.r2)
        if op in (Op.PUSH_R, Op.PUSH_I, Op.PUSHF, Op.POP_R, Op.POPF, Op.CALL,
                  Op.CALL_R, Op.RET, Op.INT, Op.IRET):
            reads.add(registers.ESP)
        if op is Op.OUT:
            reads.add(registers.EAX)
        return frozenset(reads)

    def regs_written(self) -> frozenset[int]:
        """Guest GPRs this instruction writes (explicit and implicit)."""
        op, fmt = self.op, self.info.fmt
        writes: set[int] = set()
        if op in (Op.MOV_RR, Op.MOV_RI, Op.LOAD, Op.LOADX, Op.LOADB,
                  Op.LOADBX, Op.LEA, Op.LEAX):
            writes.add(self.r1)
        elif op is Op.XCHG_RR:
            writes.update((self.r1, self.r2))
        elif fmt in (Fmt.RR, Fmt.RI, Fmt.RI8) and op not in (
            Op.CMP_RR, Op.CMP_RI, Op.TEST_RR, Op.TEST_RI
        ):
            writes.add(self.r1)
        elif fmt is Fmt.R and op in (
            Op.NOT_R, Op.NEG_R, Op.INC_R, Op.DEC_R,
            Op.SHL_RCL, Op.SHR_RCL, Op.SAR_RCL, Op.POP_R,
        ):
            writes.add(self.r1)
        elif Op.SETO <= op <= Op.SETG:
            writes.add(self.r1)
        if op in (Op.MUL_R, Op.DIV_R, Op.IDIV_R):
            writes.update((registers.EAX, registers.EDX))
        if op in (Op.PUSH_R, Op.PUSH_I, Op.PUSHF, Op.POP_R, Op.POPF, Op.CALL,
                  Op.CALL_R, Op.RET, Op.INT, Op.IRET):
            writes.add(registers.ESP)
        if op is Op.IN:
            writes.add(registers.EAX)
        return frozenset(writes)

    @property
    def is_memory(self) -> bool:
        """True if the instruction explicitly loads or stores memory."""
        return self.kind in (Kind.LOAD, Kind.STORE, Kind.STACK) or self.op in (
            Op.CALL,
            Op.CALL_R,
            Op.RET,
        )

    @property
    def is_store(self) -> bool:
        return self.kind is Kind.STORE or self.op in (
            Op.PUSH_R,
            Op.PUSH_I,
            Op.PUSHF,
            Op.CALL,
            Op.CALL_R,
        )

    @property
    def is_load(self) -> bool:
        return self.kind is Kind.LOAD or self.op in (Op.POP_R, Op.POPF, Op.RET)

    # ------------------------------------------------------------------
    # Display
    # ------------------------------------------------------------------

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return format_instruction(self)


def _mem_operand(base: int, disp: int, index: int | None = None,
                 scale_log2: int = 0) -> str:
    parts = [registers.reg_name(base)]
    if index is not None:
        parts.append(f"{registers.reg_name(index)}*{1 << scale_log2}")
    text = "+".join(parts)
    if disp > 0:
        text += f"+{disp:#x}"
    elif disp < 0:
        text += f"-{-disp:#x}"
    return f"[{text}]"


def format_instruction(instr: Instruction) -> str:
    """Render an instruction in assembler syntax."""
    info = instr.info
    m = info.mnemonic
    r1 = registers.reg_name(instr.r1) if instr.r1 < registers.NUM_REGS else "?"
    r2 = registers.reg_name(instr.r2) if instr.r2 < registers.NUM_REGS else "?"
    fmt = info.fmt
    if fmt is Fmt.NONE:
        return m
    if fmt is Fmt.R:
        if instr.op in (Op.SHL_RCL, Op.SHR_RCL, Op.SAR_RCL):
            return f"{m} {r1}, cl"
        return f"{m} {r1}"
    if fmt is Fmt.RR:
        return f"{m} {r1}, {r2}"
    if fmt is Fmt.RI:
        return f"{m} {r1}, {instr.imm:#x}"
    if fmt is Fmt.RI8:
        return f"{m} {r1}, {instr.imm}"
    if fmt is Fmt.RM:
        return f"{m} {r1}, {_mem_operand(instr.r2, instr.disp)}"
    if fmt is Fmt.MR:
        return f"{m} {_mem_operand(instr.r2, instr.disp)}, {r1}"
    if fmt is Fmt.RMX:
        return (
            f"{m} {r1}, "
            f"{_mem_operand(instr.r2, instr.disp, instr.index, instr.scale_log2)}"
        )
    if fmt is Fmt.MRX:
        return (
            f"{m} "
            f"{_mem_operand(instr.r2, instr.disp, instr.index, instr.scale_log2)}"
            f", {r1}"
        )
    if fmt is Fmt.MI:
        return f"{m} {_mem_operand(instr.r2, instr.disp)}, {instr.imm:#x}"
    if fmt in (Fmt.I32, Fmt.I16, Fmt.I8):
        return f"{m} {instr.imm:#x}"
    if fmt is Fmt.REL:
        if instr.addr is not None:
            return f"{m} {instr.branch_target:#x}"
        return f"{m} .{instr.disp:+}"
    raise AssertionError(f"unhandled format {fmt}")
