"""EFLAGS subset for the t86 guest ISA.

The bit positions match x86 so that packed flag words look familiar in
dumps and tests.  Only the flags the t86 instruction set can produce or
consume are modelled: CF, PF, ZF, SF, OF, and the interrupt-enable IF.

This module also provides the reference flag-computation helpers used by
the interpreter.  The binary translator emits host-ALU sequences that
must agree with these functions; the property-based equivalence tests in
``tests/test_equivalence.py`` enforce that agreement.
"""

from __future__ import annotations

CF = 0x0001  # carry
PF = 0x0004  # parity (of low byte)
ZF = 0x0040  # zero
SF = 0x0080  # sign
OF = 0x0800  # overflow
IF = 0x0200  # interrupt enable

# Reserved bit 1 is always set on x86; we mirror that so packed EFLAGS
# round-trips through pushf/popf look authentic.
ALWAYS_ONE = 0x0002

ARITH_FLAGS = CF | PF | ZF | SF | OF

FLAG_BITS = {"cf": CF, "pf": PF, "zf": ZF, "sf": SF, "of": OF, "if": IF}
FLAG_NAMES = {bit: name for name, bit in FLAG_BITS.items()}

MASK32 = 0xFFFFFFFF
SIGN32 = 0x80000000

# Parity of every byte value, precomputed.  x86 PF is set when the low
# byte of the result has an even number of one bits.
_PARITY = tuple(1 if bin(b).count("1") % 2 == 0 else 0 for b in range(256))


def parity(value: int) -> int:
    """Return 1 if the low byte of ``value`` has even parity, else 0."""
    return _PARITY[value & 0xFF]


def pzs_flags(result: int) -> int:
    """Return the PF/ZF/SF bits for a 32-bit ``result``."""
    result &= MASK32
    flags = 0
    if _PARITY[result & 0xFF]:
        flags |= PF
    if result == 0:
        flags |= ZF
    if result & SIGN32:
        flags |= SF
    return flags


def flags_add(a: int, b: int, carry_in: int = 0) -> tuple[int, int]:
    """Return ``(result, arith_flags)`` for a 32-bit add with carry-in."""
    a &= MASK32
    b &= MASK32
    wide = a + b + carry_in
    result = wide & MASK32
    flags = pzs_flags(result)
    if wide > MASK32:
        flags |= CF
    if ((a ^ result) & (b ^ result)) & SIGN32:
        flags |= OF
    return result, flags


def flags_sub(a: int, b: int, borrow_in: int = 0) -> tuple[int, int]:
    """Return ``(result, arith_flags)`` for a 32-bit subtract with borrow."""
    a &= MASK32
    b &= MASK32
    wide = a - b - borrow_in
    result = wide & MASK32
    flags = pzs_flags(result)
    if wide < 0:
        flags |= CF
    if ((a ^ b) & (a ^ result)) & SIGN32:
        flags |= OF
    return result, flags


def flags_logic(result: int) -> tuple[int, int]:
    """Return ``(result, arith_flags)`` for and/or/xor/test.

    x86 clears CF and OF for the logical operations.
    """
    result &= MASK32
    return result, pzs_flags(result)


def flags_inc(value: int) -> tuple[int, int, int]:
    """Return ``(result, flags, mask)`` for ``inc``; CF is preserved.

    The returned ``mask`` is the set of flag bits the operation defines
    (everything arithmetic except CF, matching x86 ``inc``).
    """
    result = (value + 1) & MASK32
    flags = pzs_flags(result)
    if result == SIGN32:
        flags |= OF
    return result, flags, ARITH_FLAGS & ~CF


def flags_dec(value: int) -> tuple[int, int, int]:
    """Return ``(result, flags, mask)`` for ``dec``; CF is preserved."""
    result = (value - 1) & MASK32
    flags = pzs_flags(result)
    if result == SIGN32 - 1:
        flags |= OF
    return result, flags, ARITH_FLAGS & ~CF


def flags_neg(value: int) -> tuple[int, int]:
    """Return ``(result, arith_flags)`` for ``neg`` (two's complement)."""
    result, flags = flags_sub(0, value)
    return result, flags


def flags_shl(value: int, count: int) -> tuple[int, int, int]:
    """Return ``(result, flags, mask)`` for a left shift.

    The count is masked to 5 bits as on x86.  A zero count defines no
    flags (mask 0).  CF receives the last bit shifted out; OF is the
    x86 count==1 definition (sign change), left undefined-but-stable for
    larger counts the same way.
    """
    count &= 31
    if count == 0:
        return value & MASK32, 0, 0
    result = (value << count) & MASK32
    flags = pzs_flags(result)
    if (value >> (32 - count)) & 1:
        flags |= CF
    if ((result ^ (value << (count - 1))) & SIGN32) != 0:
        flags |= OF
    return result, flags, ARITH_FLAGS


def flags_shr(value: int, count: int) -> tuple[int, int, int]:
    """Return ``(result, flags, mask)`` for a logical right shift."""
    count &= 31
    value &= MASK32
    if count == 0:
        return value, 0, 0
    result = value >> count
    flags = pzs_flags(result)
    if (value >> (count - 1)) & 1:
        flags |= CF
    if value & SIGN32:
        flags |= OF  # x86: OF = original sign bit for shr count==1
    return result, flags, ARITH_FLAGS


def flags_sar(value: int, count: int) -> tuple[int, int, int]:
    """Return ``(result, flags, mask)`` for an arithmetic right shift."""
    count &= 31
    value &= MASK32
    if count == 0:
        return value, 0, 0
    signed = value - (1 << 32) if value & SIGN32 else value
    result = (signed >> count) & MASK32
    flags = pzs_flags(result)
    if (signed >> (count - 1)) & 1:
        flags |= CF
    # OF is cleared by sar on x86 (count == 1); keep it clear always.
    return result, flags, ARITH_FLAGS


def flags_rol(value: int, count: int) -> tuple[int, int, int]:
    """Return ``(result, flags, mask)`` for rotate-left; defines CF/OF."""
    count &= 31
    value &= MASK32
    if count == 0:
        return value, 0, 0
    result = ((value << count) | (value >> (32 - count))) & MASK32
    flags = CF if result & 1 else 0
    if ((result ^ value) & SIGN32) and count == 1:
        flags |= OF
    return result, flags, CF | OF


def flags_ror(value: int, count: int) -> tuple[int, int, int]:
    """Return ``(result, flags, mask)`` for rotate-right; defines CF/OF."""
    count &= 31
    value &= MASK32
    if count == 0:
        return value, 0, 0
    result = ((value >> count) | (value << (32 - count))) & MASK32
    flags = CF if result & SIGN32 else 0
    if ((result ^ value) & SIGN32) and count == 1:
        flags |= OF
    return result, flags, CF | OF


def flags_mul(low: int, high: int) -> int:
    """Return arith flags for unsigned widening multiply.

    x86 ``mul`` sets CF and OF when the high half is nonzero, and leaves
    PF/ZF/SF undefined; we define them from the low result for
    determinism.
    """
    flags = pzs_flags(low)
    if high & MASK32:
        flags |= CF | OF
    return flags


def flags_imul(result: int, full: int) -> int:
    """Return arith flags for signed multiply truncated to 32 bits.

    CF and OF are set when the full product does not fit in a signed
    32-bit value.
    """
    flags = pzs_flags(result)
    signed = result - (1 << 32) if result & SIGN32 else result
    if signed != full:
        flags |= CF | OF
    return flags


def format_flags(eflags: int) -> str:
    """Render a packed flags word as e.g. ``[CF ZF IF]`` for debugging."""
    names = [name.upper() for name, bit in FLAG_BITS.items() if eflags & bit]
    return "[" + " ".join(names) + "]"
