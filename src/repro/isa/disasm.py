"""t86 disassembler.

Turns guest memory back into readable assembly, resilient to data bytes
(undecodable bytes are emitted as ``.byte``).  Used by the CLI tools
and by CMS debugging helpers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.decoder import ByteFetcher, decode
from repro.isa.exceptions import GuestException
from repro.isa.instruction import Instruction, format_instruction


@dataclass
class DisasmLine:
    """One disassembled unit: an instruction or a data byte."""

    addr: int
    raw: bytes
    text: str
    instruction: Instruction | None = None

    def __str__(self) -> str:
        raw_hex = self.raw.hex()
        return f"{self.addr:08x}:  {raw_hex:<20}  {self.text}"


def disassemble(fetch: ByteFetcher, start: int, count: int = 16,
                end: int | None = None) -> list[DisasmLine]:
    """Disassemble up to ``count`` instructions from ``start``.

    When ``end`` is given it bounds the byte range instead of the
    instruction count.  Undecodable bytes become ``.byte`` lines and
    decoding resumes at the next byte.
    """
    lines: list[DisasmLine] = []
    addr = start
    remaining = count if end is None else float("inf")
    while remaining > 0 and (end is None or addr < end):
        try:
            instr = decode(fetch, addr)
        except GuestException:
            try:
                byte = fetch.fetch_byte(addr)
            except Exception:
                break
            lines.append(DisasmLine(addr, bytes((byte,)),
                                    f".byte {byte:#04x}"))
            addr += 1
            remaining -= 1
            continue
        except Exception:
            break
        raw = bytes(fetch.fetch_byte(addr + i) for i in range(instr.length))
        lines.append(DisasmLine(addr, raw, format_instruction(instr), instr))
        addr = instr.next_addr
        remaining -= 1
    return lines


def disassemble_text(fetch: ByteFetcher, start: int, count: int = 16,
                     end: int | None = None) -> str:
    return "\n".join(str(line) for line in disassemble(fetch, start, count,
                                                       end))
