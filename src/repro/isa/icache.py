"""Decoded-instruction cache with SMC-coherent invalidation.

The interpreter re-decodes every guest instruction from raw bytes on
every step.  Decoding is pure over the code bytes, so its results can
be memoized — which makes this cache a miniature code cache with the
paper's signature hazard (§3.6): it may only serve an entry while the
bytes it was decoded from are unchanged.  Coherence comes from the same
write paths that keep the translation cache honest: every RAM store
that goes through the memory bus (interpreter stores, committed
translated stores draining from the store buffer, DMA and disk
traffic) reaches ``on_ram_write`` via ``MemoryBus.store_observers``.

Invalidation is page-granular: one write drops every cached
instruction on the written page(s).  That is coarser than byte-precise
but keeps the per-store check to two dictionary probes, and a page of
re-decodes is cheap.  A full flush is the fallback when the cache
fills.

Entries are keyed by guest *physical* address; the interpreter only
consults the cache while paging is disabled (identity mapping), so a
guest page-table change can never alias a stale entry.  The cache is a
pure wall-clock optimization: decode results are bit-identical with
the cache on or off, and no architectural counter is touched.
"""

from __future__ import annotations

from typing import Any

from repro.memory.physical import PAGE_SHIFT

DEFAULT_CAPACITY = 1 << 16


class DecodedInstructionCache:
    """Memoized ``decode()`` results keyed by guest physical address."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        self.capacity = capacity
        # paddr -> payload (the interpreter stores (Instruction, handler)
        # pairs so a hit also skips the dispatch-table lookup).
        self.entries: dict[int, Any] = {}
        # page -> set of entry paddrs whose instruction bytes touch it.
        self._page_index: dict[int, set[int]] = {}
        self.hits = 0
        self.misses = 0
        self.invalidations = 0  # entries dropped by coherence events
        self.flushes = 0

    def __len__(self) -> int:
        return len(self.entries)

    def insert(self, paddr: int, length: int, payload: Any) -> None:
        """Cache a decode result covering ``[paddr, paddr + length)``."""
        if len(self.entries) >= self.capacity:
            self.flush()
        self.entries[paddr] = payload
        first = paddr >> PAGE_SHIFT
        last = (paddr + length - 1) >> PAGE_SHIFT
        for page in range(first, last + 1):
            self._page_index.setdefault(page, set()).add(paddr)

    # ------------------------------------------------------------------
    # Coherence
    # ------------------------------------------------------------------

    def on_ram_write(self, addr: int, size: int) -> None:
        """Bus store observer: drop entries on the written page(s).

        Hot path — called after every RAM store in the system; the
        common no-code-on-page case must stay at one dict probe.
        """
        index = self._page_index
        first = addr >> PAGE_SHIFT
        if first in index:
            self._drop_page(first)
        last = (addr + size - 1) >> PAGE_SHIFT
        if last != first and last in index:
            self._drop_page(last)

    def invalidate_range(self, addr: int, size: int) -> None:
        """Explicit range invalidation (page-granular, like a write)."""
        if size > 0:
            self.on_ram_write(addr, size)

    def _drop_page(self, page: int) -> None:
        entries = self.entries
        for paddr in self._page_index.pop(page):
            # A page-spanning instruction is indexed on both pages; the
            # second pop is then a no-op.
            if entries.pop(paddr, None) is not None:
                self.invalidations += 1

    def flush(self) -> None:
        """Full invalidation — the capacity/paranoia fallback."""
        self.entries.clear()
        self._page_index.clear()
        self.flushes += 1
