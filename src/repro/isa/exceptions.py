"""Guest exception model for the t86 ISA.

Vectors follow x86: #DE=0, #BP=3, #UD=6, #GP=13, #PF=14.  Hardware
interrupts are delivered at vectors 32+IRQ (the conventional remapped-PIC
layout).  ``GuestException`` is raised by the interpreter and by the
host's guest-level faulting atoms; the CMS runtime converts it into an
architectural exception delivery through the guest IVT.
"""

from __future__ import annotations

import enum


class Vector(enum.IntEnum):
    """Architectural exception vectors."""

    DE = 0  # divide error
    BP = 3  # breakpoint
    UD = 6  # invalid opcode
    GP = 13  # general protection
    PF = 14  # page fault


# Vectors that push an error code on delivery, as on x86.
ERROR_CODE_VECTORS = frozenset({Vector.GP, Vector.PF})

# Base vector for hardware interrupts (IRQ n -> vector IRQ_BASE + n).
IRQ_BASE = 32


class GuestException(Exception):
    """An architectural guest exception (fault).

    ``vector`` is the IVT index; ``error_code`` is pushed for GP/PF;
    ``fault_addr`` is the faulting linear address for #PF (the CR2
    analogue); ``instr_addr`` is the address of the faulting instruction
    (the precise EIP to report).
    """

    def __init__(
        self,
        vector: int,
        error_code: int = 0,
        fault_addr: int | None = None,
        instr_addr: int | None = None,
    ) -> None:
        self.vector = int(vector)
        self.error_code = error_code
        self.fault_addr = fault_addr
        self.instr_addr = instr_addr
        name = Vector(vector).name if vector in Vector._value2member_map_ else str(
            vector
        )
        super().__init__(
            f"guest exception #{name} error={error_code:#x}"
            + (f" addr={fault_addr:#x}" if fault_addr is not None else "")
        )

    @property
    def pushes_error_code(self) -> bool:
        return self.vector in ERROR_CODE_VECTORS

    def at(self, instr_addr: int) -> "GuestException":
        """Return a copy annotated with the faulting instruction address."""
        return GuestException(
            self.vector, self.error_code, self.fault_addr, instr_addr
        )


def divide_error(instr_addr: int | None = None) -> GuestException:
    """#DE — divide by zero or quotient overflow."""
    return GuestException(Vector.DE, instr_addr=instr_addr)


def invalid_opcode(instr_addr: int | None = None) -> GuestException:
    """#UD — undefined opcode byte."""
    return GuestException(Vector.UD, instr_addr=instr_addr)


def breakpoint_fault(instr_addr: int | None = None) -> GuestException:
    """#BP — breakpoint (``int 3``)."""
    return GuestException(Vector.BP, instr_addr=instr_addr)


def general_protection(error_code: int = 0,
                       instr_addr: int | None = None) -> GuestException:
    """#GP — access outside physical memory or other protection violation."""
    return GuestException(Vector.GP, error_code, instr_addr=instr_addr)


# Page-fault error-code bits (x86 layout).
PF_PRESENT = 0x1  # fault caused by protection, not a missing page
PF_WRITE = 0x2  # faulting access was a write


def page_fault(
    fault_addr: int,
    is_write: bool,
    present: bool,
    instr_addr: int | None = None,
) -> GuestException:
    """#PF — paging translation failure at ``fault_addr``."""
    code = (PF_PRESENT if present else 0) | (PF_WRITE if is_write else 0)
    return GuestException(Vector.PF, code, fault_addr, instr_addr)
