"""Binary encoder for t86 instructions.

The encoding is byte-exact and stable: the assembler, the self-checking
translations, and the stylized-SMC immediate reloading all rely on the
byte layout documented in ``repro.isa.opcodes.Fmt``.
"""

from __future__ import annotations

import struct

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Fmt

MASK32 = 0xFFFFFFFF


def _u32(value: int) -> bytes:
    return struct.pack("<I", value & MASK32)


def _s32(value: int) -> bytes:
    return struct.pack("<i", ((value + 0x80000000) & MASK32) - 0x80000000)


def encode(instr: Instruction) -> bytes:
    """Encode ``instr`` to its byte representation."""
    fmt = instr.info.fmt
    op = bytes((instr.op,))
    if fmt is Fmt.NONE:
        return op
    if fmt is Fmt.R:
        return op + bytes((instr.r1 & 0x0F,))
    if fmt is Fmt.RR:
        return op + bytes(((instr.r1 << 4) | (instr.r2 & 0x0F),))
    if fmt is Fmt.RI:
        return op + bytes((instr.r1 & 0x0F,)) + _u32(instr.imm)
    if fmt is Fmt.RI8:
        return op + bytes((instr.r1 & 0x0F, instr.imm & 0xFF))
    if fmt is Fmt.RM:
        return op + bytes(((instr.r1 << 4) | (instr.r2 & 0x0F),)) + _s32(instr.disp)
    if fmt is Fmt.MR:
        return op + bytes(((instr.r2 << 4) | (instr.r1 & 0x0F),)) + _s32(instr.disp)
    if fmt is Fmt.RMX:
        return (
            op
            + bytes(
                (
                    (instr.r1 << 4) | (instr.r2 & 0x0F),
                    (instr.index << 4) | (instr.scale_log2 & 0x0F),
                )
            )
            + _s32(instr.disp)
        )
    if fmt is Fmt.MRX:
        return (
            op
            + bytes(
                (
                    (instr.r2 << 4) | (instr.r1 & 0x0F),
                    (instr.index << 4) | (instr.scale_log2 & 0x0F),
                )
            )
            + _s32(instr.disp)
        )
    if fmt is Fmt.MI:
        return (
            op + bytes((instr.r2 & 0x0F,)) + _s32(instr.disp) + _u32(instr.imm)
        )
    if fmt is Fmt.I32:
        return op + _u32(instr.imm)
    if fmt is Fmt.I16:
        return op + struct.pack("<H", instr.imm & 0xFFFF)
    if fmt is Fmt.I8:
        return op + bytes((instr.imm & 0xFF,))
    if fmt is Fmt.REL:
        return op + _s32(instr.disp)
    raise AssertionError(f"unhandled format {fmt}")


def immediate_field_offset(instr: Instruction) -> int | None:
    """Byte offset of the 32-bit immediate field within the encoding.

    Returns None for instructions without a 32-bit immediate.  Used by
    the stylized-SMC transformation (paper §3.6.4), which retranslates
    code so that patched immediates are reloaded from the code bytes at
    runtime; it needs to know exactly which bytes hold the immediate.
    """
    fmt = instr.info.fmt
    if fmt is Fmt.RI:
        return 2
    if fmt is Fmt.I32:
        return 1
    if fmt is Fmt.MI:
        return 6
    return None


def displacement_field_offset(instr: Instruction) -> int | None:
    """Byte offset of the 32-bit displacement field, or None."""
    fmt = instr.info.fmt
    if fmt in (Fmt.RM, Fmt.MR):
        return 2
    if fmt in (Fmt.RMX, Fmt.MRX):
        return 3
    if fmt is Fmt.MI:
        return 2
    if fmt is Fmt.REL:
        return 1
    return None
