"""The t86 guest instruction set architecture.

t86 is the x86-subset target ISA of this reproduction.  Like x86 it is a
32-bit, little-endian, variable-length, byte-encoded CISC architecture
with eight general-purpose registers, a flags register, precise
exceptions, a stack, port-mapped I/O instructions, and software
interrupts.  Code lives as bytes in guest memory, so self-modifying code,
mixed code/data pages, and immediate-field patching are physically real,
which is what the Transmeta paper's challenges require.
"""

from repro.isa.assembler import AssemblyError, assemble
from repro.isa.decoder import decode
from repro.isa.encoder import encode
from repro.isa.exceptions import (
    GuestException,
    Vector,
    breakpoint_fault,
    divide_error,
    general_protection,
    invalid_opcode,
    page_fault,
)
from repro.isa.flags import (
    CF,
    FLAG_BITS,
    FLAG_NAMES,
    IF,
    OF,
    PF,
    SF,
    ZF,
)
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Fmt, Op, OpInfo, OPCODE_TABLE, op_info
from repro.isa.registers import (
    EAX,
    EBP,
    EBX,
    ECX,
    EDI,
    EDX,
    ESI,
    ESP,
    NUM_REGS,
    REG_NAMES,
    reg_name,
    reg_number,
)

__all__ = [
    "AssemblyError",
    "assemble",
    "decode",
    "encode",
    "GuestException",
    "Vector",
    "breakpoint_fault",
    "divide_error",
    "general_protection",
    "invalid_opcode",
    "page_fault",
    "CF",
    "PF",
    "ZF",
    "SF",
    "OF",
    "IF",
    "FLAG_BITS",
    "FLAG_NAMES",
    "Instruction",
    "Fmt",
    "Op",
    "OpInfo",
    "OPCODE_TABLE",
    "op_info",
    "EAX",
    "ECX",
    "EDX",
    "EBX",
    "ESP",
    "EBP",
    "ESI",
    "EDI",
    "NUM_REGS",
    "REG_NAMES",
    "reg_name",
    "reg_number",
]
