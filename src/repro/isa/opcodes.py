"""Opcode table for the t86 guest ISA.

Each opcode has a fixed one-byte value and a fixed operand format, so
instruction lengths are static per opcode.  The table records the
metadata every downstream component needs:

* the decoder/encoder use ``fmt`` (operand layout and total length);
* the interpreter dispatches on ``Op``;
* the translator's liveness analysis uses ``flags_written`` /
  ``flags_read`` (this is what makes the classic dead-flag elimination
  possible);
* the region selector uses ``kind`` and ``interp_only`` to stop regions
  at system instructions, exactly as CMS leaves rare complex operations
  to its interpreter.

The condition-code numbering of the ``Jcc`` block (0x70-0x7F) matches
x86 so the translator's condition synthesis reads like the real thing.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.isa import flags as fl


class Fmt(enum.Enum):
    """Operand formats; lengths live in ``FMT_LENGTHS``."""

    NONE = enum.auto()  # opcode only
    R = enum.auto()  # opcode, reg byte (register in low nibble)
    RR = enum.auto()  # opcode, (dst << 4) | src
    RI = enum.auto()  # opcode, reg byte, imm32
    RI8 = enum.auto()  # opcode, reg byte, imm8
    RM = enum.auto()  # opcode, (reg << 4) | base, disp32
    MR = enum.auto()  # opcode, (base << 4) | reg, disp32
    RMX = enum.auto()  # opcode, (reg << 4) | base, (idx << 4) | scale, disp32
    MRX = enum.auto()  # opcode, (base << 4) | reg, (idx << 4) | scale, disp32
    MI = enum.auto()  # opcode, base byte, disp32, imm32
    I32 = enum.auto()  # opcode, imm32
    I16 = enum.auto()  # opcode, imm16
    I8 = enum.auto()  # opcode, imm8
    REL = enum.auto()  # opcode, rel32 (relative to next instruction)

    @property
    def length(self) -> int:
        """Total encoded instruction length in bytes for this format."""
        return FMT_LENGTHS[self]


FMT_LENGTHS = {
    Fmt.NONE: 1,
    Fmt.R: 2,
    Fmt.RR: 2,
    Fmt.RI: 6,
    Fmt.RI8: 3,
    Fmt.RM: 6,
    Fmt.MR: 6,
    Fmt.RMX: 7,
    Fmt.MRX: 7,
    Fmt.MI: 10,
    Fmt.I32: 5,
    Fmt.I16: 3,
    Fmt.I8: 2,
    Fmt.REL: 5,
}


class Kind(enum.Enum):
    """Coarse instruction classification used by region selection."""

    ALU = enum.auto()  # register/immediate arithmetic and logic
    MOVE = enum.auto()
    LOAD = enum.auto()
    STORE = enum.auto()
    STACK = enum.auto()  # push/pop family (memory via ESP)
    BRANCH = enum.auto()  # unconditional direct jump
    COND_BRANCH = enum.auto()
    CALL = enum.auto()
    RET = enum.auto()
    INDIRECT = enum.auto()  # jmp/call through register
    IO = enum.auto()  # port in/out
    SYSTEM = enum.auto()  # int/iret/hlt/sti/cli/paging control
    NOP = enum.auto()


class Op(enum.IntEnum):
    """t86 opcodes.  The integer value is the encoding byte."""

    NOP = 0x00
    HLT = 0x01
    STI = 0x02
    CLI = 0x03
    IRET = 0x04
    INT = 0x05

    MOV_RR = 0x10
    MOV_RI = 0x11
    LOAD = 0x12
    STORE = 0x13
    LOADX = 0x14
    STOREX = 0x15
    LOADB = 0x16
    STOREB = 0x17
    STOREI = 0x18
    LEA = 0x19
    LEAX = 0x1A
    LOADBX = 0x1B
    STOREBX = 0x1C
    XCHG_RR = 0x1D

    ADD_RR = 0x20
    SUB_RR = 0x21
    AND_RR = 0x22
    OR_RR = 0x23
    XOR_RR = 0x24
    CMP_RR = 0x25
    TEST_RR = 0x26
    ADC_RR = 0x27
    SBB_RR = 0x28
    IMUL_RR = 0x29

    ADD_RI = 0x30
    SUB_RI = 0x31
    AND_RI = 0x32
    OR_RI = 0x33
    XOR_RI = 0x34
    CMP_RI = 0x35
    TEST_RI = 0x36
    IMUL_RI = 0x37
    ADC_RI = 0x38
    SBB_RI = 0x39

    NOT_R = 0x40
    NEG_R = 0x41
    INC_R = 0x42
    DEC_R = 0x43
    MUL_R = 0x44
    DIV_R = 0x45
    IDIV_R = 0x46

    SHL_RI8 = 0x48
    SHR_RI8 = 0x49
    SAR_RI8 = 0x4A
    ROL_RI8 = 0x4B
    ROR_RI8 = 0x4C
    SHL_RCL = 0x4D
    SHR_RCL = 0x4E
    SAR_RCL = 0x4F

    PUSH_R = 0x50
    POP_R = 0x51
    PUSH_I = 0x52
    PUSHF = 0x53
    POPF = 0x54

    JMP = 0x60
    JMP_R = 0x61
    CALL = 0x62
    CALL_R = 0x63
    RET = 0x64

    JO = 0x70
    JNO = 0x71
    JB = 0x72
    JAE = 0x73
    JE = 0x74
    JNE = 0x75
    JBE = 0x76
    JA = 0x77
    JS = 0x78
    JNS = 0x79
    JP = 0x7A
    JNP = 0x7B
    JL = 0x7C
    JGE = 0x7D
    JLE = 0x7E
    JG = 0x7F

    IN = 0x80
    OUT = 0x81

    # SETcc block (0xA0 + x86 condition code): reg = cond ? 1 : 0.
    SETO = 0xA0
    SETNO = 0xA1
    SETB = 0xA2
    SETAE = 0xA3
    SETE = 0xA4
    SETNE = 0xA5
    SETBE = 0xA6
    SETA = 0xA7
    SETS = 0xA8
    SETNS = 0xA9
    SETP = 0xAA
    SETNP = 0xAB
    SETL = 0xAC
    SETGE = 0xAD
    SETLE = 0xAE
    SETG = 0xAF

    # CMOVcc block (0xB0 + x86 condition code): dst = cond ? src : dst.
    CMOVO = 0xB0
    CMOVNO = 0xB1
    CMOVB = 0xB2
    CMOVAE = 0xB3
    CMOVE = 0xB4
    CMOVNE = 0xB5
    CMOVBE = 0xB6
    CMOVA = 0xB7
    CMOVS = 0xB8
    CMOVNS = 0xB9
    CMOVP = 0xBA
    CMOVNP = 0xBB
    CMOVL = 0xBC
    CMOVGE = 0xBD
    CMOVLE = 0xBE
    CMOVG = 0xBF

    SETPT = 0x90
    PGON = 0x91
    PGOFF = 0x92


@dataclass(frozen=True)
class OpInfo:
    """Static metadata for one opcode."""

    op: "Op"
    mnemonic: str
    fmt: Fmt
    kind: Kind
    flags_written: int = 0  # mask of flag bits the op may define
    flags_read: int = 0  # mask of flag bits the op consumes
    interp_only: bool = False  # always left to the interpreter
    may_fault: bool = False  # can raise a guest exception

    @property
    def length(self) -> int:
        """Encoded length in bytes."""
        return self.fmt.length


AF = fl.ARITH_FLAGS
_NCF = AF & ~fl.CF  # inc/dec do not write CF

# Condition-code flag reads for the Jcc block, indexed by (op - Op.JO).
CC_FLAGS_READ = (
    fl.OF,  # jo
    fl.OF,  # jno
    fl.CF,  # jb
    fl.CF,  # jae
    fl.ZF,  # je
    fl.ZF,  # jne
    fl.CF | fl.ZF,  # jbe
    fl.CF | fl.ZF,  # ja
    fl.SF,  # js
    fl.SF,  # jns
    fl.PF,  # jp
    fl.PF,  # jnp
    fl.SF | fl.OF,  # jl
    fl.SF | fl.OF,  # jge
    fl.SF | fl.OF | fl.ZF,  # jle
    fl.SF | fl.OF | fl.ZF,  # jg
)


def _entries() -> list[OpInfo]:
    e = [
        OpInfo(Op.NOP, "nop", Fmt.NONE, Kind.NOP),
        OpInfo(Op.HLT, "hlt", Fmt.NONE, Kind.SYSTEM, interp_only=True),
        OpInfo(Op.STI, "sti", Fmt.NONE, Kind.SYSTEM, interp_only=True),
        OpInfo(Op.CLI, "cli", Fmt.NONE, Kind.SYSTEM, interp_only=True),
        OpInfo(
            Op.IRET, "iret", Fmt.NONE, Kind.SYSTEM, interp_only=True, may_fault=True
        ),
        OpInfo(Op.INT, "int", Fmt.I8, Kind.SYSTEM, interp_only=True, may_fault=True),
        OpInfo(Op.MOV_RR, "mov", Fmt.RR, Kind.MOVE),
        OpInfo(Op.MOV_RI, "mov", Fmt.RI, Kind.MOVE),
        OpInfo(Op.LOAD, "load", Fmt.RM, Kind.LOAD, may_fault=True),
        OpInfo(Op.STORE, "store", Fmt.MR, Kind.STORE, may_fault=True),
        OpInfo(Op.LOADX, "loadx", Fmt.RMX, Kind.LOAD, may_fault=True),
        OpInfo(Op.STOREX, "storex", Fmt.MRX, Kind.STORE, may_fault=True),
        OpInfo(Op.LOADB, "loadb", Fmt.RM, Kind.LOAD, may_fault=True),
        OpInfo(Op.STOREB, "storeb", Fmt.MR, Kind.STORE, may_fault=True),
        OpInfo(Op.STOREI, "storei", Fmt.MI, Kind.STORE, may_fault=True),
        OpInfo(Op.LEA, "lea", Fmt.RM, Kind.ALU),
        OpInfo(Op.LEAX, "leax", Fmt.RMX, Kind.ALU),
        OpInfo(Op.LOADBX, "loadbx", Fmt.RMX, Kind.LOAD, may_fault=True),
        OpInfo(Op.STOREBX, "storebx", Fmt.MRX, Kind.STORE, may_fault=True),
        OpInfo(Op.XCHG_RR, "xchg", Fmt.RR, Kind.MOVE),
        OpInfo(Op.ADD_RR, "add", Fmt.RR, Kind.ALU, flags_written=AF),
        OpInfo(Op.SUB_RR, "sub", Fmt.RR, Kind.ALU, flags_written=AF),
        OpInfo(Op.AND_RR, "and", Fmt.RR, Kind.ALU, flags_written=AF),
        OpInfo(Op.OR_RR, "or", Fmt.RR, Kind.ALU, flags_written=AF),
        OpInfo(Op.XOR_RR, "xor", Fmt.RR, Kind.ALU, flags_written=AF),
        OpInfo(Op.CMP_RR, "cmp", Fmt.RR, Kind.ALU, flags_written=AF),
        OpInfo(Op.TEST_RR, "test", Fmt.RR, Kind.ALU, flags_written=AF),
        OpInfo(
            Op.ADC_RR, "adc", Fmt.RR, Kind.ALU, flags_written=AF, flags_read=fl.CF
        ),
        OpInfo(
            Op.SBB_RR, "sbb", Fmt.RR, Kind.ALU, flags_written=AF, flags_read=fl.CF
        ),
        OpInfo(Op.IMUL_RR, "imul", Fmt.RR, Kind.ALU, flags_written=AF),
        OpInfo(Op.ADD_RI, "add", Fmt.RI, Kind.ALU, flags_written=AF),
        OpInfo(Op.SUB_RI, "sub", Fmt.RI, Kind.ALU, flags_written=AF),
        OpInfo(Op.AND_RI, "and", Fmt.RI, Kind.ALU, flags_written=AF),
        OpInfo(Op.OR_RI, "or", Fmt.RI, Kind.ALU, flags_written=AF),
        OpInfo(Op.XOR_RI, "xor", Fmt.RI, Kind.ALU, flags_written=AF),
        OpInfo(Op.CMP_RI, "cmp", Fmt.RI, Kind.ALU, flags_written=AF),
        OpInfo(Op.TEST_RI, "test", Fmt.RI, Kind.ALU, flags_written=AF),
        OpInfo(Op.IMUL_RI, "imul", Fmt.RI, Kind.ALU, flags_written=AF),
        OpInfo(
            Op.ADC_RI, "adc", Fmt.RI, Kind.ALU, flags_written=AF, flags_read=fl.CF
        ),
        OpInfo(
            Op.SBB_RI, "sbb", Fmt.RI, Kind.ALU, flags_written=AF, flags_read=fl.CF
        ),
        OpInfo(Op.NOT_R, "not", Fmt.R, Kind.ALU),
        OpInfo(Op.NEG_R, "neg", Fmt.R, Kind.ALU, flags_written=AF),
        OpInfo(Op.INC_R, "inc", Fmt.R, Kind.ALU, flags_written=_NCF),
        OpInfo(Op.DEC_R, "dec", Fmt.R, Kind.ALU, flags_written=_NCF),
        OpInfo(Op.MUL_R, "mul", Fmt.R, Kind.ALU, flags_written=AF),
        OpInfo(Op.DIV_R, "div", Fmt.R, Kind.ALU, may_fault=True),
        OpInfo(Op.IDIV_R, "idiv", Fmt.R, Kind.ALU, may_fault=True),
        OpInfo(Op.SHL_RI8, "shl", Fmt.RI8, Kind.ALU, flags_written=AF),
        OpInfo(Op.SHR_RI8, "shr", Fmt.RI8, Kind.ALU, flags_written=AF),
        OpInfo(Op.SAR_RI8, "sar", Fmt.RI8, Kind.ALU, flags_written=AF),
        OpInfo(Op.ROL_RI8, "rol", Fmt.RI8, Kind.ALU, flags_written=fl.CF | fl.OF),
        OpInfo(Op.ROR_RI8, "ror", Fmt.RI8, Kind.ALU, flags_written=fl.CF | fl.OF),
        OpInfo(Op.SHL_RCL, "shl", Fmt.R, Kind.ALU, flags_written=AF),
        OpInfo(Op.SHR_RCL, "shr", Fmt.R, Kind.ALU, flags_written=AF),
        OpInfo(Op.SAR_RCL, "sar", Fmt.R, Kind.ALU, flags_written=AF),
        OpInfo(Op.PUSH_R, "push", Fmt.R, Kind.STACK, may_fault=True),
        OpInfo(Op.POP_R, "pop", Fmt.R, Kind.STACK, may_fault=True),
        OpInfo(Op.PUSH_I, "push", Fmt.I32, Kind.STACK, may_fault=True),
        OpInfo(
            Op.PUSHF,
            "pushf",
            Fmt.NONE,
            Kind.STACK,
            flags_read=AF | fl.IF,
            interp_only=True,
            may_fault=True,
        ),
        OpInfo(
            Op.POPF,
            "popf",
            Fmt.NONE,
            Kind.STACK,
            flags_written=AF | fl.IF,
            interp_only=True,
            may_fault=True,
        ),
        OpInfo(Op.JMP, "jmp", Fmt.REL, Kind.BRANCH),
        OpInfo(Op.JMP_R, "jmp", Fmt.R, Kind.INDIRECT),
        OpInfo(Op.CALL, "call", Fmt.REL, Kind.CALL, may_fault=True),
        OpInfo(Op.CALL_R, "call", Fmt.R, Kind.INDIRECT, may_fault=True),
        OpInfo(Op.RET, "ret", Fmt.NONE, Kind.RET, may_fault=True),
        OpInfo(Op.IN, "in", Fmt.I16, Kind.IO),
        OpInfo(Op.OUT, "out", Fmt.I16, Kind.IO),
        OpInfo(Op.SETPT, "setpt", Fmt.R, Kind.SYSTEM, interp_only=True),
        OpInfo(Op.PGON, "pgon", Fmt.NONE, Kind.SYSTEM, interp_only=True),
        OpInfo(Op.PGOFF, "pgoff", Fmt.NONE, Kind.SYSTEM, interp_only=True),
    ]
    for i, cc in enumerate(
        (
            "jo jno jb jae je jne jbe ja js jns jp jnp jl jge jle jg".split()
        )
    ):
        e.append(
            OpInfo(
                Op(Op.JO + i),
                cc,
                Fmt.REL,
                Kind.COND_BRANCH,
                flags_read=CC_FLAGS_READ[i],
            )
        )
    cc_names = ("o no b ae e ne be a s ns p np l ge le g".split())
    for i, cc in enumerate(cc_names):
        e.append(
            OpInfo(Op(Op.SETO + i), f"set{cc}", Fmt.R, Kind.ALU,
                   flags_read=CC_FLAGS_READ[i])
        )
        e.append(
            OpInfo(Op(Op.CMOVO + i), f"cmov{cc}", Fmt.RR, Kind.MOVE,
                   flags_read=CC_FLAGS_READ[i])
        )
    return e


OPCODE_TABLE: dict[Op, OpInfo] = {info.op: info for info in _entries()}

# Byte-value lookup for the decoder: None means invalid opcode (#UD).
BYTE_TABLE: tuple[OpInfo | None, ...] = tuple(
    OPCODE_TABLE.get(Op(b)) if b in Op._value2member_map_ else None
    for b in range(256)
)


def op_info(op: Op) -> OpInfo:
    """Return the metadata record for ``op``."""
    return OPCODE_TABLE[op]
