"""Failure containment and graceful degradation (PR 3).

The paper's contract is that CMS failures are never guest-visible: the
system recovers, retranslates more conservatively, and keeps running
(§3.1-§3.5).  This module turns that contract into machinery with three
pillars:

**Translation quarantine.**  Every translate/retranslate/chain/codegen
call runs inside a containment boundary.  An internal error — a
``TranslationError`` that escapes the normal fallback ladder, a bug in
the optimizer, an injected chaos fault — is recorded as an
:class:`Incident` and the region is quarantined: pinned to the
interpreter with a probation counter that later re-admits it at a
conservative tier.  The guest never sees anything worse than
interpreter-speed forward progress.

**Storm throttling.**  The one-shot ``fault_threshold`` adaptation in
:mod:`repro.cms.retranslation` handles individual recurring faults; it
cannot stop a *storm* — the same region faulting or being re-formed
repeatedly inside a short window (fault/retranslate ping-pong, SMC
invalidation ping-pong between overlapping translations).  The
:class:`DegradationManager` counts degrade-relevant events per region in
a sliding guest-instruction window and walks stormy regions down an
explicit ladder::

    AGGRESSIVE -> CONSERVATIVE -> NO_REORDER -> INTERP_ONLY

with exponential probation backoff at the bottom and decay-based
re-promotion (clean dispatches climb back up) so a transient storm does
not permanently tax a region.

**Self-auditing.**  :class:`RuntimeAuditor` periodically checks the
cross-structure invariants that keep the runtime sound — tcache entry
and page indexes, chain back-pointers, SMC page protection, group
membership — repairing what it can and quarantining what it cannot.
Results feed the :class:`~repro.cms.stats.HealthReport` behind the
``repro-health`` CLI.
"""

from __future__ import annotations

import enum
import hashlib
import random
from collections import deque
from dataclasses import dataclass, field

from repro.cms.config import CMSConfig
from repro.cms.stats import CMSStats
from repro.cms.trace import Event, EventTrace
from repro.translator.policies import TranslationPolicy


class Tier(enum.IntEnum):
    """The degradation ladder, most to least speculative."""

    AGGRESSIVE = 0  # whatever the adaptive controller accumulated
    CONSERVATIVE = 1  # no control speculation, small regions
    NO_REORDER = 2  # additionally no memory reordering at all
    INTERP_ONLY = 3  # quarantined: the region is never translated


class ChaosError(RuntimeError):
    """An injected internal failure (chaos mode)."""


class ContainmentError(RuntimeError):
    """Containment itself cannot make progress (never expected)."""


@dataclass
class Incident:
    """One contained internal failure."""

    stage: str  # translate / retranslate / chain / dispatch / audit ...
    entry_eip: int
    error: str  # exception type name
    detail: str
    clock: int  # guest instructions retired at containment time

    def describe(self) -> str:
        return (f"[{self.clock:>9}] {self.stage} @{self.entry_eip:#x} "
                f"{self.error}: {self.detail}")


@dataclass
class RegionHealth:
    """Per-region ladder state."""

    tier: int = 0
    strikes: int = 0  # quarantines so far (drives exponential backoff)
    probation: int = 0  # remaining visits before re-admission
    clean: int = 0  # consecutive clean dispatches since last event
    window: deque = field(default_factory=deque)  # event clocks
    events: int = 0  # lifetime degrade-relevant events


def derive_seed(base_seed: int, tenant: int, stream: str = "") -> int:
    """A per-``(base_seed, tenant, stream)`` RNG seed.

    sha256-mixed (never Python's salted ``hash``) so the derivation is
    stable across processes and uncorrelated between tenants: two
    tenants constructed from the same base config draw independent
    streams instead of faulting in lockstep.
    """
    material = f"{base_seed}:{tenant}:{stream}".encode("utf-8")
    return int.from_bytes(hashlib.sha256(material).digest()[:8], "big")


class ChaosMonkey:
    """Deterministic internal-failure injector for the chaos campaigns.

    Each ``maybe_raise`` call draws from a seeded stream; the decision
    sequence depends only on ``(seed, tenant, call order)`` so a chaos
    run is reproducible from its command line.  ``tenant`` decorrelates
    same-seed instances (fleet serving): tenant 0 keeps the historical
    stream, so existing single-instance campaigns replay unchanged.
    """

    def __init__(self, rate: float, seed: int, tenant: int = 0) -> None:
        self.rate = rate
        self._rng = random.Random(
            seed if tenant == 0 else derive_seed(seed, tenant, "chaos"))
        self.injected = 0

    def maybe_raise(self, stage: str) -> None:
        if self.rate > 0.0 and self._rng.random() < self.rate:
            self.injected += 1
            raise ChaosError(f"chaos injected at {stage}")


class DegradationManager:
    """Quarantine, storm detection, and the degradation ladder."""

    # Per-tier policy clamps (applied on top of the adaptive
    # controller's accumulated policy; never stored, so re-promotion
    # relaxes them automatically).
    _TIER_REGION_CAP = {Tier.CONSERVATIVE: 32, Tier.NO_REORDER: 16}
    _TIER_COMMIT_CAP = {Tier.CONSERVATIVE: 8, Tier.NO_REORDER: 4}
    MAX_BACKOFF_DOUBLINGS = 10

    def __init__(self, config: CMSConfig, stats: CMSStats,
                 trace: EventTrace | None = None,
                 clock=None) -> None:
        self.config = config
        self.stats = stats
        self.trace = trace if trace is not None else EventTrace(enabled=False)
        # Guest-time source for the storm window (guest instructions
        # retired); monotone and deterministic, unlike wall time.
        self._clock = clock if clock is not None else (lambda: 0)
        self._regions: dict[int, RegionHealth] = {}
        self.incidents: deque[Incident] = deque(maxlen=256)
        # Invoked with the entry eip whenever a region descends a rung,
        # so the owner can retire the now-too-aggressive translation.
        self.on_demote = None

    # ------------------------------------------------------------------
    # Region state
    # ------------------------------------------------------------------

    def _health(self, entry_eip: int) -> RegionHealth:
        health = self._regions.get(entry_eip)
        if health is None:
            health = RegionHealth(tier=self.config.degrade_tier_floor)
            self._regions[entry_eip] = health
        return health

    def tier_of(self, entry_eip: int) -> Tier:
        health = self._regions.get(entry_eip)
        if health is None:
            return Tier(self.config.degrade_tier_floor)
        return Tier(health.tier)

    def regions(self) -> dict[int, RegionHealth]:
        return self._regions

    def quarantined_regions(self) -> list[int]:
        return sorted(entry for entry, health in self._regions.items()
                      if health.tier >= Tier.INTERP_ONLY)

    # ------------------------------------------------------------------
    # Containment
    # ------------------------------------------------------------------

    def contain(self, stage: str, entry_eip: int,
                error: BaseException) -> Incident:
        """Record an internal failure and quarantine its region.

        The caller has already stopped the failing activity; after this
        returns, the region is interpret-only until probation expires.
        """
        incident = Incident(
            stage=stage,
            entry_eip=entry_eip,
            error=type(error).__name__,
            detail=str(error) or "(no message)",
            clock=self._clock(),
        )
        self.incidents.append(incident)
        self.stats.contained_errors += 1
        self.trace.record(Event.CONTAINED_ERROR, entry_eip,
                          f"{stage}: {incident.error}")
        self.quarantine(entry_eip, reason=f"{stage}:{incident.error}")
        return incident

    def quarantine(self, entry_eip: int, reason: str = "") -> None:
        """Pin a region to the interpreter with exponential probation."""
        health = self._health(entry_eip)
        if health.tier < Tier.INTERP_ONLY:
            health.tier = Tier.INTERP_ONLY
            self.stats.quarantines += 1
        doublings = min(health.strikes, self.MAX_BACKOFF_DOUBLINGS)
        health.probation = self.config.quarantine_probation * (2 ** doublings)
        health.strikes += 1
        health.clean = 0
        health.window.clear()
        self.trace.record(Event.QUARANTINE, entry_eip, reason)
        if self.on_demote is not None:
            self.on_demote(entry_eip)

    # ------------------------------------------------------------------
    # The ladder
    # ------------------------------------------------------------------

    def allow_translation(self, entry_eip: int) -> bool:
        """Gate for the dispatcher: may this region be translated?

        While quarantined, each consultation (one interpreter visit of a
        hot region) ticks the probation counter; at zero the region is
        re-admitted one rung up (NO_REORDER), not straight back to full
        speculation.
        """
        health = self._regions.get(entry_eip)
        if health is None or health.tier < Tier.INTERP_ONLY:
            return True
        health.probation -= 1
        if health.probation > 0:
            return False
        health.tier = Tier.NO_REORDER
        health.clean = 0
        health.window.clear()
        self.stats.quarantine_readmissions += 1
        self.trace.record(Event.LADDER_PROMOTE, entry_eip,
                          f"probation over -> {Tier.NO_REORDER.name}")
        return True

    def clamp(self, entry_eip: int,
              policy: TranslationPolicy) -> TranslationPolicy:
        """Apply the region's tier constraints on top of ``policy``."""
        tier = self.tier_of(entry_eip)
        if tier is Tier.AGGRESSIVE:
            return policy
        changes: dict = {
            "control_speculation": False,
            "max_instructions": min(policy.max_instructions,
                                    self._TIER_REGION_CAP.get(
                                        tier, self._TIER_REGION_CAP[
                                            Tier.NO_REORDER])),
            "commit_interval": min(policy.commit_interval,
                                   self._TIER_COMMIT_CAP.get(
                                       tier, self._TIER_COMMIT_CAP[
                                           Tier.NO_REORDER])),
            # A degraded region keeps no superblock ambitions: traces
            # clamp to a single block until the ladder climbs back.
            "max_blocks": 1,
        }
        if tier >= Tier.NO_REORDER:
            changes["reorder_memory"] = False
            changes["use_alias_hw"] = False
        return policy.with_(**changes)

    def note_degrade_event(self, entry_eip: int, kind: str) -> None:
        """Record a degrade-relevant event (fault rollback, adaptive
        retranslation, SMC invalidation) and demote on a storm."""
        if not self.config.failure_containment:
            return
        health = self._health(entry_eip)
        health.clean = 0
        health.events += 1
        now = self._clock()
        window = health.window
        window.append(now)
        horizon = now - self.config.storm_window
        while window and window[0] < horizon:
            window.popleft()
        if len(window) < self.config.storm_threshold:
            return
        window.clear()
        if health.tier >= Tier.INTERP_ONLY:
            return
        if health.tier + 1 >= Tier.INTERP_ONLY:
            self.stats.storm_demotions += 1
            self.quarantine(entry_eip, reason=f"storm:{kind}")
            return
        health.tier += 1
        self.stats.storm_demotions += 1
        self.trace.record(Event.LADDER_DEMOTE, entry_eip,
                          f"storm:{kind} -> {Tier(health.tier).name}")
        if self.on_demote is not None:
            self.on_demote(entry_eip)

    def note_clean_dispatch(self, entry_eip: int) -> None:
        """Decay-based re-promotion: clean dispatches climb the ladder."""
        health = self._regions.get(entry_eip)
        if health is None or health.tier == self.config.degrade_tier_floor \
                or health.tier >= Tier.INTERP_ONLY:
            return
        health.clean += 1
        # Deeper rungs need proportionally more evidence to climb.
        if health.clean < self.config.ladder_promote_clean * health.tier:
            return
        health.clean = 0
        health.tier = max(health.tier - 1, self.config.degrade_tier_floor)
        self.stats.ladder_promotions += 1
        self.trace.record(Event.LADDER_PROMOTE, entry_eip,
                          f"clean streak -> {Tier(health.tier).name}")

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def tier_census(self) -> dict[str, int]:
        census: dict[str, int] = {tier.name: 0 for tier in Tier}
        for health in self._regions.values():
            census[Tier(health.tier).name] += 1
        return census


class RuntimeAuditor:
    """Cheap periodic invariant audit over the live CMS structures.

    Checks (and where possible repairs) the links that PR 1/PR 2 bugs
    taught us can go stale: tcache entry/page indexes, chain
    back-pointers, SMC page protection masks, and group membership.
    Inconsistent state is repaired in place; every repair is counted and
    traced so a healthy run shows ``audit_repairs == 0``.
    """

    def __init__(self, system) -> None:
        self.system = system
        self.last_findings: list[str] = []

    # Each check returns a list of human-readable findings (repaired).

    def audit(self) -> list[str]:
        system = self.system
        system.stats.audit_runs += 1
        findings: list[str] = []
        findings += self._audit_entry_index()
        findings += self._audit_page_index()
        findings += self._audit_chains()
        findings += self._audit_groups()
        findings += self._audit_protection()
        self._audit_controller()
        if findings:
            system.stats.audit_repairs += len(findings)
            for finding in findings:
                system.trace.record(Event.AUDIT_REPAIR, None, finding)
        self.last_findings = findings
        return findings

    def _audit_controller(self) -> None:
        """Check the adaptive controller's keys against live regions.

        Stale keys are the *expected* residue of eviction and flushing,
        not corruption — so this prunes (counted in
        ``stats.controller_pruned``) without producing findings, and a
        long healthy run still reports ``audit_repairs == 0``.
        """
        self.system.prune_controller()

    def _audit_entry_index(self) -> list[str]:
        tcache = self.system.tcache
        findings = []
        for entry, translation in list(tcache._by_entry.items()):
            if translation.valid and translation.entry_eip == entry:
                continue
            if translation.entry_eip != entry:
                # An alias key: delete the alias itself — the
                # translation's true key (if any) is judged on its own.
                del tcache._by_entry[entry]
                findings.append(
                    f"entry index {entry:#x} aliased T{translation.id} "
                    f"(@{translation.entry_eip:#x})"
                )
                continue
            findings.append(
                f"entry index {entry:#x} held invalid T{translation.id}"
            )
            tcache.invalidate_translation(translation)
        return findings

    def _audit_page_index(self) -> list[str]:
        tcache = self.system.tcache
        findings = []
        resident = set(tcache._by_entry.values())
        for page in sorted(tcache._by_page):
            bucket = tcache._by_page[page]
            for translation in list(bucket):
                if translation in resident and page in translation.pages():
                    continue
                bucket.discard(translation)
                findings.append(
                    f"page {page:#x} indexed "
                    f"{'non-resident' if translation not in resident else 'non-covering'} "
                    f"T{translation.id}"
                )
            if not bucket:
                del tcache._by_page[page]
        for translation in resident:
            for page in translation.pages():
                bucket = tcache._by_page.setdefault(page, set())
                if translation not in bucket:
                    bucket.add(translation)
                    findings.append(
                        f"T{translation.id} missing from page {page:#x} index"
                    )
        return findings

    def _audit_chains(self) -> list[str]:
        tcache = self.system.tcache
        findings = []
        for translation in tcache.translations():
            for atom in translation.exit_atoms:
                target = atom.chained_translation
                if target is None:
                    continue
                if target.valid and tcache.lookup(target.entry_eip) is target:
                    continue
                findings.append(
                    f"T{translation.id} exit chained to "
                    f"{'dead' if not target.valid else 'non-resident'} "
                    f"T{target.id}"
                )
                atom.chained_translation = None
                if atom in target.incoming_chains:
                    target.incoming_chains.remove(atom)
            for atom in list(translation.incoming_chains):
                if atom.chained_translation is not translation:
                    translation.incoming_chains.remove(atom)
                    findings.append(
                        f"T{translation.id} held a stale incoming back-"
                        f"pointer"
                    )
        return findings

    def _audit_groups(self) -> list[str]:
        system = self.system
        findings = []
        for entry, group in list(system.groups._groups.items()):
            for snapshot, translation in list(group.items()):
                if system.tcache.lookup(entry) is translation:
                    # Simultaneously retired and resident: the resident
                    # copy wins; drop the group version.
                    del group[snapshot]
                    findings.append(
                        f"T{translation.id} @{entry:#x} both resident and "
                        f"retired in its group"
                    )
            if not group:
                del system.groups._groups[entry]
        return findings

    def _audit_protection(self) -> list[str]:
        system = self.system
        protection = system.protection
        findings = []
        pages: set[int] = set(protection.protected_pages())
        for translation in system.tcache.translations():
            pages.update(translation.pages())
        for page in sorted(pages):
            expected = self._expected_mask(page)
            if protection.page_mask(page) == expected:
                continue
            findings.append(
                f"page {page:#x} protection mask stale "
                f"({protection.page_mask(page):#x} != {expected:#x})"
            )
            system.smc.recompute_page(page)
        return findings

    def _expected_mask(self, page: int) -> int:
        """The mask recompute_page would build (kept in lockstep)."""
        from repro.memory.finegrain import granule_mask_for_range
        from repro.memory.physical import PAGE_SIZE

        mask = 0
        page_start = page * PAGE_SIZE
        for translation in self.system.tcache.translations_on_page(page):
            if translation.policy.self_check or translation.prologue_armed:
                continue
            for start, length in translation.code_ranges:
                lo = max(start, page_start)
                hi = min(start + length, page_start + PAGE_SIZE)
                if lo < hi:
                    mask |= granule_mask_for_range(lo - page_start,
                                                   hi - page_start)
        return mask
