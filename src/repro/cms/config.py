"""Configuration of the CMS runtime and its cost model.

The experiment harnesses (benchmarks/) work by toggling these dials and
comparing molecule counts, exactly as the paper's own simulator studies
do: suppress memory reordering (Figure 2), disable the alias hardware
(Figure 3), disable fine-grain protection (Table 1), force self-checking
translations (§3.6.3), disable self-revalidation (§3.6.2), and so on.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class CostModel:
    """Molecule-equivalent charges for work not executed as molecules.

    The host simulator counts real molecules for translated code; the
    activities below happen inside CMS native code that this
    reproduction models at the functional level, so their costs are
    charged explicitly.  Values are calibrated to the qualitative
    relations the paper states: interpretation is "much slower than
    executing translations"; the translator "can be a significant
    portion of execution time"; commits are "effectively free" and
    rollbacks "cost less than a couple of branch mispredictions".
    """

    interp_per_instruction: int = 40  # decode+dispatch+execute, native
    # Translation cost per guest instruction.  The real translator costs
    # thousands of host cycles per instruction but amortizes over
    # billions of executed instructions; our workloads retire ~10^5, so
    # the charge is scaled to keep the translator "a significant portion
    # of execution time" (§2) without letting one retranslation drown a
    # whole run's schedule effects.
    translate_per_instruction: int = 1200
    rollback: int = 6  # §3.1: a couple of mispredictions
    dispatch_lookup: int = 14  # tcache hash lookup, no-chain exit
    fault_service: int = 120  # native fault handler + CMS triage
    fine_grain_install: int = 180  # fg miss service (§3.6.1)
    interrupt_delivery: int = 60  # vectoring through the IVT
    chain_patch: int = 20  # one-time exit patching


@dataclass(frozen=True)
class CMSConfig:
    """All dials of the system."""

    # Figure-1 thresholds.
    translation_threshold: int = 20  # interpreted executions before translating
    max_region_instructions: int = 200
    commit_interval: int = 24

    # Speculation dials (Figures 2 and 3).
    reorder_memory: bool = True
    use_alias_hw: bool = True
    control_speculation: bool = True

    # Superblock/trace formation (PR 7).  When on, the translator chains
    # profile-biased successor blocks into one extended region with
    # guarded side exits; mispredicted side exits feed the adaptive
    # controller, which splits storming traces back toward single
    # blocks (§3.6.5-style).  These dials shape translations (molecule
    # streams differ with them), so they participate in the snapshot
    # config digest — only guest-visible output is invariant.
    trace_formation: bool = True
    # Benchmarked defaults (see EXPERIMENTS.md): 4 blocks / 8192 hot
    # molecules was the only dial point where a workload's wall clock
    # improved (quake_demo2) while the others paid just their one-time
    # translation cost; wider/earlier unrolls lose the amortization race.
    trace_max_blocks: int = 4  # superblock cap per translation
    trace_min_reach: float = 0.35  # min on-trace probability to keep growing
    trace_mispredict_threshold: int = 16  # early side exits before a split
    # Molecules a single-block loop translation must execute before the
    # dispatcher promotes it to an unrolled trace (adaptive escalation:
    # cold loops never pay the unroll's translation cost).
    trace_hot_molecules: int = 8192

    # SMC machinery (Table 1, §3.6.2-§3.6.5).
    fine_grain_protection: bool = True
    fine_grain_entries: int = 8
    self_revalidation: bool = True
    stylized_smc: bool = True
    translation_groups: bool = True
    force_self_check: bool = False  # experiment: all translations check

    # Adaptive retranslation (§3).
    adaptive_retranslation: bool = True
    fault_threshold: int = 3  # recurring faults before adapting
    revalidate_exec_ratio: float = 4.0  # executions per fault to prefer
    # self-revalidation over self-checking

    # Hardware sizes.
    store_buffer_capacity: int = 64
    alias_entries: int = 8
    tcache_capacity_molecules: int = 4_000_000

    # Engine guards.
    dispatch_fuel_molecules: int = 400_000  # watchdog per dispatch
    recovery_interp_cap: int = 512  # max recovery steps per fault

    # Failure containment & graceful degradation (PR 3).
    failure_containment: bool = True  # containment boundaries + ladder
    storm_window: int = 2500  # guest-instruction window for storm detection
    storm_threshold: int = 6  # degrade events in-window before demotion
    quarantine_probation: int = 50  # interpreter visits before re-admission
    ladder_promote_clean: int = 32  # clean dispatches per rung re-climbed
    degrade_tier_floor: int = 0  # start (and keep) every region >= this tier
    audit_interval: int = 2048  # dispatches between self-audits (0 = off)
    # Chaos mode (fuzz harness): probability that any one internal
    # translator/chain operation raises an injected error.  The
    # containment layer must keep every such failure guest-invisible.
    chaos_rate: float = 0.0
    chaos_seed: int = 0
    # Multi-instance identity (fleet serving): the chaos stream is
    # derived from ``(chaos_seed, chaos_tenant)``, so two tenants
    # sharing a base config fault independently, never in lockstep.
    chaos_tenant: int = 0

    # Observability (PR 4).  ``obs_enabled`` gates the whole layer —
    # phase timing, per-region hot-spot attribution, the metrics
    # registry, and JSONL telemetry; off (the default) the dispatcher
    # pays one attribute test per phase and runs are guaranteed
    # molecule-identical to an obs-less build.  ``obs_jsonl_path``
    # additionally streams events and the run summary to a rotated
    # JSONL file.  The bucket bounds apply to every histogram the
    # runtime creates (fixed at construction; deterministic).
    obs_enabled: bool = False
    obs_jsonl_path: str | None = None
    obs_histogram_buckets: tuple[int, ...] = tuple(2**i for i in range(13))

    # Persistent translation-cache snapshots (PR 5).  With a path set,
    # the system reloads a prior run's translations, adaptive policies,
    # and execution profile at construction time (every translation is
    # revalidated against current guest RAM, §3.6.2 generalized across
    # runs); ``snapshot_save`` additionally writes the snapshot back at
    # ``shutdown()``.  ``snapshot_strict_config`` rejects — whole, never
    # partially applied — a snapshot taken under a different
    # speculation/SMC dial set (run-local dials like obs/chaos and the
    # wall-clock flags are excluded from the comparison).
    snapshot_path: str | None = None
    snapshot_save: bool = False
    snapshot_strict_config: bool = True

    # Wall-clock engineering dials (see EXPERIMENTS.md).  These change
    # how fast the *simulator* runs on the host, never what it computes:
    # molecule counts, CostModel charges, and console output are
    # bit-identical with every combination of these flags.  They exist
    # so `benchmarks/bench_wallclock.py` can attribute the speedup.
    decode_cache: bool = True  # memoize decode() keyed by paddr
    fast_bus_routing: bool = True  # bisect MMIO routing + RAM fast path
    fast_dispatch: bool = True  # dispatcher/recovery fast paths
    template_jit: bool = True  # lower committed translations to Python
    mmu_tlb: bool = True  # software TLB over the guest page table

    cost: CostModel = field(default_factory=CostModel)

    def interpreter_only(self) -> "CMSConfig":
        """A configuration that never translates (the reference engine)."""
        from dataclasses import replace

        return replace(self, translation_threshold=2**62)

    def seed_performance(self) -> "CMSConfig":
        """All wall-clock optimizations off (the seed's execution paths)."""
        from dataclasses import replace

        return replace(self, decode_cache=False, fast_bus_routing=False,
                       fast_dispatch=False, template_jit=False,
                       mmu_tlb=False)
