"""System-wide statistics and the molecules-per-instruction metric.

The paper's simulator "provides accurate dynamic molecule counts but not
cycle accuracy"; its headline metric is "molecules executed per x86
instruction".  ``CMSStats.total_molecules`` is host molecules actually
executed plus molecule-equivalent charges for CMS-native activities
(interpretation, translation, fault service), per the ``CostModel``.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.cms.config import CostModel


@dataclass
class CMSStats:
    """Counters accumulated during one run."""

    # Execution volume.
    guest_instructions: int = 0  # retired (interpreted + committed)
    interp_instructions: int = 0
    recovery_interp_instructions: int = 0
    host_molecules: int = 0
    dispatches: int = 0
    chains_followed: int = 0
    chain_patches: int = 0
    indirect_chains: int = 0  # inline-cache installs for computed exits

    # Translation activity.
    translations_made: int = 0
    guest_instructions_translated: int = 0
    retranslations: int = 0
    group_reactivations: int = 0

    # Superblock traces (PR 7).  ``modeled_cycles_translated`` is the
    # scheduler cost model's completion-time estimate summed over every
    # translation made — the static schedule-quality metric the perf
    # gate tracks alongside wall clock.
    traces_formed: int = 0  # translations spanning > 1 block
    trace_blocks_chained: int = 0  # blocks chained into those traces
    trace_side_exits: int = 0  # mispredicted exits from a chained trace
    trace_loop_exits: int = 0  # unrolled-loop traces completing normally
    trace_promotions: int = 0  # hot loops escalated to unrolled traces
    trace_splits: int = 0  # mispredict-driven block-cap demotions
    modeled_cycles_translated: int = 0

    # Exceptional events.
    rollbacks: int = 0
    interrupts_delivered: int = 0
    guest_exceptions_delivered: int = 0
    faults: Counter = field(default_factory=Counter)  # by HostFaultKind name
    speculative_guest_faults: int = 0
    genuine_guest_faults: int = 0
    protection_faults: int = 0
    fg_miss_services: int = 0
    smc_invalidations: int = 0
    revalidations_armed: int = 0
    revalidations_passed: int = 0
    fuel_exits: int = 0
    # Paging coherency (§3.6.1 under an active MMU): chains severed
    # because a page-table mutation touched a translated code page.
    mapping_unchains: int = 0

    # Failure containment & graceful degradation (PR 3).
    contained_errors: int = 0  # internal failures stopped at a boundary
    quarantines: int = 0  # regions demoted to interpret-only
    quarantine_readmissions: int = 0  # probation expiries (re-admitted)
    storm_demotions: int = 0  # ladder rungs descended by storms
    ladder_promotions: int = 0  # rungs re-climbed on clean streaks
    audit_runs: int = 0
    audit_repairs: int = 0
    chaos_injected: int = 0  # chaos-mode faults raised (and contained)

    # Persistent snapshots (PR 5).
    snapshot_translations_loaded: int = 0  # revalidated and re-registered
    snapshot_translations_dropped: int = 0  # failed load-time revalidation
    snapshot_group_versions: int = 0  # retired versions re-parked in groups
    controller_pruned: int = 0  # stale controller keys removed (not repairs)

    # Template JIT (PR 6).  Dispatch/compile volume plus a bailout
    # census: every time the JIT path hands control back to the
    # simulated VLIW (or exits for a cause the dispatcher must handle),
    # the reason is tallied by name.
    jit_dispatches: int = 0
    jit_compiles: int = 0
    jit_compile_failures: int = 0
    jit_code_cache_hits: int = 0  # compile skipped via shared code cache
    jit_bailouts: Counter = field(default_factory=Counter)  # by reason

    def as_dict(self, cost: CostModel | None = None) -> dict:
        """Flat counter mapping for the metrics registry and telemetry.

        Fault counts are flattened as ``faults.<KIND>``; passing the
        cost model additionally includes the derived molecule totals so
        a telemetry record is self-contained.
        """
        out: dict = {}
        for name, value in vars(self).items():
            if name == "faults":
                for kind, count in sorted(value.items()):
                    out[f"faults.{kind}"] = count
            elif name == "jit_bailouts":
                for reason, count in sorted(value.items()):
                    out[f"jit_bailouts.{reason}"] = count
            else:
                out[name] = value
        if cost is not None:
            out["total_molecules"] = self.total_molecules(cost)
            out["molecules_per_instruction"] = round(
                self.molecules_per_instruction(cost), 6)
        return out

    def total_molecules(self, cost: CostModel) -> int:
        """Molecule-equivalents for the whole run."""
        return (
            self.host_molecules
            + (self.interp_instructions + self.recovery_interp_instructions)
            * cost.interp_per_instruction
            + self.guest_instructions_translated
            * cost.translate_per_instruction
            + self.rollbacks * cost.rollback
            + self.dispatches * cost.dispatch_lookup
            + sum(self.faults.values()) * cost.fault_service
            + self.fg_miss_services * cost.fine_grain_install
            + (self.interrupts_delivered + self.guest_exceptions_delivered)
            * cost.interrupt_delivery
            + self.chain_patches * cost.chain_patch
        )

    def molecules_per_instruction(self, cost: CostModel) -> float:
        if self.guest_instructions == 0:
            return 0.0
        return self.total_molecules(cost) / self.guest_instructions

    def summary(self, cost: CostModel) -> str:
        lines = [
            f"guest instructions   {self.guest_instructions:>12}",
            f"  interpreted        {self.interp_instructions:>12}"
            f" (+{self.recovery_interp_instructions} recovery)",
            f"host molecules       {self.host_molecules:>12}",
            f"total molecule-equiv {self.total_molecules(cost):>12}",
            f"mol / instr          "
            f"{self.molecules_per_instruction(cost):>12.2f}",
            f"translations         {self.translations_made:>12}"
            f" ({self.retranslations} adaptive,"
            f" {self.group_reactivations} group hits)",
            f"dispatches           {self.dispatches:>12}"
            f" ({self.chains_followed} chained)",
            f"rollbacks            {self.rollbacks:>12}",
            f"interrupts           {self.interrupts_delivered:>12}",
            f"guest exceptions     {self.guest_exceptions_delivered:>12}",
        ]
        if self.faults:
            fault_list = ", ".join(
                f"{name}={count}" for name, count in sorted(
                    self.faults.items())
            )
            lines.append(f"host faults          {fault_list}")
        if self.contained_errors or self.quarantines or self.storm_demotions:
            lines.append(
                f"containment          {self.contained_errors:>12}"
                f" ({self.quarantines} quarantines,"
                f" {self.storm_demotions} storm demotions,"
                f" {self.ladder_promotions + self.quarantine_readmissions}"
                f" promotions)"
            )
        if self.audit_runs:
            lines.append(f"self-audits          {self.audit_runs:>12}"
                         f" ({self.audit_repairs} repairs)")
        if self.traces_formed or self.trace_side_exits:
            lines.append(
                f"superblock traces    {self.traces_formed:>12}"
                f" ({self.trace_blocks_chained} blocks,"
                f" {self.trace_promotions} promotions,"
                f" {self.trace_loop_exits} loop exits,"
                f" {self.trace_side_exits} side exits,"
                f" {self.trace_splits} splits)"
            )
        if self.jit_dispatches:
            lines.append(
                f"jit dispatches       {self.jit_dispatches:>12}"
                f" ({self.jit_compiles} compiles,"
                f" {self.jit_compile_failures} failures,"
                f" {sum(self.jit_bailouts.values())} bailouts)"
            )
        if self.snapshot_translations_loaded or \
                self.snapshot_translations_dropped:
            lines.append(
                f"snapshot warm start  "
                f"{self.snapshot_translations_loaded:>12}"
                f" loaded ({self.snapshot_translations_dropped} dropped,"
                f" {self.snapshot_group_versions} group versions)"
            )
        return "\n".join(lines)


@dataclass
class HealthReport:
    """Self-audit + containment snapshot of one CMS instance.

    Built by :meth:`CodeMorphingSystem.health_report`; rendered by the
    ``repro-health`` CLI.  ``healthy`` means the run needed no audit
    repairs and contained nothing — degraded-but-contained runs are
    still *safe* (that is the whole point), just not pristine.
    """

    contained_errors: int
    quarantines: int
    quarantined_regions: list[int]
    storm_demotions: int
    promotions: int
    tier_census: dict[str, int]
    audit_runs: int
    audit_repairs: int
    audit_findings: list[str]
    chaos_injected: int
    incidents: list[str]

    @property
    def healthy(self) -> bool:
        return self.contained_errors == 0 and self.audit_repairs == 0

    @property
    def degraded(self) -> bool:
        return bool(self.quarantined_regions) or any(
            count for name, count in self.tier_census.items()
            if name != "AGGRESSIVE"
        )

    def describe(self) -> str:
        status = "HEALTHY" if self.healthy else "CONTAINED"
        lines = [
            f"status               {status}"
            f"{' (degraded tiers active)' if self.degraded else ''}",
            f"contained errors     {self.contained_errors:>8}"
            f" ({self.chaos_injected} chaos-injected)",
            f"quarantines          {self.quarantines:>8}"
            f" ({len(self.quarantined_regions)} still quarantined)",
            f"storm demotions      {self.storm_demotions:>8}",
            f"ladder promotions    {self.promotions:>8}",
            f"self-audit runs      {self.audit_runs:>8}"
            f" ({self.audit_repairs} repairs)",
        ]
        census = ", ".join(f"{name}={count}"
                           for name, count in self.tier_census.items()
                           if count)
        lines.append(f"tier census          {census or '(no regions)'}")
        if self.quarantined_regions:
            addrs = ", ".join(f"{a:#x}" for a in self.quarantined_regions[:8])
            lines.append(f"quarantined at       {addrs}")
        for finding in self.audit_findings[:10]:
            lines.append(f"  audit: {finding}")
        for incident in self.incidents[-10:]:
            lines.append(f"  incident: {incident}")
        return "\n".join(lines)
