"""System-wide statistics and the molecules-per-instruction metric.

The paper's simulator "provides accurate dynamic molecule counts but not
cycle accuracy"; its headline metric is "molecules executed per x86
instruction".  ``CMSStats.total_molecules`` is host molecules actually
executed plus molecule-equivalent charges for CMS-native activities
(interpretation, translation, fault service), per the ``CostModel``.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.cms.config import CostModel


@dataclass
class CMSStats:
    """Counters accumulated during one run."""

    # Execution volume.
    guest_instructions: int = 0  # retired (interpreted + committed)
    interp_instructions: int = 0
    recovery_interp_instructions: int = 0
    host_molecules: int = 0
    dispatches: int = 0
    chains_followed: int = 0
    chain_patches: int = 0
    indirect_chains: int = 0  # inline-cache installs for computed exits

    # Translation activity.
    translations_made: int = 0
    guest_instructions_translated: int = 0
    retranslations: int = 0
    group_reactivations: int = 0

    # Exceptional events.
    rollbacks: int = 0
    interrupts_delivered: int = 0
    guest_exceptions_delivered: int = 0
    faults: Counter = field(default_factory=Counter)  # by HostFaultKind name
    speculative_guest_faults: int = 0
    genuine_guest_faults: int = 0
    protection_faults: int = 0
    fg_miss_services: int = 0
    smc_invalidations: int = 0
    revalidations_armed: int = 0
    revalidations_passed: int = 0
    fuel_exits: int = 0

    def total_molecules(self, cost: CostModel) -> int:
        """Molecule-equivalents for the whole run."""
        return (
            self.host_molecules
            + (self.interp_instructions + self.recovery_interp_instructions)
            * cost.interp_per_instruction
            + self.guest_instructions_translated
            * cost.translate_per_instruction
            + self.rollbacks * cost.rollback
            + self.dispatches * cost.dispatch_lookup
            + sum(self.faults.values()) * cost.fault_service
            + self.fg_miss_services * cost.fine_grain_install
            + (self.interrupts_delivered + self.guest_exceptions_delivered)
            * cost.interrupt_delivery
            + self.chain_patches * cost.chain_patch
        )

    def molecules_per_instruction(self, cost: CostModel) -> float:
        if self.guest_instructions == 0:
            return 0.0
        return self.total_molecules(cost) / self.guest_instructions

    def summary(self, cost: CostModel) -> str:
        lines = [
            f"guest instructions   {self.guest_instructions:>12}",
            f"  interpreted        {self.interp_instructions:>12}"
            f" (+{self.recovery_interp_instructions} recovery)",
            f"host molecules       {self.host_molecules:>12}",
            f"total molecule-equiv {self.total_molecules(cost):>12}",
            f"mol / instr          "
            f"{self.molecules_per_instruction(cost):>12.2f}",
            f"translations         {self.translations_made:>12}"
            f" ({self.retranslations} adaptive,"
            f" {self.group_reactivations} group hits)",
            f"dispatches           {self.dispatches:>12}"
            f" ({self.chains_followed} chained)",
            f"rollbacks            {self.rollbacks:>12}",
            f"interrupts           {self.interrupts_delivered:>12}",
            f"guest exceptions     {self.guest_exceptions_delivered:>12}",
        ]
        if self.faults:
            fault_list = ", ".join(
                f"{name}={count}" for name, count in sorted(
                    self.faults.items())
            )
            lines.append(f"host faults          {fault_list}")
        return "\n".join(lines)
