"""Self-modifying-code management (paper §3.6).

The SMC manager owns the relationship between translations and the
protection state of the pages their guest code lives on, and implements
the adaptation ladder:

1. page/granule write protection with the fine-grain hardware cache
   (§3.6.1) — the default for every translation;
2. self-revalidating translations (§3.6.2) — for translations that take
   recurring *spurious* protection faults (data written next to code):
   the prologue is armed, protection is dropped, and the next entry
   re-verifies and re-protects;
3. self-checking translations (§3.6.3) — for genuinely changing code:
   pages stay unprotected and every entry (and loop back-edge) verifies
   the code bytes;
4. stylized-SMC immediate reloading (§3.6.4) — when the changing bytes
   are exactly immediate fields, combined with self-checking of the
   remaining bytes;
5. translation groups (§3.6.5) — retired versions are kept and
   reactivated when their bytes reappear.
"""

from __future__ import annotations

from collections import Counter

from repro.cache.groups import TranslationGroups
from repro.cache.tcache import Translation, TranslationCache
from repro.cms.config import CMSConfig
from repro.cms.stats import CMSStats
from repro.host.faults import HostFault
from repro.isa.encoder import immediate_field_offset
from repro.memory.finegrain import GRANULE_SIZE
from repro.memory.physical import PAGE_SIZE, page_of
from repro.memory.protection import ProtectionMap, StoreClass


class SMCManager:
    """Protection bookkeeping and SMC adaptation decisions."""

    def __init__(self, config: CMSConfig, tcache: TranslationCache,
                 groups: TranslationGroups, protection: ProtectionMap,
                 machine, stats: CMSStats, controller, trace=None,
                 degrade=None) -> None:
        from repro.cms.trace import EventTrace

        self.trace = trace if trace is not None else EventTrace(enabled=False)
        self.config = config
        self.tcache = tcache
        self.groups = groups
        self.protection = protection
        self.machine = machine
        self.stats = stats
        self.controller = controller
        # DegradationManager hook (optional so unit tests can build an
        # SMC manager in isolation): feeds invalidation storms into the
        # ladder and keeps group reactivation honest about tiers.
        self.degrade = degrade
        self._spurious_faults: Counter = Counter()  # per translation id
        self._genuine_smc: Counter = Counter()  # per entry eip
        self._smc_write_sites: dict[int, set[int]] = {}  # entry -> paddrs

    # ------------------------------------------------------------------
    # Protection lifecycle
    # ------------------------------------------------------------------

    def protect_translation(self, translation: Translation) -> None:
        """Apply write protection for a new translation's code bytes.

        Self-checking translations deliberately leave their pages
        unprotected (§3.6.3); armed self-revalidating translations have
        protection dropped until their prologue passes (§3.6.2).
        """
        if translation.policy.self_check or translation.prologue_armed:
            return
        for start, length in translation.code_ranges:
            self.protection.protect_range(start, length)

    def recompute_page(self, page: int) -> None:
        """Rebuild a page's protected-granule mask from live translations."""
        mask = 0
        page_start = page * PAGE_SIZE
        for translation in self.tcache.translations_on_page(page):
            if translation.policy.self_check or translation.prologue_armed:
                continue
            for start, length in translation.code_ranges:
                lo = max(start, page_start)
                hi = min(start + length, page_start + PAGE_SIZE)
                if lo < hi:
                    from repro.memory.finegrain import granule_mask_for_range

                    mask |= granule_mask_for_range(lo - page_start,
                                                   hi - page_start)
        self.protection.set_page_mask(page, mask)

    # ------------------------------------------------------------------
    # Inline fault service (classic handler-and-retry semantics)
    # ------------------------------------------------------------------

    def service_inline(self, fault: HostFault) -> bool:
        """Try to fix a protection fault so the store can retry in place.

        Returns True when the condition was repaired without needing a
        rollback: a fine-grain cache miss is filled from memory
        (§3.6.1), and a *spurious* code-granule fault (data written
        beside code) on translations that already carry a revalidation
        prologue arms the prologue and drops protection (§3.6.2 — "it
        enables the prologue and turns off protection to avoid the cost
        of faulting again").  Genuine self-modification, page-level
        faults, and spurious faults on translations without prologues
        return False and take the rollback + recovery path.
        """
        if fault.store_class is StoreClass.FAULT_MISS:
            self.protection.handle_miss(fault.page)
            self.stats.protection_faults += 1
            self.stats.fg_miss_services += 1
            return True
        if fault.store_class is not StoreClass.FAULT_CODE:
            return False
        assert fault.paddr is not None and fault.page is not None
        affected = self._affected_translations(fault)
        if not affected:
            # Stale protection state: rebuild the mask and retry.
            self.stats.protection_faults += 1
            self.recompute_page(fault.page)
            return True
        size = fault.access_size
        if any(t.overlaps(fault.paddr, size) for t in affected):
            return False  # genuine SMC: must invalidate, cannot retry
        if not all(t.prologue_label is not None for t in affected):
            return False  # someone lacks a prologue: recovery path decides
        self.stats.protection_faults += 1
        for translation in affected:
            self._arm_prologue(translation)
        return True

    def _affected_translations(self, fault: HostFault) -> list:
        granule_lo = fault.paddr - (fault.paddr % GRANULE_SIZE)
        granule_hi = ((fault.paddr + fault.access_size - 1) // GRANULE_SIZE
                      + 1) * GRANULE_SIZE
        return [
            t for t in self.tcache.translations_on_page(fault.page)
            if not t.policy.self_check and not t.prologue_armed
            and t.overlaps(granule_lo, granule_hi - granule_lo)
        ]

    # ------------------------------------------------------------------
    # Protection fault triage (host store path and interpreter path)
    # ------------------------------------------------------------------

    def on_protection_fault(self, fault: HostFault) -> None:
        """Handle a FAULT_CODE/FAULT_PAGE protection fault.

        (FAULT_MISS is serviced by the system before reaching here.)
        The faulting store has *not* executed; after this handler runs
        the dispatcher re-executes it (in the interpreter or on re-entry
        of a translation), so protection must be adjusted to let the
        store make progress exactly when that is the right outcome.
        """
        assert fault.page is not None and fault.paddr is not None
        self.stats.protection_faults += 1
        page = fault.page
        if fault.store_class is StoreClass.FAULT_PAGE:
            # No fine-grain hardware: the paper's original page-level
            # policy — every translation on the page is invalidated.
            for translation in self.tcache.translations_on_page(page):
                self._drop_for_smc(translation)
            self.recompute_page(page)
            return
        # FAULT_CODE: the store hits granules holding translated code.
        size = fault.access_size
        granule_lo = fault.paddr - (fault.paddr % GRANULE_SIZE)
        granule_hi = ((fault.paddr + size - 1) // GRANULE_SIZE + 1) \
            * GRANULE_SIZE
        affected = [
            t for t in self.tcache.translations_on_page(page)
            if t.overlaps(granule_lo, granule_hi - granule_lo)
        ]
        for translation in affected:
            writes_code = translation.overlaps(fault.paddr, size)
            if writes_code:
                self._on_genuine_smc(translation, fault.paddr, size)
            else:
                self._on_spurious_fault(translation)
        self.recompute_page(page)

    def _on_spurious_fault(self, translation: Translation) -> None:
        """Data written beside code in a protected granule (§3.6.2).

        Only reached when inline service declined, i.e. the translation
        has no prologue yet.  Below the threshold the translation stays
        (its code is unchanged; the store simply completes through the
        interpreter).  Once the faults recur, CMS flags the region as a
        self-revalidation candidate — "the next time it is encountered,
        it is re-translated" with a prologue — by accumulating the
        policy and dropping the prologue-less version once.
        """
        self._spurious_faults[translation.entry_eip] += 1
        if not self.config.self_revalidation:
            return  # keep the translation; pay the fault (ablation mode)
        if self._spurious_faults[translation.entry_eip] < \
                self.config.fault_threshold:
            return
        policy = self.controller.policy_for(translation.entry_eip).with_(
            self_revalidate=True
        )
        self.controller.set_policy(translation.entry_eip, policy)
        if translation.prologue_label is None:
            # Dropped outright (not retired): a group hit would only
            # resurrect the same prologue-less version.
            self.tcache.invalidate_translation(translation)
            self.stats.smc_invalidations += 1

    def _arm_prologue(self, translation: Translation) -> None:
        """Drop protection and route the next entry through the prologue."""
        if translation.prologue_armed:
            return
        translation.prologue_armed = True
        translation.entry_label = translation.prologue_label
        self.stats.revalidations_armed += 1
        from repro.cms.trace import Event

        self.trace.record(Event.REVALIDATE_ARM, translation.entry_eip)
        for page in translation.pages():
            self.recompute_page(page)

    def on_prologue_success(self, translation: Translation) -> None:
        """Prologue verified the code: re-protect and disarm (§3.6.2)."""
        translation.prologue_armed = False
        translation.entry_label = "body"
        self.stats.revalidations_passed += 1
        self.protect_translation(translation)
        from repro.cms.trace import Event

        self.trace.record(Event.REVALIDATE_PASS, translation.entry_eip)

    def _on_genuine_smc(self, translation: Translation, paddr: int,
                        size: int) -> None:
        """The store will actually change translated code bytes."""
        entry = translation.entry_eip
        self._genuine_smc[entry] += 1
        self._smc_write_sites.setdefault(entry, set()).update(
            range(paddr, paddr + size)
        )
        self._drop_for_smc(translation)
        if self._genuine_smc[entry] < self.config.fault_threshold:
            return
        policy = self.controller.policy_for(entry)
        stylized = self._stylized_candidates(translation, entry)
        if stylized and self.config.stylized_smc:
            policy = policy.with_(
                self_check=True,
                stylized_imm_addrs=policy.stylized_imm_addrs | stylized,
            )
        else:
            policy = policy.with_(self_check=True)
        self.controller.set_policy(entry, policy)

    def _stylized_candidates(self, translation: Translation,
                             entry: int) -> frozenset[int]:
        """Instruction addresses whose *immediate fields* cover every
        observed SMC write byte (§3.6.4's stylized pattern)."""
        sites = self._smc_write_sites.get(entry)
        if not sites:
            return frozenset()
        from repro.isa.decoder import BytesFetcher, decode
        from repro.isa.exceptions import GuestException

        candidates: set[int] = set()
        covered: set[int] = set()
        for start, length in translation.code_ranges:
            try:
                data = self.machine.bus.read_code_bytes(start, length)
            except GuestException:
                return frozenset()
            fetcher = BytesFetcher(data, base=start)
            addr = start
            while addr < start + length:
                try:
                    instr = decode(fetcher, addr)
                except GuestException:
                    break
                offset = immediate_field_offset(instr)
                if offset is not None:
                    field = set(range(addr + offset, addr + offset + 4))
                    if field & sites:
                        candidates.add(addr)
                        covered |= field & sites
                addr += instr.length
        if covered >= sites:
            return frozenset(candidates)
        return frozenset()

    def _drop_for_smc(self, translation: Translation) -> None:
        """Invalidate a translation whose code is being rewritten,
        retiring it into its group when groups are enabled."""
        if self.config.translation_groups and \
                translation.policy.group_enabled:
            self.tcache.remove(translation)
            self.groups.retire(translation)
        else:
            self.tcache.invalidate_translation(translation)
        self.stats.smc_invalidations += 1
        from repro.cms.trace import Event

        self.trace.record(Event.SMC_INVALIDATE, translation.entry_eip)
        if self.degrade is not None:
            # Invalidate ping-pong between overlapping translations is a
            # storm the per-fault adaptation never sees: each round goes
            # through a *different* translation object.  The ladder
            # counts rounds per region and throttles the region itself.
            self.degrade.note_degrade_event(translation.entry_eip,
                                            "smc-invalidate")

    # ------------------------------------------------------------------
    # Self-check failures (§3.6.3 / §3.6.5)
    # ------------------------------------------------------------------

    def on_self_check_fail(self, translation: Translation) -> Translation | None:
        """A self-checking translation found its code bytes changed."""
        self._learn_from_diff(translation)
        self._drop_for_smc(translation)
        if not self.config.translation_groups:
            return None
        if self.degrade is not None and \
                self.degrade.tier_of(translation.entry_eip) > 0:
            # A degraded region must not short-circuit back to a cached
            # aggressive version; the dispatcher re-translates under the
            # tier's clamped policy instead.
            return None
        replacement = self.groups.match_current(
            translation.entry_eip, self._read_ranges
        )
        if replacement is None:
            return None
        self.tcache.insert(replacement)
        self.protect_translation(replacement)
        self.stats.group_reactivations += 1
        return replacement

    def _learn_from_diff(self, translation: Translation) -> None:
        """Extend the stylized-SMC learning from a failed self-check.

        Once a region's pages are unprotected (self-checking policy),
        further modifications never take protection faults, so the
        write-site learning of ``_on_genuine_smc`` goes blind.  Diffing
        the snapshot against current memory recovers exactly which
        bytes changed; if the changes stay within immediate fields, the
        stylized set grows and the next translation masks them (§3.6.4).
        """
        from repro.isa.exceptions import GuestException

        entry = translation.entry_eip
        try:
            current = self._read_ranges(translation.code_ranges)
        except GuestException:
            return
        snapshot = translation.code_snapshot
        if len(current) != len(snapshot):
            return
        changed: set[int] = set()
        cursor = 0
        for start, length in translation.code_ranges:
            for i in range(length):
                if current[cursor + i] != snapshot[cursor + i]:
                    changed.add(start + i)
            cursor += length
        if not changed:
            return
        self._smc_write_sites.setdefault(entry, set()).update(changed)
        if not self.config.stylized_smc:
            return
        stylized = self._stylized_candidates(translation, entry)
        if stylized:
            policy = self.controller.policy_for(entry).with_(
                self_check=True,
                stylized_imm_addrs=(
                    self.controller.policy_for(entry).stylized_imm_addrs
                    | stylized
                ),
            )
            self.controller.set_policy(entry, policy)

    def try_group_reactivation(self, entry_eip: int) -> Translation | None:
        """Before translating, see if a retired version matches memory.

        A candidate is only reused when it is at least as conservative
        as the region's current accumulated policy — otherwise the
        adaptive escalation would be silently undone by a group hit.
        """
        if not self.config.translation_groups:
            return None
        replacement = self.groups.match_current(entry_eip, self._read_ranges)
        if replacement is None:
            return None
        required = self.controller.policy_for(entry_eip)
        if self.degrade is not None:
            required = self.degrade.clamp(entry_eip, required)
        if required.merge(replacement.policy) != replacement.policy:
            self.groups.retire(replacement)  # put it back; translate fresh
            return None
        self.tcache.insert(replacement)
        self.protect_translation(replacement)
        self.stats.group_reactivations += 1
        return replacement

    def _read_ranges(self, ranges) -> bytes:
        return b"".join(
            self.machine.bus.read_code_bytes(start, length)
            for start, length in ranges
        )

    # ------------------------------------------------------------------
    # Bus store observer (DMA, disk, committed stores)
    # ------------------------------------------------------------------

    def on_ram_write(self, addr: int, size: int) -> None:
        """Invalidate translations whose code bytes were just rewritten.

        Self-checking translations are exempt: their entry/back-edge
        checks (and translation groups) own their coherency.  For DMA
        paging traffic this is the §3.6.1 rule ("DMA writes to a
        protected page invalidate all translations for the page"),
        refined to byte accuracy.
        """
        first_page = page_of(addr)
        last_page = page_of(addr + size - 1)
        touched_pages = []
        for page in range(first_page, last_page + 1):
            victims = [
                t for t in self.tcache.translations_on_page(page)
                if not t.policy.self_check and t.overlaps(addr, size)
            ]
            if victims:
                touched_pages.append(page)
            for translation in victims:
                self._drop_for_smc(translation)
        for page in touched_pages:
            self.recompute_page(page)

    # ------------------------------------------------------------------
    # Interpreter store servicing
    # ------------------------------------------------------------------

    def on_interpreter_store(self, paddr: int, size: int) -> None:
        """Protection servicing for a store the interpreter will perform.

        The interpreter runs as native code on the real part, so its
        stores take the same protection faults; the fault handler runs
        inline and the store then proceeds (the interpreter can always
        make progress).
        """
        from repro.host.faults import HostFaultKind

        for _ in range(2):
            check = self.protection.check_store(paddr, size)
            if not check.faults:
                return
            fault = HostFault(
                kind=HostFaultKind.PROTECTION,
                paddr=paddr,
                store_class=check.store_class,
                page=check.page,
                access_size=size,
            )
            if not self.service_inline(fault):
                self.on_protection_fault(fault)
                return
