"""CMS event trace.

A lightweight ring buffer of runtime events — translations, faults,
rollbacks, adaptations, SMC actions — for debugging, the examples, and
behavioural tests.  Recording is cheap (one tuple append); the buffer
is bounded so long runs cannot grow without limit.
"""

from __future__ import annotations

import enum
from collections import Counter, deque
from dataclasses import dataclass


class Event(enum.Enum):
    TRANSLATE = "translate"
    RETRANSLATE = "retranslate"
    GROUP_REACTIVATE = "group-reactivate"
    CHAIN = "chain"
    FAULT = "fault"
    ROLLBACK = "rollback"
    INTERRUPT = "interrupt"
    GUEST_EXCEPTION = "guest-exception"
    SPECULATIVE_FAULT = "speculative-fault"
    GENUINE_FAULT = "genuine-fault"
    SMC_INVALIDATE = "smc-invalidate"
    REVALIDATE_ARM = "revalidate-arm"
    REVALIDATE_PASS = "revalidate-pass"
    POLICY_ESCALATE = "policy-escalate"
    TRACE_PROMOTE = "trace-promote"
    TRACE_SPLIT = "trace-split"
    TCACHE_FLUSH = "tcache-flush"
    CONTAINED_ERROR = "contained-error"
    QUARANTINE = "quarantine"
    LADDER_DEMOTE = "ladder-demote"
    LADDER_PROMOTE = "ladder-promote"
    AUDIT_REPAIR = "audit-repair"
    SNAPSHOT_SAVE = "snapshot-save"
    SNAPSHOT_LOAD = "snapshot-load"
    SNAPSHOT_DROP = "snapshot-drop"
    CONTROLLER_PRUNE = "controller-prune"


@dataclass
class TraceRecord:
    """One recorded event."""

    sequence: int
    event: Event
    eip: int | None = None
    detail: str = ""

    def __str__(self) -> str:
        location = f" @{self.eip:#x}" if self.eip is not None else ""
        text = f" {self.detail}" if self.detail else ""
        return f"[{self.sequence:6d}] {self.event.value}{location}{text}"


class EventTrace:
    """Bounded event log with counting and simple querying.

    Counting semantics (kept consistent with the bounded ring):
    ``counts`` tallies only the records *currently in the ring* — when
    the ring evicts its oldest record, that record leaves ``counts``
    too, so the two views never disagree about what the trace holds.
    ``lifetime_counts`` is the monotone all-time total per event kind;
    it grows one integer per event *kind* (a small fixed set), never
    per event, so it is bounded regardless of run length.
    """

    def __init__(self, capacity: int = 4096, enabled: bool = True) -> None:
        self.enabled = enabled
        self._records: deque[TraceRecord] = deque(maxlen=capacity)
        self.counts: Counter = Counter()  # records still in the ring
        self.lifetime_counts: Counter = Counter()  # all-time totals
        self._sequence = 0

    def record(self, event: Event, eip: int | None = None,
               detail: str = "") -> None:
        if not self.enabled:
            return
        self._sequence += 1
        self.lifetime_counts[event] += 1
        self.counts[event] += 1
        records = self._records
        if len(records) == records.maxlen:
            evicted = records[0]
            self.counts[evicted.event] -= 1
            if not self.counts[evicted.event]:
                del self.counts[evicted.event]
        records.append(
            TraceRecord(self._sequence, event, eip, detail)
        )

    def __len__(self) -> int:
        return len(self._records)

    def records(self, event: Event | None = None,
                eip: int | None = None) -> list[TraceRecord]:
        """Records, optionally filtered by kind and/or address."""
        out = []
        for record in self._records:
            if event is not None and record.event is not event:
                continue
            if eip is not None and record.eip != eip:
                continue
            out.append(record)
        return out

    def last(self, count: int = 20) -> list[TraceRecord]:
        return list(self._records)[-count:]

    def dump(self, count: int = 50) -> str:
        return "\n".join(str(record) for record in self.last(count))

    def sequence_of(self, *events: Event) -> list[Event]:
        """The order in which the given event kinds occurred."""
        wanted = set(events)
        return [record.event for record in self._records
                if record.event in wanted]
