"""The Code Morphing Software runtime.

``CodeMorphingSystem`` wires the whole co-design together and runs the
paper's Figure 1 control flow: interpret with profiling, translate past
the threshold, execute out of the translation cache with chaining, and
recover from exceptional events by rollback, re-interpretation, and
adaptive retranslation.
"""

from repro.cms.config import CMSConfig, CostModel
from repro.cms.stats import CMSStats
from repro.cms.system import CodeMorphingSystem, RunResult

__all__ = [
    "CMSConfig",
    "CostModel",
    "CMSStats",
    "CodeMorphingSystem",
    "RunResult",
]
