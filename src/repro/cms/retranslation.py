"""Adaptive retranslation controller (the heart of §3).

"CMS monitors recurring failures and generates a more conservative
translation when it deems the rate of failure to be excessive.  To
reduce the performance impact of conservative translations, CMS also
attempts to confine the causes of failures to retranslations of smaller
regions than the originals."

Escalation ladders per fault kind (each stage requires the fault to
recur ``fault_threshold`` times):

* alias violation (§3.5): narrow the region, then pin the faulting
  instruction's memory access to program order, then disable memory
  reordering for the region;
* speculative MMIO (§3.4): fence the faulting instruction as known-I/O
  (commit-fenced, never reordered);
* genuine guest fault (§3.2): narrow the region around the faulting
  instruction, ultimately pinning it to the interpreter (the paper's
  "zero-instruction translation that simply calls the interpreter");
* speculative guest fault: stop hoisting the faulting load, then give up
  control speculation for the region;
* store-buffer overflow: commit more often, then narrow.

All adjustments go through ``TranslationPolicy.merge`` so that policies
only ever accumulate — the paper's defense against "bouncing between
translations with incomparable policies, neither of which solves both
problems".
"""

from __future__ import annotations

from collections import Counter

from repro.cache.tcache import Translation
from repro.cms.config import CMSConfig
from repro.host.faults import HostFault, HostFaultKind
from repro.translator.policies import TranslationPolicy

MIN_REGION = 12


class AdaptiveController:
    """Tracks failures and escalates translation policies."""

    def __init__(self, config: CMSConfig) -> None:
        self.config = config
        self._policies: dict[int, TranslationPolicy] = {}
        self._site_faults: Counter = Counter()
        # entry -> sha256 of the code bytes the region's policy was
        # learned against.  When the guest reloads different code at the
        # same address, version-specific escalations (stop/no-reorder
        # addresses, region narrowing) must not carry over.
        self._code_ids: dict[int, str] = {}
        self.escalations = 0
        self.code_resets = 0
        self.pruned = 0

    # ------------------------------------------------------------------
    # Policy lookup
    # ------------------------------------------------------------------

    def base_policy(self) -> TranslationPolicy:
        config = self.config
        return TranslationPolicy(
            reorder_memory=config.reorder_memory,
            use_alias_hw=config.use_alias_hw,
            control_speculation=config.control_speculation,
            max_instructions=config.max_region_instructions,
            commit_interval=config.commit_interval,
            max_blocks=(config.trace_max_blocks
                        if config.trace_formation else 1),
            self_check=config.force_self_check,
            group_enabled=config.translation_groups,
        )

    def policy_for(self, entry_eip: int) -> TranslationPolicy:
        base = self.base_policy()
        accumulated = self._policies.get(entry_eip)
        return base if accumulated is None else base.merge(accumulated)

    def set_policy(self, entry_eip: int, policy: TranslationPolicy) -> None:
        """Record an accumulated policy (used by the SMC manager too)."""
        current = self._policies.get(entry_eip)
        self._policies[entry_eip] = (
            policy if current is None else current.merge(policy)
        )

    # ------------------------------------------------------------------
    # Fault accounting and escalation
    # ------------------------------------------------------------------

    def reset_region(self, entry_eip: int) -> None:
        """Forget a region's per-site fault counters (not its policy).

        Called when the degradation ladder quarantines the region: the
        accumulated *policy* stays (it solved real problems and must not
        bounce, §3), but stale partial counts must not push a freshly
        re-admitted region straight into another escalation.
        """
        for key in [k for k in self._site_faults if k[0] == entry_eip]:
            del self._site_faults[key]

    # ------------------------------------------------------------------
    # Code identity and lifetime (PR 5)
    # ------------------------------------------------------------------

    def observe_code(self, entry_eip: int, code_digest: str) -> None:
        """Tie the region's accumulated state to a code identity.

        Called whenever a translation is produced or reactivated for
        ``entry_eip``.  If the digest differs from the one the policy
        was learned against, the guest has loaded *different* code at
        the same address: version-specific escalations (stop /
        no-reorder / I/O-fence addresses, region narrowing, disabled
        speculation) are dropped and per-site fault counters reset.
        What survives is the address's SMC shape — self-checking,
        self-revalidation, stylized-store sites, grouping — which
        describes how the location is *rewritten*, not what any one
        version computes.  Within one code identity policies still only
        ever accumulate (the monotone-merge guarantee, §3).
        """
        previous = self._code_ids.get(entry_eip)
        if previous == code_digest:
            return
        self._code_ids[entry_eip] = code_digest
        if previous is None:
            return
        self.code_resets += 1
        accumulated = self._policies.pop(entry_eip, None)
        if accumulated is not None:
            base = self.base_policy()
            kept = base.with_(
                self_check=accumulated.self_check,
                self_revalidate=accumulated.self_revalidate,
                stylized_imm_addrs=accumulated.stylized_imm_addrs,
            )
            if kept != base:
                self._policies[entry_eip] = kept
        self.reset_region(entry_eip)

    def prune(self, live_policy_entries, live_site_entries) -> int:
        """Drop state for regions that are no longer live.

        ``live_policy_entries`` protects accumulated policies (and the
        code-identity map) — callers include everything that may
        re-translate soon, so a pruned policy can only belong to a
        region that would restart from the base policy anyway.
        ``live_site_entries`` protects partial fault counts, which are
        cheap to relearn and prunable more aggressively.  Returns the
        number of keys removed.
        """
        removed = 0
        for entry in [e for e in self._policies
                      if e not in live_policy_entries]:
            del self._policies[entry]
            removed += 1
        for entry in [e for e in self._code_ids
                      if e not in live_policy_entries]:
            del self._code_ids[entry]
            removed += 1
        for key in [k for k in self._site_faults
                    if k[0] not in live_site_entries]:
            del self._site_faults[key]
            removed += 1
        self.pruned += removed
        return removed

    def policy_entries(self) -> set[int]:
        """Entries holding accumulated policy or code-identity state."""
        return set(self._policies) | set(self._code_ids)

    def site_fault_entries(self) -> set[int]:
        return {key[0] for key in self._site_faults}

    def export_state(self) -> dict:
        """JSON-friendly state for the persistent snapshot."""
        from repro.cache.persist import encode_policy

        site_faults = [
            [entry, kind.name, site, genuine, count]
            for (entry, kind, site, genuine), count
            in sorted(self._site_faults.items(),
                      key=lambda item: (item[0][0], item[0][1].name,
                                        item[0][2], item[0][3]))
            if count > 0
        ]
        return {
            "policies": {str(entry): encode_policy(policy)
                         for entry, policy
                         in sorted(self._policies.items())},
            "site_faults": site_faults,
            "code_ids": {str(entry): digest for entry, digest
                         in sorted(self._code_ids.items())},
        }

    def import_state(self, state: dict) -> None:
        """Merge snapshot state in (monotone: only via ``set_policy``)."""
        from repro.cache.persist import decode_policy

        for entry, encoded in state["policies"].items():
            self.set_policy(int(entry), decode_policy(encoded))
        for entry, kind_name, site, genuine, count in state["site_faults"]:
            key = (int(entry), HostFaultKind[kind_name], int(site),
                   bool(genuine))
            self._site_faults[key] += int(count)
        for entry, digest in state["code_ids"].items():
            self._code_ids.setdefault(int(entry), str(digest))

    def note_fault(self, translation: Translation, fault: HostFault,
                   genuine: bool | None) -> TranslationPolicy | None:
        """Record a fault; return a new policy if retranslation is due."""
        if not self.config.adaptive_retranslation:
            return None
        entry = translation.entry_eip
        site = fault.guest_addr if fault.guest_addr is not None else entry
        kind = fault.kind
        key = (entry, kind, site, bool(genuine))
        self._site_faults[key] += 1
        if self._site_faults[key] < self.config.fault_threshold:
            return None
        self._site_faults[key] = 0  # each stage re-arms the counter
        current = self.policy_for(entry)
        escalated = self._escalate(current, kind, site, genuine)
        if escalated is None or escalated == current:
            return None
        self.escalations += 1
        self.set_policy(entry, escalated)
        return self.policy_for(entry)

    def _escalate(self, policy: TranslationPolicy, kind: HostFaultKind,
                  site: int, genuine: bool | None) -> TranslationPolicy | None:
        if kind is HostFaultKind.ALIAS_VIOLATION:
            # Pin the faulting store to program order first — the
            # surgical fix that leaves the rest of the region fully
            # speculative — then cut the region, then give up reordering
            # for the whole region (§3.5).
            if site not in policy.no_reorder_addrs:
                return policy.with_(
                    no_reorder_addrs=policy.no_reorder_addrs | {site}
                )
            if policy.max_instructions > MIN_REGION:
                return policy.with_(
                    max_instructions=max(MIN_REGION,
                                         policy.max_instructions // 2)
                )
            return policy.with_(reorder_memory=False)
        if kind is HostFaultKind.SPEC_MMIO:
            return policy.with_(
                io_fence_addrs=policy.io_fence_addrs | {site}
            )
        if kind is HostFaultKind.GUEST_FAULT:
            if genuine:
                # Narrow around the genuinely faulting instruction so the
                # neighbours stay large and optimized (§3.2).
                if policy.max_instructions > MIN_REGION:
                    return policy.with_(
                        max_instructions=max(MIN_REGION,
                                             policy.max_instructions // 2)
                    )
                return policy.with_(
                    stop_addrs=policy.stop_addrs | {site}
                )
            if site not in policy.no_reorder_addrs:
                return policy.with_(
                    no_reorder_addrs=policy.no_reorder_addrs | {site}
                )
            return policy.with_(control_speculation=False)
        if kind is HostFaultKind.STOREBUF_OVERFLOW:
            if policy.commit_interval > 4:
                return policy.with_(
                    commit_interval=max(4, policy.commit_interval // 2)
                )
            return policy.with_(
                max_instructions=max(MIN_REGION,
                                     policy.max_instructions // 2)
            )
        return None  # PROTECTION / SELF_CHECK are the SMC manager's job
