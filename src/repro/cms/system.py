"""The Code Morphing System: the paper's Figure 1 control flow.

::

    Start -> interpret (profiling) --threshold--> translate -> tcache
               ^                                       |
               |     rollback + recover                v
               +---------------- fault <--- execute translation --chain--+
                                                       ^                 |
                                                       +-----------------+

``CodeMorphingSystem`` owns the guest machine, the host CPU, the
interpreter (running against the host's committed shadow state), the
translator, the translation cache, and the adaptive machinery.  Its
``run`` loop is the dispatcher: execute a translation when one exists
for the current EIP, interpret (and profile) otherwise, and convert
every exceptional host event into rollback + recovery + (eventually)
adaptive retranslation.
"""

from __future__ import annotations

import os
from dataclasses import asdict, dataclass

from repro.cache import persist
from repro.cache.groups import TranslationGroups
from repro.cache.tcache import Translation, TranslationCache, digest_bytes
from repro.cms.config import CMSConfig
from repro.cms.degrade import (ChaosMonkey, DegradationManager,
                               RuntimeAuditor, Tier)
from repro.cms.retranslation import AdaptiveController
from repro.cms.smc import SMCManager
from repro.cms.stats import CMSStats, HealthReport
from repro.cms.trace import Event, EventTrace
from repro.host.cpu import ExitKind, HostCPU
from repro.host.faults import HostFault, HostFaultKind
from repro.host.jit import TemplateJIT
from repro.host.registers import HostBackedGuestState
from repro.interp.interpreter import Halted, Interpreter
from repro.interp.profile import ExecutionProfile
from repro.isa.exceptions import GuestException
from repro.isa.icache import DecodedInstructionCache
from repro.machine import Machine
from repro.memory.finegrain import FineGrainCache
from repro.memory.physical import PAGE_SHIFT
from repro.memory.protection import ProtectionMap
from repro.obs import Observability, ObservationBus
from repro.translator.translator import TranslationError, Translator


@dataclass
class RunResult:
    """Outcome of one ``run`` invocation."""

    halted: bool
    guest_instructions: int
    stats: CMSStats
    console_output: str

    def molecules_per_instruction(self, config: CMSConfig) -> float:
        return self.stats.molecules_per_instruction(config.cost)


class CodeMorphingSystem:
    """A full co-designed VM instance over one guest machine."""

    def __init__(self, machine: Machine,
                 config: CMSConfig | None = None) -> None:
        self.machine = machine
        self.config = config or CMSConfig()
        config = self.config

        fine_grain = (FineGrainCache(config.fine_grain_entries)
                      if config.fine_grain_protection else None)
        self.protection = ProtectionMap(
            fine_grain, fine_grain_enabled=config.fine_grain_protection
        )
        self.cpu = HostCPU(
            machine,
            self.protection,
            store_buffer_capacity=config.store_buffer_capacity,
            alias_entries=config.alias_entries,
        )
        self.state = HostBackedGuestState(self.cpu.regs)
        self.profile = ExecutionProfile()
        self.interpreter = Interpreter(machine, self.state, self.profile)
        self.translator = Translator(machine, self.profile,
                                     alias_entries=config.alias_entries,
                                     trace_min_reach=config.trace_min_reach)
        self.tcache = TranslationCache(config.tcache_capacity_molecules)
        self.groups = TranslationGroups()
        self.stats = CMSStats()
        self.trace = EventTrace()
        # Observability (PR 4): every runtime event is published on the
        # bus; the ring-buffer trace is one sink, and with obs enabled
        # the metrics registry and JSONL telemetry subscribe alongside
        # it.  ``self.obs is None`` is the disabled fast path — the
        # dispatcher tests it once per phase.
        self.bus = ObservationBus()
        self.bus.add_sink(self.trace)
        self.obs = Observability(config) if config.obs_enabled else None
        self._phases = None
        if self.obs is not None:
            for sink in self.obs.event_sinks():
                self.bus.add_sink(sink)
            self._phases = self.obs.phases
        self.controller = AdaptiveController(config)
        self.degrade = DegradationManager(
            config, self.stats, trace=self.bus,
            clock=lambda: self.machine.instructions_retired,
        )
        self.degrade.on_demote = self._on_region_demoted
        self.auditor = RuntimeAuditor(self)
        self.smc = SMCManager(config, self.tcache, self.groups,
                              self.protection, machine, self.stats,
                              self.controller, trace=self.bus,
                              degrade=self.degrade)

        self.interpreter.store_hook = self.smc.on_interpreter_store
        if self._phases is None:
            self.cpu.protection_service = self.smc.service_inline
        else:
            self.cpu.protection_service = self._timed_inline_service
        self.machine.bus.store_observers.append(self.smc.on_ram_write)
        self.tcache.on_flush = self._on_tcache_flush
        self.tcache.on_evict = self._on_tcache_evict
        self._halted = False

        # Wall-clock engineering dials (cost-model-invisible; the
        # benchmark harness flips them for attribution).
        machine.bus.set_fast_routing(config.fast_bus_routing)
        machine.mmu.set_tlb_enabled(config.mmu_tlb)
        # Mapping-coherency feed (§3.6.1 under paging): when a page
        # table mutation touches a page that carries translated code,
        # chains into its translations are severed so the dispatcher
        # re-verifies the identity mapping before re-entering them.
        machine.mmu.mapping_observers.append(self._on_mapping_changed)
        self._fast_dispatch = config.fast_dispatch
        # Template JIT (PR 6): committed translations lowered to
        # generated Python (host/jit.py).  Semantics-invisible like the
        # other wall-clock dials; degraded ladder tiers and quarantined
        # regions keep the simulated-VLIW path.
        self.jit = (TemplateJIT(self.cpu, stats=self.stats,
                                phases=self._phases)
                    if config.template_jit else None)
        self.icache = DecodedInstructionCache() if config.decode_cache \
            else None
        if self.icache is not None:
            self.interpreter.icache = self.icache
            # Same coherence feed the SMC manager uses: every RAM store
            # through the bus — interpreter stores, committed translated
            # stores draining at commit, DMA and disk writes.
            machine.bus.store_observers.append(self.icache.on_ram_write)

        # Chaos mode (fuzz harness): deterministically raise internal
        # errors inside the translator so the containment layer can be
        # audited end to end.  The wrapper sits *inside* the containment
        # boundaries, exactly where a real translator bug would fire.
        self.chaos = (ChaosMonkey(config.chaos_rate, config.chaos_seed,
                                  tenant=config.chaos_tenant)
                      if config.chaos_rate > 0.0 else None)
        if self.chaos is not None:
            inner_translate = self.translator.translate

            def chaotic_translate(entry_eip, policy):
                self.chaos.maybe_raise("translator.select")
                translation = inner_translate(entry_eip, policy)
                self.chaos.maybe_raise("translator.codegen")
                return translation

            self.translator.translate = chaotic_translate
        self._dispatches_since_audit = 0

        # Persistent snapshot (PR 5): warm-start from a prior run.  The
        # guest image is already in RAM at construction time, so every
        # persisted translation can be revalidated against it here.  A
        # bad snapshot (corrupt, wrong version, mismatched config) must
        # never prevent a cold start: the error is captured, not raised.
        self.snapshot_report: persist.SnapshotLoadReport | None = None
        self.snapshot_error: persist.SnapshotError | None = None
        self._shutdown_done = False
        if config.snapshot_path and os.path.exists(config.snapshot_path):
            try:
                self.snapshot_report = persist.load_snapshot(
                    self, config.snapshot_path)
            except persist.SnapshotError as error:
                self.snapshot_error = error

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def run(self, entry_eip: int | None = None,
            max_instructions: int = 50_000_000) -> RunResult:
        """Run until the guest halts or ``max_instructions`` retire."""
        if entry_eip is not None:
            self.state.eip = entry_eip
        machine = self.machine
        try:
            while machine.instructions_retired < max_instructions and \
                    not self._halted:
                self._dispatch_once()
        except Halted:
            self._halted = True
        self._finalize_stats()
        return RunResult(
            halted=self._halted,
            guest_instructions=machine.instructions_retired,
            stats=self.stats,
            console_output=machine.console.output,
        )

    def run_slice(self, guest_budget: int, should_preempt=None) -> bool:
        """Run up to ``guest_budget`` more guest instructions, then yield.

        The cooperative-scheduling entry point for fleet serving: the
        supervisor interleaves tenants by calling this round-robin.  The
        slice ends at the guest-instruction deadline, at a guest halt,
        or as soon as ``should_preempt()`` (the supervisor's watchdog
        hook, consulted between dispatches) returns True.  A single
        dispatch is itself bounded by ``dispatch_fuel_molecules`` — a
        runaway translation FUEL-exits and rolls back — so no one
        dispatch can hold the fleet hostage.

        Returns True while the guest can still make progress.
        """
        machine = self.machine
        deadline = machine.instructions_retired + guest_budget
        try:
            while machine.instructions_retired < deadline and \
                    not self._halted:
                self._dispatch_once()
                if should_preempt is not None and should_preempt():
                    break
        except Halted:
            self._halted = True
        return not self._halted

    def finalize_run(self) -> RunResult:
        """Close out a slice-driven run (what ``run`` does after its
        loop): fold engine counters into stats and build the result."""
        self._finalize_stats()
        return RunResult(
            halted=self._halted,
            guest_instructions=self.machine.instructions_retired,
            stats=self.stats,
            console_output=self.machine.console.output,
        )

    @property
    def halted(self) -> bool:
        return self._halted

    def _finalize_stats(self) -> None:
        self.stats.host_molecules = self.cpu.molecules_executed
        self.stats.guest_instructions = self.machine.instructions_retired
        self.stats.interrupts_delivered = \
            self.interpreter.interrupts_delivered
        self.stats.guest_exceptions_delivered = \
            self.interpreter.exceptions_delivered
        if self.chaos is not None:
            self.stats.chaos_injected = self.chaos.injected
        if self.obs is not None:
            self.obs.finalize(
                self.stats.as_dict(self.config.cost),
                run_info={
                    "halted": self._halted,
                    "guest_instructions": self.stats.guest_instructions,
                },
            )

    def shutdown(self) -> None:
        """End-of-run hook: persist the warm-start snapshot when
        configured.  Idempotent — ``run_workload`` and the fuzz harness
        call it once the run completes."""
        if self._shutdown_done:
            return
        self._shutdown_done = True
        config = self.config
        if config.snapshot_save and config.snapshot_path:
            self.save_snapshot(config.snapshot_path)

    def save_snapshot(self, path: str) -> dict:
        """Serialize the cache/controller/profile state to ``path``."""
        payload = persist.save_snapshot(self, path)
        self.bus.record(Event.SNAPSHOT_SAVE, None,
                        f"{len(payload['translations'])} translations")
        return payload

    def load_snapshot(self, path: str) -> persist.SnapshotLoadReport:
        """Load (and revalidate) a snapshot into this system."""
        report = persist.load_snapshot(self, path)
        self.snapshot_report = report
        return report

    def register_loaded_translation(self, translation: Translation) -> None:
        """Admit a snapshot-revalidated translation exactly like a
        fresh one: tcache insert, fine-grain protection, page-index
        recompute.  Chain patches were not persisted; the dispatcher
        re-establishes them lazily on first exit, as after a flush."""
        self.tcache.insert(translation)
        self.smc.protect_translation(translation)
        for page in translation.pages():
            self.smc.recompute_page(page)
        self.stats.snapshot_translations_loaded += 1
        self.bus.record(Event.SNAPSHOT_LOAD, translation.entry_eip)

    def note_snapshot_drop(self, entry_eip: int) -> None:
        """A persisted translation failed load-time revalidation."""
        self.stats.snapshot_translations_dropped += 1
        self.bus.record(Event.SNAPSHOT_DROP, entry_eip)

    # Code-identity window for the adaptive controller: wide enough to
    # distinguish rewritten first instructions, narrow enough that the
    # digest is independent of how large a region any one policy selects.
    _CODE_ID_WINDOW = 16

    def _code_identity(self, entry_eip: int) -> str | None:
        bus = self.machine.bus
        for size in (self._CODE_ID_WINDOW, 4, 1):
            try:
                return digest_bytes(bus.read_code_bytes(entry_eip, size))
            except GuestException:
                continue
        return None

    def live_policy_entries(self) -> set[int]:
        """Entries whose accumulated policy must survive pruning.

        Anything that may translate again soon keeps its policy, so the
        monotone no-bounce guarantee (§3) holds across flushes: resident
        translations, parked group versions, anchors hot enough to
        re-cross the threshold, and every ladder-tracked region.
        """
        live = {t.entry_eip for t in self.tcache.translations()}
        live.update(self.groups.entries())
        threshold = max(1, self.config.translation_threshold // 2)
        live.update(entry for entry, count
                    in self.profile.anchor_counts.items()
                    if count >= threshold)
        live.update(self.degrade.regions())
        return live

    def live_site_entries(self) -> set[int]:
        """Entries whose partial fault counters are worth keeping —
        only regions with a live translation (resident or grouped);
        counts are cheap to relearn, so pruning is aggressive."""
        live = {t.entry_eip for t in self.tcache.translations()}
        live.update(self.groups.entries())
        return live

    def prune_controller(self) -> int:
        """Drop adaptive-controller state for dead regions (PR 5)."""
        removed = self.controller.prune(self.live_policy_entries(),
                                        self.live_site_entries())
        if removed:
            self.stats.controller_pruned += removed
            self.bus.record(Event.CONTROLLER_PRUNE, None,
                            f"{removed} keys")
        return removed

    def _timed_inline_service(self, fault: HostFault) -> bool:
        """`service_inline` under the smc-service phase (obs on)."""
        with self._phases.phase("smc-service"):
            return self.smc.service_inline(fault)

    def health_report(self, run_audit: bool = True) -> HealthReport:
        """Audit the runtime (by default) and snapshot its health."""
        if run_audit:
            findings = self.auditor.audit()
        else:
            findings = self.auditor.last_findings
        if self.chaos is not None:
            self.stats.chaos_injected = self.chaos.injected
        stats = self.stats
        report = HealthReport(
            contained_errors=stats.contained_errors,
            quarantines=stats.quarantines,
            quarantined_regions=self.degrade.quarantined_regions(),
            storm_demotions=stats.storm_demotions,
            promotions=(stats.ladder_promotions
                        + stats.quarantine_readmissions),
            tier_census=self.degrade.tier_census(),
            audit_runs=stats.audit_runs,
            audit_repairs=stats.audit_repairs,
            audit_findings=list(findings),
            chaos_injected=stats.chaos_injected,
            incidents=[incident.describe()
                       for incident in self.degrade.incidents],
        )
        if self.obs is not None and self.obs.telemetry is not None:
            self.obs.telemetry.emit("health", asdict(report))
            self.obs.telemetry.flush()
        return report

    # ------------------------------------------------------------------
    # The dispatcher (Figure 1)
    # ------------------------------------------------------------------

    def _dispatch_once(self) -> None:
        """One dispatcher iteration inside the containment boundary.

        No internal CMS failure may escape this frame: anything that is
        not guest-semantic (``Halted`` is the guest stopping) is
        contained — state is rolled back to the last commit, the region
        is quarantined, and the interpreter makes one step of guaranteed
        forward progress.  With ``failure_containment`` off (ablation /
        debugging), internal errors propagate as before.
        """
        if not self.config.failure_containment:
            self._dispatch_inner()
            return
        try:
            self._dispatch_inner()
        except Halted:
            raise
        except Exception as error:  # noqa: BLE001 — the containment point
            self._contain_dispatch_error(error)

    def _contain_dispatch_error(self, error: Exception) -> None:
        """Last-resort recovery: rollback, quarantine, interpret."""
        self._rollback()
        entry = self.state.eip
        self._contain("dispatch", entry, error)
        # The interpreter is the trust root: if *it* cannot make
        # progress there is no sound fallback left, so its own errors
        # (beyond Halted) propagate.
        self._interp_step()

    def _contain(self, stage: str, entry_eip: int,
                 error: Exception) -> None:
        """Record an incident and quarantine ``entry_eip``'s region."""
        self.degrade.contain(stage, entry_eip, error)

    def _on_region_demoted(self, entry_eip: int) -> None:
        """Ladder demotion: retire the region's current translation so
        the next dispatch observes the new (more conservative) tier."""
        translation = self.tcache.lookup(entry_eip)
        if translation is not None:
            self.tcache.invalidate_translation(translation)
            for page in translation.pages():
                self.smc.recompute_page(page)
        self.controller.reset_region(entry_eip)

    def _maybe_audit(self) -> None:
        interval = self.config.audit_interval
        if interval <= 0:
            return
        self._dispatches_since_audit += 1
        if self._dispatches_since_audit < interval:
            return
        self._dispatches_since_audit = 0
        try:
            phases = self._phases
            if phases is None:
                self.auditor.audit()
            else:
                with phases.phase("audit"):
                    self.auditor.audit()
        except Exception as error:  # noqa: BLE001 — audit must not kill us
            if not self.config.failure_containment:
                raise
            self._contain("audit", self.state.eip, error)

    def _dispatch_inner(self) -> None:
        state = self.state
        machine = self.machine
        # Pending interrupts are delivered at this precise boundary by
        # the interpreter (§3.3).
        if state.interrupts_enabled and machine.pic.has_pending():
            self.interpreter.step()
            return

        eip = state.eip
        if self._fast_dispatch:
            # While paging is off every address is identity-mapped, so
            # skip the MMU walk entirely (the overwhelmingly common
            # case: boots run un-paged and apps identity-map code).
            if machine.mmu.paging_enabled and not self._identity_mapped(eip):
                self._interp_step()
                return
        elif not self._identity_mapped(eip):
            self._interp_step()
            return
        translation = self.tcache.lookup(eip)
        if translation is None or not translation.valid:
            phases = self._phases
            if phases is None:
                translation = self._maybe_translate(eip)
            else:
                with phases.phase("translate"):
                    translation = self._maybe_translate(eip)
            if translation is None:
                self._interp_step()
                return
        if machine.mmu.paging_enabled and \
                not self._translation_mapped(translation):
            # Some *later* page of the region was remapped out from
            # under the translation (the entry check above only proves
            # the entry page): the host code no longer matches what the
            # guest would fetch, so interpret until the identity
            # mapping is restored.
            self._interp_step()
            return

        self.stats.dispatches += 1
        self._maybe_audit()
        jit = self.jit
        if jit is not None and \
                self.degrade.tier_of(eip) is not Tier.AGGRESSIVE:
            jit = None  # degraded regions stay on the simulated VLIW
        engine = self.cpu.run if jit is None else jit.run
        obs = self.obs
        if obs is None:
            exit_info = engine(
                translation, fuel=self.config.dispatch_fuel_molecules
            )
        else:
            retired_before = machine.instructions_retired
            molecules_before = self.cpu.molecules_executed
            phase = "execute" if jit is None else "jit-execute"
            with obs.phases.phase(phase):
                exit_info = engine(
                    translation, fuel=self.config.dispatch_fuel_molecules
                )
        self.stats.chains_followed += exit_info.chains_followed
        current = exit_info.translations_entered[-1]
        current.entries += 1
        if obs is not None:
            # Committed work only: instructions_retired ticks at commit
            # and this reading precedes any rollback below, so faulted
            # (uncommitted) progress is never attributed to the region.
            obs.note_dispatch(
                current.entry_eip,
                machine.instructions_retired - retired_before,
                self.cpu.molecules_executed - molecules_before,
            )

        if exit_info.kind is ExitKind.EXITED:
            self.degrade.note_clean_dispatch(current.entry_eip)
            atom = exit_info.exit_atom
            if atom is not None and atom.prologue_success:
                self.smc.on_prologue_success(current)
                return
            if atom is not None:
                if current.trace_blocks > 1 and \
                        self._note_trace_exit(current, atom):
                    return  # split and replaced, or mispredict: no chain
                if self._maybe_promote_loop(current):
                    return  # promoted to an unrolled trace and replaced
                self._try_chain(current, atom)
            return
        if exit_info.kind is ExitKind.INTERRUPT:
            self._rollback(current)
            self.bus.record(Event.INTERRUPT, self.state.eip)
            return  # delivered at the top of the next iteration
        if exit_info.kind is ExitKind.FUEL:
            self._rollback(current)
            self.stats.fuel_exits += 1
            self._interp_step()
            return
        # FAULT
        assert exit_info.fault is not None
        self._rollback(current)
        self.bus.record(Event.ROLLBACK, self.state.eip,
                        exit_info.fault.kind.name)
        if self._phases is None:
            self._handle_fault(exit_info.fault, current)
        else:
            with self._phases.phase("fault-service"):
                self._handle_fault(exit_info.fault, current)

    def _identity_mapped(self, eip: int) -> bool:
        """Translations are only reused for identity-mapped code.

        Uses the MMU's host-side probe: a CMS-internal mapping check is
        not a guest access, so it must not bump the architectural
        ``mmu.translations``/``faults`` counters (an unmapped EIP's
        fetch fault surfaces in the interpreter, which *does* count).
        """
        mmu = self.machine.mmu
        if not mmu.paging_enabled:
            return True
        return mmu.probe(eip) == eip

    def _translation_mapped(self, translation: Translation) -> bool:
        """Every code page of the translation is identity-mapped.

        A translation's code ranges can span pages beyond the entry
        EIP's; reusing it is only sound while *all* of them still map
        identity (the host code was lifted from those physical bytes,
        and SMC write-protection watches those physical pages).  The
        result is cached against ``mmu.mapping_epoch`` so steady-state
        dispatch pays one integer compare; any page-table mutation
        bumps the epoch and forces a re-probe.
        """
        mmu = self.machine.mmu
        if not mmu.paging_enabled:
            return True
        epoch = mmu.mapping_epoch
        if translation.mapped_epoch == epoch:
            return True
        for page in translation.pages():
            base = page << PAGE_SHIFT
            if mmu.probe(base) != base:
                return False
        translation.mapped_epoch = epoch
        return True

    def _on_mapping_changed(self, vpn: int | None) -> None:
        """MMU mapping observer: a PTE (or the whole table) changed.

        Chains into translations on the affected page are severed so
        chained execution cannot bypass the dispatcher's mapping check;
        the translations stay resident and revalidate via
        ``_translation_mapped`` once identity is restored.
        """
        if vpn is None:
            victims = self.tcache.translations()
        else:
            victims = self.tcache.translations_on_page(vpn)
        for translation in victims:
            self.stats.mapping_unchains += \
                self.tcache.unchain_incoming(translation)

    def _rollback(self, translation: Translation | None = None) -> None:
        """Roll host state back, under the rollback phase when obs on."""
        phases = self._phases
        if phases is None:
            self.cpu.rollback()
        else:
            with phases.phase("rollback"):
                self.cpu.rollback()
            if translation is not None:
                self.obs.note_rollback(translation.entry_eip)
        self.stats.rollbacks += 1

    def _interp_step(self) -> None:
        phases = self._phases
        if phases is None:
            outcome = self.interpreter.step()
        else:
            with phases.phase("interpret"):
                outcome = self.interpreter.step()
        if outcome.instr is not None or outcome.took_exception:
            self.stats.interp_instructions += 1
            if phases is not None:
                self.obs.note_interp()

    def _note_trace_exit(self, translation: Translation, atom) -> bool:
        """Account a superblock trace exit; split storming traces.

        An exit from any block before the last one means the trace
        mispredicted a biased branch (the guarded side exit fired).
        Recurring mispredicts feed the adaptive controller: the block
        cap is halved — monotonically, through the policy merge — and
        the trace retranslated, descending toward single-block regions
        exactly like other §3 escalations.  Returns True when the exit
        must not be chained: either the trace was retranslated (the
        atom belongs to a dead version) or the exit was counted as a
        mispredict — chaining one would hide every later occurrence
        from this accounting, freezing the counter below the split
        threshold.  An unchained mispredict pays a dispatcher
        round-trip per occurrence, which is exactly the cost signal
        that justifies the split.

        Unrolled-loop traces mostly don't mispredict: a side exit is the
        loop *completing* (the back edge is internal, so a side exit is
        the only way out), tallied separately.  The exception is a
        *shallow* loop — trip count below the unroll depth — which
        exits from an early copy on every entry without ever running a
        full pass over the peeled iterations; those exits count as
        mispredicts so the split ladder can walk the depth back down.
        """
        if translation.loop_trace:
            completing = atom.trace_block >= translation.trace_blocks - 1
            # Average entry executes at least one full pass: the depth
            # is earning its keep, so early exits are just the trip
            # count not being a multiple of it.
            earning = (translation.executions_molecules
                       >= translation.entries * translation.num_molecules)
            if completing or earning:
                self.stats.trace_loop_exits += 1
                return False
        elif atom.trace_block >= translation.trace_blocks - 1:
            return False
        translation.side_exits += 1
        self.stats.trace_side_exits += 1
        threshold = self.config.trace_mispredict_threshold
        if threshold <= 0 or translation.side_exits < threshold:
            return True  # counted; keep the exit visible (unchained)
        if translation.side_exits * 2 < translation.entries:
            return True  # mostly completes; tolerate the side exits
        entry = translation.entry_eip
        new_cap = max(1, translation.trace_blocks // 2)
        self.controller.set_policy(
            entry,
            self.controller.policy_for(entry).with_(max_blocks=new_cap),
        )
        self.stats.trace_splits += 1
        self.bus.record(Event.TRACE_SPLIT, entry,
                        f"blocks {translation.trace_blocks} -> {new_cap}")
        self._retranslate(translation, self.controller.policy_for(entry))
        return True

    def _maybe_promote_loop(self, translation: Translation) -> bool:
        """Escalate a runtime-proven hot loop to an unrolled trace.

        The inverse of :meth:`_note_trace_exit`'s demotion: the first
        translation of a loop is the cheap single body (low translation
        latency, the paper's first-gear choice); once it has executed
        ``trace_hot_molecules`` host molecules the dispatcher flips the
        ``unroll_loops`` policy bit and retranslates, letting the trace
        builder peel iterations and the scheduler overlap them.  The
        translator keeps the unroll only if the cost model says it
        schedules denser, and the bit is sticky in the controller, so a
        rejected unroll is never attempted again (and an SMC code-version
        reset clears it — new code re-proves its hotness).  Returns True
        when the translation was replaced.
        """
        config = self.config
        if (not config.trace_formation
                or not translation.loop_trace
                or translation.trace_blocks > 1
                or config.trace_hot_molecules <= 0
                or translation.executions_molecules
                < config.trace_hot_molecules):
            return False
        entry = translation.entry_eip
        policy = self.controller.policy_for(entry)
        if policy.unroll_loops or policy.max_blocks <= 1:
            return False  # already judged (or clamped single-block)
        self.controller.set_policy(entry, policy.with_(unroll_loops=True))
        self.stats.trace_promotions += 1
        self.bus.record(Event.TRACE_PROMOTE, entry,
                        f"hot loop ({translation.executions_molecules}"
                        f" molecules)")
        # The translation being promoted is the judge's comparison
        # baseline — no need to rebuild the single body it already is.
        self._retranslate(translation, self.controller.policy_for(entry),
                          unroll_baseline=translation)
        return True

    def _try_chain(self, source: Translation, atom) -> None:
        """Chain an exit, inside its own containment boundary: a failed
        chain patch simply leaves the exit unchained (one dispatcher
        round-trip per execution — slower, never wrong)."""
        if not self.config.failure_containment:
            self._try_chain_inner(source, atom)
            return
        try:
            if self.chaos is not None:
                self.chaos.maybe_raise("chain.patch")
            self._try_chain_inner(source, atom)
        except Exception as error:  # noqa: BLE001 — containment point
            self._contain("chain", source.entry_eip, error)

    def _try_chain_inner(self, source: Translation, atom) -> None:
        if atom.exit_target is not None:
            target = self.tcache.lookup(atom.exit_target)
            if target is None or not target.valid:
                return
            if self.machine.mmu.paging_enabled and \
                    not self._translation_mapped(target):
                return  # never chain past the dispatcher's mapping check
            self.tcache.chain(source, atom, target)
        else:
            # Indirect exit: install a monomorphic inline cache guarded
            # by the target EIP just observed.
            observed = self.state.eip
            target = self.tcache.lookup(observed)
            if target is None or not target.valid or target.prologue_armed:
                return
            if self.machine.mmu.paging_enabled and \
                    not self._translation_mapped(target):
                return  # never chain past the dispatcher's mapping check
            if atom.chained_translation is target and \
                    atom.chained_guard == observed:
                return
            self.tcache.chain_indirect(source, atom, target, observed)
            self.stats.indirect_chains += 1
        self.stats.chain_patches += 1
        self.bus.record(Event.CHAIN, source.entry_eip,
                          f"-> {target.entry_eip:#x}")

    # ------------------------------------------------------------------
    # Translation production
    # ------------------------------------------------------------------

    def _maybe_translate(self, eip: int) -> Translation | None:
        if self._fast_dispatch:
            # The dispatcher just missed the tcache for this eip; bump
            # the anchor count and test the threshold in one probe
            # instead of re-deriving the count through the profile.
            counts = self.profile.anchor_counts
            counts[eip] = count = counts[eip] + 1
            if count < self.config.translation_threshold:
                return None
        else:
            self.profile.on_anchor(eip)
            if self.profile.anchor_counts[eip] < \
                    self.config.translation_threshold:
                return None
        # Code identity first: if the guest loaded different code at
        # this address, version-specific escalations (including a stale
        # interpreter pin in stop_addrs) are reset before they gate
        # anything.
        identity = self._code_identity(eip)
        if identity is not None:
            self.controller.observe_code(eip, identity)
        if eip in self.controller.policy_for(eip).stop_addrs:
            return None  # pinned to the interpreter (§3.2)
        if not self.degrade.allow_translation(eip):
            return None  # quarantined: interpret until probation expires
        try:
            reactivated = self.smc.try_group_reactivation(eip)
            if reactivated is not None:
                self.stats.group_reactivations += 1
                self.bus.record(Event.GROUP_REACTIVATE, eip)
                return reactivated
            policy = self.degrade.clamp(eip, self.controller.policy_for(eip))
            translation = self.translator.translate(eip, policy)
        except TranslationError:
            # A handled translator outcome — but a region that *keeps*
            # failing to translate re-tries on every hot dispatch, which
            # is itself a storm; the ladder eventually quarantines it.
            self.degrade.note_degrade_event(eip, "translation-error")
            return None
        except Exception as error:  # noqa: BLE001 — containment point
            if not self.config.failure_containment:
                raise
            self._contain("translate", eip, error)
            return None
        if translation is None:
            return None
        if self.machine.mmu.paging_enabled and \
                not self._translation_mapped(translation):
            # The translator read part of this region through a
            # non-identity mapping (the entry page was identity but a
            # later page was not); caching it would pin the wrong
            # physical bytes.  Interpret until the mapping settles.
            return None
        self.tcache.insert(translation)
        self.smc.protect_translation(translation)
        for page in translation.pages():
            self.smc.recompute_page(page)
        self.stats.translations_made += 1
        self.stats.guest_instructions_translated += \
            translation.guest_instr_count
        self._note_translation_shape(translation)
        if self.obs is not None:
            self.obs.note_translation(eip, translation.guest_instr_count)
        self.bus.record(Event.TRANSLATE, eip,
                        translation.policy.describe())
        return translation

    def _retranslate(self, translation: Translation, policy,
                     unroll_baseline: Translation | None = None) -> None:
        """Replace a failing translation with a more conservative one.

        The failing version is removed from the tcache — and, through
        removal, unchained in both directions — *before* the translator
        runs, so that no fallback path (``TranslationError``, a
        contained internal error, or an untranslatable region) can leave
        stale chained entries able to re-enter the dead translation.
        Its page protection is rebuilt in every outcome for the same
        reason: a dead translation must not keep granules protected.
        """
        entry = translation.entry_eip
        self.degrade.note_degrade_event(entry, "retranslate")
        self.tcache.invalidate_translation(translation)
        stale_pages = translation.pages()
        replacement = None
        phases = self._phases
        try:
            if phases is None:
                replacement = self.translator.translate(
                    entry, self.degrade.clamp(entry, policy),
                    unroll_baseline=unroll_baseline)
            else:
                with phases.phase("translate"):
                    replacement = self.translator.translate(
                        entry, self.degrade.clamp(entry, policy),
                        unroll_baseline=unroll_baseline)
        except TranslationError:
            pass
        except Exception as error:  # noqa: BLE001 — containment point
            if not self.config.failure_containment:
                raise
            self._contain("retranslate", entry, error)
        if replacement is None or (
                self.machine.mmu.paging_enabled and
                not self._translation_mapped(replacement)):
            # No replacement — or the retranslator just read the region
            # through a non-identity mapping (same rule as first-time
            # translation).  Either way the region falls back to the
            # interpreter with its page protection rebuilt.
            for page in stale_pages:
                self.smc.recompute_page(page)
            return
        self.tcache.insert(replacement)
        self.smc.protect_translation(replacement)
        for page in stale_pages | replacement.pages():
            self.smc.recompute_page(page)
        self.stats.translations_made += 1
        self.stats.retranslations += 1
        if self.obs is not None:
            self.obs.note_translation(entry, replacement.guest_instr_count)
        self.bus.record(Event.RETRANSLATE, entry, policy.describe())
        self.stats.guest_instructions_translated += \
            replacement.guest_instr_count
        self._note_translation_shape(replacement)

    def _note_translation_shape(self, translation: Translation) -> None:
        """Thread trace-shape and cost-model counters through stats."""
        self.stats.modeled_cycles_translated += translation.modeled_cycles
        if translation.trace_blocks > 1:
            self.stats.traces_formed += 1
            self.stats.trace_blocks_chained += translation.trace_blocks

    # ------------------------------------------------------------------
    # Fault recovery (§3): rollback happened; decide and make progress
    # ------------------------------------------------------------------

    def _handle_fault(self, fault: HostFault,
                      translation: Translation) -> None:
        kind = fault.kind
        self.stats.faults[kind.name] += 1
        translation.fault_counts[kind] += 1
        if self.obs is not None:
            self.obs.note_fault(translation.entry_eip)
        self.bus.record(
            Event.FAULT,
            fault.guest_addr if fault.guest_addr is not None
            else translation.entry_eip,
            kind.name,
        )
        if kind is not HostFaultKind.PROTECTION:
            # Storm accounting: the same translation faulting repeatedly
            # inside the window walks the region down the degradation
            # ladder (protection-fault storms are throttled through the
            # SMC manager's invalidation feed instead).
            self.degrade.note_degrade_event(translation.entry_eip,
                                            kind.name.lower())

        if kind is HostFaultKind.PROTECTION:
            # Inline service already declined: genuine SMC, page-level
            # protection, or a spurious fault needing adaptation.  The
            # faulting store then re-executes through the interpreter.
            phases = self._phases
            if phases is None:
                self.smc.on_protection_fault(fault)
            else:
                with phases.phase("smc-service"):
                    self.smc.on_protection_fault(fault)
            self._interp_step()
            return
        if kind is HostFaultKind.SELF_CHECK:
            self._handle_self_check_fail(translation)
            return
        if kind is HostFaultKind.MMU_MUTATION:
            # Page-table store: the interpreter re-executes it from the
            # committed state so the mutation is immediately visible to
            # MMU walks (a buffered store would not be).  Regions that
            # keep mutating the table storm the ladder toward the
            # interpreter — the adaptive response, like §3.4's
            # interpret-only pinning.
            self._interp_step()
            return
        if kind is HostFaultKind.GUEST_FAULT:
            genuine = self._recovery_interpret(fault, translation)
            if genuine:
                self.stats.genuine_guest_faults += 1
                self.bus.record(Event.GENUINE_FAULT, fault.guest_addr)
            else:
                self.stats.speculative_guest_faults += 1
                self.bus.record(Event.SPECULATIVE_FAULT, fault.guest_addr)
            policy = self.controller.note_fault(translation, fault, genuine)
            if policy is not None:
                self.bus.record(Event.POLICY_ESCALATE,
                                  translation.entry_eip, policy.describe())
                self._retranslate(translation, policy)
            return
        # ALIAS_VIOLATION / SPEC_MMIO / STOREBUF_OVERFLOW: "rollback and
        # conservative re-execution in the interpreter" (§3.5), then
        # maybe retranslate.  Recovery interprets through the region
        # boundary so translation-entry profiling is not distorted by
        # mid-region addresses becoming anchors.
        policy = self.controller.note_fault(translation, fault, None)
        if policy is not None:
            self.bus.record(Event.POLICY_ESCALATE, translation.entry_eip,
                              policy.describe())
            self._retranslate(translation, policy)
        self._recovery_interpret(fault, translation)

    def _handle_self_check_fail(self, translation: Translation) -> None:
        """A self-checking translation's window check failed (§3.6.3).

        Two cases: (a) the translation patched its *own* bytes — the
        rollback discarded the write, so memory still matches the
        snapshot; the translation stays valid and the interpreter makes
        progress through the modifying store precisely.  (b) someone
        else rewrote the bytes — retire the stale version, reactivate a
        matching group member (§3.6.5), or leave retranslation to the
        dispatcher.
        """
        try:
            current = self.smc._read_ranges(translation.code_ranges)
        except GuestException:
            current = None
        if current == translation.code_snapshot:
            self._interp_step()  # self-writing region: case (a)
            return
        replacement = self.smc.on_self_check_fail(translation)
        if replacement is None:
            self._interp_step()

    def _recovery_interpret(self, fault: HostFault,
                            translation: Translation) -> bool:
        """Re-execute the rolled-back region in the interpreter.

        Returns True when the guest exception recurs at the same
        instruction (a genuine fault, delivered precisely by the
        interpreter) and False when the region re-executes cleanly (the
        fault was an artifact of speculation and is simply ignored,
        §3.2).
        """
        if self._fast_dispatch:
            region_addrs = translation.region_addrs()
        else:
            region_addrs = {
                addr
                for start, length in translation.code_ranges
                for addr in range(start, start + length)
            }
        cap = self.config.recovery_interp_cap
        for step in range(cap):
            if self.state.eip not in region_addrs:
                return False
            if step > 0 and self.state.eip == translation.entry_eip:
                return False  # one pass of a loop region completed
            outcome = self.interpreter.step()
            self.stats.recovery_interp_instructions += 1
            if outcome.took_exception:
                return True
        return False

    # ------------------------------------------------------------------

    def _on_tcache_flush(self) -> None:
        self.protection.clear()
        # Parked retired versions survive the flush, but their compiled
        # JIT callables must not: the flush's contract is that the whole
        # generation of generated host code is gone (reactivated
        # versions recompile on first dispatch).
        self.groups.drop_host_code()
        self.bus.record(Event.TCACHE_FLUSH)
        # The dead generation's controller state goes with it (anchors
        # survive, so any region hot enough to re-translate keeps its
        # accumulated policy — the monotone guarantee holds).
        self.prune_controller()

    def _on_tcache_evict(self, victims) -> None:
        """Rebuild protection for pages the cold generation occupied,
        and update group residency: a cold-evicted region's retired
        versions must not linger, or groups leak whole version lists
        for regions the cache decided were not worth keeping."""
        pages = set()
        for translation in victims:
            pages.update(translation.pages())
            if self.tcache.lookup(translation.entry_eip) is None:
                self.groups.drop_group(translation.entry_eip)
        for page in pages:
            self.smc.recompute_page(page)


def run_reference(machine: Machine, entry_eip: int,
                  max_instructions: int = 50_000_000) -> RunResult:
    """Run a workload on the pure interpreter (the correctness oracle)."""
    system = CodeMorphingSystem(
        machine, CMSConfig().interpreter_only()
    )
    return system.run(entry_eip, max_instructions)
