"""Interrupt-storm device server: DMA + disk under PIC/timer/NIC fire.

The guest is a small event-driven server.  Its main loop repeatedly
kicks a DMA memory-to-memory copy and a disk sector read, waiting on
ISR-incremented completion counters, while two asynchronous interrupt
sources hammer it the whole time: a fast periodic timer and the
stop-and-wait NIC delivering seeded packets into a receive ring.

The paper's §3.3/§3.6.1 pressure points all fire at once: interrupts
arriving mid-translation force rollbacks to committed state, and every
DMA/disk/NIC byte lands through the memory bus where the CMS store
observer must invalidate affected translations.

Convergence: the timer ISR disables the timer after a fixed tick
count, the NIC ISR stops the NIC after a fixed packet count, and DMA /
disk completions are serialized by the main loop — so *every* delivered
interrupt count is guest-controlled and both engines observe identical
device event streams (see scenarios.base).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.workloads.builder import (
    MACRO_LIBRARY,
    random_words,
    word_table,
    wrap,
)

from repro.scenarios.base import ScenarioProgram

SRC_WORDS = 64  # DMA source block (256 bytes)
DISK_SECTORS = 4


@dataclass(frozen=True)
class StormKnobs:
    """Instruction-budget-derived sizing for one storm phase."""

    timer_period: int
    ticks: int
    nic_period: int
    npkts: int
    rounds: int

    @classmethod
    def for_budget(cls, budget: int) -> "StormKnobs":
        timer_period = 700
        nic_period = 500
        return cls(
            timer_period=timer_period,
            ticks=max(3, budget // (2 * timer_period)),
            nic_period=nic_period,
            npkts=max(3, (budget * 11) // (20 * nic_period)),
            rounds=max(2, budget // 900),
        )


def phase_body(p: str, knobs: StormKnobs) -> str:
    """The storm phase with all labels prefixed by ``p``."""
    return f"""
; ---- interrupt-storm device server ({p}) -----------------------------
    mov ebx, 0
    storei [ebx + 128], {p}isr_timer    ; IVT vector 32 (IRQ 0)
    storei [ebx + 136], {p}isr_dma      ; IVT vector 34 (IRQ 2)
    storei [ebx + 140], {p}isr_disk     ; IVT vector 35 (IRQ 3)
    storei [ebx + 144], {p}isr_nic      ; IVT vector 36 (IRQ 4)
    storei [ebx + {p}ticks], 0
    storei [ebx + {p}rxsum], 0
    storei [ebx + {p}rxcnt], 0
    storei [ebx + {p}dmadone], 0
    storei [ebx + {p}diskdone], 0
    mov eax, {knobs.timer_period}
    out 0x40
    mov eax, 1
    out 0x41                            ; timer on
    mov eax, {p}rxbuf
    out 0x70
    mov eax, {knobs.nic_period}
    out 0x71
    mov eax, 1
    out 0x72                            ; NIC on + armed
    sti
    mov edi, 0
{p}serve:
    ; DMA the source block over the destination block.
    mov eax, {p}srcbuf
    out 0x50
    mov eax, {p}dstbuf
    out 0x51
    mov eax, {SRC_WORDS * 4}
    out 0x52
    mov eax, 1
    out 0x53
    mov ecx, edi
    inc ecx
    spin_until {p}dmadone, ecx
    ; Read one disk sector into the staging buffer.
    mov eax, edi
    and eax, {DISK_SECTORS - 1}
    out 0x60
    mov eax, {p}diskbuf
    out 0x61
    mov eax, 1
    out 0x62
    mov eax, 1
    out 0x63
    spin_until {p}diskdone, ecx
    ; Fold one staged word (main context owns ESI).
    mov eax, edi
    and eax, 127
    shl eax, 2
    add eax, {p}diskbuf
    load eax, [eax]
    mix eax
    inc edi
    cmp edi, {knobs.rounds}
    jne {p}serve
    ; Quiesce: both storm sources self-limit in their ISRs.
    mov ecx, {knobs.npkts}
    spin_until {p}rxcnt, ecx
    mov ecx, {knobs.ticks}
    spin_until {p}ticks, ecx
    cli
    load eax, [ebx + {p}rxsum]
    mix eax
    load eax, [ebx + {p}rxcnt]
    mix eax
    load eax, [ebx + {p}ticks]
    mix eax
    load eax, [ebx + {p}dmadone]
    mix eax
    load eax, [ebx + {p}diskdone]
    mix eax
    load eax, [ebx + {p}dstbuf]
    mix eax
    jmp {p}phase_end

{p}isr_timer:                           ; self-limits at a fixed count
    isr_save
    mov ebx, 0
    load eax, [ebx + {p}ticks]
    inc eax
    store [ebx + {p}ticks], eax
    cmp eax, {knobs.ticks}
    jne {p}timer_live
    mov eax, 0
    out 0x41                            ; timer off: exactly N deliveries
{p}timer_live:
    eoi
    isr_restore
    iret

{p}isr_dma:
    isr_save
    mov ebx, 0
    load eax, [ebx + {p}dmadone]
    inc eax
    store [ebx + {p}dmadone], eax
    eoi
    isr_restore
    iret

{p}isr_disk:
    isr_save
    mov ebx, 0
    load eax, [ebx + {p}diskdone]
    inc eax
    store [ebx + {p}diskdone], eax
    eoi
    isr_restore
    iret

{p}isr_nic:                             ; fold the packet, then re-arm
    isr_save
    mov edx, {p}rxbuf
    mov ecx, 8
    mov ebx, 0
{p}nic_word:
    load eax, [edx]
    add ebx, eax
    rol ebx, 3
    add edx, 4
    dec ecx
    jnz {p}nic_word
    mov edx, 0
    load eax, [edx + {p}rxsum]
    add eax, ebx
    store [edx + {p}rxsum], eax
    load eax, [edx + {p}rxcnt]
    inc eax
    store [edx + {p}rxcnt], eax
    cmp eax, {knobs.npkts}
    je {p}nic_stop
    mov eax, 2
    out 0x72                            ; stop-and-wait: arm next packet
    jmp {p}nic_ack
{p}nic_stop:
    mov eax, 0
    out 0x72                            ; exactly N packets ever delivered
{p}nic_ack:
    eoi
    isr_restore
    iret
; DMA destination deliberately shares pages with the ISR code above, so
; every transfer makes the store observer invalidate live translations
; (paper 3.6.1: "DMA writes to a protected page invalidate all
; translations for the page").
.align 64
{p}dstbuf:
    .space {SRC_WORDS * 4}
{p}phase_end:
"""


def phase_data(p: str, seed: int, base: int) -> str:
    """Counters and buffers for one storm phase at ``base``."""
    source = word_table(f"{p}srcbuf", random_words(seed ^ 0xD1CE, SRC_WORDS))
    return f"""
.org {base:#x}
{p}rxbuf:    .space 32
{p}rxsum:    .word 0
{p}rxcnt:    .word 0
{p}ticks:    .word 0
{p}dmadone:  .word 0
{p}diskdone: .word 0
{p}diskbuf:  .space 512
{source}
"""


def build(budget: int, seed: int) -> ScenarioProgram:
    knobs = StormKnobs.for_budget(budget)
    source = (MACRO_LIBRARY
              + wrap(phase_body("nw_", knobs),
                     data=phase_data("nw_", seed, 0x00100000)))
    return ScenarioProgram(
        source=source,
        max_instructions=budget * 2,
        disk_sectors=DISK_SECTORS,
    )
