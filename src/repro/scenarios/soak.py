"""Long-horizon soak: loop the whole adversarial mix back to back.

The soak program chains one interrupt-storm phase, one preemptive-
scheduler phase, and one guest-JIT phase — each the same phase body the
standalone scenarios use, re-prefixed so labels and data arenas stay
disjoint — and loops the sequence from a RAM round counter.  Re-running
a phase re-initializes its counters and its interrupt vectors from
guest code, so translations built in round 1 face round 2's IVT
rewrites and device re-arms on top of everything else.

One deliberate hazard rides the phase seams: the scheduler phase stops
its timer with an interrupt possibly still latched in the PIC, and the
next storm phase's ``sti`` delivers that stale interrupt through the
*storm* ISR.  The storm ISR self-limits on its tick cell, so the cell
still converges to the same count under any delivery schedule — but
the total number of deliveries per engine legitimately differs, which
is why the soak (like the scheduler) runs with
``pin_interrupts=False``.

The runner points its periodic RuntimeAuditor sweeps and HealthReport
checks at exactly this workload (see scenarios.runner).
"""

from __future__ import annotations

from repro.workloads.builder import MACRO_LIBRARY, wrap

from repro.scenarios import guestjit, irqstorm, scheduler
from repro.scenarios.base import ScenarioProgram

SOAK_ROUNDS = 2


def build(budget: int, seed: int) -> ScenarioProgram:
    inner = max(2000, budget // (3 * SOAK_ROUNDS))
    storm = irqstorm.StormKnobs.for_budget(inner)
    sched = scheduler.SchedKnobs.for_budget(inner)
    jit = guestjit.JitKnobs.for_budget(inner)
    body = f"""
    mov ebx, 0
    storei [ebx + sk_round], {SOAK_ROUNDS}
sk_loop:
{irqstorm.phase_body("sk1_", storm)}
{scheduler.phase_body("sk2_", sched, seed)}
{guestjit.phase_body("sk3_", jit)}
    mov ebx, 0
    load eax, [ebx + sk_round]
    dec eax
    store [ebx + sk_round], eax
    cmp eax, 0
    jne sk_loop
"""
    data = (irqstorm.phase_data("sk1_", seed, 0x00100000)
            + scheduler.phase_data("sk2_", 0x00102000)
            + """
.org 0x103000
sk_round:
    .word 0
""")
    return ScenarioProgram(
        source=MACRO_LIBRARY + wrap(body, data=data),
        max_instructions=budget * 5,
        disk_sectors=irqstorm.DISK_SECTORS,
    )
