"""Adversarial guest scenario matrix (see scenarios.base for the
convergent-authoring rules and scenarios.matrix for the classes)."""

from repro.scenarios.base import STACK_SCRATCH, Scenario, ScenarioProgram

__all__ = ["STACK_SCRATCH", "Scenario", "ScenarioProgram"]
