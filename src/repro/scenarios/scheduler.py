"""Preemptive-scheduler "OS": timer-driven context switches over tasks
whose code and data share pages.

A round-robin scheduler ISR saves the full register file on the
current context's stack, parks ESP in a task control block, and
resumes the next context with ``iret`` — the classic preemptive
switch, driven by a fast timer slice.  Three tasks run under it:

* task 1 mutates a counter and a table placed on its own code page
  (fine-grain SMC protection: data stores keep dirtying protected
  translation pages without changing code bytes),
* task 2 patches the immediate of a helper routine before every call
  (stylized SMC / self-revalidation and translation-group version
  churn), and
* task 3 does byte-granularity rotate-copies between buffers that
  also live beside its code.

Convergence: the scheduler keeps switching until every task has set
its done flag, so the *number* of context switches legitimately
depends on delivery timing — this scenario therefore runs with
``pin_interrupts=False``.  Everything else converges: each task's
work is a pure function of its iteration count (preemption preserves
registers exactly), a finished task parks in a one-instruction spin so
its final saved frame is deterministic, and the main context folds the
arena results into ESI only after stopping the timer.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.workloads.builder import (
    MACRO_LIBRARY,
    random_words,
    word_table,
    wrap,
)

from repro.scenarios.base import ScenarioProgram

# Context stacks: main uses the wrap() default (0x7F000); the tasks get
# their own stacks inside the masked scratch window (see base.py).
TASK_STACK_TOPS = (0x0007B000, 0x0007A800, 0x0007A000)
FRAME_BYTES = 36  # 7 registers + eip + eflags
NCTX = 4  # main + 3 tasks


@dataclass(frozen=True)
class SchedKnobs:
    """Budget-derived sizing for one scheduler phase."""

    slice_period: int
    iters1: int
    iters2: int
    iters3: int

    @classmethod
    def for_budget(cls, budget: int) -> "SchedKnobs":
        return cls(
            slice_period=400,
            iters1=max(4, budget // 65),
            iters2=max(4, budget // 90),
            iters3=max(2, budget // 1600),
        )


def _initial_frame(p: str, index: int, task_label: str) -> str:
    """Build task ``index``'s initial switch frame (EDX holds EFLAGS)."""
    base = TASK_STACK_TOPS[index] - FRAME_BYTES
    zeros = "\n".join(f"    storei [ebx + {off}], 0"
                      for off in range(0, 28, 4))
    return f"""
    mov ebx, {base:#x}
{zeros}
    storei [ebx + 28], {task_label}
    store [ebx + 32], edx
    mov eax, ebx
    mov edi, 0
    store [edi + {p}tcb + {4 * (index + 1)}], eax
"""


def phase_body(p: str, knobs: SchedKnobs, seed: int) -> str:
    frames = "".join(
        _initial_frame(p, i, f"{p}task{i + 1}") for i in range(3)
    )
    src = word_table(f"{p}a3_src", random_words(seed ^ 0xBEEF, 8))
    return f"""
; ---- preemptive scheduler ({p}) --------------------------------------
    mov ebx, 0
    storei [ebx + 128], {p}isr          ; IVT vector 32 (IRQ 0)
    storei [ebx + {p}cur], 0
    storei [ebx + {p}done1], 0
    storei [ebx + {p}done2], 0
    storei [ebx + {p}done3], 0
    storei [ebx + {p}tcb], 0            ; slot 0 saved at first switch
    storei [ebx + {p}a1_val], 0x1A2B3C4D
    storei [ebx + {p}a2_val], 0x0F1E2D3C
    storei [ebx + {p}a3_acc], 0
    mov ecx, 16
    mov edx, {p}a1_tab
{p}rst_tab:
    storei [edx], 0
    add edx, 4
    dec ecx
    jnz {p}rst_tab
    ; EFLAGS image with IF=1 for the initial frames (timer not running,
    ; so nothing can deliver inside this window).
    sti
    pushf
    pop edx
    cli
    store [ebx + {p}eftpl], edx
{frames}
    mov eax, {knobs.slice_period}
    out 0x40
    mov eax, 1
    out 0x41                            ; preemption starts here
    sti
{p}wait_all:
    mov ebx, 0
    load eax, [ebx + {p}done1]
    load ecx, [ebx + {p}done2]
    and eax, ecx
    load ecx, [ebx + {p}done3]
    and eax, ecx
    cmp eax, 1
    jne {p}wait_all
    cli
    mov eax, 0
    out 0x41                            ; timer off: switching over
    load eax, [ebx + {p}a1_val]
    mix eax
    load eax, [ebx + {p}a1_tab]
    mix eax
    load eax, [ebx + {p}a1_tab + 32]
    mix eax
    load eax, [ebx + {p}a2_val]
    mix eax
    load eax, [ebx + {p}a3_acc]
    mix eax
    load eax, [ebx + {p}a3_dst]
    mix eax
    jmp {p}phase_end

{p}isr:                                 ; round-robin context switch
    push eax
    push ecx
    push edx
    push ebx
    push ebp
    push esi
    push edi
    mov ebx, 0
    load eax, [ebx + {p}cur]
    mov ecx, eax
    shl ecx, 2
    add ecx, {p}tcb
    store [ecx], esp                    ; park the outgoing context
    inc eax
    cmp eax, {NCTX}
    jne {p}no_wrap
    mov eax, 0
{p}no_wrap:
    store [ebx + {p}cur], eax
    mov ecx, eax
    shl ecx, 2
    add ecx, {p}tcb
    load esp, [ecx]                     ; adopt the incoming context
    eoi
    pop edi
    pop esi
    pop ebp
    pop ebx
    pop edx
    pop ecx
    pop eax
    iret

{p}task1:                               ; data stores on its own code page
    mov ebx, 0
    mov ecx, {knobs.iters1}
{p}t1_loop:
    load eax, [ebx + {p}a1_val]
    imul eax, 3
    add eax, 7
    store [ebx + {p}a1_val], eax
    mov edx, ecx
    and edx, 15
    shl edx, 2
    add edx, {p}a1_tab
    load eax, [edx]
    add eax, ecx
    rol eax, 1
    store [edx], eax
    dec ecx
    jnz {p}t1_loop
    storei [ebx + {p}done1], 1
{p}t1_idle:
    jmp {p}t1_idle
.align 16
{p}a1_val:
    .word 0
{p}a1_tab:
    .space 64

{p}task2:                               ; patches its helper every call
    mov ebx, 0
    mov ecx, {knobs.iters2}
{p}t2_loop:
    mov eax, ecx
    imul eax, 40503
    xor eax, 0x5A5A5A5A
    store [ebx + {p}t2_site + 2], eax   ; rewrite the add immediate
    call {p}t2_helper
    load edx, [ebx + {p}a2_val]
    xor edx, eax
    rol edx, 7
    store [ebx + {p}a2_val], edx
    dec ecx
    jnz {p}t2_loop
    storei [ebx + {p}done2], 1
{p}t2_idle:
    jmp {p}t2_idle
{p}t2_helper:
    mov eax, 100
{p}t2_site:
    add eax, 0                          ; immediate patched per call
    ret
.align 16
{p}a2_val:
    .word 0

{p}task3:                               ; byte rotate-copies beside code
    mov ebx, 0
    mov ecx, {knobs.iters3}
{p}t3_loop:
    mov edx, 0
{p}t3_copy:
    mov eax, edx
    add eax, ecx
    and eax, 31
    add eax, {p}a3_src
    loadb eax, [eax]
    mov ebp, edx
    add ebp, {p}a3_dst
    storeb [ebp], eax
    inc edx
    cmp edx, 32
    jne {p}t3_copy
    load eax, [ebx + {p}a3_dst]
    load edx, [ebx + {p}a3_acc]
    add edx, eax
    rol edx, 1
    store [ebx + {p}a3_acc], edx
    dec ecx
    jnz {p}t3_loop
    storei [ebx + {p}done3], 1
{p}t3_idle:
    jmp {p}t3_idle
.align 16
{src}
{p}a3_dst:
    .space 32
{p}a3_acc:
    .word 0
{p}phase_end:
"""


def phase_data(p: str, base: int) -> str:
    """Scheduler bookkeeping cells (TCBs live off the shared pages)."""
    return f"""
.org {base:#x}
{p}tcb:
    .word 0, 0, 0, 0
{p}cur:
    .word 0
{p}done1:
    .word 0
{p}done2:
    .word 0
{p}done3:
    .word 0
{p}eftpl:
    .word 0
"""


def build(budget: int, seed: int) -> ScenarioProgram:
    knobs = SchedKnobs.for_budget(budget)
    source = (MACRO_LIBRARY
              + wrap(phase_body("sc_", knobs, seed),
                     data=phase_data("sc_", 0x00100000)))
    return ScenarioProgram(
        source=source,
        max_instructions=budget * 3,
    )
