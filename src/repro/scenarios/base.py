"""Shared types for the adversarial scenario matrix.

A *scenario* is an assembly program engineered to be **convergent**: the
interpreter and the CMS deliver asynchronous interrupts at different
instruction boundaries, so a scenario's final architectural state must
be a pure function of *event counts*, never of *event timing*.  The
authoring rules that make this true:

* Device interrupt volume is self-limiting: each ISR counts its own
  deliveries and disables its device at a fixed count, so the number of
  delivered interrupts is guest-controlled, not schedule-controlled.
* The NIC is stop-and-wait (the ISR re-arms it), so the packet stream
  is identical under any delivery schedule.
* ISRs never touch ESI (the checksum register); they accumulate into
  RAM cells, and the main context folds those cells into ESI only after
  the devices have quiesced.
* Stack arenas hold dead frames from whatever delivery points actually
  occurred, so they are masked out of the RAM comparison — exactly the
  fuzz oracle's rule for injected runs.

Scenarios that deliberately leave delivery *counts* unpinned (the
preemptive scheduler keeps its timer free-running until the workload
finishes, so the number of context switches legitimately differs
between engines) set ``pin_interrupts=False``; every other
architectural channel is still compared.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

# Stack scratch arena excluded from RAM comparison: main stack plus the
# per-task stacks all live inside this window (see scheduler.py).
STACK_SCRATCH = (0x00078000, 0x0007F000)


@dataclass(frozen=True)
class ScenarioProgram:
    """One assembled-from-source scenario instance."""

    source: str
    max_instructions: int
    ram_masks: tuple[tuple[int, int], ...] = (STACK_SCRATCH,)
    disk_sectors: int = 0  # seeded disk image sectors the runner installs


@dataclass(frozen=True)
class Scenario:
    """A named adversarial workload class in the matrix."""

    name: str
    title: str
    description: str
    build: Callable[[int, int], ScenarioProgram]  # (budget, seed)
    pin_interrupts: bool = True
