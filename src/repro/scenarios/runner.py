"""Differential scenario runner: oracle vs CMS, with pass/perf records.

Each scenario runs twice from identical machines (same seeded disk
image, same assembled program): once under the interpreter-only oracle
and once under the full CMS.  The CMS side is driven through
``run_slice`` so a RuntimeAuditor sweep and ``HealthReport`` check run
between slices — the soak scenario's whole reason to exist — and the
final architectural states are compared with the fuzz oracle's masked
rules (stack scratch arenas zeroed; ``interrupts_delivered`` ignored
for scenarios that legitimately leave delivery counts unpinned).

The per-scenario record separates *gateable* facts from *advisory*
ones: ``counters`` and ``dispatch`` are pure functions of the guest
program and the CMS policies, so CI compares them exactly against the
committed baseline; ``timing`` (wall seconds, speedup) varies with the
host and is advisory only.  ``record_fingerprint`` drops the timing
section, so two runs of the same scenario at the same seed must be
byte-identical — the determinism contract the tests pin.
"""

from __future__ import annotations

import json
import random
import time
from dataclasses import replace

from repro.cms.config import CMSConfig
from repro.cms.system import CodeMorphingSystem
from repro.fuzz.oracle import RunOutcome, compare
from repro.machine import Machine
from repro.scenarios.base import Scenario, ScenarioProgram
from repro.scenarios.matrix import SCENARIOS, get

DISK_SEED_SALT = 0x51CC
SLICE_INSTRUCTIONS = 5_000  # guest instructions between health sweeps

# Stats keys containing any of these are host-timing-dependent; they
# stay out of the gateable counters section.
TIMING_MARKERS = ("seconds", "ips", "speedup", "slowdown")

# Counters that depend on process history rather than the guest
# program: the template JIT's compiled-code cache is module-global, so
# its hit count differs between a cold and a warm process.
PROCESS_DEPENDENT = ("jit_code_cache_hits",)


def _build_machine(prog: ScenarioProgram, seed: int) -> tuple[Machine, int]:
    machine = Machine()
    if prog.disk_sectors:
        rng = random.Random(seed ^ DISK_SEED_SALT)
        machine.disk.set_image(bytes(rng.randrange(256) for _
                                     in range(prog.disk_sectors * 512)))
    entry = machine.load_source(prog.source)
    return machine, entry


def _outcome(system: CodeMorphingSystem, prog: ScenarioProgram,
             result) -> RunOutcome:
    machine = system.machine
    regs, eip, flags = system.state.snapshot()
    ram = bytearray(machine.ram.read_bytes(0, machine.ram.size))
    for start, end in prog.ram_masks:
        ram[start:end] = b"\x00" * (end - start)
    return RunOutcome(
        halted=result.halted,
        console=result.console_output,
        regs=regs,
        eip=eip,
        flags=flags,
        ram=bytes(ram),
        exceptions=system.interpreter.exceptions_delivered,
        interrupts=system.interpreter.interrupts_delivered,
        guest_instructions=result.guest_instructions,
    )


def _mmu_record(machine: Machine) -> dict:
    """Gateable MMU/TLB facts from the CMS leg.

    ``translations``/``faults`` are architectural (walks the guest OS
    paid for); ``probes``/``probe_walks`` are CMS-internal mapping
    checks, and their difference — ``probe_walks_saved`` — is how many
    probe walks the software TLB absorbed.  All of these are pure
    functions of the guest program and the CMS policies, so they live
    inside the fingerprint.
    """
    mmu = machine.mmu
    return {
        "translations": mmu.translations,
        "faults": mmu.faults,
        "walks": mmu.walks,
        "tlb_hits": mmu.tlb_hits,
        "tlb_invalidations": mmu.tlb_invalidations,
        "probes": mmu.probes,
        "probe_walks": mmu.probe_walks,
        "probe_walks_saved": mmu.probes - mmu.probe_walks,
        "mapping_epoch": mmu.mapping_epoch,
    }


def _counters(stats_dict: dict) -> dict:
    return {key: value for key, value in sorted(stats_dict.items())
            if isinstance(value, (int, float))
            and key not in PROCESS_DEPENDENT
            and not any(marker in key for marker in TIMING_MARKERS)}


def run_scenario(scenario: Scenario, budget: int, seed: int,
                 config: CMSConfig | None = None,
                 chaos_rate: float = 0.0, chaos_seed: int = 0) -> dict:
    """Run one scenario differentially; return its pass/perf record."""
    base = config if config is not None else CMSConfig()
    prog = scenario.build(budget, seed)

    # Reference leg: the interpreter-only oracle.
    machine, entry = _build_machine(prog, seed)
    oracle = CodeMorphingSystem(machine, base.interpreter_only())
    started = time.perf_counter()
    ref_result = oracle.run(entry, max_instructions=prog.max_instructions)
    interp_seconds = time.perf_counter() - started
    ref = _outcome(oracle, prog, ref_result)

    # CMS leg: slice-driven, with a runtime-audit sweep and health
    # check between slices.
    cms_config = replace(base, obs_enabled=True,
                         chaos_rate=chaos_rate, chaos_seed=chaos_seed)
    machine, entry = _build_machine(prog, seed)
    system = CodeMorphingSystem(machine, cms_config)
    system.state.eip = entry
    started = time.perf_counter()
    sweeps = 0
    alive = True
    while alive and machine.instructions_retired < prog.max_instructions:
        alive = system.run_slice(SLICE_INSTRUCTIONS)
        if alive:
            system.health_report(run_audit=True)
            sweeps += 1
    cms_result = system.finalize_run()
    cms_seconds = time.perf_counter() - started
    cms = _outcome(system, prog, cms_result)
    health = system.health_report(run_audit=True)

    diffs = compare(ref, cms)
    if not scenario.pin_interrupts:
        diffs = [d for d in diffs
                 if not d.startswith("interrupts_delivered:")]

    return {
        "title": scenario.title,
        "pass": not diffs,
        "diffs": diffs,
        "pin_interrupts": scenario.pin_interrupts,
        "sweeps": sweeps,
        "health": {
            "healthy": health.healthy,
            "contained_errors": health.contained_errors,
            "quarantines": health.quarantines,
            "audit_runs": health.audit_runs,
            "audit_repairs": health.audit_repairs,
            "chaos_injected": health.chaos_injected,
        },
        "counters": _counters(system.stats.as_dict(cms_config.cost)),
        "mmu": _mmu_record(machine),
        "dispatch": system.obs.dispatch_summary(),
        "timing": {
            "interp_seconds": round(interp_seconds, 4),
            "cms_seconds": round(cms_seconds, 4),
            "speedup": round(interp_seconds / cms_seconds, 4)
            if cms_seconds else 0.0,
        },
    }


def run_matrix(budget: int, seed: int, names=None,
               config: CMSConfig | None = None,
               chaos_rate: float = 0.0, chaos_seed: int = 0) -> dict:
    """Run the (selected) matrix; return the BENCH_scenarios report."""
    chosen = [get(name) for name in names] if names else list(SCENARIOS)
    report = {
        "benchmark": "scenarios",
        "budget": budget,
        "seed": seed,
        "scenarios": {},
    }
    for scenario in chosen:
        report["scenarios"][scenario.name] = run_scenario(
            scenario, budget, seed, config=config,
            chaos_rate=chaos_rate, chaos_seed=chaos_seed)
    return report


def all_passed(report: dict) -> bool:
    return all(record["pass"] for record in report["scenarios"].values())


def record_fingerprint(record: dict) -> str:
    """Canonical JSON of a record minus its host-timing section."""
    trimmed = {key: value for key, value in record.items()
               if key != "timing"}
    return json.dumps(trimmed, sort_keys=True)
