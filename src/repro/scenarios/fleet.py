"""Fleet-hosted adversarial scenarios: one guest per tenant.

The per-process scenario runner (:mod:`repro.scenarios.runner`) drives
one adversarial guest under one CMS.  This module hosts the same guests
*under the fleet supervisor* instead — N tenants, each running its own
seed-varied instance of a scenario class (by default ``paging``, whose
guest reprograms its MMU continuously), sharing the supervisor's
translation store and cooperative scheduler.  Every tenant is then
compared against a solo interpreter-only reference built from the same
program and the same seeded disk image, so a mapping-coherency bug that
only shows up under slice preemption or cross-tenant scheduling still
has an exact architectural oracle.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.cms.config import CMSConfig
from repro.cms.system import CodeMorphingSystem
from repro.fleet.config import FleetConfig, TenantSpec
from repro.fleet.supervisor import FleetSupervisor
from repro.fleet.tenant import Tenant
from repro.fuzz.oracle import RunOutcome, compare
from repro.machine import Machine
from repro.scenarios.base import Scenario, ScenarioProgram
from repro.scenarios.matrix import get
from repro.scenarios.runner import DISK_SEED_SALT


@dataclass
class ScenarioFleetReport:
    """Outcome of one fleet-hosted scenario run."""

    scenario: str
    tenants: int
    budget: int
    seed: int
    rounds: int
    restarts: int
    uncontained: int
    imported_translations: int
    divergences: list[str] = field(default_factory=list)
    tenant_rows: list[dict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.divergences and self.uncontained == 0


def _seed_disk(machine: Machine, prog: ScenarioProgram,
               seed: int) -> None:
    """Same disk-image derivation the solo runner uses."""
    if prog.disk_sectors:
        rng = random.Random(seed ^ DISK_SEED_SALT)
        machine.disk.set_image(bytes(rng.randrange(256) for _
                                     in range(prog.disk_sectors * 512)))


def _reference(prog: ScenarioProgram, seed: int,
               base: CMSConfig) -> RunOutcome:
    machine = Machine()
    _seed_disk(machine, prog, seed)
    entry = machine.load_source(prog.source)
    oracle = CodeMorphingSystem(machine, base.interpreter_only())
    result = oracle.run(entry, max_instructions=prog.max_instructions)
    return _outcome_of(oracle, prog, result.halted,
                       result.guest_instructions)


def _outcome_of(system: CodeMorphingSystem, prog: ScenarioProgram,
                halted: bool, guest_instructions: int) -> RunOutcome:
    machine = system.machine
    regs, eip, flags = system.state.snapshot()
    ram = bytearray(machine.ram.read_bytes(0, machine.ram.size))
    for start, end in prog.ram_masks:
        ram[start:end] = b"\x00" * (end - start)
    return RunOutcome(
        halted=halted,
        console=machine.console.output,
        regs=regs,
        eip=eip,
        flags=flags,
        ram=bytes(ram),
        exceptions=system.interpreter.exceptions_delivered,
        interrupts=system.interpreter.interrupts_delivered,
        guest_instructions=guest_instructions,
    )


def _tenant_outcome(tenant: Tenant, prog: ScenarioProgram) -> RunOutcome:
    result = tenant.result
    return _outcome_of(
        tenant.system, prog,
        result.halted if result is not None else False,
        tenant.system.machine.instructions_retired,
    )


def run_scenario_fleet(scenario: Scenario | str = "paging",
                       tenants: int = 3, budget: int = 9_000,
                       seed: int = 0,
                       config: CMSConfig | None = None,
                       fleet: FleetConfig | None = None
                       ) -> ScenarioFleetReport:
    """Host ``tenants`` seed-varied scenario guests under the fleet.

    Tenant ``t`` runs ``scenario.build(budget, seed + t)`` with the disk
    image the solo runner would give ``seed + t``, so each tenant has an
    exact solo interpreter reference to diverge from.
    """
    if isinstance(scenario, str):
        scenario = get(scenario)
    base = config if config is not None else CMSConfig()
    fleet_config = fleet if fleet is not None else FleetConfig()

    programs: list[ScenarioProgram] = []
    specs: list[TenantSpec] = []
    for tenant_id in range(tenants):
        prog = scenario.build(budget, seed + tenant_id)
        programs.append(prog)
        specs.append(TenantSpec(
            tenant_id=tenant_id,
            source=prog.source,
            name=f"{scenario.name}-{tenant_id}",
            max_instructions=prog.max_instructions,
            config=base,
        ))

    references = [_reference(prog, seed + tenant_id, base)
                  for tenant_id, prog in enumerate(programs)]

    supervisor = FleetSupervisor(specs, fleet_config)
    for tenant, prog, tenant_id in zip(supervisor.tenants, programs,
                                       range(tenants)):
        tenant.machine_hook = (
            lambda machine, _prog=prog, _seed=seed + tenant_id:
            _seed_disk(machine, _prog, _seed))
    result = supervisor.run()

    report = ScenarioFleetReport(
        scenario=scenario.name,
        tenants=tenants,
        budget=budget,
        seed=seed,
        rounds=result.rounds,
        restarts=sum(t.restarts for t in supervisor.tenants),
        uncontained=result.health.uncontained,
        imported_translations=sum(t.imported_translations
                                  for t in supervisor.tenants),
        tenant_rows=[t.describe() for t in supervisor.tenants],
    )
    for tenant, prog, reference in zip(supervisor.tenants, programs,
                                       references):
        if tenant.state.value != "done":
            report.divergences.append(
                f"tenant {tenant.spec.tenant_id} ended "
                f"{tenant.state.value} (last error: {tenant.last_error})")
            continue
        diffs = compare(reference, _tenant_outcome(tenant, prog))
        if not scenario.pin_interrupts:
            diffs = [d for d in diffs
                     if not d.startswith("interrupts_delivered:")]
        for diff in diffs:
            report.divergences.append(
                f"tenant {tenant.spec.tenant_id}: {diff}")
    return report
