"""The adversarial scenario matrix: every workload class, by name."""

from __future__ import annotations

from repro.scenarios import guestjit, irqstorm, paging, scheduler, soak
from repro.scenarios.base import Scenario

SCENARIOS: tuple[Scenario, ...] = (
    Scenario(
        name="irq-storm",
        title="Interrupt-storm device server",
        description=("DMA + disk server under sustained timer and "
                     "stop-and-wait NIC interrupt fire"),
        build=irqstorm.build,
    ),
    Scenario(
        name="task-switch",
        title="Preemptive scheduler",
        description=("timer-driven round-robin context switches over "
                     "tasks whose code and data share pages"),
        build=scheduler.build,
        pin_interrupts=False,
    ),
    Scenario(
        name="guest-jit",
        title="Guest JIT",
        description=("guest emits, patches, and re-enters its own "
                     "generated code every round"),
        build=guestjit.build,
    ),
    Scenario(
        name="paging",
        title="Paging OS",
        description=("page-table remapping, disk-backed demand faults, "
                     "write-protect flips, and non-identity execution "
                     "under preemptive timer slices"),
        build=paging.build,
        pin_interrupts=False,
    ),
    Scenario(
        name="soak",
        title="Long-horizon soak",
        description=("storm + scheduler + JIT phases looped back to "
                     "back with periodic runtime-audit sweeps"),
        build=soak.build,
        pin_interrupts=False,
    ),
)


def names() -> list[str]:
    return [s.name for s in SCENARIOS]


def get(name: str) -> Scenario:
    for scenario in SCENARIOS:
        if scenario.name == name:
            return scenario
    raise KeyError(f"unknown scenario {name!r}; known: {names()}")
