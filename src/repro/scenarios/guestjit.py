"""SMC-heavy guest JIT: the guest emits, patches, and re-enters its own
generated code in a tight loop.

Each round the guest byte-copies one of four position-independent
kernel templates into a code buffer, rewrites the first instruction's
32-bit immediate in place (the classic compiled-constant patch), and
then hammers the fresh code with a burst of indirect calls.  Two
buffers alternate by round parity, so a buffer is always rewritten
*while the CMS still holds translations for its previous contents*.

This walks the paper's whole §3.6 adaptation ladder at once: every
emit burst hits fine-grain protected pages (§3.6.1), the repeated
patch-then-reenter rhythm is exactly what self-revalidating prologues
(§3.6.2) and stylized immediate reloading (§3.6.4) exist for, and the
patch value cycles with period 8 so identical buffer contents recur
and translation-group reactivation (§3.6.5) has real hits to find.

Convergence is trivial: the scenario is single-context and runs with
interrupts disabled, so it is compared exactly (``pin_interrupts`` on).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.workloads.builder import MACRO_LIBRARY, wrap

from repro.scenarios.base import ScenarioProgram

TMPL_BYTES = 32   # fixed emit size; every template is padded to this
BUF_STRIDE = 64   # the two code buffers sit one cache-line apart


@dataclass(frozen=True)
class JitKnobs:
    """Budget-derived sizing for one guest-JIT phase."""

    rounds: int
    inner: int  # re-entries per emitted kernel

    @classmethod
    def for_budget(cls, budget: int) -> "JitKnobs":
        return cls(rounds=max(4, budget // 360), inner=24)


def phase_body(p: str, knobs: JitKnobs) -> str:
    """The guest-JIT phase with all labels prefixed by ``p``."""
    return f"""
; ---- guest JIT ({p}) -------------------------------------------------
    mov edi, 0
{p}round:
    ; Destination buffer alternates by round parity, so the buffer we
    ; emit into still has live translations from two rounds ago.
    mov ebp, edi
    and ebp, 1
    shl ebp, 6
    add ebp, {p}jbuf
    ; Source template: round mod 4 selects one of the four kernels.
    mov eax, edi
    and eax, 3
    shl eax, 5
    add eax, {p}tmpl
    ; Emit: byte-copy the template into the code buffer.
    mov edx, {TMPL_BYTES}
{p}emit:
    loadb ecx, [eax]
    storeb [ebp], ecx
    inc eax
    inc ebp
    dec edx
    jnz {p}emit
    sub ebp, {TMPL_BYTES}
    ; Patch: bake this round's constant into the first instruction's
    ; immediate field (period-8 values, so buffer contents recur and
    ; translation groups can reactivate old versions).
    mov eax, edi
    and eax, 7
    imul eax, 0x9E3779B1
    add eax, 0x7F4A7C15
    mov ecx, ebp
    add ecx, 2
    store [ecx], eax
    ; Hammer: re-enter the freshly generated kernel.
    mov edx, {knobs.inner}
    mov eax, edi
{p}hammer:
    call ebp
    dec edx
    jnz {p}hammer
    mix eax
    inc edi
    cmp edi, {knobs.rounds}
    jne {p}round
    ; Fold the final machine code itself into the checksum.
    mov ebx, 0
    load eax, [ebx + {p}jbuf]
    mix eax
    load eax, [ebx + {p}jbuf + {BUF_STRIDE}]
    mix eax
    jmp {p}phase_end

; Four position-independent kernels, each padded to {TMPL_BYTES} bytes
; so the emitter can copy a fixed-size block.  Each starts with an
; `add eax, imm32` whose immediate (at offset +2) is the patch site.
.align {TMPL_BYTES}
{p}tmpl:
    add eax, 0                          ; patched after every emit
    xor eax, 0x0F1E2D3C
    rol eax, 3
    ret
.align {TMPL_BYTES}
    add eax, 0                          ; patched after every emit
    add eax, 0x01234567
    rol eax, 5
    ret
.align {TMPL_BYTES}
    add eax, 0                          ; patched after every emit
    xor eax, 0x51CC5151
    rol eax, 7
    ret
.align {TMPL_BYTES}
    add eax, 0                          ; patched after every emit
    imul eax, 9
    rol eax, 11
    ret
.align {BUF_STRIDE}
{p}jbuf:
    .space {2 * BUF_STRIDE}
{p}phase_end:
"""


def build(budget: int, seed: int) -> ScenarioProgram:
    knobs = JitKnobs.for_budget(budget)
    source = MACRO_LIBRARY + wrap(phase_body("gj_", knobs))
    return ScenarioProgram(
        source=source,
        max_instructions=budget * 2,
    )
