"""Paging "OS": MMU remapping, demand faults, and write-protect flips
under preemptive timer slices.

The guest builds an identity page table, enables paging, and then — all
while a free-running timer ISR preempts it — loops through five kinds
of virtual-memory adversity per round:

* **data-window remap**: a virtual window page is pointed at one frame,
  written, re-pointed at a second frame, and written again; the frames
  are read back through their identity mappings, so a stale TLB entry
  or an incoherent translated store would corrupt the checksum,
* **demand paging**: four virtual pages are backed by disk sectors and
  kept to a two-page resident set; every touch takes a not-present #PF
  whose handler programs a disk read (DMA through the bus) into the
  identity frame, polls it home, and maps the page read-only,
* **write-protect flip**: the PTE of a page holding a *hot translated*
  store loop and its data cell has its writable bit cleared each round;
  the first store takes a precise #PF out of translated code (§3.2 —
  rollback, recovery, interpreter re-fault), and the handler restores
  the bit,
* **non-identity execution**: a virtual code window is mapped onto two
  different physical routines in turn and called; the CMS must run that
  code through the interpreter (translations are identity-only),
* **page-boundary remap**: a hot routine whose code spans two pages has
  its *second* page remapped to an alternate tail; stale translated
  code (or a stale chain) would fold the old constant (§3.6.1).

Convergence: #PF delivery is synchronous, so the fault count is a pure
function of the touch sequence — identical in both engines.  The timer
tick count is schedule-dependent, so this scenario runs with
``pin_interrupts=False`` and zeroes the ISR-owned cells before the
checksum.  The disk-completion ISR only counts deliveries; its cell is
zeroed too (delivery can lag a completion across an IF=0 window).  The
#PF handler follows the classic convention: the faulting context parks
the target vaddr in ``pg_target`` before any possibly-faulting access,
and the handler dispatches on the error code's present bit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.workloads.builder import MACRO_LIBRARY, wrap

from repro.scenarios.base import ScenarioProgram

PT_BASE = 0x003F0000  # 1024 PTEs cover the 4 MiB of RAM
DEMAND_BASE = 0x00300000  # four demand pages, vpns 0x300..0x303
SECTORS_PER_PAGE = 2  # 1 KiB of backing store per demand page
DISK_SECTORS = 4 * SECTORS_PER_PAGE
VWIN = 0x00310000  # data window vpn 0x310
FRAME_A = 0x00320000
FRAME_B = 0x00321000
VCODE = 0x00340000  # code window vpn 0x340 (never identity)
FCODE_A = 0x00330000
FCODE_B = 0x00331000
SPAN_HEAD = 0x00352FC0  # head ends on page 0x352, tail starts 0x353000
SPAN_TAIL = 0x00353000
SPAN_ALT = 0x00354000  # alternate tail frame for the remap
WP_PAGE = 0x00360000  # hot store loop + its data cell share this page


def _pte(vpn: int) -> int:
    """Address of the PTE for virtual page number ``vpn``."""
    return PT_BASE + vpn * 4


@dataclass(frozen=True)
class PagingKnobs:
    """Budget-derived sizing for one paging phase."""

    timer_period: int
    rounds: int
    wp_iters: int
    span_iters: int

    @classmethod
    def for_budget(cls, budget: int) -> "PagingKnobs":
        # Page-table construction costs ~5.2k instructions up front;
        # each round costs ~550 including its five #PFs and ISR ticks.
        return cls(
            timer_period=300,
            rounds=max(2, (budget - 6000) // 560),
            wp_iters=12,
            span_iters=10,
        )


def phase_body(p: str, knobs: PagingKnobs) -> str:
    return f"""
; ---- paging OS ({p}) -------------------------------------------------
    mov ebx, 0
    storei [ebx + 56], {p}isr_pf        ; IVT vector 14 (#PF)
    storei [ebx + 128], {p}isr_timer    ; IVT vector 32 (IRQ 0)
    storei [ebx + 140], {p}isr_disk     ; IVT vector 35 (IRQ 3, disk)
    storei [ebx + {p}ticks], 0
    storei [ebx + {p}diskdone], 0
    storei [ebx + {p}dmd_t], 0
    storei [ebx + {p}target], 0
    ; Build the identity page table: every frame present + writable.
    mov ebx, {PT_BASE:#x}
    mov ecx, 0
{p}pt_build:
    mov eax, ecx
    shl eax, 12
    or eax, 3
    storex [ebx + ecx*4], eax
    inc ecx
    cmp ecx, 1024
    jne {p}pt_build
    ; Punch out the demand pages and the code window.
    storei [ebx + {0x300 * 4:#x}], 0
    storei [ebx + {0x301 * 4:#x}], 0
    storei [ebx + {0x302 * 4:#x}], 0
    storei [ebx + {0x303 * 4:#x}], 0
    storei [ebx + {0x340 * 4:#x}], 0
    mov eax, {PT_BASE:#x}
    setpt eax
    pgon
    mov eax, {knobs.timer_period}
    out 0x40
    mov eax, 1
    out 0x41                            ; preemption starts here
    sti
    mov edi, 0
{p}round:
    ; ---- (a) data-window remap: VWIN -> A, write; -> B, write -------
    mov ecx, {_pte(VWIN >> 12):#x}
    storei [ecx], {FRAME_A | 3:#x}
    mov edx, {VWIN:#x}
    mov eax, edi
    add eax, 0x0DDC0DE
    store [edx], eax
    store [edx + 64], eax
    storei [ecx], {FRAME_B | 3:#x}      ; remap: the TLB entry must die
    xor eax, 0x5A5A5A5A
    store [edx], eax
    store [edx + 64], eax
    ; Read the frames back through their identity mappings.
    mov edx, {FRAME_A:#x}
    load eax, [edx]
    mix eax
    mov edx, {FRAME_B:#x}
    load eax, [edx + 64]
    mix eax
    ; ---- (b) demand paging: touch all four pages, 2-page residency --
    mov edx, {DEMAND_BASE:#x}
    call {p}touch
    mov edx, {DEMAND_BASE + 0x1000:#x}
    call {p}touch
    mov edx, {DEMAND_BASE + 0x2000:#x}
    call {p}touch
    mov edx, {DEMAND_BASE + 0x3000:#x}
    call {p}touch
    ; ---- (c) write-protect flip on the hot store loop's page --------
    mov ecx, {_pte(WP_PAGE >> 12):#x}
    load eax, [ecx]
    and eax, 0xFFFFFFFD                 ; clear writable
    store [ecx], eax
    mov ebx, 0
    mov eax, {p}wp_cell
    store [ebx + {p}target], eax        ; park the #PF hint
    call {p}wp_fn                       ; first store takes a WP fault
    ; ---- (d) run code through a non-identity mapping ----------------
    mov ecx, {_pte(VCODE >> 12):#x}
    storei [ecx], {FCODE_A | 1:#x}
    call {VCODE:#x}
    mix eax
    storei [ecx], {FCODE_B | 1:#x}
    call {VCODE:#x}
    mix eax
    ; ---- (e) remap the tail page of the spanning hot routine --------
    mov ecx, {knobs.span_iters}
{p}span_hot:
    call {p}span
    mix eax
    dec ecx
    jnz {p}span_hot
    mov ecx, {_pte(SPAN_TAIL >> 12):#x}
    storei [ecx], {SPAN_ALT | 3:#x}     ; tail now reads the alt frame
    call {p}span                        ; must fold the alternate tail
    mix eax
    storei [ecx], {SPAN_TAIL | 3:#x}    ; restore identity
    inc edi
    cmp edi, {knobs.rounds}
    jne {p}round
    cli
    mov eax, 0
    out 0x41                            ; timer off
    pgoff
    ; Zero the delivery-count-dependent cells, then fold the results.
    mov ebx, 0
    storei [ebx + {p}ticks], 0
    storei [ebx + {p}diskdone], 0
    load eax, [ebx + {p}wp_cell]
    mix eax
    load eax, [ebx + {p}dmd_t]
    mix eax
    jmp {p}phase_end

{p}touch:                               ; EDX = demand page vaddr
    mov ebx, 0
    load eax, [ebx + {p}dmd_t]
    cmp eax, 2
    jb {p}touch_noev
    sub eax, 2                          ; evict page (t-2) & 3: clean
    and eax, 3                          ; read-only pages need no
    shl eax, 2                          ; write-back
    add eax, {_pte(DEMAND_BASE >> 12):#x}
    storei [eax], 0
{p}touch_noev:
    load eax, [ebx + {p}dmd_t]
    inc eax
    store [ebx + {p}dmd_t], eax
    store [ebx + {p}target], edx        ; park the #PF hint
    load eax, [edx]                     ; not-present: demand fault
    mix eax
    load eax, [edx + 256]
    mix eax
    load eax, [edx + 512]
    mix eax
    load eax, [edx + 768]
    mix eax
    ret

{p}isr_timer:
    isr_save
    mov ebx, 0
    load eax, [ebx + {p}ticks]
    inc eax
    store [ebx + {p}ticks], eax
    eoi
    isr_restore
    iret

{p}isr_disk:
    isr_save
    mov ebx, 0
    load eax, [ebx + {p}diskdone]
    inc eax
    store [ebx + {p}diskdone], eax
    eoi
    isr_restore
    iret

{p}isr_pf:                              ; [esp]=err, +4=eip, +8=eflags
    isr_save                            ; err now at [esp + 16]
    mov ebx, 0
    load ecx, [ebx + {p}target]         ; hinted faulting vaddr
    shr ecx, 12
    shl ecx, 2
    add ecx, {PT_BASE:#x}               ; ECX = &PTE
    load eax, [esp + 16]
    and eax, 1
    jnz {p}pf_wp                        ; present -> write-protect fault
    ; Not present: DMA the backing sectors into the identity frame.
    load edx, [ebx + {p}target]
    shr edx, 12
    shl edx, 12                         ; EDX = page base (= frame)
    mov eax, edx
    shr eax, 12
    sub eax, {DEMAND_BASE >> 12:#x}
    shl eax, 1                          ; x SECTORS_PER_PAGE
    out 0x60                            ; sector
    mov eax, edx
    out 0x61                            ; destination
    mov eax, {SECTORS_PER_PAGE}
    out 0x62
    mov eax, 1
    out 0x63                            ; start the read
{p}pf_wait:
    in 0x63
    cmp eax, 0
    jne {p}pf_wait                      ; poll busy (IF=0 here)
    mov eax, edx
    or eax, 1                           ; map present, read-only text
    store [ecx], eax
    jmp {p}pf_out
{p}pf_wp:
    load eax, [ecx]
    or eax, 2                           ; restore writable
    store [ecx], eax
{p}pf_out:
    isr_restore
    add esp, 4                          ; drop the error code
    iret
{p}phase_end:
"""


def phase_data(p: str, base: int) -> str:
    """Bookkeeping cells plus the remote code frames the phases map."""
    return f"""
.org {base:#x}
{p}ticks:
    .word 0
{p}diskdone:
    .word 0
{p}dmd_t:
    .word 0
{p}target:
    .word 0

.org {FCODE_A:#x}
{p}vfn_a:                               ; runs at {VCODE:#x} (window)
    mov eax, 0x0A11CE00
    add eax, 0x33
    ret

.org {FCODE_B:#x}
{p}vfn_b:
    mov eax, 0x0B0B0000
    add eax, 0x44
    ret

.org {SPAN_HEAD:#x}
{p}span:                                ; head page 0x352, tail 0x353
    mov eax, 0x0A0B0C0D
    xor eax, 0x00FF00FF
    jmp {p}span_tail

.org {SPAN_TAIL:#x}
{p}span_tail:
    add eax, 0x1003
    rol eax, 3
    ret

.org {SPAN_ALT:#x}
{p}span_alt:                            ; same page offsets as the tail
    add eax, 0x77777777
    rol eax, 9
    ret

.org {WP_PAGE:#x}
{p}wp_fn:                               ; store loop beside its cell
    mov ebx, 0
    mov ecx, {{WP_ITERS}}
{p}wp_loop:
    load eax, [ebx + {p}wp_cell]
    imul eax, 5
    add eax, 0x1234567
    store [ebx + {p}wp_cell], eax
    dec ecx
    jnz {p}wp_loop
    ret
.align 16
{p}wp_cell:
    .word 0x0C0FFEE0
"""


def build(budget: int, seed: int) -> ScenarioProgram:
    knobs = PagingKnobs.for_budget(budget)
    data = phase_data("pg_", 0x00100000).replace(
        "{WP_ITERS}", str(knobs.wp_iters))
    source = MACRO_LIBRARY + wrap(phase_body("pg_", knobs), data=data)
    return ScenarioProgram(
        source=source,
        max_instructions=budget * 3,
        disk_sectors=DISK_SECTORS,
    )
