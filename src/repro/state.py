"""Guest architectural state.

``GuestState`` is the abstract register-file interface shared by the
interpreter and the CMS runtime.  The co-design point from the paper is
that the x86 architectural registers live in dedicated host registers,
with working/shadow pairs providing commit and rollback.  Concretely:

* ``SimpleGuestState`` stores the state in plain Python attributes and
  is used by the pure-interpreter reference configuration (and by unit
  tests);
* ``repro.host.registers.HostBackedGuestState`` exposes the *shadow*
  (committed) host registers through the same interface, so the
  interpreter embedded in CMS operates directly on committed state,
  exactly like the native-code CMS interpreter does.

Flags are kept *unpacked* — one storage slot per flag — because that is
how translated code wants them (each flag is an independent 0/1 host
register); ``eflags`` packs them on demand for ``pushf``/interrupt
delivery.
"""

from __future__ import annotations

from repro.isa import flags as fl
from repro.isa.registers import NUM_REGS, REG_NAMES

MASK32 = 0xFFFFFFFF

# Unpacked flag slot order used by both state implementations and by
# the translator's guest-location numbering.
FLAG_SLOTS = ("cf", "pf", "zf", "sf", "of", "if_")
FLAG_SLOT_BITS = (fl.CF, fl.PF, fl.ZF, fl.SF, fl.OF, fl.IF)
IF_SLOT = FLAG_SLOTS.index("if_")


class GuestState:
    """Interface over guest architectural state (registers, EIP, flags)."""

    def get_reg(self, index: int) -> int:  # pragma: no cover - interface
        raise NotImplementedError

    def set_reg(self, index: int, value: int) -> None:  # pragma: no cover
        raise NotImplementedError

    def get_flag(self, slot: int) -> int:  # pragma: no cover - interface
        raise NotImplementedError

    def set_flag(self, slot: int, value: int) -> None:  # pragma: no cover
        raise NotImplementedError

    @property
    def eip(self) -> int:  # pragma: no cover - interface
        raise NotImplementedError

    @eip.setter
    def eip(self, value: int) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Shared convenience accessors
    # ------------------------------------------------------------------

    @property
    def eflags(self) -> int:
        """The packed EFLAGS word (with the x86 always-one bit set)."""
        packed = fl.ALWAYS_ONE
        for slot, bit in enumerate(FLAG_SLOT_BITS):
            if self.get_flag(slot):
                packed |= bit
        return packed

    @eflags.setter
    def eflags(self, value: int) -> None:
        for slot, bit in enumerate(FLAG_SLOT_BITS):
            self.set_flag(slot, 1 if value & bit else 0)

    @property
    def interrupts_enabled(self) -> bool:
        return bool(self.get_flag(IF_SLOT))

    def set_arith_flags(self, flags: int, mask: int = fl.ARITH_FLAGS) -> None:
        """Update the arithmetic flags selected by ``mask``."""
        for slot, bit in enumerate(FLAG_SLOT_BITS):
            if bit & mask:
                self.set_flag(slot, 1 if flags & bit else 0)

    def snapshot(self) -> tuple:
        """A hashable copy of the full architectural state, for tests."""
        return (
            tuple(self.get_reg(i) for i in range(NUM_REGS)),
            self.eip,
            tuple(self.get_flag(s) for s in range(len(FLAG_SLOTS))),
        )

    def describe(self) -> str:
        regs = " ".join(
            f"{name}={self.get_reg(i):08x}" for i, name in enumerate(REG_NAMES)
        )
        return f"eip={self.eip:08x} {regs} {fl.format_flags(self.eflags)}"


class SimpleGuestState(GuestState):
    """Plain-attribute guest state for the reference interpreter."""

    def __init__(self) -> None:
        self._regs = [0] * NUM_REGS
        self._eip = 0
        self._flags = [0] * len(FLAG_SLOTS)

    def get_reg(self, index: int) -> int:
        return self._regs[index]

    def set_reg(self, index: int, value: int) -> None:
        self._regs[index] = value & MASK32

    def get_flag(self, slot: int) -> int:
        return self._flags[slot]

    def set_flag(self, slot: int, value: int) -> None:
        self._flags[slot] = 1 if value else 0

    @property
    def eip(self) -> int:
        return self._eip

    @eip.setter
    def eip(self, value: int) -> None:
        self._eip = value & MASK32
