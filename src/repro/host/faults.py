"""Host fault model.

Host faults are the "native exceptions that transfer control to
handlers for the various modes of failure" (paper §3).  Each fault
records which guest instruction's atoms raised it, so the adaptive
retranslation controller can attribute recurring failures precisely.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.isa.exceptions import GuestException
from repro.memory.protection import StoreClass


class HostFaultKind(enum.Enum):
    """Why a translation aborted."""

    ALIAS_VIOLATION = enum.auto()  # reordered memory refs overlapped (§3.5)
    SPEC_MMIO = enum.auto()  # speculative memory atom touched I/O (§3.4)
    PROTECTION = enum.auto()  # store hit a write-protected code page (§3.6)
    GUEST_FAULT = enum.auto()  # potentially-genuine guest exception (§3.2)
    SELF_CHECK = enum.auto()  # self-checking translation found SMC (§3.6.3)
    STOREBUF_OVERFLOW = enum.auto()  # too many uncommitted stores
    MMU_MUTATION = enum.auto()  # store targeted the live page table (§3.6.1)


@dataclass
class HostFault:
    """Details of one host fault."""

    kind: HostFaultKind
    guest_addr: int | None = None  # guest instruction the atom implements
    paddr: int | None = None  # faulting physical address, if any
    guest_exception: GuestException | None = None
    store_class: StoreClass | None = None
    page: int | None = None
    access_size: int = 4
    detail: str = ""

    def describe(self) -> str:
        parts = [self.kind.name]
        if self.guest_addr is not None:
            parts.append(f"guest={self.guest_addr:#x}")
        if self.paddr is not None:
            parts.append(f"paddr={self.paddr:#x}")
        if self.store_class is not None:
            parts.append(self.store_class.name)
        if self.detail:
            parts.append(self.detail)
        return " ".join(parts)


class HostFaultError(Exception):
    """Raised by the host CPU to unwind out of a faulting translation."""

    def __init__(self, fault: HostFault) -> None:
        self.fault = fault
        super().__init__(fault.describe())
