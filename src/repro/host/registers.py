"""Host register file with working/shadow pairs.

Paper §2: the TM5800 has 64 general-purpose registers, "allowing the
architectural x86 registers to be assigned to dedicated native VLIW
registers, with an ample set available for use by CMS".  §3.1: "All
registers holding x86 state are shadowed".

Register convention used by this CMS:

======  =====================================================
0..7    guest GPRs (EAX..EDI), shadowed
8       guest EIP, shadowed
9       reserved scratch
10..15  guest flags, unpacked: CF, PF, ZF, SF, OF, IF, shadowed
16..63  CMS temporaries (shadowed too — rollback restores them,
        which is harmless since temps never live across commits)
======  =====================================================

Committed guest state *is* the shadow copy of registers 0..15; the
``HostBackedGuestState`` view lets the CMS-embedded interpreter operate
directly on committed state (it writes working and shadow together,
preserving the invariant that outside translation execution the two
copies agree).
"""

from __future__ import annotations

from repro.state import FLAG_SLOTS, GuestState

MASK32 = 0xFFFFFFFF

NUM_HOST_REGS = 64
R_EIP = 8
R_FLAG_BASE = 10
R_CF = R_FLAG_BASE + 0
R_PF = R_FLAG_BASE + 1
R_ZF = R_FLAG_BASE + 2
R_SF = R_FLAG_BASE + 3
R_OF = R_FLAG_BASE + 4
R_IF = R_FLAG_BASE + 5
TEMP_BASE = 16
NUM_TEMPS = NUM_HOST_REGS - TEMP_BASE


class HostRegisterFile:
    """64 working registers, each with a shadow copy."""

    def __init__(self) -> None:
        self.working = [0] * NUM_HOST_REGS
        self.shadow = [0] * NUM_HOST_REGS
        self.commits = 0
        self.rollbacks = 0

    def get(self, index: int) -> int:
        return self.working[index]

    def set(self, index: int, value: int) -> None:
        self.working[index] = value & MASK32

    def commit(self) -> None:
        """Copy all working registers into their shadows (§3.1).

        Designed to be effectively free on the real hardware; the cost
        model charges zero molecules beyond the commit atom itself.
        """
        self.shadow[:] = self.working
        self.commits += 1

    def rollback(self) -> None:
        """Restore all working registers from their shadows (§3.1)."""
        self.working[:] = self.shadow
        self.rollbacks += 1

    def in_sync(self) -> bool:
        """True when working == shadow (the between-translations invariant)."""
        return self.working == self.shadow


class HostBackedGuestState(GuestState):
    """Committed guest state viewed through the host shadow registers.

    Writes update working and shadow together so that each interpreted
    instruction is, by definition, committed — exactly the paper's
    property that the interpreter "guarantees correct machine state at
    every instruction boundary".
    """

    def __init__(self, regfile: HostRegisterFile) -> None:
        self._rf = regfile

    def _write(self, index: int, value: int) -> None:
        value &= MASK32
        self._rf.working[index] = value
        self._rf.shadow[index] = value

    def get_reg(self, index: int) -> int:
        return self._rf.shadow[index]

    def set_reg(self, index: int, value: int) -> None:
        self._write(index, value)

    def get_flag(self, slot: int) -> int:
        return self._rf.shadow[R_FLAG_BASE + slot]

    def set_flag(self, slot: int, value: int) -> None:
        self._write(R_FLAG_BASE + slot, 1 if value else 0)

    @property
    def eip(self) -> int:
        return self._rf.shadow[R_EIP]

    @eip.setter
    def eip(self, value: int) -> None:
        self._write(R_EIP, value)


assert len(FLAG_SLOTS) == 6, "flag slot layout must match register plan"
