"""Atom set of the native VLIW host.

Atoms are the RISC-like operations that molecules issue (paper §2).
The set below is deliberately small; everything the translator needs —
including flag materialization — is built from these plus the memory
and control atoms.  The speculation machinery rides on atom
*attributes*: ``reordered`` marks a memory atom that CMS scheduled out
of original program order (§3.4 — faults if it touches I/O space),
``alias_entry``/``alias_check`` drive the alias hardware (§3.5), and
``io_ok`` marks an access the translator generated knowing it may reach
a device (always unreordered and commit-fenced).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class AluOp(enum.Enum):
    """Two-source ALU operations (all 32-bit)."""

    ADD = "add"
    SUB = "sub"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SHL = "shl"  # count masked to 5 bits
    SHR = "shr"
    SAR = "sar"
    MUL = "mul"  # low 32 bits
    UMULH = "umulh"  # high 32 bits of unsigned product
    SMULH = "smulh"  # high 32 bits of signed product
    PARITY = "parity"  # x86-assist: even parity of the low byte (0/1)
    CMPEQ = "cmpeq"  # produce 0/1
    CMPNE = "cmpne"
    CMPLTU = "cmpltu"  # unsigned less-than
    CMPLTS = "cmplts"  # signed less-than
    CMPLEU = "cmpleu"
    CMPLES = "cmples"


class AtomKind(enum.Enum):
    MOVI = enum.auto()  # rd <- imm
    MOV = enum.auto()  # rd <- rs1
    ALU = enum.auto()  # rd <- rs1 (aluop) rs2
    ALUI = enum.auto()  # rd <- rs1 (aluop) imm
    SEL = enum.auto()  # rd <- rs1 ? rs2 : rs3 (conditional move)
    DIVU = enum.auto()  # rd,rd2 <- (rs3:rs1) divmod rs2; guest #DE on bad
    DIVS = enum.auto()  # signed variant
    LD = enum.auto()  # rd <- mem[rs1 + disp] (size 1 or 4)
    ST = enum.auto()  # mem[rs1 + disp] <- rs2 (gated until commit)
    BR = enum.auto()  # unconditional branch to label
    BRZ = enum.auto()  # branch if rs1 == 0
    BRNZ = enum.auto()  # branch if rs1 != 0
    COMMIT = enum.auto()  # working -> shadow; drain store buffer
    EXIT = enum.auto()  # leave translation (committed EIP is the target)
    FAIL = enum.auto()  # raise a host fault (self-check mismatch)
    PORT_IN = enum.auto()  # rd <- port[imm]   (never speculative)
    PORT_OUT = enum.auto()  # port[imm] <- rs1 (never speculative)
    NOPA = enum.auto()  # explicit no-op atom (scheduler padding)


@dataclass
class Atom:
    """One host operation.

    ``guest_addr`` records which guest instruction this atom implements;
    the fault handlers use it to attribute host faults to guest
    instructions for adaptive retranslation.
    """

    kind: AtomKind
    aluop: AluOp | None = None
    rd: int = 0
    rd2: int = 0  # second destination (DIVU/DIVS remainder)
    rs1: int = 0
    rs2: int = 0
    rs3: int = 0
    imm: int = 0
    disp: int = 0
    size: int = 4
    label: str | None = None  # branch target label
    reordered: bool = False  # scheduled out of guest program order
    alias_entry: int | None = None  # record this access in alias entry N
    alias_check: int = 0  # bitmask of alias entries to check
    io_ok: bool = False  # generated knowing it may touch a device
    guest_addr: int | None = None
    fail_reason: str = ""
    instr_count: int = 0  # COMMIT: guest instructions retired
    # EXIT bookkeeping: the static guest target this exit branches to
    # (None for indirect exits), and the chained successor translation
    # patched in by the dispatcher (paper §2 "chaining").
    exit_target: int | None = None
    chained_translation: object | None = None
    # Indirect exits (exit_target None) chain speculatively through a
    # monomorphic inline cache: the chain is followed only when the
    # committed EIP equals this guard (the last observed target).
    chained_guard: int | None = None
    # EXIT at the end of a self-revalidation prologue: the dispatcher
    # re-enables protection and disarms the prologue before running the
    # body (§3.6.2).
    prologue_success: bool = False
    # EXIT atoms in a superblock trace: index of the constituent block
    # this exit belongs to.  An exit from any block before the last one
    # is a side exit (trace mispredict); the dispatcher counts these to
    # drive split/retranslate decisions.
    trace_block: int = 0

    def writes_reg(self) -> int | None:
        """Destination register, if the atom writes one."""
        if self.kind in (AtomKind.MOVI, AtomKind.MOV, AtomKind.ALU,
                         AtomKind.ALUI, AtomKind.SEL, AtomKind.LD,
                         AtomKind.PORT_IN, AtomKind.DIVU, AtomKind.DIVS):
            return self.rd
        return None

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        k = self.kind
        if k is AtomKind.MOVI:
            return f"movi r{self.rd}, {self.imm:#x}"
        if k is AtomKind.MOV:
            return f"mov r{self.rd}, r{self.rs1}"
        if k is AtomKind.ALU:
            return f"{self.aluop.value} r{self.rd}, r{self.rs1}, r{self.rs2}"
        if k is AtomKind.ALUI:
            return f"{self.aluop.value}i r{self.rd}, r{self.rs1}, {self.imm:#x}"
        if k is AtomKind.SEL:
            return f"sel r{self.rd}, r{self.rs1}, r{self.rs2}, r{self.rs3}"
        if k in (AtomKind.DIVU, AtomKind.DIVS):
            return (f"{k.name.lower()} r{self.rd}, r{self.rd2}, "
                    f"(r{self.rs3}:r{self.rs1}) / r{self.rs2}")
        if k is AtomKind.LD:
            attrs = self._attrs()
            return f"ld{self.size} r{self.rd}, [r{self.rs1}+{self.disp:#x}]{attrs}"
        if k is AtomKind.ST:
            attrs = self._attrs()
            return f"st{self.size} [r{self.rs1}+{self.disp:#x}], r{self.rs2}{attrs}"
        if k is AtomKind.BR:
            return f"br {self.label}"
        if k in (AtomKind.BRZ, AtomKind.BRNZ):
            return f"{k.name.lower()} r{self.rs1}, {self.label}"
        if k is AtomKind.COMMIT:
            return f"commit ({self.instr_count} insts)"
        if k is AtomKind.EXIT:
            return "exit"
        if k is AtomKind.FAIL:
            return f"fail {self.fail_reason}"
        if k is AtomKind.PORT_IN:
            return f"in r{self.rd}, port {self.imm:#x}"
        if k is AtomKind.PORT_OUT:
            return f"out port {self.imm:#x}, r{self.rs1}"
        if k is AtomKind.NOPA:
            return "nop"
        return k.name

    def _attrs(self) -> str:
        parts = []
        if self.reordered:
            parts.append("reordered")
        if self.alias_entry is not None:
            parts.append(f"prot={self.alias_entry}")
        if self.alias_check:
            parts.append(f"chk={self.alias_check:#x}")
        if self.io_ok:
            parts.append("io")
        return f" <{','.join(parts)}>" if parts else ""
