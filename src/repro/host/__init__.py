"""The native VLIW host processor (the Crusoe analogue).

The host is where the paper's hardware support lives (§3.1):

* **shadowed registers** — every register holding guest state has a
  working and a shadow copy; ``commit`` copies working to shadow,
  ``rollback`` restores working from shadow;
* **gated store buffer** — stores are released to the memory system
  only at commit, and dropped on rollback;
* **alias hardware** — a few entries that protect the addresses of
  speculatively reordered loads and fault any overlapping later store;
* **speculation-attribute memory atoms** — loads and stores marked as
  reordered fault when they touch memory-mapped I/O space.

The host executes *molecules* (VLIW instructions of up to four atoms
across five issue slots), and dynamic molecule count is the performance
metric, matching the paper's own "accurate dynamic molecule counts but
not cycle accuracy" simulator.
"""

from repro.host.alias import AliasHardware
from repro.host.atoms import AluOp, Atom, AtomKind
from repro.host.cpu import ExitInfo, ExitKind, HostCPU
from repro.host.faults import HostFault, HostFaultError, HostFaultKind
from repro.host.molecule import Molecule, Slot
from repro.host.registers import (
    HostBackedGuestState,
    HostRegisterFile,
    NUM_HOST_REGS,
    R_EIP,
    R_FLAG_BASE,
    R_IF,
    TEMP_BASE,
)
from repro.host.store_buffer import GatedStoreBuffer

__all__ = [
    "AliasHardware",
    "AluOp",
    "Atom",
    "AtomKind",
    "ExitInfo",
    "ExitKind",
    "HostCPU",
    "HostFault",
    "HostFaultError",
    "HostFaultKind",
    "Molecule",
    "Slot",
    "HostBackedGuestState",
    "HostRegisterFile",
    "NUM_HOST_REGS",
    "R_EIP",
    "R_FLAG_BASE",
    "R_IF",
    "TEMP_BASE",
    "GatedStoreBuffer",
]
