"""Template JIT: committed translations lowered to generated Python.

The simulated VLIW in :mod:`repro.host.cpu` walks molecule and atom
*objects*, paying a Python-level dispatch (one method call plus an
if-ladder) per atom.  That interpretive overhead — not the guest — is
what kept the translated path slower than the interpreter in
``BENCH_wallclock.json``.  This module removes it: each committed
translation is lowered once into a specialized Python function
(``exec``-compiled, constants folded, the RAM fast path inlined) whose
straight-line statements *are* the molecule sequence.

Semantics are bit-identical to ``HostCPU.run`` by construction:

* every molecule still performs the interrupt check and the fuel check
  at its boundary, in the same order;
* ``molecules_executed`` / ``atoms_executed`` / per-translation
  execution counters advance exactly as the simulated VLIW advances
  them (flushed in a ``finally`` so mid-molecule faults keep partial
  counts);
* alias record/check, the gated store buffer, fine-grain protection,
  MMIO routing, commit/rollback, and SMC invalidation all run through
  the same objects and counters — the generated code only *inlines*
  the provably side-effect-free guard (unprotected RAM, buffer not
  full, paging off) and falls back to the exact ``HostCPU`` helpers
  whenever any guard fails;
* any host fault raises the same ``HostFaultError`` the dispatcher
  already handles, so rollback and recovery are unchanged.

The wall-clock dial contract of ``CMSConfig`` holds: with
``template_jit`` on or off, console output and every molecule count are
identical; only host seconds change.  The differential fuzz oracle
checks this over the whole dial matrix (``fuzz/oracle.py``).
"""

from __future__ import annotations

import hashlib

from repro.host.atoms import AluOp, AtomKind
from repro.host.cpu import ExitInfo, ExitKind
from repro.host.faults import HostFault, HostFaultError, HostFaultKind
from repro.host.registers import R_EIP, R_IF
from repro.host.store_buffer import BufferedStore
from repro.isa.flags import parity
from repro.memory.physical import PAGE_SHIFT

MASK32 = 0xFFFFFFFF
SIGN32 = 0x80000000

# Generated-function status codes (first element of the return tuple).
_EXIT = 0  # an EXIT atom finished its molecule; aux = the exit atom
_INTERRUPT = 1  # pending interrupt at a molecule boundary
_FUEL = 2  # molecule budget exhausted at a molecule boundary
_RESUME = 3  # pc left the template's arms; aux = pc for the VLIW


class _Unsupported(Exception):
    """The translation contains something the template cannot lower."""


# ----------------------------------------------------------------------
# Expression lowering
# ----------------------------------------------------------------------


def _signed(expr: str) -> str:
    """32-bit two's-complement reinterpretation of a masked value."""
    return f"({expr} if {expr} < {SIGN32} else {expr} - {1 << 32})"


def _alu_expr(op: AluOp, a: str, b: str, bc: int | None) -> str:
    """Python expression for ``a op b``.

    ``a``/``b`` are expressions yielding 32-bit-masked ints; when the
    right operand is an immediate, ``bc`` carries its folded value so
    shift counts and sign conversions happen at compile time.
    """
    if op is AluOp.ADD:
        return f"({a} + {b}) & {MASK32}"
    if op is AluOp.SUB:
        return f"({a} - {b}) & {MASK32}"
    if op is AluOp.AND:
        return f"{a} & {b}"
    if op is AluOp.OR:
        return f"{a} | {b}"
    if op is AluOp.XOR:
        return f"{a} ^ {b}"
    if op is AluOp.SHL:
        count = f"({b} & 31)" if bc is None else str(bc & 31)
        return f"({a} << {count}) & {MASK32}"
    if op is AluOp.SHR:
        count = f"({b} & 31)" if bc is None else str(bc & 31)
        return f"{a} >> {count}"
    if op is AluOp.SAR:
        count = f"({b} & 31)" if bc is None else str(bc & 31)
        return f"({_signed(a)} >> {count}) & {MASK32}"
    if op is AluOp.MUL:
        return f"({a} * {b}) & {MASK32}"
    if op is AluOp.UMULH:
        return f"({a} * {b}) >> 32"
    if op is AluOp.SMULH:
        sb = _signed(b) if bc is None else str(
            bc - (1 << 32) if bc & SIGN32 else bc)
        return f"(({_signed(a)} * {sb}) >> 32) & {MASK32}"
    if op is AluOp.PARITY:
        return f"par({a})"
    if op is AluOp.CMPEQ:
        return f"(1 if {a} == {b} else 0)"
    if op is AluOp.CMPNE:
        return f"(1 if {a} != {b} else 0)"
    if op is AluOp.CMPLTU:
        return f"(1 if {a} < {b} else 0)"
    if op is AluOp.CMPLEU:
        return f"(1 if {a} <= {b} else 0)"
    if op in (AluOp.CMPLTS, AluOp.CMPLES):
        cmp = "<" if op is AluOp.CMPLTS else "<="
        sb = _signed(b) if bc is None else str(
            bc - (1 << 32) if bc & SIGN32 else bc)
        return f"(1 if {_signed(a)} {cmp} {sb} else 0)"
    raise _Unsupported(f"ALU op {op}")


# ----------------------------------------------------------------------
# The compiler
# ----------------------------------------------------------------------


class _Codegen:
    """Builds the source of one translation's template function."""

    def __init__(self, translation, cpu) -> None:
        self.t = translation
        self.cpu = cpu
        self.lines: list[str] = []
        self.consts: dict[str, object] = {}
        self._atom_names: dict[int, str] = {}
        machine = cpu.machine
        # RAM below the lowest MMIO base: accesses wholly inside it can
        # never be I/O, and the PhysicalMemory accessors cannot fault.
        self.ram_limit = min(machine.bus._ram_limit, machine.ram.size)
        self.sb_capacity = cpu.store_buffer.capacity

    def bind(self, atom) -> str:
        """Name an atom object for slow-path references."""
        name = self._atom_names.get(id(atom))
        if name is None:
            name = f"a{len(self._atom_names)}"
            self._atom_names[id(atom)] = name
            self.consts[name] = atom
        return name

    def emit(self, depth: int, text: str) -> None:
        self.lines.append("    " * depth + text)

    # -- per-atom statements -------------------------------------------

    def _fault_args(self, atom) -> str:
        ga = atom.guest_addr
        return "guest_addr=" + (str(ga) if ga is not None else "None")

    def _alias_lines(self, atom, depth: int, store: bool) -> None:
        """Alias record/check in the VLIW's order (loads record first,
        stores check first) with the fault raised inline."""
        record = f"arec({atom.alias_entry}, x, {atom.size})"
        if store and atom.alias_check:
            self._alias_check(atom, depth)
        if atom.alias_entry is not None:
            self.emit(depth, record)
        if not store and atom.alias_check:
            self._alias_check(atom, depth)

    def _alias_check(self, atom, depth: int) -> None:
        self.emit(depth, f"vi = achk({atom.alias_check}, x, {atom.size})")
        self.emit(depth, "if vi is not None:")
        self.emit(depth + 1,
                  f"raise HFE(HF(AVK, {self._fault_args(atom)}, paddr=x, "
                  f"detail='entry ' + str(vi)))")

    def _addr_line(self, atom, depth: int) -> None:
        if atom.disp:
            self.emit(depth, f"x = (w[{atom.rs1}] + {atom.disp}) & {MASK32}")
        else:
            self.emit(depth, f"x = w[{atom.rs1}]")

    def _load(self, atom, depth: int) -> None:
        name = self.bind(atom)
        self._addr_line(atom, depth)
        limit = self.ram_limit - atom.size
        self.emit(depth, f"if mmu.paging_enabled or x > {limit}:")
        self.emit(depth + 1, f"ld({name})")
        self.emit(depth, "else:")
        self._alias_lines(atom, depth + 1, store=False)
        reader = {1: "rd1", 2: "rd2b", 4: "rd4"}[atom.size]
        self.emit(depth + 1, f"v = {reader}(x)")
        # Store-forwarding with the buffer's O(1) bounds reject inlined:
        # most loads miss the buffered range and skip the call entirely.
        self.emit(depth + 1, f"if x < sb._hi and x + {atom.size} > sb._lo:")
        self.emit(depth + 2, f"v = fwd(x, {atom.size}, v)")
        self.emit(depth + 1, f"w[{atom.rd}] = v")

    def _store(self, atom, depth: int) -> None:
        name = self.bind(atom)
        self._addr_line(atom, depth)
        size = atom.size
        limit = self.ram_limit - size
        guards = [
            "mmu.paging_enabled",
            f"x > {limit}",
            f"(x >> {PAGE_SHIFT}) in pgs",
        ]
        if size > 1:
            guards.append(f"((x + {size - 1}) >> {PAGE_SHIFT}) in pgs")
        guards.append(f"len(ent) >= {self.sb_capacity}")
        self.emit(depth, "if " + " or ".join(guards) + ":")
        self.emit(depth + 1, f"st({name})")
        self.emit(depth, "else:")
        self._alias_lines(atom, depth + 1, store=True)
        self.emit(depth + 1, f"v = w[{atom.rs2}]")
        self.emit(depth + 1, f"ent.append(BS(x, {size}, v, False))")
        self.emit(depth + 1, "sb.total_buffered += 1")
        self.emit(depth + 1, "ovl[x] = v & 255")
        for i in range(1, size):
            self.emit(depth + 1, f"ovl[x + {i}] = (v >> {8 * i}) & 255")
        self.emit(depth + 1, "if x < sb._lo:")
        self.emit(depth + 2, "sb._lo = x")
        self.emit(depth + 1, f"if x + {size} > sb._hi:")
        self.emit(depth + 2, f"sb._hi = x + {size}")

    def _plain_atom(self, atom, depth: int) -> None:
        kind = atom.kind
        if kind is AtomKind.MOVI:
            self.emit(depth, f"w[{atom.rd}] = {atom.imm & MASK32}")
        elif kind is AtomKind.MOV:
            self.emit(depth, f"w[{atom.rd}] = w[{atom.rs1}]")
        elif kind is AtomKind.ALU:
            expr = _alu_expr(atom.aluop, f"w[{atom.rs1}]",
                             f"w[{atom.rs2}]", None)
            self.emit(depth, f"w[{atom.rd}] = {expr}")
        elif kind is AtomKind.ALUI:
            imm = atom.imm & MASK32
            expr = _alu_expr(atom.aluop, f"w[{atom.rs1}]", str(imm), imm)
            self.emit(depth, f"w[{atom.rd}] = {expr}")
        elif kind is AtomKind.SEL:
            self.emit(depth,
                      f"w[{atom.rd}] = w[{atom.rs2}] if w[{atom.rs1}] "
                      f"else w[{atom.rs3}]")
        elif kind is AtomKind.LD:
            self._load(atom, depth)
        elif kind is AtomKind.ST:
            self._store(atom, depth)
        elif kind is AtomKind.COMMIT:
            self.emit(depth, f"cmt({atom.instr_count})")
        elif kind in (AtomKind.DIVU, AtomKind.DIVS):
            self.emit(depth, f"dv({self.bind(atom)})")
        elif kind is AtomKind.PORT_IN:
            self.emit(depth, f"w[{atom.rd}] = pin({atom.imm})")
            self.emit(depth, "cpu._io_uncommitted = True")
        elif kind is AtomKind.PORT_OUT:
            self.emit(depth, f"pout({atom.imm}, w[{atom.rs1}])")
            self.emit(depth, "cpu._io_uncommitted = True")
        elif kind is AtomKind.FAIL:
            self.emit(depth,
                      f"raise HFE(HF(SCK, {self._fault_args(atom)}, "
                      f"detail={atom.fail_reason!r}))")
        elif kind is AtomKind.NOPA:
            pass
        else:
            raise _Unsupported(f"atom kind {kind}")

    # Atoms whose execution can raise (or call arbitrary code): the
    # batched atom counter must be flushed *before* each of these so a
    # mid-molecule fault leaves the same partial count the VLIW leaves.
    _FLUSH_KINDS = frozenset({
        AtomKind.LD, AtomKind.ST, AtomKind.COMMIT, AtomKind.DIVU,
        AtomKind.DIVS, AtomKind.PORT_IN, AtomKind.PORT_OUT, AtomKind.FAIL,
    })

    _BRANCH_KINDS = frozenset({AtomKind.BR, AtomKind.BRZ, AtomKind.BRNZ})

    # -- per-molecule lowering -----------------------------------------

    def _branch_cond(self, atom) -> str | None:
        """Taken-condition expression (None = unconditional)."""
        if atom.kind is AtomKind.BR:
            return None
        if atom.kind is AtomKind.BRZ:
            return f"not w[{atom.rs1}]"
        return f"w[{atom.rs1}]"

    def _molecule(self, pc: int, molecule, depth: int) -> None:
        t = self.t
        atoms = molecule.atoms
        self.emit(depth,
                  f"if sh[{R_IF}] and not cpu._io_uncommitted and pend():")
        self.emit(depth + 1, f"return ({_INTERRUPT}, None)")
        self.emit(depth, "if m >= fuel:")
        self.emit(depth + 1, f"return ({_FUEL}, None)")
        self.emit(depth, "m += 1")

        exit_atom = next(
            (atom for atom in atoms if atom.kind is AtomKind.EXIT), None)
        branches = [atom for atom in atoms
                    if atom.kind in self._BRANCH_KINDS]
        # Branches followed by more atoms in the same molecule must read
        # their condition at their own position (the VLIW executes
        # left-to-right) but transfer control only after the molecule
        # finishes; ``np`` latches the taken target.
        last_is_branch = bool(atoms) and atoms[-1] in branches
        defer = branches and not (
            len(branches) == 1 and last_is_branch and exit_atom is None)
        if defer:
            self.emit(depth, f"np = {pc + 1}")

        pending = 0  # atoms counted but not yet flushed into ``a``
        for atom in atoms:
            if atom.kind in self._FLUSH_KINDS:
                self.emit(depth, f"a += {pending + 1}")
                pending = 0
                self._plain_atom(atom, depth)
                continue
            pending += 1
            if atom.kind is AtomKind.EXIT:
                continue  # handled after the molecule completes
            if atom.kind in self._BRANCH_KINDS:
                target = t.labels[atom.label]
                cond = self._branch_cond(atom)
                if defer:
                    if cond is None:
                        self.emit(depth, f"np = {target}")
                    else:
                        self.emit(depth, f"if {cond}:")
                        self.emit(depth + 1, f"np = {target}")
                # Non-deferred: the branch is the molecule's last atom;
                # emitted below, after the count flush.
                continue
            self._plain_atom(atom, depth)
        if pending:
            self.emit(depth, f"a += {pending}")

        if exit_atom is not None:
            self.emit(depth, f"return ({_EXIT}, {self.bind(exit_atom)})")
        elif defer:
            # Taken-to-fallthrough branches are the same as not taken.
            self.emit(depth, f"if np != {pc + 1}:")
            self.emit(depth + 1, "pc = np")
            self.emit(depth + 1, "continue")
        elif branches:
            atom = branches[0]
            target = t.labels[atom.label]
            cond = self._branch_cond(atom)
            if target != pc + 1:
                if cond is None:
                    self.emit(depth, f"pc = {target}")
                    self.emit(depth, "continue")
                else:
                    self.emit(depth, f"if {cond}:")
                    self.emit(depth + 1, f"pc = {target}")
                    self.emit(depth + 1, "continue")

    # -- whole-function assembly ---------------------------------------

    def generate(self) -> tuple[str, dict]:
        t = self.t
        cpu = self.cpu
        machine = cpu.machine
        self.consts.update(
            cpu=cpu, t=t,
            w=cpu.regs.working, sh=cpu.regs.shadow,
            mmu=machine.mmu, pend=machine.pic.has_pending,
            ld=cpu._load, st=cpu._store, dv=cpu._divide, cmt=cpu.commit,
            pin=machine.ports.read, pout=machine.ports.write,
            arec=cpu.alias.record, achk=cpu.alias.check,
            sb=cpu.store_buffer,
            ent=cpu.store_buffer._entries, ovl=cpu.store_buffer._overlay,
            fwd=cpu.store_buffer.forward,
            rd1=machine.ram.read8, rd2b=machine.ram.read16,
            rd4=machine.ram.read32,
            pgs=cpu.protection._pages,
            BS=BufferedStore, HFE=HostFaultError, HF=HostFault,
            AVK=HostFaultKind.ALIAS_VIOLATION,
            SCK=HostFaultKind.SELF_CHECK,
            par=parity,
        )
        arms = sorted(set(t.labels.values()))
        count = len(t.molecules)
        if any(arm < 0 or arm > count for arm in arms):
            raise _Unsupported("label outside molecule range")
        arms = [arm for arm in arms if arm < count]
        self.emit(1, "def _jit(fuel, pc):")
        self.emit(2, "m = 0")
        self.emit(2, "a = 0")
        self.emit(2, "try:")
        self.emit(3, "while 1:")
        for index, arm in enumerate(arms):
            end = arms[index + 1] if index + 1 < len(arms) else count
            self.emit(4, f"if pc == {arm}:")
            for pc in range(arm, end):
                self._molecule(pc, t.molecules[pc], 5)
            self.emit(5, f"pc = {end}")
        self.emit(4, f"return ({_RESUME}, pc)")
        self.emit(2, "finally:")
        self.emit(3, "cpu.molecules_executed += m")
        self.emit(3, "cpu.atoms_executed += a")
        self.emit(3, "t.executions_molecules += m")
        self.emit(1, "return _jit")
        params = ", ".join(self.consts)
        header = f"def _make({params}):"
        return "\n".join([header, *self.lines, ""]), self.consts


# Process-wide cache of compiled template code objects, keyed by the
# sha256 of the generated source.  The source embeds everything the
# code object depends on (molecule structure, folded constants,
# ``ram_limit``/``sb_capacity``); all per-CPU state is late-bound via
# ``_make``, so one code object serves every tenant whose translation
# lowers to the same text.  ``compile`` dominates template cost, so a
# fleet of tenants running the same guest code pays it once.
_CODE_CACHE: dict[str, object] = {}
_CODE_CACHE_MAX = 4096


def compile_translation(translation, cpu, stats=None):
    """Lower one translation; returns the template function or None.

    ``None`` means the translation stays on the simulated-VLIW path —
    lowering is best-effort and unsupported shapes are not an error.
    """
    try:
        source, consts = _Codegen(translation, cpu).generate()
        key = hashlib.sha256(source.encode("utf-8")).hexdigest()
        code = _CODE_CACHE.get(key)
        if code is None:
            code = compile(source, "<jit-template>", "exec")
            if len(_CODE_CACHE) >= _CODE_CACHE_MAX:
                _CODE_CACHE.clear()
            _CODE_CACHE[key] = code
        elif stats is not None:
            stats.jit_code_cache_hits += 1
        env: dict = {}
        exec(code, env)  # noqa: S102 — our own generated source
        return env["_make"](**consts)
    except Exception:
        return None


# ----------------------------------------------------------------------
# The driver: a JIT-aware mirror of ``HostCPU.run``
# ----------------------------------------------------------------------


class TemplateJIT:
    """Compiles translations lazily and dispatches their templates.

    One instance per :class:`CodeMorphingSystem`; ``run`` has the exact
    contract of ``HostCPU.run`` (same ``ExitInfo``, same counters, same
    chain following) and bails out to the simulated VLIW for anything
    the template could not lower.
    """

    def __init__(self, cpu, stats=None, phases=None) -> None:
        self.cpu = cpu
        self.stats = stats
        self.phases = phases
        self._uncompilable: set[int] = set()  # translation ids

    def ensure_compiled(self, translation):
        """Compile (or fetch) the translation's template function."""
        fn = translation.host_code
        if fn is not None:
            return fn
        if translation.id in self._uncompilable:
            return None
        phases = self.phases
        if phases is None:
            fn = compile_translation(translation, self.cpu, self.stats)
        else:
            with phases.phase("jit-compile"):
                fn = compile_translation(translation, self.cpu, self.stats)
        stats = self.stats
        if fn is None:
            self._uncompilable.add(translation.id)
            if stats is not None:
                stats.jit_compile_failures += 1
            return None
        translation.host_code = fn
        if stats is not None:
            stats.jit_compiles += 1
        return fn

    def _bail(self, reason: str) -> None:
        if self.stats is not None:
            self.stats.jit_bailouts[reason] += 1

    def run(self, translation, fuel: int = 1_000_000) -> ExitInfo:
        """Execute ``translation`` via its template until exit, fault,
        or interrupt, following chains — ``HostCPU.run``, accelerated."""
        cpu = self.cpu
        if self.stats is not None:
            self.stats.jit_dispatches += 1
        info = ExitInfo(kind=ExitKind.EXITED)
        current = translation
        info.translations_entered.append(current)
        start = cpu.molecules_executed
        pending = cpu._interrupt_pending
        shadow = cpu.regs.shadow

        def merge(sub: ExitInfo) -> None:
            """Fold a simulated-VLIW continuation into this dispatch."""
            info.kind = sub.kind
            info.fault = sub.fault
            info.exit_atom = sub.exit_atom
            info.chains_followed += sub.chains_followed
            # sub's first entry re-names ``current``; keep it once.
            info.translations_entered.extend(sub.translations_entered[1:])

        try:
            self._run_loop(info, current, fuel, start, pending, shadow,
                           merge)
        finally:
            cpu.current_translation = None

        info.next_eip = shadow[R_EIP]
        info.molecules = cpu.molecules_executed - start
        return info

    def _run_loop(self, info, current, fuel, start, pending, shadow,
                  merge) -> None:
        cpu = self.cpu
        while True:
            cpu.current_translation = current
            fn = current.host_code
            if fn is None:
                fn = self.ensure_compiled(current)
            if fn is None:
                self._bail("uncompilable")
                merge(cpu.run(current,
                              fuel=fuel - (cpu.molecules_executed - start)))
                break
            try:
                status, aux = fn(
                    fuel - (cpu.molecules_executed - start),
                    current.labels[current.entry_label],
                )
            except HostFaultError as error:
                info.kind = ExitKind.FAULT
                info.fault = error.fault
                self._bail("fault-" + error.fault.kind.name.lower())
                break
            if status == _EXIT:
                atom = aux
                chained = atom.chained_translation
                if chained is not None and not pending():
                    if atom.exit_target is not None or \
                            atom.chained_guard == shadow[R_EIP]:
                        current = chained
                        info.chains_followed += 1
                        info.translations_entered.append(current)
                        current.entries += 1
                        continue
                info.kind = ExitKind.EXITED
                info.exit_atom = atom
                break
            if status == _INTERRUPT:
                info.kind = ExitKind.INTERRUPT
                cpu.interrupt_exits += 1
                self._bail("interrupt")
                break
            if status == _FUEL:
                info.kind = ExitKind.FUEL
                self._bail("fuel")
                break
            # _RESUME: the template ran off its arms (a malformed
            # translation); the VLIW resumes from that exact molecule
            # and reproduces whatever the seed path would have done.
            self._bail("resume")
            merge(cpu.run(current,
                          fuel=fuel - (cpu.molecules_executed - start),
                          start_pc=aux))
            break
