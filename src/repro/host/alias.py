"""The alias hardware (paper §3.5, US patent 5,832,205 family).

"Crusoe provides simple hardware support (the alias hardware) that
allows CMS to reorder selected memory references, with hardware taking
on the burden of verifying at runtime that the reordered references
did, in fact, not overlap."

Unlike a memory conflict buffer or the IA-64 ALAT — fully associative
tables with hardware replacement — Crusoe "requires the translator to
explicitly specify" the entries: a hoisted load names the entry that
protects its address, and each store it was hoisted over carries a
check mask naming the entries it must be disjoint from.  A hit raises
an alias fault; CMS rolls back and re-executes conservatively.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class AliasEntry:
    valid: bool = False
    paddr: int = 0
    size: int = 0


class AliasHardware:
    """A small, translator-managed set of protected address ranges."""

    def __init__(self, num_entries: int = 8) -> None:
        self.num_entries = num_entries
        self._entries = [AliasEntry() for _ in range(num_entries)]
        self.records = 0
        self.checks = 0
        self.violations = 0

    def record(self, entry: int, paddr: int, size: int) -> None:
        """Protect [paddr, paddr+size) in the named entry."""
        slot = self._entries[entry]
        slot.valid = True
        slot.paddr = paddr
        slot.size = size
        self.records += 1

    def check(self, mask: int, paddr: int, size: int) -> int | None:
        """Check a store against the entries in ``mask``.

        Returns the index of a violated entry, or None.
        """
        self.checks += 1
        remaining = mask
        while remaining:
            entry = (remaining & -remaining).bit_length() - 1
            remaining &= remaining - 1
            if entry >= self.num_entries:
                continue
            slot = self._entries[entry]
            if slot.valid and paddr < slot.paddr + slot.size and \
                    slot.paddr < paddr + size:
                self.violations += 1
                return entry
        return None

    def clear(self) -> None:
        """Invalidate all entries (at commit and at rollback)."""
        for slot in self._entries:
            slot.valid = False
