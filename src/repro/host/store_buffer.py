"""The gated store buffer (paper §3.1, US patent 6,011,908).

"Store data are held in a gated store buffer, from which they are only
released to the memory system at the time of a commit.  On a rollback,
stores not yet committed can simply be dropped from the store buffer."

Entries are keyed by *physical* address (translation happens at store
execution, as in a TLB).  Loads executed inside the same translation
window must see buffered stores, so the buffer supports byte-accurate
store-to-load forwarding via an overlay map.  MMIO stores are buffered
but never forwarded — device reads inside the same uncommitted window
are fenced off by construction (``io_ok`` accesses are commit-fenced).
"""

from __future__ import annotations

from dataclasses import dataclass

# Empty-overlay sentinel for the forwarding bounds: ``_lo`` starts past
# any address and ``_hi`` at zero, so the O(1) reject fires without an
# emptiness special case and a store updates both with plain min/max.
NO_LO = 1 << 62


@dataclass
class BufferedStore:
    paddr: int
    size: int
    value: int
    is_io: bool


class StoreBufferOverflow(Exception):
    """The translation issued more uncommitted stores than the buffer holds."""


class GatedStoreBuffer:
    """Ordered, byte-forwarding, commit-gated store queue."""

    def __init__(self, capacity: int = 64) -> None:
        self.capacity = capacity
        self._entries: list[BufferedStore] = []
        self._overlay: dict[int, int] = {}  # paddr -> byte, RAM stores only
        # Byte-address bounds of the overlay, [lo, hi) — lets forwarding
        # reject non-overlapping loads in O(1).  Matters for unrolled
        # loop traces, whose commit windows span several iterations and
        # keep the overlay populated across most of the body.  The
        # template JIT's inline store path maintains these too.
        self._lo = NO_LO
        self._hi = 0
        self.total_buffered = 0
        self.total_drained = 0
        self.total_dropped = 0
        self.forwarded_loads = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def empty(self) -> bool:
        return not self._entries

    def write(self, paddr: int, value: int, size: int, is_io: bool) -> None:
        if len(self._entries) >= self.capacity:
            raise StoreBufferOverflow()
        self._entries.append(BufferedStore(paddr, size, value, is_io))
        self.total_buffered += 1
        if not is_io:
            for i in range(size):
                self._overlay[paddr + i] = (value >> (8 * i)) & 0xFF
            if paddr < self._lo:
                self._lo = paddr
            if paddr + size > self._hi:
                self._hi = paddr + size

    def forward(self, paddr: int, size: int, memory_value: int) -> int:
        """Merge buffered bytes over ``memory_value`` for a load."""
        if paddr >= self._hi or paddr + size <= self._lo:
            return memory_value
        merged = memory_value
        hit = False
        for i in range(size):
            byte = self._overlay.get(paddr + i)
            if byte is not None:
                merged = (merged & ~(0xFF << (8 * i))) | (byte << (8 * i))
                hit = True
        if hit:
            self.forwarded_loads += 1
        return merged

    def has_overlap(self, paddr: int, size: int) -> bool:
        """True if any buffered byte overlaps [paddr, paddr+size)."""
        if paddr >= self._hi or paddr + size <= self._lo:
            return False
        return any(paddr + i in self._overlay for i in range(size))

    def drain(self, bus) -> int:
        """Release all buffered stores to the memory system, in order."""
        count = len(self._entries)
        for entry in self._entries:
            bus.write(entry.paddr, entry.value, entry.size)
        self._entries.clear()
        self._overlay.clear()
        self._lo, self._hi = NO_LO, 0
        self.total_drained += count
        return count

    def drop(self) -> int:
        """Rollback: discard everything buffered since the last commit."""
        count = len(self._entries)
        self._entries.clear()
        self._overlay.clear()
        self._lo, self._hi = NO_LO, 0
        self.total_dropped += count
        return count
