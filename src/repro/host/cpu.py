"""Host CPU: executes translations molecule-by-molecule.

This is the "hardware" half of the co-design.  It enforces, at runtime,
every speculative assumption the translator made:

* memory atoms marked ``reordered`` fault if they touch I/O space
  (§3.4), and loads from I/O space additionally require the ``io_ok``
  attribute (an access the translator fenced with commits) so that a
  rollback can never replay a device read;
* alias entries protect the addresses of hoisted loads and stores
  carrying check masks fault on overlap (§3.5);
* stores against write-protected code pages fault through the
  protection map, consulting the fine-grain hardware cache (§3.6.1);
* stores are gated in the store buffer until a commit atom releases
  them (§3.1);
* a pending interrupt observed at a molecule boundary aborts the
  translation so CMS can roll back to the last consistent state (§3.3).

Faults do *not* modify committed state: the CPU raises them to CMS,
which performs the rollback and recovery procedure.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.host.alias import AliasHardware
from repro.host.atoms import AluOp, Atom, AtomKind
from repro.host.faults import HostFault, HostFaultError, HostFaultKind
from repro.host.registers import R_EIP, R_IF, HostRegisterFile
from repro.host.store_buffer import GatedStoreBuffer, StoreBufferOverflow
from repro.isa.exceptions import GuestException
from repro.machine import Machine
from repro.memory.mmu import PT_SPAN

MASK32 = 0xFFFFFFFF
SIGN32 = 0x80000000


class ExitKind(enum.Enum):
    EXITED = enum.auto()  # translation left through an EXIT atom
    INTERRUPT = enum.auto()  # pending interrupt at a molecule boundary
    FAULT = enum.auto()  # a host fault fired (CMS must roll back)
    FUEL = enum.auto()  # molecule budget exhausted mid-translation


@dataclass
class ExitInfo:
    """Result of one ``HostCPU.run`` invocation."""

    kind: ExitKind
    next_eip: int = 0
    fault: HostFault | None = None
    exit_atom: Atom | None = None
    molecules: int = 0
    chains_followed: int = 0
    translations_entered: list = field(default_factory=list)


class HostCPU:
    """The native VLIW executor with commit/rollback support."""

    def __init__(self, machine: Machine, protection,
                 store_buffer_capacity: int = 64,
                 alias_entries: int = 8) -> None:
        self.machine = machine
        self.protection = protection
        # CMS fault handler invoked *inline* for store protection faults
        # (classic fault semantics: the handler may fix the condition —
        # fill the fine-grain cache, drop protection and arm a
        # revalidation prologue — and return True to retry the store in
        # place).  Returning False unwinds the translation for the full
        # rollback + recovery path.
        self.protection_service = None
        self.regs = HostRegisterFile()
        self.store_buffer = GatedStoreBuffer(store_buffer_capacity)
        self.alias = AliasHardware(alias_entries)
        self.molecules_executed = 0
        self.atoms_executed = 0
        self.commits = 0
        self.rollbacks = 0
        self.interrupt_exits = 0
        # True between an irrevocable device interaction (port I/O or an
        # io_ok MMIO access) and the commit that fences it; interrupt
        # exits are suppressed in that window so a rollback can never
        # replay the device operation.
        self._io_uncommitted = False
        # The translation currently being executed (chains update it).
        # The SMC manager consults this from the inline fault service:
        # arming a *running* translation's revalidation prologue would
        # drop its protection mid-execution, letting a later store in
        # the same body silently rewrite code the body then executes.
        self.current_translation = None

    # ------------------------------------------------------------------
    # Commit / rollback (§3.1)
    # ------------------------------------------------------------------

    def commit(self, instr_count: int = 0) -> None:
        current = self.current_translation
        if current is not None and current.prologue_armed and \
                not self._io_uncommitted:
            self._check_armed_writes(current)
        self.regs.commit()
        self.store_buffer.drain(self.machine.bus)
        self.alias.clear()
        self._io_uncommitted = False
        self.commits += 1
        if instr_count:
            self.machine.tick(instr_count)

    def _check_armed_writes(self, translation) -> None:
        """Catch an armed translation's body rewriting its own code.

        While a self-revalidation prologue is armed the translation's
        pages run unprotected (§3.6.2), so a store in its own body can
        target its code bytes without faulting — and the prologue only
        re-verifies on the *next* entry, not mid-body.  Publishing such
        a store and then continuing to execute the now-stale body would
        diverge from the guest semantics.  Detecting it here, before
        any state is committed, makes the outcome exact: the rollback
        discards the store, memory still matches the translation's
        snapshot, and recovery interprets through the modifying store
        precisely (the dispatcher's self-check case (a)).
        """
        for entry in self.store_buffer._entries:
            if not entry.is_io and \
                    translation.overlaps(entry.paddr, entry.size):
                raise HostFaultError(HostFault(
                    kind=HostFaultKind.SELF_CHECK,
                    guest_addr=translation.entry_eip,
                    paddr=entry.paddr,
                    detail="armed-body code write",
                ))

    def rollback(self) -> None:
        self.regs.rollback()
        self.store_buffer.drop()
        self.alias.clear()
        self._io_uncommitted = False
        self.rollbacks += 1

    # ------------------------------------------------------------------
    # Top-level execution
    # ------------------------------------------------------------------

    def run(self, translation, fuel: int = 1_000_000,
            start_pc: int | None = None) -> ExitInfo:
        """Execute ``translation`` until exit, fault, or interrupt.

        Follows chained exits directly into successor translations
        without returning to the dispatcher (the paper's "chaining").
        On FAULT and INTERRUPT outcomes the caller must invoke
        ``rollback`` before touching guest state.  ``start_pc`` resumes
        mid-translation at an explicit molecule index (used by the
        template JIT to hand back control at the exact point it bailed).
        """
        info = ExitInfo(kind=ExitKind.EXITED)
        current = translation
        pc = current.labels[current.entry_label] if start_pc is None \
            else start_pc
        molecules = current.molecules
        info.translations_entered.append(current)
        start_molecules = self.molecules_executed
        pending_ok = self._interrupt_pending
        self.current_translation = current

        try:
            self._run_loop(info, current, pc, molecules, fuel,
                           start_molecules, pending_ok)
        finally:
            self.current_translation = None

        info.next_eip = self.regs.shadow[R_EIP]
        info.molecules = self.molecules_executed - start_molecules
        return info

    def _run_loop(self, info, current, pc, molecules, fuel,
                  start_molecules, pending_ok) -> None:
        while True:
            if pending_ok():
                info.kind = ExitKind.INTERRUPT
                self.interrupt_exits += 1
                break
            if self.molecules_executed - start_molecules >= fuel:
                info.kind = ExitKind.FUEL
                break
            molecule = molecules[pc]
            self.molecules_executed += 1
            current.executions_molecules += 1
            next_pc = pc + 1
            exit_atom: Atom | None = None
            try:
                for atom in molecule.atoms:
                    self.atoms_executed += 1
                    kind = atom.kind
                    if kind is AtomKind.BR:
                        next_pc = current.labels[atom.label]
                    elif kind is AtomKind.BRZ:
                        if self.regs.working[atom.rs1] == 0:
                            next_pc = current.labels[atom.label]
                    elif kind is AtomKind.BRNZ:
                        if self.regs.working[atom.rs1] != 0:
                            next_pc = current.labels[atom.label]
                    elif kind is AtomKind.EXIT:
                        exit_atom = atom
                    else:
                        self._execute_atom(atom)
            except HostFaultError as error:
                info.kind = ExitKind.FAULT
                info.fault = error.fault
                break
            if exit_atom is not None:
                chained = exit_atom.chained_translation
                if chained is not None and not pending_ok():
                    # Direct exits chain unconditionally; indirect exits
                    # only through their inline-cache guard (§2's
                    # chaining, extended to computed targets).
                    guard_ok = (
                        exit_atom.exit_target is not None
                        or exit_atom.chained_guard
                        == self.regs.shadow[R_EIP]
                    )
                    if guard_ok:
                        current = chained
                        pc = current.labels[current.entry_label]
                        molecules = current.molecules
                        info.chains_followed += 1
                        info.translations_entered.append(current)
                        current.entries += 1
                        self.current_translation = current
                        continue
                info.kind = ExitKind.EXITED
                info.exit_atom = exit_atom
                break
            pc = next_pc

    def _interrupt_pending(self) -> bool:
        if self._io_uncommitted:
            return False
        return bool(self.regs.shadow[R_IF]) and \
            self.machine.pic.has_pending()

    # ------------------------------------------------------------------
    # Atom execution
    # ------------------------------------------------------------------

    def _execute_atom(self, atom: Atom) -> None:
        kind = atom.kind
        regs = self.regs.working
        if kind is AtomKind.MOVI:
            regs[atom.rd] = atom.imm & MASK32
        elif kind is AtomKind.MOV:
            regs[atom.rd] = regs[atom.rs1]
        elif kind is AtomKind.ALU:
            regs[atom.rd] = _alu(atom.aluop, regs[atom.rs1], regs[atom.rs2])
        elif kind is AtomKind.ALUI:
            regs[atom.rd] = _alu(atom.aluop, regs[atom.rs1], atom.imm & MASK32)
        elif kind is AtomKind.SEL:
            regs[atom.rd] = regs[atom.rs2] if regs[atom.rs1] else regs[atom.rs3]
        elif kind is AtomKind.LD:
            self._load(atom)
        elif kind is AtomKind.ST:
            self._store(atom)
        elif kind is AtomKind.COMMIT:
            self.commit(atom.instr_count)
        elif kind in (AtomKind.DIVU, AtomKind.DIVS):
            self._divide(atom)
        elif kind is AtomKind.PORT_IN:
            regs[atom.rd] = self.machine.ports.read(atom.imm)
            self._io_uncommitted = True
        elif kind is AtomKind.PORT_OUT:
            self.machine.ports.write(atom.imm, regs[atom.rs1])
            self._io_uncommitted = True
        elif kind is AtomKind.FAIL:
            raise HostFaultError(
                HostFault(HostFaultKind.SELF_CHECK, guest_addr=atom.guest_addr,
                          detail=atom.fail_reason)
            )
        elif kind is AtomKind.NOPA:
            pass
        else:  # pragma: no cover - BR/EXIT handled by the run loop
            raise AssertionError(f"unexpected atom in _execute_atom: {atom}")

    def _divide(self, atom: Atom) -> None:
        regs = self.regs.working
        divisor = regs[atom.rs2]
        if atom.kind is AtomKind.DIVU:
            dividend = (regs[atom.rs3] << 32) | regs[atom.rs1]
            if divisor == 0:
                self._guest_fault(atom)
            quotient, remainder = divmod(dividend, divisor)
            if quotient > MASK32:
                self._guest_fault(atom)
        else:
            dividend = (regs[atom.rs3] << 32) | regs[atom.rs1]
            dividend = dividend - (1 << 64) if dividend & (1 << 63) else dividend
            divisor = divisor - (1 << 32) if divisor & SIGN32 else divisor
            if divisor == 0:
                self._guest_fault(atom)
            quotient = int(dividend / divisor)
            remainder = dividend - quotient * divisor
            if not -(1 << 31) <= quotient <= (1 << 31) - 1:
                self._guest_fault(atom)
        regs[atom.rd] = quotient & MASK32
        regs[atom.rd2] = remainder & MASK32

    def _guest_fault(self, atom: Atom,
                     exc: GuestException | None = None) -> None:
        from repro.isa.exceptions import divide_error

        raise HostFaultError(
            HostFault(
                HostFaultKind.GUEST_FAULT,
                guest_addr=atom.guest_addr,
                guest_exception=exc if exc is not None else divide_error(
                    atom.guest_addr),
            )
        )

    # ------------------------------------------------------------------
    # Memory atoms: where speculation meets hardware checks
    # ------------------------------------------------------------------

    def _load(self, atom: Atom) -> None:
        regs = self.regs.working
        vaddr = (regs[atom.rs1] + atom.disp) & MASK32
        try:
            paddr = self.machine.vtranslate(vaddr, atom.size, is_write=False)
        except GuestException as exc:
            self._guest_fault(atom, exc)
            raise AssertionError  # unreachable
        if self.machine.bus.is_io(paddr, atom.size):
            if atom.reordered or not atom.io_ok:
                raise HostFaultError(
                    HostFault(HostFaultKind.SPEC_MMIO,
                              guest_addr=atom.guest_addr, paddr=paddr)
                )
            regs[atom.rd] = self.machine.bus.read(paddr, atom.size)
            self._io_uncommitted = True
            return
        if atom.alias_entry is not None:
            self.alias.record(atom.alias_entry, paddr, atom.size)
        if atom.alias_check:
            violated = self.alias.check(atom.alias_check, paddr, atom.size)
            if violated is not None:
                raise HostFaultError(
                    HostFault(HostFaultKind.ALIAS_VIOLATION,
                              guest_addr=atom.guest_addr, paddr=paddr,
                              detail=f"entry {violated}")
                )
        try:
            value = self.machine.bus.read(paddr, atom.size)
        except GuestException as exc:
            self._guest_fault(atom, exc)
            raise AssertionError  # unreachable
        regs[atom.rd] = self.store_buffer.forward(paddr, atom.size, value)

    def _store(self, atom: Atom) -> None:
        regs = self.regs.working
        vaddr = (regs[atom.rs1] + atom.disp) & MASK32
        try:
            paddr = self.machine.vtranslate(vaddr, atom.size, is_write=True)
        except GuestException as exc:
            self._guest_fault(atom, exc)
            raise AssertionError  # unreachable
        is_io = self.machine.bus.is_io(paddr, atom.size)
        if is_io:
            if atom.reordered or not atom.io_ok:
                raise HostFaultError(
                    HostFault(HostFaultKind.SPEC_MMIO,
                              guest_addr=atom.guest_addr, paddr=paddr)
                )
        else:
            mmu = self.machine.mmu
            if mmu.paging_enabled and \
                    0 <= paddr - mmu.page_table_base < PT_SPAN:
                # A store into the live page table: buffered stores are
                # invisible to MMU walks until commit, so a later access
                # in this same region could translate through the stale
                # mapping.  Treat the mutation as a serializing event —
                # abort the region and let the interpreter execute the
                # store (immediately visible, §3.6.1 conservatively).
                raise HostFaultError(
                    HostFault(HostFaultKind.MMU_MUTATION,
                              guest_addr=atom.guest_addr, paddr=paddr)
                )
            # Up to three check/service rounds: a fine-grain miss fill
            # may be followed by a code-granule fault on the refilled
            # entry whose service (e.g. arming a revalidation prologue)
            # also succeeds; the store then passes the third check.
            for _ in range(3):
                check = self.protection.check_store(paddr, atom.size)
                if not check.faults:
                    break
                fault = HostFault(HostFaultKind.PROTECTION,
                                  guest_addr=atom.guest_addr, paddr=paddr,
                                  store_class=check.store_class,
                                  page=check.page, access_size=atom.size)
                if self.protection_service is None or \
                        not self.protection_service(fault):
                    raise HostFaultError(fault)
            else:
                raise HostFaultError(fault)
            if atom.alias_check:
                violated = self.alias.check(atom.alias_check, paddr, atom.size)
                if violated is not None:
                    raise HostFaultError(
                        HostFault(HostFaultKind.ALIAS_VIOLATION,
                                  guest_addr=atom.guest_addr, paddr=paddr,
                                  detail=f"entry {violated}")
                    )
            if atom.alias_entry is not None:
                self.alias.record(atom.alias_entry, paddr, atom.size)
        try:
            self.store_buffer.write(paddr, regs[atom.rs2], atom.size, is_io)
        except StoreBufferOverflow:
            raise HostFaultError(
                HostFault(HostFaultKind.STOREBUF_OVERFLOW,
                          guest_addr=atom.guest_addr, paddr=paddr)
            ) from None


def _alu(op: AluOp, a: int, b: int) -> int:
    if op is AluOp.ADD:
        return (a + b) & MASK32
    if op is AluOp.SUB:
        return (a - b) & MASK32
    if op is AluOp.AND:
        return a & b
    if op is AluOp.OR:
        return a | b
    if op is AluOp.XOR:
        return a ^ b
    if op is AluOp.SHL:
        return (a << (b & 31)) & MASK32
    if op is AluOp.SHR:
        return (a & MASK32) >> (b & 31)
    if op is AluOp.SAR:
        signed = a - (1 << 32) if a & SIGN32 else a
        return (signed >> (b & 31)) & MASK32
    if op is AluOp.MUL:
        return (a * b) & MASK32
    if op is AluOp.UMULH:
        return ((a * b) >> 32) & MASK32
    if op is AluOp.SMULH:
        sa = a - (1 << 32) if a & SIGN32 else a
        sb = b - (1 << 32) if b & SIGN32 else b
        return ((sa * sb) >> 32) & MASK32
    if op is AluOp.PARITY:
        from repro.isa.flags import parity
        return parity(a)
    if op is AluOp.CMPEQ:
        return 1 if a == b else 0
    if op is AluOp.CMPNE:
        return 1 if a != b else 0
    if op is AluOp.CMPLTU:
        return 1 if (a & MASK32) < (b & MASK32) else 0
    if op is AluOp.CMPLTS:
        sa = a - (1 << 32) if a & SIGN32 else a
        sb = b - (1 << 32) if b & SIGN32 else b
        return 1 if sa < sb else 0
    if op is AluOp.CMPLEU:
        return 1 if (a & MASK32) <= (b & MASK32) else 0
    if op is AluOp.CMPLES:
        sa = a - (1 << 32) if a & SIGN32 else a
        sb = b - (1 << 32) if b & SIGN32 else b
        return 1 if sa <= sb else 0
    raise AssertionError(f"unhandled ALU op {op}")
