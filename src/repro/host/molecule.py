"""Molecules: the VLIW instructions of the host.

Paper §2: "Each instruction (called a molecule) can issue two or four
RISC-like operations (called atoms) to a subset of five functional
units: two ALUs, a memory unit, a floating point/media unit, and a
branch unit."

The scheduler assigns atoms to slots under these issue constraints and
the executed-molecule count is the performance metric.  Execution
within a molecule is semantically parallel; the scheduler guarantees
no intra-molecule dependences, so the executor may evaluate atoms
left-to-right.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.host.atoms import Atom, AtomKind


class Slot(enum.Enum):
    ALU0 = "alu0"
    ALU1 = "alu1"
    MEM = "mem"
    FPM = "fpm"
    BR = "br"


# Which slots can each atom kind issue to, in preference order.
SLOT_CLASSES: dict[AtomKind, tuple[Slot, ...]] = {
    AtomKind.MOVI: (Slot.ALU0, Slot.ALU1, Slot.FPM),
    AtomKind.MOV: (Slot.ALU0, Slot.ALU1, Slot.FPM),
    AtomKind.ALU: (Slot.ALU0, Slot.ALU1),
    AtomKind.ALUI: (Slot.ALU0, Slot.ALU1),
    AtomKind.SEL: (Slot.ALU0, Slot.ALU1),
    AtomKind.DIVU: (Slot.FPM,),
    AtomKind.DIVS: (Slot.FPM,),
    AtomKind.LD: (Slot.MEM,),
    AtomKind.ST: (Slot.MEM,),
    AtomKind.BR: (Slot.BR,),
    AtomKind.BRZ: (Slot.BR,),
    AtomKind.BRNZ: (Slot.BR,),
    AtomKind.COMMIT: (Slot.BR,),  # issues with the branch unit
    AtomKind.EXIT: (Slot.BR,),
    AtomKind.FAIL: (Slot.BR,),
    AtomKind.PORT_IN: (Slot.MEM,),
    AtomKind.PORT_OUT: (Slot.MEM,),
    AtomKind.NOPA: (Slot.ALU0, Slot.ALU1, Slot.MEM, Slot.FPM, Slot.BR),
}

# Result latencies in molecules (consumer must issue >= latency later).
LATENCIES: dict[AtomKind, int] = {
    AtomKind.MOVI: 1,
    AtomKind.MOV: 1,
    AtomKind.ALU: 1,
    AtomKind.ALUI: 1,
    AtomKind.SEL: 1,
    AtomKind.DIVU: 10,
    AtomKind.DIVS: 10,
    AtomKind.LD: 3,
    AtomKind.ST: 1,
    AtomKind.PORT_IN: 4,
    AtomKind.PORT_OUT: 1,
}

# Multiply uses the FPM-latency path on the real part; model 3 molecules.
MUL_LATENCY = 3

MAX_ATOMS_PER_MOLECULE = 4


@dataclass
class Molecule:
    """Up to four atoms with distinct slots."""

    atoms: list[Atom] = field(default_factory=list)
    slots: list[Slot] = field(default_factory=list)
    label: str | None = None

    def can_add(self, atom: Atom) -> Slot | None:
        """Return a free slot for ``atom``, or None if it cannot issue."""
        if len(self.atoms) >= MAX_ATOMS_PER_MOLECULE:
            return None
        used = set(self.slots)
        for slot in SLOT_CLASSES[atom.kind]:
            if slot not in used:
                return slot
        return None

    def add(self, atom: Atom) -> None:
        slot = self.can_add(atom)
        if slot is None:
            raise ValueError(f"no slot for {atom} in {self}")
        self.atoms.append(atom)
        self.slots.append(slot)

    @property
    def has_branch(self) -> bool:
        return any(
            a.kind in (AtomKind.BR, AtomKind.BRZ, AtomKind.BRNZ,
                       AtomKind.EXIT, AtomKind.FAIL)
            for a in self.atoms
        )

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        label = f"{self.label}: " if self.label else ""
        body = " ; ".join(str(a) for a in self.atoms) or "nop"
        return f"{label}{{ {body} }}"
