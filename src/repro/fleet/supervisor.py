"""The fleet supervisor: cooperative slices, watchdogs, containment.

Single-threaded, deterministic round-robin: each round every runnable
tenant gets one guest-instruction slice through
:meth:`~repro.cms.system.CodeMorphingSystem.run_slice`.  Three layers
keep one tenant from taking the fleet down:

1. **The slice itself** — a dispatch is fuel-bounded (FUEL exit rolls
   back), and the slice yields at its guest budget, so a runaway
   tenant costs at most one slice before the scheduler moves on.
2. **The watchdog** — a host-wall deadline preempts a slice between
   dispatches (``should_preempt``), and repeated zero-progress slices
   mark a stall; either accumulates strikes that quarantine the tenant
   through the same path an uncontained exception takes.
3. **The containment boundary** — any exception escaping a tenant's
   slice (the CMS's own containment is the first line; this is the
   last) quarantines only that tenant, which later restarts from its
   last good warm snapshot under exponential backoff, circuit-breaking
   into interpret-only parking (or eviction) when restarts exhaust.

Wall-clock readings never enter any per-tenant ``MetricsRegistry``
(those stay deterministic); the supervisor owns its own latency
histograms, and their names carry timing markers so the perf gate
treats them as advisory.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.cms.stats import HealthReport
from repro.fleet.config import FleetConfig, TenantSpec
from repro.fleet.share import SharedTranslationService
from repro.fleet.tenant import Tenant, TenantState
from repro.obs.metrics import HistogramMetric
from repro.obs.telemetry import TelemetrySink

#: Bounds (microseconds) for the fleet-owned slice latency histogram.
_LATENCY_BOUNDS_US = tuple(int(10 * 2**i) for i in range(16))


@dataclass
class FleetHealth:
    """Aggregated fleet state (the ``repro-cms health --fleet`` view)."""

    rounds: int
    tenants: list[dict]
    share: dict
    negative_cache: int
    uncontained: int  # exceptions that escaped the supervisor (always 0)

    @property
    def healthy(self) -> bool:
        return self.uncontained == 0 and all(
            row.get("contained_errors", 0) == 0
            and row.get("audit_repairs", 0) == 0
            and row["state"] in ("running", "done")
            for row in self.tenants
        )

    def state_census(self) -> dict[str, int]:
        census: dict[str, int] = {}
        for row in self.tenants:
            census[row["state"]] = census.get(row["state"], 0) + 1
        return census

    def describe(self) -> str:
        census = ", ".join(f"{state}={count}" for state, count
                           in sorted(self.state_census().items()))
        lines = [
            f"fleet status         "
            f"{'HEALTHY' if self.healthy else 'DEGRADED'}",
            f"rounds               {self.rounds:>8}",
            f"tenants              {len(self.tenants):>8}  ({census})",
            f"shared cache         {self.share.get('published', 0):>8}"
            f" published, {self.share.get('imported', 0)} imported"
            f" (hit rate {self.share.get('hit_rate', 0.0):.2f})",
            f"share rejections     "
            f"{self.share.get('rejected_checksum', 0):>8} integrity,"
            f" {self.share.get('rejected_revalidation', 0)} revalidation"
            f" ({self.negative_cache} negative-cached)",
            f"uncontained errors   {self.uncontained:>8}",
        ]
        for row in self.tenants:
            tiers = row.get("tier_census") or {}
            degraded = ", ".join(f"{name}={count}" for name, count
                                 in tiers.items()
                                 if count and name != "AGGRESSIVE")
            lines.append(
                f"  {row['name']:<12} {row['state']:<11}"
                f" restarts={row['restarts']}"
                f" quarantines={row['quarantines']}"
                f" strikes={row['watchdog_strikes']}"
                f" imports={row['imported_translations']}"
                f" contained={row.get('contained_errors', 0)}"
                + (f" [{degraded}]" if degraded else "")
            )
        return "\n".join(lines)


@dataclass
class FleetResult:
    """Outcome of one supervised fleet run."""

    rounds: int
    wall_seconds: float
    tenants: list[Tenant]
    health: FleetHealth
    latency_us: HistogramMetric
    slice_instructions: HistogramMetric

    @property
    def total_guest_instructions(self) -> int:
        total = 0
        for tenant in self.tenants:
            if tenant.result is not None:
                total += tenant.result.guest_instructions
            elif tenant.system is not None:
                total += tenant.system.machine.instructions_retired
        return total

    def aggregate_ips(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.total_guest_instructions / self.wall_seconds


class FleetSupervisor:
    """Runs N tenants to completion under full fault isolation."""

    def __init__(self, specs: list[TenantSpec],
                 fleet: FleetConfig | None = None,
                 share: SharedTranslationService | None = None) -> None:
        self.fleet = fleet or FleetConfig()
        # An injected service lets a fleet warm-start from translations
        # published by an earlier run (the all-warm benchmark setup).
        if share is not None:
            self.share = share
        else:
            self.share = (SharedTranslationService()
                          if self.fleet.share_translations else None)
        self.tenants = [Tenant(spec, self.fleet) for spec in specs]
        self.rounds = 0
        self.uncontained = 0  # escapes of the last-resort boundary
        self.telemetry = (TelemetrySink(self.fleet.telemetry_path,
                                        source="fleet")
                          if self.fleet.telemetry_path else None)
        # Fleet-owned, wall-fed histograms.  Timing-marker names
        # ("..._us" carries "seconds"-class semantics via the explicit
        # *_seconds twin key in benchmark output) keep these advisory
        # in the perf gate; per-tenant registries never see a clock.
        self.latency_us = HistogramMetric(
            "fleet.slice_latency_us", _LATENCY_BOUNDS_US)
        self.slice_instructions = HistogramMetric(
            "fleet.slice_guest_instructions",
            tuple(2**i for i in range(18)))
        # Chaos hook: called as (supervisor, tenant, round) before each
        # slice; may raise inside the containment boundary.
        self.before_slice = None

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------

    def run(self, max_rounds: int | None = None) -> FleetResult:
        """Round-robin until every tenant is DONE/EVICTED (or parked
        tenants exhaust their budgets), bounded by ``max_rounds``."""
        limit = self.fleet.max_rounds if max_rounds is None else max_rounds
        start = time.perf_counter()
        for tenant in self.tenants:
            if tenant.system is None and tenant.state in (
                    TenantState.RUNNING, TenantState.PARKED):
                tenant.build(
                    interp_only=tenant.state is TenantState.PARKED)
                self._import_shared(tenant)
        while self.rounds < limit and any(t.live for t in self.tenants):
            try:
                self.step_round()
            except Exception as error:  # noqa: BLE001 — should not happen
                # A supervisor bug must still not kill serving tenants;
                # it is counted (campaigns assert this stays zero) and
                # the round clock advances so backoffs cannot wedge.
                self.uncontained += 1
                self._emit("fleet-uncontained", {
                    "round": self.rounds,
                    "error": f"{type(error).__name__}: {error}",
                })
                self.rounds += 1
        wall = time.perf_counter() - start
        health = self.health()
        return FleetResult(
            rounds=self.rounds,
            wall_seconds=wall,
            tenants=self.tenants,
            health=health,
            latency_us=self.latency_us,
            slice_instructions=self.slice_instructions,
        )

    def step_round(self) -> None:
        """One scheduling round: a slice for every runnable tenant."""
        for tenant in self.tenants:
            if tenant.state is TenantState.QUARANTINED:
                if tenant.try_restart(self.rounds):
                    self._import_shared(tenant)
                continue
            if not tenant.runnable:
                continue
            self._step(tenant)
        self.rounds += 1

    # ------------------------------------------------------------------
    # One slice, inside the fleet containment boundary
    # ------------------------------------------------------------------

    def _step(self, tenant: Tenant) -> None:
        remaining = tenant.instructions_remaining()
        if remaining <= 0:
            tenant.finish()
            self._publish(tenant)
            return
        budget = min(self.fleet.slice_guest_instructions, remaining)
        system = tenant.system
        machine = system.machine
        before = machine.instructions_retired
        deadline = self.fleet.slice_wall_budget
        preempted = [False]
        if deadline > 0.0:
            slice_start = time.perf_counter()

            def should_preempt() -> bool:
                if time.perf_counter() - slice_start > deadline:
                    preempted[0] = True
                    return True
                return False
        else:
            slice_start = time.perf_counter()
            should_preempt = None
        try:
            if self.before_slice is not None:
                self.before_slice(self, tenant, self.rounds)
            alive = system.run_slice(budget, should_preempt)
        except Exception as error:  # noqa: BLE001 — the fleet boundary
            self._contain(tenant, error)
            return
        elapsed = time.perf_counter() - slice_start
        retired = machine.instructions_retired - before
        tenant.slices += 1
        tenant.slices_since_snapshot += 1
        self.latency_us.observe(max(0, int(elapsed * 1e6)))
        self.slice_instructions.observe(retired)
        if not alive:
            tenant.finish()
            self._publish(tenant)
            return
        self._watchdog(tenant, retired, preempted[0])
        if tenant.state is not TenantState.RUNNING:
            return
        if self.fleet.snapshot_interval_slices > 0 and \
                tenant.slices_since_snapshot >= \
                self.fleet.snapshot_interval_slices:
            self._checkpoint(tenant)
        if self.share is not None and \
                self.fleet.share_refresh_rounds > 0 and \
                self.rounds % self.fleet.share_refresh_rounds == 0:
            self._publish(tenant)
            self._import_shared(tenant)

    def _watchdog(self, tenant: Tenant, retired: int,
                  wall_preempted: bool) -> None:
        """Guest-clock and host-wall deadline accounting."""
        strikes = 0
        if wall_preempted:
            tenant.wall_preemptions += 1
            strikes += 1
        if retired == 0:
            tenant.stall_slices += 1
            if tenant.stall_slices >= self.fleet.watchdog_stall_slices:
                tenant.stall_slices = 0
                strikes += 1
        else:
            tenant.stall_slices = 0
        if strikes == 0:
            return
        tenant.watchdog_strikes += strikes
        if tenant.watchdog_strikes >= self.fleet.watchdog_strike_limit:
            self._quarantine(tenant, "watchdog: deadline strikes "
                                     f"{tenant.watchdog_strikes}")

    def _contain(self, tenant: Tenant, error: BaseException) -> None:
        reason = f"{type(error).__name__}: {error}"
        self._quarantine(tenant, reason)

    def _quarantine(self, tenant: Tenant, reason: str) -> None:
        tenant.quarantine(self.rounds, reason)
        self._emit("fleet-quarantine", {
            "tenant": tenant.spec.tenant_id,
            "name": tenant.spec.label,
            "reason": reason,
            "round": self.rounds,
            "resume_round": tenant.resume_round,
            "restarts": tenant.restarts,
        })

    def _checkpoint(self, tenant: Tenant) -> None:
        """Save a last-good snapshot; a failed save never hurts the
        tenant (it just keeps the previous good file)."""
        try:
            tenant.save_good_snapshot()
        except Exception:  # noqa: BLE001 — snapshot must never kill
            tenant.slices_since_snapshot = 0

    def _publish(self, tenant: Tenant) -> None:
        if self.share is None or tenant.system is None:
            return
        try:
            self.share.publish_from(tenant.system, tenant.spec.tenant_id)
        except Exception:  # noqa: BLE001 — sharing is best-effort
            pass

    def _import_shared(self, tenant: Tenant) -> None:
        if self.share is None or tenant.system is None:
            return
        try:
            imported, cursor = self.share.import_into(
                tenant.system, tenant.spec.tenant_id,
                cursor=tenant.share_cursor)
        except Exception:  # noqa: BLE001 — sharing is best-effort
            return
        tenant.share_cursor = cursor
        tenant.imported_translations += imported

    # ------------------------------------------------------------------
    # Health aggregation
    # ------------------------------------------------------------------

    def health(self) -> FleetHealth:
        rows = [tenant.describe() for tenant in self.tenants]
        share = self.share.stats.as_dict() if self.share is not None \
            else {}
        report = FleetHealth(
            rounds=self.rounds,
            tenants=rows,
            share=share,
            negative_cache=(self.share.negative_cache_size()
                            if self.share is not None else 0),
            uncontained=self.uncontained,
        )
        self._emit("fleet-health", {
            "rounds": report.rounds,
            "tenants": report.tenants,
            "share": report.share,
            "negative_cache": report.negative_cache,
            "uncontained": report.uncontained,
            "healthy": report.healthy,
        })
        return report

    def tenant_health_reports(self) -> dict[int, HealthReport]:
        """Per-tenant CMS health reports (live tenants only)."""
        out: dict[int, HealthReport] = {}
        for tenant in self.tenants:
            if tenant.system is not None:
                out[tenant.spec.tenant_id] = \
                    tenant.system.health_report(run_audit=True)
        return out

    def _emit(self, kind: str, payload: dict) -> None:
        if self.telemetry is None:
            return
        self.telemetry.emit(kind, payload)
        self.telemetry.flush()
