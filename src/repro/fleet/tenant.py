"""One supervised tenant: lifecycle, watchdog state, snapshot restart.

A tenant owns a full :class:`~repro.cms.system.CodeMorphingSystem` —
its own machine, degradation ladder, auditor, and chaos stream — so
nothing it does can reach a sibling except through the shared
translation service, whose imports are revalidated.  Guest state is
deliberately *not* persisted: a restart rebuilds the machine from the
program image, warm-loads the last good snapshot (translations,
policies, profile), and re-runs from entry — determinism then makes
the restarted run reconverge to the same architectural outcome a solo
run produces, which is exactly what the fleet chaos campaign checks.
"""

from __future__ import annotations

import enum
import os
from dataclasses import replace

from repro.cms.system import CodeMorphingSystem, RunResult
from repro.fleet.config import FleetConfig, TenantSpec
from repro.machine import Machine


class TenantState(enum.Enum):
    RUNNING = "running"
    QUARANTINED = "quarantined"  # awaiting backoff expiry, then restart
    PARKED = "parked"  # breaker tripped: serving interpret-only
    EVICTED = "evicted"  # breaker tripped with park_policy="evict"
    DONE = "done"  # guest halted (or instruction budget exhausted)


class Tenant:
    """Supervisor-side state for one CMS instance."""

    def __init__(self, spec: TenantSpec, fleet: FleetConfig) -> None:
        self.spec = spec
        self.fleet = fleet
        self.state = TenantState.RUNNING
        self.system: CodeMorphingSystem | None = None
        self.entry_eip: int | None = None
        self.result: RunResult | None = None
        self.restarts = 0
        self.quarantines = 0
        self.watchdog_strikes = 0
        self.wall_preemptions = 0
        self.stall_slices = 0
        self.resume_round = 0  # backoff expiry (supervisor round clock)
        self.slices = 0
        self.slices_since_snapshot = 0
        self.share_cursor = 0  # shared-store publish-order position
        self.imported_translations = 0
        self.last_error: str | None = None
        # Hooks the chaos layer (and tests) can use to attach device
        # machinery to every rebuilt machine (e.g. a FaultInjector).
        self.machine_hook = None

    # ------------------------------------------------------------------
    # Construction / restart
    # ------------------------------------------------------------------

    def snapshot_path(self) -> str | None:
        if self.fleet.snapshot_dir is None:
            return None
        return os.path.join(self.fleet.snapshot_dir,
                            f"{self.spec.label}.cms-snapshot.json")

    def build(self, interp_only: bool = False) -> None:
        """(Re)build the machine + system, warm-starting when possible."""
        config = replace(self.spec.config,
                         chaos_tenant=self.spec.tenant_id)
        if interp_only:
            config = config.interpreter_only()
        path = self.snapshot_path()
        if path is not None:
            # The system warm-loads (and revalidates) at construction;
            # saving stays supervisor-driven, not shutdown-driven.
            config = replace(config, snapshot_path=path,
                             snapshot_save=False)
        machine = Machine(self.spec.machine_config)
        self.entry_eip = machine.load_source(self.spec.source)
        if self.machine_hook is not None:
            self.machine_hook(machine)
        self.system = CodeMorphingSystem(machine, config)
        self.system.state.eip = self.entry_eip
        self.slices_since_snapshot = 0
        self.share_cursor = 0  # rescan the shared store from the top

    def save_good_snapshot(self) -> bool:
        """Persist the current (healthy) translation state."""
        path = self.snapshot_path()
        if path is None or self.system is None:
            return False
        self.system.save_snapshot(path)
        self.slices_since_snapshot = 0
        return True

    # ------------------------------------------------------------------
    # Scheduling predicates
    # ------------------------------------------------------------------

    @property
    def runnable(self) -> bool:
        return self.state in (TenantState.RUNNING, TenantState.PARKED)

    @property
    def live(self) -> bool:
        """Still needs supervisor attention (scheduling or restart)."""
        return self.state in (TenantState.RUNNING, TenantState.PARKED,
                              TenantState.QUARANTINED)

    def instructions_remaining(self) -> int:
        if self.system is None:
            return self.spec.max_instructions
        return max(0, self.spec.max_instructions
                   - self.system.machine.instructions_retired)

    # ------------------------------------------------------------------
    # Lifecycle transitions (driven by the supervisor)
    # ------------------------------------------------------------------

    def quarantine(self, round_clock: int, reason: str) -> None:
        """Contain a tenant-level failure: park the instance, schedule a
        backed-off restart, and drop the (possibly poisoned) system."""
        self.quarantines += 1
        self.last_error = reason
        self.system = None  # never reuse a state that just failed
        doublings = min(self.restarts, self.fleet.max_backoff_doublings)
        backoff = self.fleet.restart_backoff_rounds * (2 ** doublings)
        self.resume_round = round_clock + backoff
        self.state = TenantState.QUARANTINED
        self.watchdog_strikes = 0
        self.stall_slices = 0

    def try_restart(self, round_clock: int) -> bool:
        """Restart after backoff — or trip the circuit breaker."""
        if round_clock < self.resume_round:
            return False
        if self.restarts >= self.fleet.max_restarts:
            self.trip_breaker()
            return self.state is TenantState.PARKED
        self.restarts += 1
        self.build()
        self.state = TenantState.RUNNING
        return True

    def trip_breaker(self) -> None:
        """Restart budget exhausted: park interpret-only, or evict."""
        if self.fleet.park_policy == "evict":
            self.state = TenantState.EVICTED
            self.system = None
            return
        self.build(interp_only=True)
        self.state = TenantState.PARKED

    def finish(self) -> None:
        """Guest halted (or budget exhausted): close out the run."""
        if self.system is not None:
            self.result = self.system.finalize_run()
        self.state = TenantState.DONE

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def describe(self) -> dict:
        """Per-tenant health row (fleet aggregation + telemetry)."""
        out = {
            "tenant": self.spec.tenant_id,
            "name": self.spec.label,
            "state": self.state.value,
            "restarts": self.restarts,
            "quarantines": self.quarantines,
            "watchdog_strikes": self.watchdog_strikes,
            "wall_preemptions": self.wall_preemptions,
            "slices": self.slices,
            "imported_translations": self.imported_translations,
            "last_error": self.last_error,
        }
        system = self.system
        if system is not None:
            out["guest_instructions"] = \
                system.machine.instructions_retired
            out["tier_census"] = system.degrade.tier_census()
            out["contained_errors"] = system.stats.contained_errors
            out["audit_repairs"] = system.stats.audit_repairs
        elif self.result is not None:
            out["guest_instructions"] = self.result.guest_instructions
            out["contained_errors"] = self.result.stats.contained_errors
            out["audit_repairs"] = self.result.stats.audit_repairs
        return out
