"""Fleet-level chaos: seeded failure injection with containment proof.

Three fleet-scale failure modes, mirroring the CMS-level
:class:`~repro.cms.degrade.ChaosMonkey` one level up:

* ``kill-tenant`` — an uncontained exception is raised inside one
  tenant's slice at a seeded round; the supervisor must quarantine
  exactly that tenant, restart it from its last good snapshot under
  backoff, and the restarted tenant must reconverge to the same
  architectural outcome a solo run produces.
* ``corrupt-shared-entry`` — bytes of one stored shared-cache payload
  are flipped (checksum left intact); the next import attempt must
  reject the entry, poison its key, and never offer it again.  A
  tenant kill follows so the victim's cold rescan actually attempts
  the import.
* ``storm-one-tenant`` — one tenant runs with an aggressive
  CMS-level chaos rate; its own ladder must absorb the storm while
  sibling tenants stay byte-identical to their solo runs.

``run_fleet_campaign`` drives seeded trials of all three against the
differential reference (the pure interpreter, as in
:mod:`repro.fuzz.oracle`): any tenant whose final architectural state
differs from its solo reference is a *contamination*, and the campaign
fails.  Every fourth trial generates per-tenant injection plans
(``generate(..., tenant=...)``), so asynchronous device events hit
each tenant on independent schedules.
"""

from __future__ import annotations

import random
import tempfile
from dataclasses import dataclass, field, replace

from repro.cms.config import CMSConfig
from repro.fleet.config import FleetConfig, TenantSpec
from repro.fleet.supervisor import FleetSupervisor
from repro.fleet.tenant import Tenant
from repro.fuzz.genprog import FuzzProgram, generate
from repro.fuzz.inject import FaultInjector
from repro.fuzz.oracle import RunOutcome, compare, execute

FLEET_CHAOS_MODES = ("kill-tenant", "corrupt-shared-entry",
                     "storm-one-tenant")

#: Same eager thresholds the fuzz oracle uses: short programs must
#: actually exercise translated (and shared) paths.
_TRIAL_BASE = CMSConfig(translation_threshold=4, fault_threshold=2)

_STORM_RATE = 0.05


class FleetChaosError(RuntimeError):
    """The injected tenant-killing failure."""


@dataclass
class FleetChaosPlan:
    """One trial's seeded failure schedule."""

    mode: str
    victim: int  # tenant id
    trigger_round: int
    corrupt_index: int = 0

    def arm(self, supervisor: FleetSupervisor) -> None:
        """Install the plan via the supervisor's before-slice hook."""
        fired = {"kill": False, "corrupt": False}

        def before_slice(sup: FleetSupervisor, tenant: Tenant,
                         round_clock: int) -> None:
            if self.mode == "corrupt-shared-entry":
                # Corrupt as soon as the store has something to corrupt,
                # then kill the victim on its next slice — the cold
                # rescan after restart must attempt (and reject) the
                # corrupted entry.
                if not fired["corrupt"] and \
                        round_clock >= self.trigger_round and \
                        sup.share is not None and len(sup.share) > 0:
                    sup.share.corrupt_entry(self.corrupt_index)
                    fired["corrupt"] = True
                if fired["corrupt"] and not fired["kill"] and \
                        tenant.spec.tenant_id == self.victim:
                    fired["kill"] = True
                    raise FleetChaosError(
                        f"{self.mode} @round {round_clock}")
            elif self.mode == "kill-tenant" and not fired["kill"] and \
                    tenant.spec.tenant_id == self.victim and \
                    round_clock >= self.trigger_round:
                fired["kill"] = True
                raise FleetChaosError(
                    f"{self.mode} @round {round_clock}")

        supervisor.before_slice = before_slice


@dataclass
class FleetTrialReport:
    """One trial's observed containment behavior."""

    seed: int
    mode: str
    victim: int
    restarts: int
    poisoned: int
    imported: int
    divergences: list[str] = field(default_factory=list)
    uncontained: int = 0

    @property
    def ok(self) -> bool:
        return not self.divergences and self.uncontained == 0


@dataclass
class FleetCampaignResult:
    """Aggregate over a seeded trial sequence."""

    trials: int = 0
    kills: int = 0
    corruptions: int = 0
    storms: int = 0
    restarts: int = 0
    poisoned: int = 0
    imported: int = 0
    injected_trials: int = 0
    contaminations: list[str] = field(default_factory=list)
    uncontained: int = 0

    @property
    def ok(self) -> bool:
        return not self.contaminations and self.uncontained == 0


def tenant_outcome(tenant: Tenant, program: FuzzProgram) -> RunOutcome:
    """A fleet tenant's final architectural state, oracle-shaped."""
    system = tenant.system
    machine = system.machine
    regs, eip, flags = system.state.snapshot()
    ram = bytearray(machine.ram.read_bytes(0, machine.ram.size))
    for start, end in program.ram_masks():
        ram[start:end] = b"\x00" * (end - start)
    result = tenant.result
    return RunOutcome(
        halted=result.halted if result is not None else False,
        console=machine.console.output,
        regs=regs,
        eip=eip,
        flags=flags,
        ram=bytes(ram),
        exceptions=system.interpreter.exceptions_delivered,
        interrupts=system.interpreter.interrupts_delivered,
        guest_instructions=machine.instructions_retired,
    )


#: Fuzz programs retire a few hundred guest instructions, so slices
#: must be small for a trial to span enough scheduling rounds that a
#: mid-run kill, corruption, or storm actually interleaves with the
#: victim's execution.
_TRIAL_SLICE = 48


def _trial_fleet_config(snapshot_dir: str) -> FleetConfig:
    return FleetConfig(
        slice_guest_instructions=_TRIAL_SLICE,
        slice_wall_budget=0.0,  # deterministic trials
        snapshot_dir=snapshot_dir,
        snapshot_interval_slices=2,
        share_refresh_rounds=1,
        restart_backoff_rounds=1,
        max_restarts=4,
    )


def run_fleet_trial(seed: int, tenants: int = 3,
                    max_instructions: int = 400_000,
                    inject: bool = False) -> FleetTrialReport:
    """One seeded containment trial; see the module docstring."""
    rng = random.Random(seed)
    mode = FLEET_CHAOS_MODES[rng.randrange(len(FLEET_CHAOS_MODES))]
    victim = rng.randrange(tenants)
    programs: list[FuzzProgram] = []
    specs: list[TenantSpec] = []
    for tenant_id in range(tenants):
        program = generate(seed, inject=inject, tenant=tenant_id)
        config = _TRIAL_BASE
        if mode == "storm-one-tenant" and tenant_id == victim:
            config = replace(config, chaos_rate=_STORM_RATE,
                             chaos_seed=seed)
        programs.append(program)
        specs.append(TenantSpec(
            tenant_id=tenant_id,
            source=program.source,
            name=f"t{tenant_id}",
            max_instructions=max_instructions,
            config=config,
        ))

    # Solo interpreter references (also sizes the trigger round so the
    # injected failure lands *mid-run*, not after the victim halts).
    references = [execute(program, _TRIAL_BASE.interpreter_only(),
                          max_instructions) for program in programs]
    victim_rounds = max(
        1, references[victim].guest_instructions // _TRIAL_SLICE)
    plan = FleetChaosPlan(
        mode=mode,
        victim=victim,
        trigger_round=rng.randint(1, max(1, victim_rounds - 1)),
        corrupt_index=rng.randrange(8),
    )

    with tempfile.TemporaryDirectory(prefix="fleet-trial-") as tmp:
        supervisor = FleetSupervisor(specs, _trial_fleet_config(tmp))
        plan.arm(supervisor)
        for tenant, program in zip(supervisor.tenants, programs):
            if program.plan is not None:
                tenant.machine_hook = (
                    lambda machine, _plan=program.plan:
                    FaultInjector(machine, _plan))
        result = supervisor.run(max_rounds=20_000)

    report = FleetTrialReport(
        seed=seed,
        mode=mode,
        victim=victim,
        restarts=sum(t.restarts for t in supervisor.tenants),
        poisoned=len(supervisor.share.poisoned_keys)
        if supervisor.share is not None else 0,
        imported=sum(t.imported_translations
                     for t in supervisor.tenants),
        uncontained=result.health.uncontained,
    )
    # Differential check: every tenant against its solo interpreter
    # reference.  Any difference is a containment failure — either the
    # chaos leaked into architectural state or a sibling was touched.
    for tenant, program, reference in zip(supervisor.tenants, programs,
                                          references):
        if tenant.state.value != "done":
            report.divergences.append(
                f"seed {seed} mode {mode}: tenant "
                f"{tenant.spec.tenant_id} ended {tenant.state.value} "
                f"(last error: {tenant.last_error})")
            continue
        diffs = compare(reference, tenant_outcome(tenant, program))
        for diff in diffs:
            report.divergences.append(
                f"seed {seed} mode {mode} tenant "
                f"{tenant.spec.tenant_id}: {diff}")
    return report


def run_fleet_campaign(trials: int, seed: int, tenants: int = 3,
                       max_instructions: int = 400_000,
                       inject_every: int = 4,
                       on_trial=None,
                       stop_on_failure: bool = True
                       ) -> FleetCampaignResult:
    """Run ``trials`` seeded fleet chaos trials (the CI fleet lane)."""
    result = FleetCampaignResult()
    for index in range(trials):
        inject = inject_every > 0 and \
            index % inject_every == inject_every - 1
        trial_seed = seed * 1_000_003 + index
        report = run_fleet_trial(trial_seed, tenants=tenants,
                                 max_instructions=max_instructions,
                                 inject=inject)
        result.trials += 1
        if inject:
            result.injected_trials += 1
        if report.mode == "kill-tenant":
            result.kills += 1
        elif report.mode == "corrupt-shared-entry":
            result.corruptions += 1
        else:
            result.storms += 1
        result.restarts += report.restarts
        result.poisoned += report.poisoned
        result.imported += report.imported
        result.contaminations.extend(report.divergences)
        result.uncontained += report.uncontained
        if on_trial is not None:
            on_trial(report)
        if report.divergences and stop_on_failure:
            break
    return result
