"""Fleet-level configuration: tenant specs and supervisor dials."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cms.config import CMSConfig
from repro.machine import MachineConfig


@dataclass(frozen=True)
class TenantSpec:
    """One tenant: a guest program plus its CMS configuration.

    ``tenant_id`` feeds ``CMSConfig.chaos_tenant`` (and any fuzz
    injection salt), so same-config tenants draw independent failure
    streams.  ``max_instructions`` bounds the tenant's whole run, not
    one slice.
    """

    tenant_id: int
    source: str
    name: str = ""
    max_instructions: int = 50_000_000
    config: CMSConfig = field(default_factory=CMSConfig)
    machine_config: MachineConfig | None = None

    @property
    def label(self) -> str:
        return self.name or f"tenant{self.tenant_id}"


@dataclass(frozen=True)
class FleetConfig:
    """Supervisor dials.

    Scheduling is cooperative and single-threaded: each round gives
    every runnable tenant one slice of ``slice_guest_instructions``
    guest instructions.  The watchdog has two deadlines per slice — a
    guest-clock one (``watchdog_stall_slices`` consecutive slices
    retiring zero instructions means the tenant is stuck in rollback
    ping-pong or a dead dispatcher) and a host-wall one
    (``slice_wall_budget`` seconds; 0.0 disables it so benchmark and CI
    runs stay counter-deterministic).  A wall overrun preempts the
    slice between dispatches via the existing rollback machinery — a
    single dispatch is already fuel-bounded — and counts a strike;
    ``watchdog_strike_limit`` strikes quarantine the tenant like an
    uncontained exception would.

    Quarantined tenants restart from their last good warm snapshot
    after ``restart_backoff_rounds * 2**restarts`` rounds.  More than
    ``max_restarts`` restarts trips the circuit breaker: the tenant is
    parked interpret-only (``park_policy="park"``) or evicted
    (``"evict"``), and the fleet keeps serving either way.
    """

    slice_guest_instructions: int = 2_000
    slice_wall_budget: float = 0.0  # seconds; 0 = watchdog wall check off
    watchdog_stall_slices: int = 8
    watchdog_strike_limit: int = 3
    max_restarts: int = 3
    restart_backoff_rounds: int = 2
    max_backoff_doublings: int = 6
    park_policy: str = "park"  # or "evict"
    share_translations: bool = True
    snapshot_dir: str | None = None  # per-tenant last-good snapshots
    snapshot_interval_slices: int = 16  # healthy slices between saves
    share_refresh_rounds: int = 4  # rounds between shared-store rescans
    telemetry_path: str | None = None  # fleet-health JSONL records
    max_rounds: int = 1_000_000  # hard stop (runaway-fleet backstop)
