"""Shared content-addressed translation service.

One tenant's translation work warm-starts every other tenant running
the same code.  Entries are keyed by content, not address alone: the
key digests the entry EIP, the covered code ranges, the per-range
sha256 digests :mod:`repro.cache.persist` already records, and the
semantic config digest — so two tenants share an entry only when they
run byte-identical guest code under semantically identical dials.

Trust model (§3.6.2 generalized across tenants):

* every stored entry carries an integrity checksum over its canonical
  encoding; a corrupted entry fails the checksum at import time, is
  dropped from the store, and its key is *poisoned* — negative-cached
  globally so it is never offered again;
* an entry that passes integrity is still only admitted into a tenant
  after :func:`repro.cache.persist.revalidate_translation` checks its
  recorded code digests against that tenant's current guest RAM; a
  mismatch (stale code, tenant-local SMC) negative-caches the key for
  that tenant;
* imports re-register through the exact path snapshot loads use
  (tcache insert, fine-grain protection, page recompute), so an
  imported translation is indistinguishable from a locally made one.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cache import persist
from repro.cache.tcache import digest_bytes


@dataclass
class SharedEntry:
    """One published translation: payload plus integrity checksum."""

    key: str
    payload: dict  # encode_translation() output
    checksum: str
    config_digest: str
    publisher: int  # tenant id (provenance, for health reporting)


@dataclass
class ShareStats:
    """Service-wide counters (fleet health + benchmark surface)."""

    published: int = 0
    duplicate_publishes: int = 0
    import_attempts: int = 0
    imported: int = 0
    rejected_checksum: int = 0
    rejected_revalidation: int = 0
    negative_hits: int = 0  # import attempts short-circuited by caches

    @property
    def hit_rate(self) -> float:
        if self.import_attempts == 0:
            return 0.0
        return self.imported / self.import_attempts

    def as_dict(self) -> dict:
        return {
            "published": self.published,
            "duplicate_publishes": self.duplicate_publishes,
            "import_attempts": self.import_attempts,
            "imported": self.imported,
            "rejected_checksum": self.rejected_checksum,
            "rejected_revalidation": self.rejected_revalidation,
            "negative_hits": self.negative_hits,
            "hit_rate": round(self.hit_rate, 6),
        }


def entry_key(payload: dict, config_digest: str) -> str:
    """Content address of one encoded translation."""
    identity = {
        "entry_eip": payload["entry_eip"],
        "code_ranges": payload["code_ranges"],
        "range_digests": payload["range_digests"],
        "config_digest": config_digest,
    }
    return digest_bytes(persist._canonical(identity))


class SharedTranslationService:
    """The fleet's content-addressed translation store."""

    def __init__(self) -> None:
        self._entries: dict[str, SharedEntry] = {}
        self._order: list[str] = []  # publish order, for import cursors
        # Global poison set: keys whose stored bytes failed integrity.
        self._poisoned: set[str] = set()
        # Per-tenant revalidation failures: stale for *that* tenant's
        # RAM (another tenant with matching code may still import).
        self._negative: dict[int, set[str]] = {}
        self.stats = ShareStats()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def poisoned_keys(self) -> frozenset[str]:
        return frozenset(self._poisoned)

    def negative_cache_size(self) -> int:
        return len(self._poisoned) + sum(
            len(keys) for keys in self._negative.values())

    # ------------------------------------------------------------------
    # Publishing
    # ------------------------------------------------------------------

    def publish_translation(self, translation, config_digest: str,
                            publisher: int) -> str | None:
        """Encode and store one translation; returns its key."""
        payload = persist.encode_translation(translation)
        key = entry_key(payload, config_digest)
        if key in self._poisoned:
            return None  # a poisoned identity stays dead
        if key in self._entries:
            self.stats.duplicate_publishes += 1
            return key
        self._entries[key] = SharedEntry(
            key=key,
            payload=payload,
            checksum=digest_bytes(persist._canonical(payload)),
            config_digest=config_digest,
            publisher=publisher,
        )
        self._order.append(key)
        self.stats.published += 1
        return key

    def publish_from(self, system, publisher: int) -> int:
        """Publish every resident translation of a tenant system."""
        config_digest = persist.config_digest(system.config)
        count = 0
        for translation in sorted(system.tcache.translations(),
                                  key=lambda t: t.entry_eip):
            if not translation.valid:
                continue
            if self.publish_translation(translation, config_digest,
                                        publisher) is not None:
                count += 1
        return count

    # ------------------------------------------------------------------
    # Importing
    # ------------------------------------------------------------------

    def import_into(self, system, tenant: int, cursor: int = 0) -> tuple[int, int]:
        """Offer every entry past ``cursor`` to ``system``.

        Returns ``(imported_count, new_cursor)``.  Each candidate runs
        the full trust pipeline: config match, integrity checksum,
        decode, §3.6.2 revalidation against this tenant's RAM, then
        registration.  Addresses the tenant already has a valid
        translation for are skipped without counting an attempt.
        """
        config_digest = persist.config_digest(system.config)
        negative = self._negative.setdefault(tenant, set())
        imported = 0
        order = self._order
        for index in range(cursor, len(order)):
            key = order[index]
            entry = self._entries.get(key)
            if entry is None or entry.config_digest != config_digest:
                continue
            if key in self._poisoned or key in negative:
                self.stats.negative_hits += 1
                continue
            existing = system.tcache.lookup(entry.payload["entry_eip"])
            if existing is not None and existing.valid:
                continue
            self.stats.import_attempts += 1
            if not self._verify_integrity(entry):
                continue
            try:
                translation = persist.decode_translation(entry.payload)
            except (KeyError, IndexError, TypeError, ValueError):
                self._poison(key)
                self.stats.rejected_checksum += 1
                continue
            if not persist.revalidate_translation(system, translation):
                negative.add(key)
                self.stats.rejected_revalidation += 1
                system.note_snapshot_drop(translation.entry_eip)
                continue
            system.register_loaded_translation(translation)
            imported += 1
            self.stats.imported += 1
        return imported, len(order)

    def _verify_integrity(self, entry: SharedEntry) -> bool:
        actual = digest_bytes(persist._canonical(entry.payload))
        if actual == entry.checksum:
            return True
        self._poison(entry.key)
        self.stats.rejected_checksum += 1
        return False

    def _poison(self, key: str) -> None:
        """Drop a corrupt entry and remember its key forever."""
        self._poisoned.add(key)
        self._entries.pop(key, None)

    # ------------------------------------------------------------------
    # Chaos hooks
    # ------------------------------------------------------------------

    def corrupt_entry(self, index: int) -> str | None:
        """Flip bytes inside one stored payload (fleet chaos mode).

        The checksum is left untouched, so the next import attempt must
        detect the mismatch, reject the entry, and poison its key.
        Returns the corrupted key, or None when the store is empty.
        """
        live = [key for key in self._order if key in self._entries]
        if not live:
            return None
        key = live[index % len(live)]
        payload = self._entries[key].payload
        payload["code_snapshot"] = "00" * max(
            1, len(payload.get("code_snapshot", "00")) // 2)
        payload["range_digests"] = ["0" * 64] * len(
            payload.get("range_digests", []))
        return key
