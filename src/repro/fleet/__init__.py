"""Fleet serving: fault-isolated multi-tenant CMS supervision.

The paper's safety story — speculation is safe because recovery is
always available (§3.2 rollback, §3.6.2 revalidation) — scales here
from one guest VM to a supervised fleet.  A tenant hanging, dying, or
serving poisoned cache state is treated as just another recoverable
speculation failure: contained to that tenant, rolled back to its last
good warm snapshot, retried under exponential backoff, and circuit-
broken into interpret-only parking when retries exhaust.  The shared
translation service generalizes the §3.6.2 self-revalidating prologue
one more level: a translation published by one tenant is admitted into
another only after its recorded code digests revalidate against the
*importing* tenant's guest RAM.
"""

from repro.fleet.config import FleetConfig, TenantSpec
from repro.fleet.share import SharedTranslationService
from repro.fleet.supervisor import FleetHealth, FleetResult, FleetSupervisor
from repro.fleet.tenant import Tenant, TenantState

__all__ = [
    "FleetConfig",
    "TenantSpec",
    "SharedTranslationService",
    "FleetSupervisor",
    "FleetResult",
    "FleetHealth",
    "Tenant",
    "TenantState",
]
