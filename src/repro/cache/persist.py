"""Persistent translation-cache snapshots (warm start).

Every run of this CMS pays the full Figure-1 cold start — interpret,
profile, translate — even when the guest image is byte-identical to the
last run.  The paper's own answer to "is this translation still valid
for these bytes?" is the §3.6.2 self-revalidating prologue; this module
generalizes that check into a load-time validity test for translations
persisted across runs.

A snapshot is a single versioned JSON file holding:

* every live translation — resident tcache entries *and* retired
  translation-group versions (§3.6.5) — with molecules, policies,
  labels, covered code ranges, and per-range sha256 digests of the
  guest bytes each translation implements;
* the :class:`~repro.cms.retranslation.AdaptiveController`'s
  accumulated per-region policies, per-site fault counters, and
  code-identity map (monotone learning survives the restart);
* the interpreter's execution profile (anchor/exec counts, branch
  bias, observed-MMIO sites), so warm regions stay above threshold;
* a digest of the semantically relevant ``CMSConfig`` dials, so a
  snapshot taken under a different speculation/SMC dial set is
  rejected whole — never partially applied — when
  ``snapshot_strict_config`` is set.

What is deliberately *not* persisted: chain patches (re-established
lazily by the dispatcher, exactly like after a flush), armed prologues,
and all runtime statistics.  On load every resident translation is
revalidated §3.6.2-style — its recorded source-byte digests are checked
against current guest RAM, and mismatches are dropped (their pages left
under normal SMC protection) rather than trusted.  Group versions skip
the load-time check: their activation path (`match`/`match_current`)
already byte-compares against live memory, so a stale version can never
be reactivated.

The file layout is ``{"format", "version", "checksum", "payload"}``
where ``checksum`` is the sha256 of the canonical payload encoding;
corrupted or truncated files fail the checksum (or the JSON parse) and
raise :class:`SnapshotError` before anything is applied.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field, fields

from repro.cache.tcache import (Translation, compute_range_digests,
                                digest_bytes)
from repro.host.atoms import AluOp, Atom, AtomKind
from repro.host.molecule import Molecule, Slot
from repro.translator.policies import TranslationPolicy

SNAPSHOT_FORMAT = "repro-cms-snapshot"
SNAPSHOT_VERSION = 1

#: CMSConfig fields that never affect what a translation computes or
#: whether it is valid: run-local observability, host-speed dials,
#: chaos injection, and the snapshot dials themselves.
_CONFIG_EXCLUDE = frozenset({
    "snapshot_path", "snapshot_save", "snapshot_strict_config",
    "obs_enabled", "obs_jsonl_path", "obs_histogram_buckets",
    "decode_cache", "fast_bus_routing", "fast_dispatch", "template_jit",
    "chaos_rate", "chaos_seed", "chaos_tenant",
})

#: Atom fields that are chain state (dispatcher-owned, re-established
#: lazily) and must never be serialized.
_ATOM_SKIP = frozenset({"chained_translation", "chained_guard"})

#: Policy fields holding address sets (encoded as sorted lists).
_POLICY_SETS = frozenset({
    "no_reorder_addrs", "io_fence_addrs", "stylized_imm_addrs",
    "stop_addrs",
})


class SnapshotError(Exception):
    """The snapshot file is unusable: corrupt, truncated, the wrong
    format/version, or (under strict config) from a different dial set.
    Nothing has been applied when this is raised."""


# ----------------------------------------------------------------------
# Config identity
# ----------------------------------------------------------------------


def config_fingerprint(config) -> dict:
    """The semantically relevant dials, as a JSON-friendly mapping."""
    out = {}
    for f in fields(config):
        if f.name in _CONFIG_EXCLUDE:
            continue
        value = getattr(config, f.name)
        if f.name == "cost":
            value = {cf.name: getattr(value, cf.name)
                     for cf in fields(value)}
        out[f.name] = value
    return out


def config_digest(config) -> str:
    return digest_bytes(_canonical(config_fingerprint(config)))


def _canonical(obj) -> bytes:
    return json.dumps(obj, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


# ----------------------------------------------------------------------
# Encoding
# ----------------------------------------------------------------------

_ATOM_DEFAULTS = {f.name: f.default for f in fields(Atom)
                  if f.name not in ("kind",)}


def _encode_atom(atom: Atom) -> dict:
    out: dict = {"kind": atom.kind.name}
    for name, default in _ATOM_DEFAULTS.items():
        if name in _ATOM_SKIP:
            continue
        value = getattr(atom, name)
        if value == default:
            continue
        if name == "aluop":
            value = value.name
        out[name] = value
    return out


def _decode_atom(data: dict) -> Atom:
    kwargs = dict(data)
    kind = AtomKind[kwargs.pop("kind")]
    if "aluop" in kwargs:
        kwargs["aluop"] = AluOp[kwargs["aluop"]]
    return Atom(kind=kind, **kwargs)


def _encode_molecule(molecule: Molecule) -> dict:
    return {
        "atoms": [_encode_atom(atom) for atom in molecule.atoms],
        "slots": [slot.value for slot in molecule.slots],
        "label": molecule.label,
    }


def _decode_molecule(data: dict) -> Molecule:
    return Molecule(
        atoms=[_decode_atom(a) for a in data["atoms"]],
        slots=[Slot(s) for s in data["slots"]],
        label=data["label"],
    )


def encode_policy(policy: TranslationPolicy) -> dict:
    out = {}
    for f in fields(policy):
        value = getattr(policy, f.name)
        if f.name in _POLICY_SETS:
            value = sorted(value)
        out[f.name] = value
    return out


def decode_policy(data: dict) -> TranslationPolicy:
    kwargs = dict(data)
    for name in _POLICY_SETS:
        kwargs[name] = frozenset(kwargs[name])
    return TranslationPolicy(**kwargs)


def encode_translation(translation: Translation) -> dict:
    """Serialize one translation.

    Chain patches, armed prologues, and runtime statistics are
    deliberately omitted; the entry label is reset so a reloaded
    translation always enters at its body, like a freshly made one.
    """
    position = {}
    for mol_index, molecule in enumerate(translation.molecules):
        for atom_index, atom in enumerate(molecule.atoms):
            position[id(atom)] = (mol_index, atom_index)
    exit_refs = []
    for atom in translation.exit_atoms:
        ref = position.get(id(atom))
        if ref is None:
            raise SnapshotError(
                f"exit atom of T{translation.id} not found in its own "
                f"molecules")
        exit_refs.append(list(ref))
    digests = translation.range_digests or compute_range_digests(
        translation.code_ranges, translation.code_snapshot)
    return {
        "entry_eip": translation.entry_eip,
        "guest_instr_count": translation.guest_instr_count,
        "code_ranges": [list(r) for r in translation.code_ranges],
        "code_snapshot": translation.code_snapshot.hex(),
        "range_digests": list(digests),
        "policy": encode_policy(translation.policy),
        "labels": dict(translation.labels),
        "prologue_label": translation.prologue_label,
        "molecules": [_encode_molecule(m) for m in translation.molecules],
        "exit_atoms": exit_refs,
        "trace_blocks": translation.trace_blocks,
        "block_entries": list(translation.block_entries),
        "modeled_cycles": translation.modeled_cycles,
        "loop_trace": translation.loop_trace,
    }


def decode_translation(data: dict) -> Translation:
    molecules = [_decode_molecule(m) for m in data["molecules"]]
    exit_atoms = []
    for mol_index, atom_index in data["exit_atoms"]:
        exit_atoms.append(molecules[mol_index].atoms[atom_index])
    return Translation(
        entry_eip=data["entry_eip"],
        molecules=molecules,
        labels={str(k): v for k, v in data["labels"].items()},
        entry_label="body",
        policy=decode_policy(data["policy"]),
        code_ranges=[tuple(r) for r in data["code_ranges"]],
        code_snapshot=bytes.fromhex(data["code_snapshot"]),
        guest_instr_count=data["guest_instr_count"],
        exit_atoms=exit_atoms,
        prologue_label=data["prologue_label"],
        range_digests=tuple(data["range_digests"]),
        trace_blocks=data.get("trace_blocks", 1),
        block_entries=tuple(data.get("block_entries", ())),
        modeled_cycles=data.get("modeled_cycles", 0),
        loop_trace=data.get("loop_trace", False),
    )


# ----------------------------------------------------------------------
# Snapshot assembly
# ----------------------------------------------------------------------


def build_payload(system) -> dict:
    """Assemble the snapshot payload from a live CMS instance."""
    translations: list[dict] = []
    resident: list[int] = []
    for translation in sorted(system.tcache.translations(),
                              key=lambda t: t.entry_eip):
        resident.append(len(translations))
        translations.append(encode_translation(translation))
    groups: dict[str, list[int]] = {}
    versions = system.groups.export_versions()
    for entry in sorted(versions):
        indexes = []
        for translation in versions[entry]:  # oldest -> newest (MRU last)
            indexes.append(len(translations))
            translations.append(encode_translation(translation))
        groups[str(entry)] = indexes
    profile = system.profile
    payload = {
        "format": SNAPSHOT_FORMAT,
        "version": SNAPSHOT_VERSION,
        "config_digest": config_digest(system.config),
        "config": config_fingerprint(system.config),
        "translations": translations,
        "resident": resident,
        "groups": groups,
        "controller": system.controller.export_state(),
        "profile": {
            "anchor_counts": {str(k): v for k, v
                              in profile.anchor_counts.items() if v},
            "exec_counts": {str(k): v for k, v
                            in profile.exec_counts.items() if v},
            "branch_bias": {str(k): [b.taken, b.not_taken]
                            for k, b in profile.branch_bias.items()},
            "mmio_sites": sorted(profile.mmio_sites),
        },
    }
    if system.obs is not None:
        # Session record for offline `repro-cms top/health --snapshot`;
        # absent when the run had observability off (those snapshots
        # still warm-start fine, they just carry no profile tables).
        payload["obs"] = {
            "hotspots": system.obs.hotspots.snapshot(),
            "phases": system.obs.phases.snapshot(),
        }
        payload["stats"] = system.stats.as_dict(system.config.cost)
    return payload


def write_snapshot_file(path: str, payload: dict) -> None:
    encoded = _canonical(payload)
    document = {
        "format": SNAPSHOT_FORMAT,
        "version": SNAPSHOT_VERSION,
        "checksum": digest_bytes(encoded),
        "payload": payload,
    }
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(document, handle, sort_keys=True,
                  separators=(",", ":"))
        handle.write("\n")
    os.replace(tmp, path)


def read_snapshot_file(path: str) -> dict:
    """Parse and integrity-check a snapshot file; return the payload.

    Raises :class:`SnapshotError` on any corruption, truncation, or
    format/version mismatch — the caller never sees a partial payload.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except OSError as error:
        raise SnapshotError(f"cannot read snapshot: {error}") from None
    except (json.JSONDecodeError, UnicodeDecodeError) as error:
        raise SnapshotError(f"snapshot is not valid JSON: {error}") \
            from None
    if not isinstance(document, dict):
        raise SnapshotError("snapshot is not a JSON object")
    if document.get("format") != SNAPSHOT_FORMAT:
        raise SnapshotError(
            f"not a {SNAPSHOT_FORMAT} file "
            f"(format={document.get('format')!r})")
    if document.get("version") != SNAPSHOT_VERSION:
        raise SnapshotError(
            f"snapshot version {document.get('version')!r} != "
            f"supported version {SNAPSHOT_VERSION}")
    payload = document.get("payload")
    if not isinstance(payload, dict):
        raise SnapshotError("snapshot payload missing")
    if document.get("checksum") != digest_bytes(_canonical(payload)):
        raise SnapshotError("snapshot checksum mismatch (corrupt file)")
    return payload


# ----------------------------------------------------------------------
# Save / load against a live system
# ----------------------------------------------------------------------


@dataclass
class SnapshotLoadReport:
    """What one load did (and dropped)."""

    path: str
    loaded: int = 0  # resident translations re-registered
    dropped: int = 0  # resident translations failing revalidation
    group_versions: int = 0  # retired versions re-parked in groups
    dropped_entries: list[int] = field(default_factory=list)
    config_matched: bool = True

    def describe(self) -> str:
        lines = [
            f"snapshot             {self.path}",
            f"translations loaded  {self.loaded:>8}",
            f"revalidation drops   {self.dropped:>8}",
            f"group versions       {self.group_versions:>8}",
            f"config matched       {str(self.config_matched):>8}",
        ]
        if self.dropped_entries:
            addrs = ", ".join(f"{a:#x}" for a in self.dropped_entries[:8])
            lines.append(f"dropped at           {addrs}")
        return "\n".join(lines)


def save_snapshot(system, path: str) -> dict:
    """Serialize ``system`` to ``path``; returns the written payload."""
    payload = build_payload(system)
    write_snapshot_file(path, payload)
    return payload


def load_snapshot(system, path: str) -> SnapshotLoadReport:
    """Load a snapshot into a freshly constructed system.

    The whole file is validated first; config mismatches under
    ``snapshot_strict_config`` reject the snapshot before anything is
    applied.  Each resident translation is then revalidated against
    current guest RAM and re-registered through the exact sequence a
    fresh translation uses (tcache insert, fine-grain protection, page
    recompute) — or dropped, leaving its pages under normal SMC
    protection.
    """
    payload = read_snapshot_file(path)
    report = SnapshotLoadReport(path=path)
    mine = config_digest(system.config)
    theirs = payload.get("config_digest")
    report.config_matched = (theirs == mine)
    if not report.config_matched and system.config.snapshot_strict_config:
        raise SnapshotError(
            "snapshot was taken under a different configuration "
            f"(digest {theirs!r} != {mine!r}); rejected whole "
            "(snapshot_strict_config)")
    try:
        _apply_payload(system, payload, report)
    except (KeyError, IndexError, TypeError, ValueError) as error:
        raise SnapshotError(
            f"malformed snapshot payload: {type(error).__name__}: "
            f"{error}") from None
    return report


def _apply_payload(system, payload: dict,
                   report: SnapshotLoadReport) -> None:
    # Decode everything before touching the system so a malformed
    # payload can never leave a half-applied state behind.
    translations = [decode_translation(t)
                    for t in payload["translations"]]
    resident = [translations[i] for i in payload["resident"]]
    groups = {int(entry): [translations[i] for i in indexes]
              for entry, indexes in payload["groups"].items()}
    profile_data = payload["profile"]
    controller_state = payload["controller"]

    profile = system.profile
    for key, value in profile_data["anchor_counts"].items():
        profile.anchor_counts[int(key)] += int(value)
    for key, value in profile_data["exec_counts"].items():
        profile.exec_counts[int(key)] += int(value)
    for key, (taken, not_taken) in profile_data["branch_bias"].items():
        bias = profile.branch_bias.get(int(key))
        if bias is None:
            from repro.interp.profile import BranchBias

            bias = profile.branch_bias[int(key)] = BranchBias()
        bias.taken += int(taken)
        bias.not_taken += int(not_taken)
    profile.mmio_sites.update(int(a) for a in profile_data["mmio_sites"])

    system.controller.import_state(controller_state)

    for translation in resident:
        if revalidate_translation(system, translation):
            system.register_loaded_translation(translation)
            report.loaded += 1
        else:
            # Stale bytes: drop the translation and leave its pages
            # under whatever protection the *surviving* translations
            # need (it was never registered, so nothing to undo).
            system.note_snapshot_drop(translation.entry_eip)
            report.dropped += 1
            report.dropped_entries.append(translation.entry_eip)
    for entry in sorted(groups):
        for translation in groups[entry]:  # oldest first keeps MRU order
            # No load-time check: group activation (`match_current`)
            # byte-compares against live memory, so a stale version can
            # never be reactivated.
            translation.valid = False
            system.groups.retire(translation)
            system.stats.snapshot_group_versions += 1
            report.group_versions += 1


def revalidate_translation(system, translation: Translation) -> bool:
    """§3.6.2-style load-time check: recorded digests vs guest RAM.

    Public: the fleet's shared translation service runs this same check
    on every cross-tenant import, so a shared entry is trusted only
    against the *importing* tenant's current code bytes.
    """
    from repro.isa.exceptions import GuestException

    digests = translation.range_digests
    if len(digests) != len(translation.code_ranges):
        return False
    for (start, length), recorded in zip(translation.code_ranges,
                                         digests):
        try:
            current = system.machine.bus.read_code_bytes(start, length)
        except GuestException:
            return False
        if digest_bytes(current) != recorded:
            return False
    return True


# ----------------------------------------------------------------------
# Inspection (no system required)
# ----------------------------------------------------------------------


def inspect_snapshot(path: str) -> dict:
    """Summarize a snapshot file for ``repro-cms snapshot inspect``."""
    payload = read_snapshot_file(path)
    translations = payload["translations"]
    resident = payload["resident"]
    group_versions = sum(len(v) for v in payload["groups"].values())
    entries = sorted(translations[i]["entry_eip"] for i in resident)
    return {
        "path": path,
        "format": SNAPSHOT_FORMAT,
        "version": SNAPSHOT_VERSION,
        "config_digest": payload["config_digest"],
        "translations": len(translations),
        "resident": len(resident),
        "group_entries": len(payload["groups"]),
        "group_versions": group_versions,
        "controller_policies": len(payload["controller"]["policies"]),
        "profile_anchors": len(payload["profile"]["anchor_counts"]),
        "resident_entries": entries,
        "has_obs": "obs" in payload,
    }
