"""Translation cache, chaining, and translation groups."""

from repro.cache.groups import TranslationGroups
from repro.cache.tcache import Translation, TranslationCache

__all__ = ["Translation", "TranslationCache", "TranslationGroups"]
