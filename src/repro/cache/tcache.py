"""The translation cache (tcache).

Stores translations keyed by guest entry address, maintains the
page-to-translations index used for SMC invalidation (§3.6), performs
chaining and unchaining (§2), and garbage-collects by full flush when
the cache fills (the simplest of the historically used CMS policies).
"""

from __future__ import annotations

import hashlib
import itertools
from collections import Counter
from dataclasses import dataclass, field

from typing import TYPE_CHECKING

from repro.host.atoms import Atom, AtomKind
from repro.host.molecule import Molecule
from repro.memory.physical import page_of

if TYPE_CHECKING:  # avoid a package-level import cycle with repro.translator
    from repro.translator.policies import TranslationPolicy

_ids = itertools.count(1)


def digest_bytes(data: bytes) -> str:
    """Stable hex digest of a byte string (sha256; never the salted
    builtin ``hash``, which varies across processes and would break
    snapshot revalidation)."""
    return hashlib.sha256(data).hexdigest()


def compute_range_digests(code_ranges: list[tuple[int, int]],
                          snapshot: bytes) -> tuple[str, ...]:
    """Per-range digests of a code snapshot.

    ``snapshot`` is the concatenation of the bytes of ``code_ranges`` in
    order (the layout ``Translation.code_snapshot`` uses); the digests
    are what persisted translations are revalidated against at load
    time (§3.6.2 generalized across runs).
    """
    digests = []
    cursor = 0
    for _, length in code_ranges:
        digests.append(digest_bytes(snapshot[cursor:cursor + length]))
        cursor += length
    return tuple(digests)


@dataclass(eq=False)  # identity semantics: hashable, usable in page sets
class Translation:
    """One translation: native molecules for a guest code region."""

    entry_eip: int
    molecules: list[Molecule]
    labels: dict[str, int]
    entry_label: str
    policy: TranslationPolicy
    code_ranges: list[tuple[int, int]]  # (guest addr, length) covered
    code_snapshot: bytes  # the guest bytes this translation implements
    guest_instr_count: int = 0
    exit_atoms: list[Atom] = field(default_factory=list)
    prologue_label: str | None = None
    prologue_armed: bool = False
    # Per-range sha256 digests of code_snapshot, captured at translation
    # time; the snapshot loader checks them against current guest RAM
    # before re-admitting a persisted translation.
    range_digests: tuple[str, ...] = ()
    # Superblock trace shape: how many selector blocks were chained into
    # this region, their guest entry addresses, and the scheduler cost
    # model's completion-time estimate for the whole body.
    trace_blocks: int = 1
    block_entries: tuple[int, ...] = ()
    modeled_cycles: int = 0
    # The region ends with a back edge to its own entry (it iterates
    # in-cache).  Single-block loop translations are candidates for
    # hot-loop unroll promotion; for unrolled ones (trace_blocks > 1)
    # the only way out is a side exit, so early exits are the loop
    # *completing* — never counted as trace mispredictions.
    loop_trace: bool = False
    # Runtime statistics.
    entries: int = 0
    side_exits: int = 0  # exits taken from a non-final trace block
    executions_molecules: int = 0
    fault_counts: Counter = field(default_factory=Counter)
    valid: bool = True
    id: int = field(default_factory=lambda: next(_ids))
    # Translations that chained an exit to this one (for unchaining).
    incoming_chains: list[Atom] = field(default_factory=list)
    # Cached flat address set of code_ranges (built on first use; the
    # recovery interpreter consults it on every rolled-back step, and
    # code_ranges never change after construction).
    _region_addr_set: frozenset[int] | None = field(
        default=None, repr=False)
    # Template-JIT function for this translation (host/jit.py), built
    # lazily on first dispatch.  Dropped on invalidation and never
    # persisted: its closure binds one process's live CPU objects, so a
    # warm-loaded translation recompiles on first dispatch instead.
    host_code: object | None = field(default=None, repr=False)
    # MMU mapping epoch at which all of this translation's code pages
    # were last verified identity-mapped (CMS dispatch cache; runtime
    # only, never persisted — -1 means "never verified").
    mapped_epoch: int = field(default=-1, repr=False)

    @property
    def num_molecules(self) -> int:
        return len(self.molecules)

    def region_addrs(self) -> frozenset[int]:
        """Every guest address covered by ``code_ranges``, precomputed."""
        cached = self._region_addr_set
        if cached is None:
            cached = frozenset(
                addr
                for start, length in self.code_ranges
                for addr in range(start, start + length)
            )
            self._region_addr_set = cached
        return cached

    def pages(self) -> set[int]:
        out: set[int] = set()
        for start, length in self.code_ranges:
            for page in range(page_of(start), page_of(start + length - 1) + 1):
                out.add(page)
        return out

    def overlaps(self, addr: int, size: int) -> bool:
        """True if [addr, addr+size) intersects this translation's code."""
        for start, length in self.code_ranges:
            if addr < start + length and start < addr + size:
                return True
        return False

    def code_hash(self) -> int:
        return hash(self.code_snapshot)

    def code_digest(self) -> str:
        """Process-stable identity of the guest bytes this implements."""
        return digest_bytes(self.code_snapshot)

    def describe(self) -> str:
        return (
            f"T{self.id}@{self.entry_eip:#x} "
            f"[{self.guest_instr_count} insts, {self.num_molecules} mols, "
            f"{self.policy.describe()}]"
        )


class TranslationCache:
    """Active translations, page index, chaining, and GC."""

    def __init__(self, capacity_molecules: int = 2_000_000) -> None:
        self.capacity_molecules = capacity_molecules
        # Invoked after a full GC flush so CMS can drop page protection
        # and other per-translation state coherently; on_evict receives
        # the victims of a generational collection for the same purpose.
        self.on_flush = None
        self.on_evict = None
        self._by_entry: dict[int, Translation] = {}
        self._by_page: dict[int, set[Translation]] = {}
        self.total_molecules = 0
        self.translations_added = 0
        self.invalidations = 0
        self.evictions = 0
        self.flushes = 0
        self.chains_made = 0
        self.unchains = 0

    def __len__(self) -> int:
        return len(self._by_entry)

    def lookup(self, eip: int) -> Translation | None:
        return self._by_entry.get(eip)

    def translations(self) -> list[Translation]:
        return list(self._by_entry.values())

    # ------------------------------------------------------------------
    # Insert / evict
    # ------------------------------------------------------------------

    def insert(self, translation: Translation) -> None:
        if self.total_molecules + translation.num_molecules > \
                self.capacity_molecules:
            # Generational GC: drop the cold half first (by entry
            # count); fall back to a full flush only when that cannot
            # make room (e.g. one oversized translation).
            self.evict_cold()
            if self.total_molecules + translation.num_molecules > \
                    self.capacity_molecules:
                self.flush()
        old = self._by_entry.get(translation.entry_eip)
        if old is not None:
            self.invalidate_translation(old)
        self._by_entry[translation.entry_eip] = translation
        for page in translation.pages():
            self._by_page.setdefault(page, set()).add(translation)
        self.total_molecules += translation.num_molecules
        self.translations_added += 1

    def remove(self, translation: Translation) -> None:
        """Detach a translation from the cache without marking it invalid
        (used when retiring a still-correct version into a group).

        Idempotent: removing a translation that is no longer resident
        (e.g. already invalidated through a ladder demotion) only
        re-runs the unchain sweep and never re-debits the molecule
        accounting.
        """
        resident = self._by_entry.get(translation.entry_eip) is translation
        if resident:
            del self._by_entry[translation.entry_eip]
            self.total_molecules -= translation.num_molecules
        for page in translation.pages():
            bucket = self._by_page.get(page)
            if bucket is not None:
                bucket.discard(translation)
                if not bucket:
                    del self._by_page[page]
        self._unchain_incoming(translation)
        self._unchain_outgoing(translation)

    def invalidate_translation(self, translation: Translation) -> None:
        translation.valid = False
        translation.host_code = None
        self.remove(translation)
        self.invalidations += 1

    def invalidate_page(self, page: int) -> list[Translation]:
        """Invalidate every translation with code on ``page`` (DMA rule)."""
        victims = list(self._by_page.get(page, ()))
        for translation in victims:
            self.invalidate_translation(translation)
        return victims

    def translations_overlapping(self, addr: int,
                                 size: int) -> list[Translation]:
        page_start = page_of(addr)
        page_end = page_of(addr + size - 1)
        seen: set[int] = set()
        out: list[Translation] = []
        for page in range(page_start, page_end + 1):
            for translation in self._by_page.get(page, ()):
                if translation.id not in seen and \
                        translation.overlaps(addr, size):
                    seen.add(translation.id)
                    out.append(translation)
        return out

    def translations_on_page(self, page: int) -> list[Translation]:
        return list(self._by_page.get(page, ()))

    def evict_cold(self, fraction: float = 0.5) -> list[Translation]:
        """Generational GC: invalidate the least-entered translations
        until ``fraction`` of the capacity is free.

        Hot translations survive, keeping their chains; the evicted cold
        generation is unchained automatically.  Returns the victims so
        the runtime can rebuild page protection for their pages.
        """
        target = int(self.capacity_molecules * (1.0 - fraction))
        victims: list[Translation] = []
        by_coldness = sorted(self._by_entry.values(),
                             key=lambda t: (t.entries, t.id))
        for translation in by_coldness:
            if self.total_molecules <= target:
                break
            self.invalidate_translation(translation)
            victims.append(translation)
        if victims:
            self.evictions += len(victims)
            if self.on_evict is not None:
                self.on_evict(victims)
        return victims

    def flush(self) -> None:
        """Full GC: drop everything (and all chains with it).

        Chain patches are explicitly reverted even though every resident
        translation dies together: exit atoms outlive the flush (their
        translations may be resurrected through groups or still be
        mid-unwind in the dispatcher), so none may keep pointing into
        the dead generation.
        """
        for translation in list(self._by_entry.values()):
            translation.valid = False
            translation.host_code = None
            self._unchain_incoming(translation)
            self._unchain_outgoing(translation)
        self._by_entry.clear()
        self._by_page.clear()
        self.total_molecules = 0
        self.flushes += 1
        if self.on_flush is not None:
            self.on_flush()

    # ------------------------------------------------------------------
    # Chaining (§2)
    # ------------------------------------------------------------------

    def chain(self, source: Translation, exit_atom: Atom,
              target: Translation) -> None:
        """Patch a translation exit to jump directly to ``target``."""
        assert exit_atom.kind is AtomKind.EXIT
        if exit_atom.chained_translation is target:
            return
        self._unlink_exit(exit_atom)
        exit_atom.chained_translation = target
        target.incoming_chains.append(exit_atom)
        self.chains_made += 1

    def chain_indirect(self, source: Translation, exit_atom: Atom,
                       target: Translation, guard_eip: int) -> None:
        """Install (or retarget) an indirect exit's inline cache.

        The monomorphic cache holds the last observed target; the host
        follows it only when the committed EIP matches ``guard_eip``.
        """
        assert exit_atom.kind is AtomKind.EXIT
        assert exit_atom.exit_target is None
        if exit_atom.chained_translation is target and \
                exit_atom.chained_guard == guard_eip:
            return
        self._unlink_exit(exit_atom)
        exit_atom.chained_translation = target
        exit_atom.chained_guard = guard_eip
        target.incoming_chains.append(exit_atom)
        self.chains_made += 1

    def _unlink_exit(self, exit_atom: Atom) -> None:
        old = exit_atom.chained_translation
        if old is not None:
            exit_atom.chained_translation = None
            if exit_atom in old.incoming_chains:
                old.incoming_chains.remove(exit_atom)

    def unchain_incoming(self, translation: Translation) -> int:
        """Sever every chain *into* a still-valid translation.

        The mapping-coherency rule (§3.6.1 under paging): when a page
        table mutation may have moved a translation's code out from
        under its guest addresses, direct chains into it must be cut so
        control returns to the dispatcher, which re-verifies the
        mapping before re-entering (and before re-chaining).  The
        translation itself stays resident — if the identity mapping is
        restored it revalidates without retranslating.
        """
        before = self.unchains
        self._unchain_incoming(translation)
        return self.unchains - before

    def _unchain_incoming(self, translation: Translation) -> None:
        for atom in translation.incoming_chains:
            if atom.chained_translation is translation:
                atom.chained_translation = None
                self.unchains += 1
        translation.incoming_chains.clear()

    def _unchain_outgoing(self, translation: Translation) -> None:
        for atom in translation.exit_atoms:
            target = atom.chained_translation
            if target is not None:
                atom.chained_translation = None
                if atom in target.incoming_chains:
                    target.incoming_chains.remove(atom)
