"""Translation groups (paper §3.6.5).

"Sometimes self-modifying code repeatedly writes and executes one of a
small number of versions of the rewritten x86 code ... CMS keeps such
translations in translation groups.  These are lists of translations of
the same x86 code region, with the currently active translation first on
the list.  If the first translation fails its self-check after a
protection fault, the others are checked for a current match with the
x86 code before a new translation is produced, and any matching
translation found becomes the current one."

The group key is the region entry address; membership is matched by the
exact code-byte snapshot the translation implements.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.cache.tcache import Translation


class TranslationGroups:
    """Retired translation versions, matchable by current code bytes."""

    def __init__(self, max_versions_per_group: int = 48) -> None:
        self.max_versions = max_versions_per_group
        # entry_eip -> snapshot bytes -> retired translation (MRU order).
        self._groups: dict[int, OrderedDict[bytes, Translation]] = {}
        self.retired = 0
        self.reactivations = 0
        self.capacity_drops = 0

    def retire(self, translation: Translation) -> None:
        """Park a still-correct version for possible reactivation."""
        group = self._groups.setdefault(translation.entry_eip, OrderedDict())
        group[translation.code_snapshot] = translation
        group.move_to_end(translation.code_snapshot)
        self.retired += 1
        while len(group) > self.max_versions:
            group.popitem(last=False)
            self.capacity_drops += 1

    def match(self, entry_eip: int,
              current_bytes: bytes) -> Translation | None:
        """Find a retired version matching the current code bytes."""
        group = self._groups.get(entry_eip)
        if not group:
            return None
        hit = group.pop(current_bytes, None)
        if hit is None:
            return None
        self.reactivations += 1
        hit.valid = True
        return hit

    def match_current(self, entry_eip: int, reader) -> Translation | None:
        """Match against live memory.

        ``reader(code_ranges) -> bytes`` reads the current guest bytes;
        versions of the same entry may cover different ranges, so each
        candidate is checked against its own ranges (most recent first).
        """
        group = self._groups.get(entry_eip)
        if not group:
            return None
        for snapshot, translation in reversed(list(group.items())):
            try:
                current = reader(translation.code_ranges)
            except Exception:
                return None
            if current == snapshot:
                del group[snapshot]
                self.reactivations += 1
                translation.valid = True
                return translation
        return None

    def has_group(self, entry_eip: int) -> bool:
        return bool(self._groups.get(entry_eip))

    def versions(self, entry_eip: int) -> int:
        return len(self._groups.get(entry_eip, ()))

    def drop_group(self, entry_eip: int) -> None:
        self._groups.pop(entry_eip, None)

    def drop_host_code(self) -> None:
        """Null compiled JIT callables on every parked version.

        A tcache flush drops ``host_code`` on residents, but parked
        versions outlive the flush (that is their purpose) — without
        this, the group table keeps a whole generation of generated
        functions reachable.  The versions themselves stay parked: a
        reactivated one recompiles on first dispatch.
        """
        for group in self._groups.values():
            for translation in group.values():
                translation.host_code = None

    def entries(self) -> list[int]:
        """Entry addresses that currently hold at least one version."""
        return [entry for entry, group in self._groups.items() if group]

    def export_versions(self) -> dict[int, list[Translation]]:
        """Every group's versions, oldest first (MRU last) — the order
        ``retire`` must replay to reproduce the same MRU state."""
        return {entry: list(group.values())
                for entry, group in self._groups.items() if group}

    def clear(self) -> None:
        self._groups.clear()
