"""Interrupt controller (a simplified single 8259-style PIC).

IRQ lines 0..15 map to guest vectors 32+IRQ.  Devices call
``request_irq``; the CPU side (interpreter, or the host checking at
molecule boundaries) polls ``pending_vector`` and calls ``acknowledge``
when it starts delivery.  An in-service IRQ blocks re-delivery of the
same line until the guest writes EOI, mirroring the real protocol
closely enough for driver-style guest code.

Port map (defaults): command/EOI at 0x20, mask at 0x21.
"""

from __future__ import annotations

from repro.devices.port_bus import PortBus
from repro.isa.exceptions import IRQ_BASE

EOI_COMMAND = 0x20


class InterruptController:
    """Priority interrupt controller with masking and EOI."""

    NUM_IRQS = 16

    def __init__(self) -> None:
        self._pending = 0
        self._in_service = 0
        self._mask = 0
        self.raised = 0
        self.delivered = 0
        self.spurious_eois = 0

    def attach(self, ports: PortBus, command_port: int = 0x20,
               mask_port: int = 0x21) -> None:
        ports.register(command_port, reader=self._read_pending,
                       writer=self._write_command)
        ports.register(mask_port, reader=lambda: self._mask,
                       writer=self._write_mask)

    # ------------------------------------------------------------------
    # Device side
    # ------------------------------------------------------------------

    def request_irq(self, irq: int) -> None:
        if not 0 <= irq < self.NUM_IRQS:
            raise ValueError(f"bad IRQ {irq}")
        self._pending |= 1 << irq
        self.raised += 1

    # ------------------------------------------------------------------
    # CPU side
    # ------------------------------------------------------------------

    def has_pending(self) -> bool:
        return self._deliverable() != 0

    def pending_vector(self) -> int | None:
        """Highest-priority deliverable vector, or None."""
        deliverable = self._deliverable()
        if not deliverable:
            return None
        irq = (deliverable & -deliverable).bit_length() - 1
        return IRQ_BASE + irq

    def acknowledge(self, vector: int) -> None:
        """CPU accepted delivery of ``vector``: pending -> in-service."""
        irq = vector - IRQ_BASE
        self._pending &= ~(1 << irq)
        self._in_service |= 1 << irq
        self.delivered += 1

    # ------------------------------------------------------------------
    # Guest-visible registers
    # ------------------------------------------------------------------

    def _deliverable(self) -> int:
        return self._pending & ~self._mask & ~self._in_service

    def _read_pending(self) -> int:
        return self._pending

    def _write_command(self, value: int) -> None:
        if value == EOI_COMMAND:
            if self._in_service:
                lowest = self._in_service & -self._in_service
                self._in_service &= ~lowest
            else:
                self.spurious_eois += 1

    def _write_mask(self, value: int) -> None:
        self._mask = value & 0xFFFF
