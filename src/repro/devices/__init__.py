"""Guest-visible devices.

The paper's challenges are driven by device behaviour: memory-mapped
I/O must never be reordered (§3.4), DMA writes must invalidate
translations (§3.6.1), and timer interrupts must be delivered at
precise x86 boundaries (§3.3).  Each device here exposes port-mapped
registers (for ``in``/``out``) and, where noted, a memory-mapped window
on the bus, so workloads can exercise both I/O mechanisms exactly as
the paper describes.
"""

from repro.devices.console import Console
from repro.devices.disk import Disk
from repro.devices.dma import DMAController
from repro.devices.framebuffer import Framebuffer
from repro.devices.nic import NetworkInterface
from repro.devices.pic import InterruptController
from repro.devices.port_bus import PortBus
from repro.devices.timer import Timer

__all__ = [
    "Console",
    "Disk",
    "DMAController",
    "Framebuffer",
    "InterruptController",
    "NetworkInterface",
    "PortBus",
    "Timer",
]
