"""Memory-mapped framebuffer (the Quake/BLT substrate).

A linear byte framebuffer mapped at a classic VGA-style physical window.
Game-style workloads blit into it through memory-mapped stores — the
performance-critical inner loops the paper says are often
self-modifying — and flip frames through a control port.  Frames
retired per unit of work is the "frame rate" metric for the §3.6.2
Quake self-revalidation experiment.
"""

from __future__ import annotations

from repro.devices.port_bus import PortBus

DEFAULT_BASE = 0x000A0000
DEFAULT_SIZE = 0x10000


class Framebuffer:
    """Byte-addressed linear framebuffer with a frame-flip port."""

    def __init__(self, size: int = DEFAULT_SIZE) -> None:
        self.size = size
        self._pixels = bytearray(size)
        self.pixel_writes = 0
        self.frames = 0
        self.mmio_accesses = 0

    @property
    def pixels(self) -> bytes:
        return bytes(self._pixels)

    def checksum(self) -> int:
        """Order-sensitive checksum of the current frame contents."""
        total = 0
        for i, b in enumerate(self._pixels):
            if b:
                total = (total * 31 + i * 257 + b) & 0xFFFFFFFF
        return total

    def attach(self, ports: PortBus, flip_port: int = 0xF0) -> None:
        ports.register(flip_port, reader=lambda: self.frames,
                       writer=self._flip)

    def _flip(self, value: int) -> None:
        self.frames += 1

    # ------------------------------------------------------------------
    # MMIO window: the pixel array itself.
    # ------------------------------------------------------------------

    def mmio_read(self, offset: int, size: int) -> int:
        self.mmio_accesses += 1
        if offset + size > self.size:
            return 0
        return int.from_bytes(self._pixels[offset : offset + size], "little")

    def mmio_write(self, offset: int, value: int, size: int) -> None:
        self.mmio_accesses += 1
        self.pixel_writes += 1
        if offset + size > self.size:
            return
        self._pixels[offset : offset + size] = (
            value & ((1 << (8 * size)) - 1)
        ).to_bytes(size, "little")
