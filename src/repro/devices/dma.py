"""DMA controller copying guest memory behind the CPU's back.

Paper §3.6.1: "In order to avoid excessive processing for the common
case of paging virtual memory, DMA writes to a protected page invalidate
all translations for the page."  The DMA engine writes through the
memory bus, so the CMS's bus store-observer sees every byte it moves and
applies exactly that page-invalidation rule.

Port map (defaults): 0x50 source, 0x51 destination, 0x52 length,
0x53 control/status (write 1 to start; reads 1 while busy).  MMIO
window mirrors the same registers at offsets 0/4/8/12.
"""

from __future__ import annotations

from repro.devices.pic import InterruptController
from repro.devices.port_bus import PortBus
from repro.memory.bus import MemoryBus


class DMAController:
    """A single-channel memory-to-memory DMA engine."""

    IRQ = 2
    BYTES_PER_TICK = 64

    def __init__(self, bus: MemoryBus, pic: InterruptController) -> None:
        self._bus = bus
        self._pic = pic
        self.source = 0
        self.dest = 0
        self.length = 0
        self.busy = False
        self._remaining = 0
        self.transfers_completed = 0
        self.bytes_copied = 0
        self.mmio_accesses = 0

    def attach(self, ports: PortBus, base_port: int = 0x50) -> None:
        ports.register(base_port, reader=lambda: self.source,
                       writer=self._set_source)
        ports.register(base_port + 1, reader=lambda: self.dest,
                       writer=self._set_dest)
        ports.register(base_port + 2, reader=lambda: self.length,
                       writer=self._set_length)
        ports.register(base_port + 3, reader=lambda: int(self.busy),
                       writer=self._control)

    def tick(self, instructions: int) -> None:
        """Move up to BYTES_PER_TICK per instruction-time tick."""
        if not self.busy:
            return
        budget = min(self._remaining, self.BYTES_PER_TICK)
        for _ in range(budget):
            value = self._bus.read(self.source, 1)
            self._bus.write(self.dest, value, 1)
            self.source += 1
            self.dest += 1
            self._remaining -= 1
            self.bytes_copied += 1
        if self._remaining == 0:
            self.busy = False
            self.transfers_completed += 1
            self._pic.request_irq(self.IRQ)

    def start_transfer(self, source: int, dest: int, length: int) -> bool:
        """Program and kick one transfer; returns False while busy.

        Equivalent to the guest writing the four control ports, exposed
        for host-side drivers such as the fault-injection harness.
        """
        if self.busy or length <= 0:
            return False
        self.source = source
        self.dest = dest
        self.length = length
        self._control(1)
        return True

    def _set_source(self, value: int) -> None:
        self.source = value

    def _set_dest(self, value: int) -> None:
        self.dest = value

    def _set_length(self, value: int) -> None:
        self.length = value

    def _control(self, value: int) -> None:
        if value & 1 and not self.busy and self.length > 0:
            self._remaining = self.length
            self.busy = True

    # ------------------------------------------------------------------
    # MMIO window
    # ------------------------------------------------------------------

    def mmio_read(self, offset: int, size: int) -> int:
        self.mmio_accesses += 1
        return {0: self.source, 4: self.dest, 8: self.length,
                12: int(self.busy)}.get(offset, 0)

    def mmio_write(self, offset: int, value: int, size: int) -> None:
        self.mmio_accesses += 1
        if offset == 0:
            self._set_source(value)
        elif offset == 4:
            self._set_dest(value)
        elif offset == 8:
            self._set_length(value)
        elif offset == 12:
            self._control(value)
