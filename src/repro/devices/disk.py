"""Simple block device that reads sectors into guest RAM via the bus.

Used by the boot workloads to model the "paging virtual memory" traffic
of §3.6.1: a disk read lands in RAM through the bus, so (like DMA) its
writes are seen by CMS's store observer and invalidate any translations
on the destination pages.

Port map (defaults): 0x60 sector, 0x61 destination address,
0x62 sector count, 0x63 control/status (write 1 to start; reads 1 while
busy).
"""

from __future__ import annotations

from repro.devices.pic import InterruptController
from repro.devices.port_bus import PortBus
from repro.memory.bus import MemoryBus

SECTOR_SIZE = 512


class Disk:
    """A port-programmed disk with an in-memory image."""

    IRQ = 3
    BYTES_PER_TICK = 128

    def __init__(self, bus: MemoryBus, pic: InterruptController,
                 image: bytes = b"") -> None:
        self._bus = bus
        self._pic = pic
        self._image = bytearray(image)
        self.sector = 0
        self.dest = 0
        self.count = 0
        self.busy = False
        self._cursor = 0
        self._remaining = 0
        self.reads_completed = 0
        self.bytes_read = 0

    def set_image(self, image: bytes) -> None:
        self._image = bytearray(image)

    def write_image(self, offset: int, data: bytes) -> None:
        end = offset + len(data)
        if end > len(self._image):
            self._image.extend(b"\x00" * (end - len(self._image)))
        self._image[offset:end] = data

    def attach(self, ports: PortBus, base_port: int = 0x60) -> None:
        ports.register(base_port, reader=lambda: self.sector,
                       writer=self._set_sector)
        ports.register(base_port + 1, reader=lambda: self.dest,
                       writer=self._set_dest)
        ports.register(base_port + 2, reader=lambda: self.count,
                       writer=self._set_count)
        ports.register(base_port + 3, reader=lambda: int(self.busy),
                       writer=self._control)

    def tick(self, instructions: int) -> None:
        if not self.busy:
            return
        budget = min(self._remaining, self.BYTES_PER_TICK)
        for _ in range(budget):
            value = self._image[self._cursor] if self._cursor < len(
                self._image) else 0
            self._bus.write(self.dest, value, 1)
            self._cursor += 1
            self.dest += 1
            self._remaining -= 1
            self.bytes_read += 1
        if self._remaining == 0:
            self.busy = False
            self.reads_completed += 1
            self._pic.request_irq(self.IRQ)

    def _set_sector(self, value: int) -> None:
        self.sector = value

    def _set_dest(self, value: int) -> None:
        self.dest = value

    def _set_count(self, value: int) -> None:
        self.count = value

    def _control(self, value: int) -> None:
        if value & 1 and not self.busy and self.count > 0:
            self._cursor = self.sector * SECTOR_SIZE
            self._remaining = self.count * SECTOR_SIZE
            self.busy = True
