"""Debug console device.

A Bochs-style debug console: writing a byte to the data port appends a
character to the captured output.  The console also exposes a
memory-mapped window (data register at offset 0, status at offset 4) so
workloads can exercise *memory-mapped* output — the access pattern that
triggers the paper's §3.4 speculative-MMIO machinery.

The captured text doubles as the correctness oracle of the integration
tests: a workload run under the pure interpreter and under full CMS
must print exactly the same bytes.
"""

from __future__ import annotations

from repro.devices.port_bus import PortBus

STATUS_READY = 0x1


class Console:
    """Byte-at-a-time output console with port and MMIO interfaces."""

    def __init__(self) -> None:
        self._output = bytearray()
        self.mmio_accesses = 0

    @property
    def output(self) -> str:
        return self._output.decode("latin-1")

    @property
    def output_bytes(self) -> bytes:
        return bytes(self._output)

    def attach(self, ports: PortBus, data_port: int = 0xE9,
               status_port: int = 0xEA) -> None:
        ports.register(data_port, reader=lambda: 0, writer=self._write_char)
        ports.register(status_port, reader=lambda: STATUS_READY)

    def _write_char(self, value: int) -> None:
        self._output.append(value & 0xFF)

    # ------------------------------------------------------------------
    # MMIO window: offset 0 = data, offset 4 = status.
    # ------------------------------------------------------------------

    def mmio_read(self, offset: int, size: int) -> int:
        self.mmio_accesses += 1
        if offset == 4:
            return STATUS_READY
        return 0

    def mmio_write(self, offset: int, value: int, size: int) -> None:
        self.mmio_accesses += 1
        if offset == 0:
            self._write_char(value)
