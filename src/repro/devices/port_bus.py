"""Port-mapped I/O bus for the explicit ``in``/``out`` instructions.

The paper notes that explicit I/O instructions "are easily recognized
and translated appropriately" — the translator emits unreordered,
commit-fenced port atoms for them — in contrast to memory-mapped I/O
which cannot be recognized statically.  The port bus is that easy case.
"""

from __future__ import annotations

from typing import Callable

ReadHandler = Callable[[], int]
WriteHandler = Callable[[int], None]

MASK32 = 0xFFFFFFFF


class PortBus:
    """Registry of port read/write handlers."""

    def __init__(self) -> None:
        self._readers: dict[int, ReadHandler] = {}
        self._writers: dict[int, WriteHandler] = {}
        self.reads = 0
        self.writes = 0

    def register(
        self,
        port: int,
        reader: ReadHandler | None = None,
        writer: WriteHandler | None = None,
    ) -> None:
        if reader is not None:
            if port in self._readers:
                raise ValueError(f"port {port:#x} reader already registered")
            self._readers[port] = reader
        if writer is not None:
            if port in self._writers:
                raise ValueError(f"port {port:#x} writer already registered")
            self._writers[port] = writer

    def read(self, port: int) -> int:
        """``in`` semantics: unknown ports read as all-ones, like a PC."""
        self.reads += 1
        handler = self._readers.get(port)
        if handler is None:
            return MASK32
        return handler() & MASK32

    def write(self, port: int, value: int) -> None:
        """``out`` semantics: writes to unknown ports are ignored."""
        self.writes += 1
        handler = self._writers.get(port)
        if handler is not None:
            handler(value & MASK32)
