"""A deterministic network interface delivering packets by DMA.

Paper §3.6.1: devices that write guest memory behind the CPU's back are
exactly the hard case for a translation cache — "DMA writes to a
protected page invalidate all translations for the page."  The NIC
writes received packets straight into a guest-programmed receive buffer
through the memory bus, so the CMS store-observer sees every byte and
applies the same invalidation rule as for the DMA controller.

The device is *stop-and-wait*: at most one packet is ever outstanding,
and the next is only delivered after the guest re-arms the device via
the control port (normally from its receive ISR).  That makes the
packet sequence — indices, payloads, and delivery count — a pure
function of the guest's acknowledgements, independent of exactly which
instruction boundary the interrupt lands on.  The differential scenario
oracle depends on this: interpreter and CMS deliver at different
boundaries, yet both observe the identical packet stream.

Port map (defaults): 0x70 receive buffer address, 0x71 inter-packet
period (instruction-time), 0x72 control (0 stop, 1 start+arm, 2 re-arm),
0x73 status (packets delivered so far).  MMIO window mirrors the same
registers at offsets 0/4/8/12.

Payloads come from a seeded LCG over the packet index, so a given
(seed, index) pair always yields the same bytes on every machine.
"""

from __future__ import annotations

from repro.devices.pic import InterruptController
from repro.devices.port_bus import PortBus
from repro.memory.bus import MemoryBus

MASK32 = 0xFFFFFFFF

CTRL_STOP = 0
CTRL_START = 1
CTRL_ARM = 2


class NetworkInterface:
    """A stop-and-wait packet-receive engine with deterministic payloads."""

    IRQ = 4
    PACKET_WORDS = 8  # one header word (packet index) + 7 payload words
    PACKET_BYTES = PACKET_WORDS * 4

    def __init__(
        self,
        bus: MemoryBus,
        pic: InterruptController,
        seed: int = 0x5EEDCAFE,
    ) -> None:
        self._bus = bus
        self._pic = pic
        self.seed = seed & MASK32
        self.rx_addr = 0
        self.period = 1024
        self.enabled = False
        self.armed = False
        self._elapsed = 0
        self.packets_delivered = 0
        self.bytes_delivered = 0
        self.mmio_accesses = 0

    def attach(self, ports: PortBus, base_port: int = 0x70) -> None:
        ports.register(base_port, reader=lambda: self.rx_addr,
                       writer=self._set_rx_addr)
        ports.register(base_port + 1, reader=lambda: self.period,
                       writer=self._set_period)
        ports.register(base_port + 2,
                       reader=lambda: int(self.enabled) | int(self.armed) << 1,
                       writer=self._control)
        ports.register(base_port + 3,
                       reader=lambda: self.packets_delivered)

    def tick(self, instructions: int) -> None:
        """Advance instruction-time; deliver one packet when armed + due."""
        if not (self.enabled and self.armed):
            return
        self._elapsed += instructions
        if self._elapsed >= self.period:
            self._deliver()

    def packet_words(self, index: int) -> list[int]:
        """The deterministic contents of packet ``index``."""
        words = [index & MASK32]
        x = (self.seed ^ (index * 0x9E3779B9)) & MASK32
        for _ in range(self.PACKET_WORDS - 1):
            x = (x * 1103515245 + 12345) & MASK32
            words.append(x)
        return words

    def _deliver(self) -> None:
        addr = self.rx_addr
        for word in self.packet_words(self.packets_delivered):
            self._bus.write(addr, word, 4)
            addr += 4
        self.packets_delivered += 1
        self.bytes_delivered += self.PACKET_BYTES
        self._elapsed = 0
        self.armed = False
        self._pic.request_irq(self.IRQ)

    def _set_rx_addr(self, value: int) -> None:
        self.rx_addr = value

    def _set_period(self, value: int) -> None:
        self.period = max(1, value)

    def _control(self, value: int) -> None:
        if value == CTRL_STOP:
            self.enabled = False
            self.armed = False
        elif value & CTRL_START:
            self.enabled = True
            self.armed = True
            self._elapsed = 0
        elif value & CTRL_ARM and self.enabled:
            self.armed = True

    # ------------------------------------------------------------------
    # MMIO window
    # ------------------------------------------------------------------

    def mmio_read(self, offset: int, size: int) -> int:
        self.mmio_accesses += 1
        return {0: self.rx_addr, 4: self.period,
                8: int(self.enabled) | int(self.armed) << 1,
                12: self.packets_delivered}.get(offset, 0)

    def mmio_write(self, offset: int, value: int, size: int) -> None:
        self.mmio_accesses += 1
        if offset == 0:
            self._set_rx_addr(value)
        elif offset == 4:
            self._set_period(value)
        elif offset == 8:
            self._control(value)
