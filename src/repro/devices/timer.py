"""Programmable interval timer raising IRQ 0.

The timer counts retired guest instructions (our simulator's notion of
time, consistent with the paper's molecule-count — not cycle-accurate —
simulator) and requests IRQ 0 every ``period`` instructions while
running.

Interrupts arriving while the host is mid-translation force a rollback
to the last committed state (paper §3.3); this device is what generates
that pressure in the boot workloads.

Port map (defaults): period at 0x40, control at 0x41 (1 starts,
0 stops).  MMIO window: offset 0 = period, offset 4 = control,
offset 8 = current count (read-only).
"""

from __future__ import annotations

from repro.devices.pic import InterruptController
from repro.devices.port_bus import PortBus


class Timer:
    """Instruction-count interval timer."""

    IRQ = 0

    def __init__(self, pic: InterruptController, period: int = 10_000) -> None:
        self._pic = pic
        self.period = period
        self.running = False
        self._count = 0
        self.fired = 0
        self.mmio_accesses = 0

    def attach(self, ports: PortBus, period_port: int = 0x40,
               control_port: int = 0x41) -> None:
        ports.register(period_port, reader=lambda: self.period,
                       writer=self._set_period)
        ports.register(control_port, reader=lambda: int(self.running),
                       writer=self._set_control)

    def tick(self, instructions: int) -> None:
        """Advance time by ``instructions`` retired guest instructions."""
        if not self.running or self.period <= 0:
            return
        self._count += instructions
        while self._count >= self.period:
            self._count -= self.period
            self._pic.request_irq(self.IRQ)
            self.fired += 1

    def _set_period(self, value: int) -> None:
        self.period = max(0, value)
        self._count = 0

    def _set_control(self, value: int) -> None:
        self.running = bool(value & 1)
        if not self.running:
            self._count = 0

    # ------------------------------------------------------------------
    # MMIO window
    # ------------------------------------------------------------------

    def mmio_read(self, offset: int, size: int) -> int:
        self.mmio_accesses += 1
        if offset == 0:
            return self.period
        if offset == 4:
            return int(self.running)
        if offset == 8:
            return self._count
        return 0

    def mmio_write(self, offset: int, value: int, size: int) -> None:
        self.mmio_accesses += 1
        if offset == 0:
            self._set_period(value)
        elif offset == 4:
            self._set_control(value)
