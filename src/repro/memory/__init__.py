"""Guest physical memory, bus, paging, and code-protection hardware.

This package models the memory-system side of the Crusoe co-design:

* ``physical`` — flat guest RAM.
* ``bus`` — physical address routing between RAM and memory-mapped I/O
  devices (the distinction speculation must discover at runtime,
  paper §3.4).
* ``mmu`` — guest virtual-to-physical translation producing precise
  page faults.
* ``protection`` — the page-granularity write-protection CMS places on
  pages containing translated code (paper §3.6).
* ``finegrain`` — the small hardware cache of sub-page protection
  entries (paper §3.6.1, US patent 6,363,336).
"""

from repro.memory.bus import MemoryBus, MMIORegion
from repro.memory.finegrain import FineGrainCache, GRANULE_SIZE
from repro.memory.mmu import MMU
from repro.memory.physical import PAGE_SIZE, PhysicalMemory, page_of
from repro.memory.protection import ProtectionMap, StoreClass

__all__ = [
    "MemoryBus",
    "MMIORegion",
    "FineGrainCache",
    "GRANULE_SIZE",
    "MMU",
    "PAGE_SIZE",
    "PhysicalMemory",
    "page_of",
    "ProtectionMap",
    "StoreClass",
]
