"""Guest MMU: virtual-to-physical translation with precise page faults.

A deliberately small, x86-flavoured paging model: a single-level page
table (an array of 32-bit PTEs at ``page_table_base``, indexed by
virtual page number).  PTE bits: bit 0 = present, bit 1 = writable,
bits 12.. = frame base.  When paging is off, translation is identity.

This is enough substrate to exercise the phenomena the paper needs:
page faults raised out of translated code must be delivered precisely
(§3.2), and paging activity (e.g. a DMA disk read into a mapped page)
interacts with translation-cache coherency (§3.6.1).
"""

from __future__ import annotations

from repro.isa.exceptions import page_fault
from repro.memory.bus import MemoryBus
from repro.memory.physical import PAGE_SHIFT, PAGE_SIZE

MASK32 = 0xFFFFFFFF

PTE_PRESENT = 0x1
PTE_WRITABLE = 0x2


class MMU:
    """Translates guest virtual addresses through the guest page table."""

    def __init__(self, bus: MemoryBus) -> None:
        self._bus = bus
        self.paging_enabled = False
        self.page_table_base = 0
        self.translations = 0
        self.faults = 0

    def set_page_table(self, base: int) -> None:
        self.page_table_base = base & ~(PAGE_SIZE - 1) if base % 4 else base

    def enable_paging(self) -> None:
        self.paging_enabled = True

    def disable_paging(self) -> None:
        self.paging_enabled = False

    def translate(self, vaddr: int, is_write: bool) -> int:
        """Return the physical address for ``vaddr`` or raise #PF."""
        vaddr &= MASK32
        if not self.paging_enabled:
            return vaddr
        self.translations += 1
        vpn = vaddr >> PAGE_SHIFT
        pte_addr = (self.page_table_base + vpn * 4) & MASK32
        pte = self._bus.read(pte_addr, 4)
        if not pte & PTE_PRESENT:
            self.faults += 1
            raise page_fault(vaddr, is_write, present=False)
        if is_write and not pte & PTE_WRITABLE:
            self.faults += 1
            raise page_fault(vaddr, is_write, present=True)
        return (pte & ~(PAGE_SIZE - 1)) | (vaddr & (PAGE_SIZE - 1))

    def translate_range(self, vaddr: int, size: int, is_write: bool) -> int:
        """Translate an access that must not span a page boundary split.

        Multi-byte accesses that cross a page boundary are translated
        per-page on real hardware; we translate the first byte and, if
        the access spans pages, verify the second page too, returning
        the physical address of the first byte.  Contiguity across the
        boundary is the workload's problem (as on a real PC, split
        accesses to discontiguous frames are almost always bugs); the
        bus will read whatever physical bytes follow.
        """
        first = self.translate(vaddr, is_write)
        last_byte = vaddr + size - 1
        if (vaddr >> PAGE_SHIFT) != (last_byte >> PAGE_SHIFT):
            self.translate(last_byte, is_write)
        return first
