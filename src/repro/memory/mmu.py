"""Guest MMU: virtual-to-physical translation with precise page faults.

A deliberately small, x86-flavoured paging model: a single-level page
table (an array of 32-bit PTEs at ``page_table_base``, indexed by
virtual page number).  PTE bits: bit 0 = present, bit 1 = writable,
bits 12.. = frame base.  When paging is off, translation is identity.

This is enough substrate to exercise the phenomena the paper needs:
page faults raised out of translated code must be delivered precisely
(§3.2), and paging activity (e.g. a DMA disk read into a mapped page)
interacts with translation-cache coherency (§3.6.1).

Two kinds of state live here and must never mix:

* **Architectural** — ``paging_enabled``, ``page_table_base``, and the
  ``translations``/``faults`` counters.  These advance only for guest
  accesses; the differential oracle compares them exactly, so a
  host-side probe that bumped them would diverge the legs.
* **Host-side** — the software TLB, ``probe()``, and the
  ``tlb_hits``/``walks``/``probes``/``probe_walks`` stats.  The TLB is
  a pure cache over the guest page table: it caches present PTEs only
  and is invalidated through the bus ``store_observers`` hook when
  anything (guest store, DMA, disk) writes inside the page-table span,
  and wholesale on ``set_page_table``/``enable_paging``/
  ``disable_paging``.  ``mapping_epoch`` counts those invalidations so
  the CMS can cheaply revalidate cached identity-mapping facts, and
  ``mapping_observers`` lets it unchain translations whose pages were
  remapped.
"""

from __future__ import annotations

from typing import Callable

from repro.isa.exceptions import GuestException, page_fault
from repro.memory.bus import MemoryBus
from repro.memory.physical import PAGE_SHIFT, PAGE_SIZE

MASK32 = 0xFFFFFFFF

PTE_PRESENT = 0x1
PTE_WRITABLE = 0x2

# The page table spans one 4-byte PTE per possible VPN (2^20 of them
# under 32-bit addressing).  Stores landing anywhere in
# [page_table_base, page_table_base + PT_SPAN) are mapping mutations.
PT_SPAN = 4 << 20


class MMU:
    """Translates guest virtual addresses through the guest page table."""

    def __init__(self, bus: MemoryBus) -> None:
        self._bus = bus
        self.paging_enabled = False
        self.page_table_base = 0
        # Architectural counters (compared by the differential oracle).
        self.translations = 0
        self.faults = 0
        # Host-side TLB + stats (never architecturally visible).
        self.tlb_enabled = True
        self.mapping_epoch = 0
        self.mapping_observers: list[Callable[[int | None], None]] = []
        self.tlb_hits = 0
        self.walks = 0
        self.probes = 0
        self.probe_walks = 0
        self.tlb_invalidations = 0
        self._tlb: dict[int, int] = {}
        self._observing = False

    def set_page_table(self, base: int) -> None:
        # PTEs are 4-byte entries; align the base down to 4 bytes.  (The
        # low two bits are ignored, like CR3's flag bits; the table
        # itself need not be page aligned in this model.)
        self.page_table_base = base & ~3 & MASK32
        self._mapping_changed(None)

    def enable_paging(self) -> None:
        if not self.paging_enabled:
            self.paging_enabled = True
            if not self._observing:
                # Lazy registration keeps paging-off workloads from
                # paying an observer call per store.
                self._bus.store_observers.append(self._on_ram_write)
                self._observing = True
            self._mapping_changed(None)

    def disable_paging(self) -> None:
        if self.paging_enabled:
            self.paging_enabled = False
            self._mapping_changed(None)

    def set_tlb_enabled(self, enabled: bool) -> None:
        """Host dial: turn the software TLB off (every translation
        walks) or on.  Architecturally invisible either way."""
        if self.tlb_enabled != bool(enabled):
            self.tlb_enabled = bool(enabled)
            self._tlb.clear()

    # ------------------------------------------------------------------
    # Architectural translation
    # ------------------------------------------------------------------

    def translate(self, vaddr: int, is_write: bool) -> int:
        """Return the physical address for ``vaddr`` or raise #PF."""
        vaddr &= MASK32
        if not self.paging_enabled:
            return vaddr
        self.translations += 1
        vpn = vaddr >> PAGE_SHIFT
        pte = self._tlb.get(vpn) if self.tlb_enabled else None
        if pte is None:
            self.walks += 1
            pte = self._walk(vpn)
            if self.tlb_enabled and pte & PTE_PRESENT:
                self._tlb[vpn] = pte
        else:
            self.tlb_hits += 1
        if not pte & PTE_PRESENT:
            self.faults += 1
            raise page_fault(vaddr, is_write, present=False)
        if is_write and not pte & PTE_WRITABLE:
            self.faults += 1
            raise page_fault(vaddr, is_write, present=True)
        return (pte & ~(PAGE_SIZE - 1)) | (vaddr & (PAGE_SIZE - 1))

    def translate_range(self, vaddr: int, size: int, is_write: bool) -> int:
        """Translate an access that must not span a page boundary split.

        Multi-byte accesses that cross a page boundary are translated
        per-page on real hardware; we translate the first byte and, if
        the access spans pages, verify the second page too, returning
        the physical address of the first byte.  Contiguity across the
        boundary is the workload's problem (as on a real PC, split
        accesses to discontiguous frames are almost always bugs); the
        bus will read whatever physical bytes follow.
        """
        first = self.translate(vaddr, is_write)
        last_byte = vaddr + size - 1
        if (vaddr >> PAGE_SHIFT) != (last_byte >> PAGE_SHIFT):
            self.translate(last_byte, is_write)
        return first

    # ------------------------------------------------------------------
    # Host-side probes (non-architectural)
    # ------------------------------------------------------------------

    def probe(self, vaddr: int) -> int | None:
        """Host-side mapping probe: the physical address ``vaddr`` maps
        to, or None if unmapped/unwalkable.

        Never raises, and never touches the architectural
        ``translations``/``faults`` counters — CMS dispatch uses this to
        test identity mappings without perturbing the differential
        compare.  Shares the TLB with ``translate``.
        """
        vaddr &= MASK32
        if not self.paging_enabled:
            return vaddr
        self.probes += 1
        vpn = vaddr >> PAGE_SHIFT
        pte = self._tlb.get(vpn) if self.tlb_enabled else None
        if pte is None:
            self.probe_walks += 1
            try:
                pte = self._walk(vpn)
            except GuestException:
                return None
            if self.tlb_enabled and pte & PTE_PRESENT:
                self._tlb[vpn] = pte
        else:
            self.tlb_hits += 1
        if not pte & PTE_PRESENT:
            return None
        return (pte & ~(PAGE_SIZE - 1)) | (vaddr & (PAGE_SIZE - 1))

    # ------------------------------------------------------------------
    # TLB maintenance
    # ------------------------------------------------------------------

    def _walk(self, vpn: int) -> int:
        pte_addr = (self.page_table_base + vpn * 4) & MASK32
        return self._bus.read(pte_addr, 4)

    def _on_ram_write(self, addr: int, size: int) -> None:
        """Bus store observer: evict TLB entries whose PTEs were hit.

        Fires for every physical RAM write (guest stores, commit
        drains, DMA, disk) while paging is enabled; only writes inside
        the page-table span do any work.
        """
        if not self.paging_enabled:
            return
        lo = addr - self.page_table_base
        hi = lo + size
        if hi <= 0 or lo >= PT_SPAN:
            return
        first = max(lo, 0) >> 2
        last = (hi - 1) >> 2
        for vpn in range(first, last + 1):
            self._mapping_changed(vpn)

    def _mapping_changed(self, vpn: int | None) -> None:
        """A PTE (or the whole table) changed: evict, bump the epoch,
        and notify CMS-side observers (``None`` means everything)."""
        self.mapping_epoch += 1
        if vpn is None:
            if self._tlb:
                self.tlb_invalidations += len(self._tlb)
                self._tlb.clear()
        elif self._tlb.pop(vpn, None) is not None:
            self.tlb_invalidations += 1
        for observer in self.mapping_observers:
            observer(vpn)
