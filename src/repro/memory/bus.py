"""The guest physical memory bus.

The bus routes physical addresses either to RAM or to memory-mapped I/O
regions owned by devices.  This is the distinction at the heart of the
paper's §3.4: *at translation time* a memory access cannot be classified
as RAM or I/O — only the bus knows, at runtime, per access.  The host's
speculatively reordered memory atoms consult ``is_io`` and fault when
they touch an I/O region.

Device MMIO side effects are irrevocable (paper: "they trigger
irrevocable interactions with external devices"), which is why the host
keeps stores gated in the store buffer until commit, and why reordered
accesses to these regions must abort.

Routing is the hottest query in the whole simulator (every data access
and, without the decode cache, every code byte consults it), so it runs
over base-sorted region arrays with ``bisect`` plus a pure-RAM fast
path for addresses below the lowest MMIO base.  The naive linear scan
survives as the reference implementation: ``set_fast_routing(False)``
switches the bus back to it (the seed behavior) for ablation runs, and
the property tests check the two agree on randomized region layouts.
Both ``region_at`` and ``is_io`` route through the same sorted-probe
helper, so there is a single routing implementation per mode.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Callable, Protocol

from repro.isa.exceptions import general_protection
from repro.memory.physical import PhysicalMemory

MASK32 = 0xFFFFFFFF

_NO_MMIO_LIMIT = 1 << 62  # "lowest MMIO base" when there are no regions


class MMIOHandler(Protocol):
    """Interface a device exposes for a memory-mapped region."""

    def mmio_read(self, offset: int, size: int) -> int:  # pragma: no cover
        ...

    def mmio_write(self, offset: int, value: int, size: int) -> None:  # pragma: no cover
        ...


@dataclass
class MMIORegion:
    """A physical address window owned by a device."""

    base: int
    size: int
    handler: MMIOHandler
    name: str = "mmio"

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.base + self.size


class MemoryBus:
    """Routes physical accesses to RAM or MMIO regions.

    ``store_observers`` are callbacks ``(addr, size)`` invoked *after*
    every RAM write that goes through the bus; the CMS uses one to keep
    the translation cache coherent with memory written by the
    interpreter, committed translations, and DMA, and the decode cache
    uses another for the same invariant.

    Accesses are 1, 2, or 4 bytes on both the RAM and MMIO paths; any
    other size raises ``ValueError`` before any routing or counter
    side effect, so RAM and MMIO reject malformed accesses uniformly.
    """

    def __init__(self, ram: PhysicalMemory) -> None:
        self.ram = ram
        self.regions: list[MMIORegion] = []
        self.store_observers: list[Callable[[int, int], None]] = []
        self.io_reads = 0
        self.io_writes = 0
        self.fast_routing = True
        # Base-sorted routing arrays, rebuilt by add_region.
        self._sorted_regions: list[MMIORegion] = []
        self._bases: list[int] = []
        self._ends: list[int] = []
        self._ram_limit = _NO_MMIO_LIMIT  # lowest MMIO base

    def set_fast_routing(self, enabled: bool) -> None:
        """Select bisect routing (default) or the linear reference."""
        self.fast_routing = bool(enabled)

    def add_region(self, region: MMIORegion) -> None:
        for existing in self.regions:
            if (region.base < existing.base + existing.size
                    and existing.base < region.base + region.size):
                raise ValueError(
                    f"MMIO region {region.name} overlaps {existing.name}"
                )
        self.regions.append(region)
        self._sorted_regions = sorted(self.regions, key=lambda r: r.base)
        self._bases = [r.base for r in self._sorted_regions]
        self._ends = [r.base + r.size for r in self._sorted_regions]
        self._ram_limit = self._bases[0] if self._bases else _NO_MMIO_LIMIT

    # ------------------------------------------------------------------
    # Routing.  Regions never overlap, so the region containing ``addr``
    # (if any) is the one with the greatest base <= addr, and a region
    # intersecting [addr, addr+size) is either that one or the next.
    # ------------------------------------------------------------------

    def region_at(self, addr: int) -> MMIORegion | None:
        if not self.fast_routing:
            return self._linear_region_at(addr)
        if addr < self._ram_limit:
            return None  # below every MMIO base: pure RAM
        i = bisect_right(self._bases, addr) - 1
        if i >= 0 and addr < self._ends[i]:
            return self._sorted_regions[i]
        return None

    def is_io(self, addr: int, size: int = 1) -> bool:
        """True if any byte of [addr, addr+size) falls in an MMIO region."""
        if not self.fast_routing:
            return self._linear_is_io(addr, size)
        if addr + size <= self._ram_limit:
            return False  # wholly below every MMIO base: pure RAM
        i = bisect_right(self._bases, addr) - 1
        if i >= 0 and addr < self._ends[i]:
            return True
        i += 1
        return i < len(self._bases) and self._bases[i] < addr + size

    # The seed's linear scans, kept as the executable reference for
    # ablation (`fast_routing=False`) and for the routing property test.

    def _linear_region_at(self, addr: int) -> MMIORegion | None:
        for region in self.regions:
            if region.contains(addr):
                return region
        return None

    def _linear_is_io(self, addr: int, size: int = 1) -> bool:
        for region in self.regions:
            if addr < region.base + region.size and region.base < addr + size:
                return True
        return False

    # ------------------------------------------------------------------
    # Access paths.  Reads/writes raise guest #GP for addresses that hit
    # neither RAM nor a device, matching a machine-check-free PC where
    # unmapped physical accesses just misbehave; faulting keeps bugs in
    # workloads loud.  Routing is by the access's first byte, as on the
    # seed bus; ``is_io`` is the conservative straddle check the
    # execution engines use before accessing.
    # ------------------------------------------------------------------

    def read(self, addr: int, size: int) -> int:
        addr &= MASK32
        if size != 4 and size != 1 and size != 2:
            raise ValueError(f"unsupported access size {size} "
                             f"(must be 1, 2, or 4)")
        if self.fast_routing and addr + size <= self._ram_limit:
            region = None  # pure-RAM fast path: below every MMIO base
        else:
            region = self.region_at(addr)
        if region is not None:
            self.io_reads += 1
            return region.handler.mmio_read(addr - region.base, size) & (
                (1 << (8 * size)) - 1
            )
        ram = self.ram
        try:
            if size == 4:
                return ram.read32(addr)
            if size == 1:
                return ram.read8(addr)
            return ram.read16(addr)
        except IndexError:
            raise general_protection() from None

    def write(self, addr: int, value: int, size: int) -> None:
        addr &= MASK32
        if size != 4 and size != 1 and size != 2:
            raise ValueError(f"unsupported access size {size} "
                             f"(must be 1, 2, or 4)")
        if self.fast_routing and addr + size <= self._ram_limit:
            region = None
        else:
            region = self.region_at(addr)
        if region is not None:
            self.io_writes += 1
            region.handler.mmio_write(addr - region.base, value, size)
            return
        ram = self.ram
        try:
            if size == 4:
                ram.write32(addr, value)
            elif size == 1:
                ram.write8(addr, value)
            else:
                ram.write16(addr, value)
        except IndexError:
            raise general_protection() from None
        for observer in self.store_observers:
            observer(addr, size)

    def read_code_bytes(self, addr: int, length: int) -> bytes:
        """Fetch code bytes from RAM, bypassing MMIO.

        Instruction fetch from device space is a workload bug; raise #GP
        if attempted.
        """
        if self.is_io(addr, length):
            raise general_protection()
        try:
            return self.ram.read_bytes(addr, length)
        except IndexError:
            raise general_protection() from None
