"""The guest physical memory bus.

The bus routes physical addresses either to RAM or to memory-mapped I/O
regions owned by devices.  This is the distinction at the heart of the
paper's §3.4: *at translation time* a memory access cannot be classified
as RAM or I/O — only the bus knows, at runtime, per access.  The host's
speculatively reordered memory atoms consult ``is_io`` and fault when
they touch an I/O region.

Device MMIO side effects are irrevocable (paper: "they trigger
irrevocable interactions with external devices"), which is why the host
keeps stores gated in the store buffer until commit, and why reordered
accesses to these regions must abort.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Protocol

from repro.isa.exceptions import general_protection
from repro.memory.physical import PhysicalMemory

MASK32 = 0xFFFFFFFF


class MMIOHandler(Protocol):
    """Interface a device exposes for a memory-mapped region."""

    def mmio_read(self, offset: int, size: int) -> int:  # pragma: no cover
        ...

    def mmio_write(self, offset: int, value: int, size: int) -> None:  # pragma: no cover
        ...


@dataclass
class MMIORegion:
    """A physical address window owned by a device."""

    base: int
    size: int
    handler: MMIOHandler
    name: str = "mmio"

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.base + self.size


class MemoryBus:
    """Routes physical accesses to RAM or MMIO regions.

    ``store_observers`` are callbacks ``(addr, size)`` invoked *after*
    every RAM write that goes through the bus; the CMS uses one to keep
    the translation cache coherent with memory written by the
    interpreter, committed translations, and DMA.
    """

    def __init__(self, ram: PhysicalMemory) -> None:
        self.ram = ram
        self.regions: list[MMIORegion] = []
        self.store_observers: list[Callable[[int, int], None]] = []
        self.io_reads = 0
        self.io_writes = 0

    def add_region(self, region: MMIORegion) -> None:
        for existing in self.regions:
            if (region.base < existing.base + existing.size
                    and existing.base < region.base + region.size):
                raise ValueError(
                    f"MMIO region {region.name} overlaps {existing.name}"
                )
        self.regions.append(region)

    def region_at(self, addr: int) -> MMIORegion | None:
        for region in self.regions:
            if region.contains(addr):
                return region
        return None

    def is_io(self, addr: int, size: int = 1) -> bool:
        """True if any byte of [addr, addr+size) falls in an MMIO region."""
        for region in self.regions:
            if addr < region.base + region.size and region.base < addr + size:
                return True
        return False

    # ------------------------------------------------------------------
    # Access paths.  Reads/writes raise guest #GP for addresses that hit
    # neither RAM nor a device, matching a machine-check-free PC where
    # unmapped physical accesses just misbehave; faulting keeps bugs in
    # workloads loud.
    # ------------------------------------------------------------------

    def read(self, addr: int, size: int) -> int:
        addr &= MASK32
        region = self.region_at(addr)
        if region is not None:
            self.io_reads += 1
            return region.handler.mmio_read(addr - region.base, size) & (
                (1 << (8 * size)) - 1
            )
        try:
            if size == 1:
                return self.ram.read8(addr)
            if size == 4:
                return self.ram.read32(addr)
        except IndexError:
            raise general_protection() from None
        raise ValueError(f"unsupported access size {size}")

    def write(self, addr: int, value: int, size: int) -> None:
        addr &= MASK32
        region = self.region_at(addr)
        if region is not None:
            self.io_writes += 1
            region.handler.mmio_write(addr - region.base, value, size)
            return
        try:
            if size == 1:
                self.ram.write8(addr, value)
            elif size == 4:
                self.ram.write32(addr, value)
            else:
                raise ValueError(f"unsupported access size {size}")
        except IndexError:
            raise general_protection() from None
        for observer in self.store_observers:
            observer(addr, size)

    def read_code_bytes(self, addr: int, length: int) -> bytes:
        """Fetch code bytes from RAM, bypassing MMIO.

        Instruction fetch from device space is a workload bug; raise #GP
        if attempted.
        """
        if self.is_io(addr, length):
            raise general_protection()
        try:
            return self.ram.read_bytes(addr, length)
        except IndexError:
            raise general_protection() from None
