"""Flat guest physical RAM."""

from __future__ import annotations

PAGE_SIZE = 4096
PAGE_SHIFT = 12
MASK32 = 0xFFFFFFFF


def page_of(addr: int) -> int:
    """Return the page number containing physical address ``addr``."""
    return addr >> PAGE_SHIFT


class PhysicalMemory:
    """A contiguous byte-addressable guest RAM starting at address 0.

    Accesses outside the RAM raise ``IndexError``; the bus converts that
    into a guest #GP.  All multi-byte accesses are little-endian and may
    be unaligned (the ISA has no alignment requirement).
    """

    def __init__(self, size: int) -> None:
        if size <= 0 or size % PAGE_SIZE:
            raise ValueError(f"RAM size must be a positive page multiple: {size}")
        self.size = size
        self._data = bytearray(size)

    def read8(self, addr: int) -> int:
        if not 0 <= addr < self.size:
            raise IndexError(addr)
        return self._data[addr]

    def read16(self, addr: int) -> int:
        if not 0 <= addr <= self.size - 2:
            raise IndexError(addr)
        return int.from_bytes(self._data[addr : addr + 2], "little")

    def read32(self, addr: int) -> int:
        if not 0 <= addr <= self.size - 4:
            raise IndexError(addr)
        return int.from_bytes(self._data[addr : addr + 4], "little")

    def write8(self, addr: int, value: int) -> None:
        if not 0 <= addr < self.size:
            raise IndexError(addr)
        self._data[addr] = value & 0xFF

    def write16(self, addr: int, value: int) -> None:
        if not 0 <= addr <= self.size - 2:
            raise IndexError(addr)
        self._data[addr : addr + 2] = (value & 0xFFFF).to_bytes(2, "little")

    def write32(self, addr: int, value: int) -> None:
        if not 0 <= addr <= self.size - 4:
            raise IndexError(addr)
        self._data[addr : addr + 4] = (value & MASK32).to_bytes(4, "little")

    def read_bytes(self, addr: int, length: int) -> bytes:
        if not 0 <= addr <= self.size - length:
            raise IndexError(addr)
        return bytes(self._data[addr : addr + length])

    def write_bytes(self, addr: int, data: bytes | bytearray) -> None:
        if not 0 <= addr <= self.size - len(data):
            raise IndexError(addr)
        self._data[addr : addr + len(data)] = data

    def load_image(self, segments) -> None:
        """Copy an assembled ``Program``'s segments into RAM."""
        for segment in segments:
            self.write_bytes(segment.base, segment.data)
