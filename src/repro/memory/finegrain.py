"""Hardware cache for fine-grain (sub-page) write protection.

Paper §3.6.1 / US patent 6,363,336: full-page write protection is
adequate for correctness but penalizes pages that mix code and data.
The key insight is that *fine granularity is only needed for a few pages
at a time*, so the hardware keeps a small cache of per-page granule
bitmaps, and the software fault handler fills it from CMS's in-memory
tables on a miss.

``FineGrainCache`` models exactly that hardware structure: a handful of
entries, each a page number plus a bitmask of protected 64-byte
granules.  It knows nothing about *why* granules are protected — that
is CMS policy kept in ``ProtectionMap``.
"""

from __future__ import annotations

from collections import OrderedDict

GRANULE_SIZE = 64
GRANULES_PER_PAGE = 4096 // GRANULE_SIZE  # 64 granules, one bitmap word


class FineGrainCache:
    """A small, software-filled hardware cache of sub-page protections."""

    def __init__(self, num_entries: int = 8) -> None:
        if num_entries <= 0:
            raise ValueError("fine-grain cache needs at least one entry")
        self.num_entries = num_entries
        # page -> protected-granule bitmask; ordered for LRU replacement.
        self._entries: OrderedDict[int, int] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.installs = 0
        self.evictions = 0

    def lookup(self, page: int) -> int | None:
        """Return the granule bitmask for ``page`` or None on miss."""
        mask = self._entries.get(page)
        if mask is None:
            self.misses += 1
            return None
        self.hits += 1
        self._entries.move_to_end(page)
        return mask

    def install(self, page: int, granule_mask: int) -> None:
        """Software fault handler fills in an entry (may evict LRU)."""
        if page in self._entries:
            self._entries[page] = granule_mask
            self._entries.move_to_end(page)
            return
        if len(self._entries) >= self.num_entries:
            self._entries.popitem(last=False)
            self.evictions += 1
        self._entries[page] = granule_mask
        self.installs += 1

    def invalidate(self, page: int) -> None:
        self._entries.pop(page, None)

    def flush(self) -> None:
        self._entries.clear()

    def __contains__(self, page: int) -> bool:
        return page in self._entries


def granule_index(addr: int) -> int:
    """Granule number of ``addr`` within its page."""
    return (addr & 0xFFF) // GRANULE_SIZE


def granule_mask_for_range(start: int, end: int) -> int:
    """Bitmask of granules covering byte range [start, end) within a page.

    ``start`` and ``end`` are byte offsets within one page
    (0 <= start < end <= 4096).
    """
    first = start // GRANULE_SIZE
    last = (end - 1) // GRANULE_SIZE
    mask = 0
    for granule in range(first, last + 1):
        mask |= 1 << granule
    return mask
