"""Write protection covering translated guest code (paper §3.6).

``ProtectionMap`` is the CMS-owned, authoritative protection state:

* which physical pages are write-protected because translated code was
  produced from bytes on them, and
* within each protected page, which 64-byte granules actually contain
  translated code bytes (the "fine-grain entries in memory" that the
  hardware :class:`~repro.memory.finegrain.FineGrainCache` is filled
  from on a miss).

``check_store`` is the single store-side hook used by both the host CPU
(where a non-OK result becomes a hardware protection fault and a
rollback) and the interpreter (where CMS handles the event inline).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.memory.finegrain import (
    GRANULE_SIZE,
    FineGrainCache,
    granule_mask_for_range,
)
from repro.memory.physical import PAGE_SIZE, page_of


class StoreClass(enum.Enum):
    """Outcome of checking a store against code-page protection."""

    OK = enum.auto()  # page not protected: store proceeds silently
    FG_ALLOWED = enum.auto()  # protected page, but fine-grain shows pure data
    FAULT_MISS = enum.auto()  # protected page, fine-grain cache miss
    FAULT_CODE = enum.auto()  # store hits granules containing translated code
    FAULT_PAGE = enum.auto()  # fine-grain disabled: whole page faults


@dataclass
class StoreCheck:
    """Result of a protection check for one store."""

    store_class: StoreClass
    page: int = 0

    @property
    def faults(self) -> bool:
        return self.store_class in (
            StoreClass.FAULT_MISS,
            StoreClass.FAULT_CODE,
            StoreClass.FAULT_PAGE,
        )


class ProtectionMap:
    """CMS-side protection bookkeeping plus the hardware check path."""

    def __init__(self, fine_grain: FineGrainCache | None,
                 fine_grain_enabled: bool = True) -> None:
        self._fine_grain_enabled = fine_grain_enabled and fine_grain is not None
        self.fine_grain = fine_grain if self._fine_grain_enabled else None
        # page -> bitmask of granules containing translated code bytes.
        self._pages: dict[int, int] = {}
        self.protection_faults = 0
        self.fg_miss_faults = 0
        self.fg_allowed_stores = 0
        self.code_hit_faults = 0

    @property
    def fine_grain_enabled(self) -> bool:
        return self._fine_grain_enabled

    # ------------------------------------------------------------------
    # CMS-side updates
    # ------------------------------------------------------------------

    def protect_range(self, start: int, length: int) -> None:
        """Mark [start, start+length) as translated-code bytes."""
        addr = start
        end = start + length
        while addr < end:
            page = page_of(addr)
            page_start = page * PAGE_SIZE
            lo = max(addr, page_start) - page_start
            hi = min(end, page_start + PAGE_SIZE) - page_start
            mask = granule_mask_for_range(lo, hi)
            self._pages[page] = self._pages.get(page, 0) | mask
            if self.fine_grain is not None and page in self.fine_grain:
                # Keep a cached hardware entry coherent with the update.
                self.fine_grain.install(page, self._pages[page])
            addr = page_start + PAGE_SIZE

    def unprotect_page(self, page: int) -> None:
        self._pages.pop(page, None)
        if self.fine_grain is not None:
            self.fine_grain.invalidate(page)

    def set_page_mask(self, page: int, granule_mask: int) -> None:
        """Replace a page's protected-granule mask (0 clears the page)."""
        if granule_mask:
            self._pages[page] = granule_mask
            if self.fine_grain is not None and page in self.fine_grain:
                self.fine_grain.install(page, granule_mask)
        else:
            self.unprotect_page(page)

    def is_protected(self, page: int) -> bool:
        return page in self._pages

    def page_mask(self, page: int) -> int:
        return self._pages.get(page, 0)

    def protected_pages(self) -> list[int]:
        return sorted(self._pages)

    def clear(self) -> None:
        self._pages.clear()
        if self.fine_grain is not None:
            self.fine_grain.flush()

    # ------------------------------------------------------------------
    # Hardware check path (store-side)
    # ------------------------------------------------------------------

    def check_store(self, addr: int, size: int) -> StoreCheck:
        """Classify a store of ``size`` bytes at physical ``addr``.

        With fine-grain protection enabled the semantics follow §3.6.1:
        an uncached protected page faults (FAULT_MISS — the software
        handler installs the entry and retries), a cached page faults
        only when the store overlaps a granule that holds translated
        code (FAULT_CODE), and otherwise proceeds (FG_ALLOWED — this is
        the whole benefit measured in Table 1).  With fine-grain
        disabled, every store to a protected page faults (FAULT_PAGE).
        """
        page = page_of(addr)
        code_mask = self._pages.get(page)
        if code_mask is None:
            # A store may straddle a page boundary; check the last byte.
            last_page = page_of(addr + size - 1)
            if last_page == page or last_page not in self._pages:
                return StoreCheck(StoreClass.OK)
            page, code_mask = last_page, self._pages[last_page]
            addr = page * PAGE_SIZE
            size = 1
        if not self._fine_grain_enabled:
            self.protection_faults += 1
            return StoreCheck(StoreClass.FAULT_PAGE, page)
        assert self.fine_grain is not None
        cached_mask = self.fine_grain.lookup(page)
        if cached_mask is None:
            self.protection_faults += 1
            self.fg_miss_faults += 1
            return StoreCheck(StoreClass.FAULT_MISS, page)
        lo = addr - page * PAGE_SIZE
        hi = min(lo + size, PAGE_SIZE)
        store_mask = granule_mask_for_range(lo, hi)
        if cached_mask & store_mask:
            self.protection_faults += 1
            self.code_hit_faults += 1
            return StoreCheck(StoreClass.FAULT_CODE, page)
        self.fg_allowed_stores += 1
        return StoreCheck(StoreClass.OK)

    def handle_miss(self, page: int) -> None:
        """Software fault handler: fill the hardware cache for ``page``."""
        if self.fine_grain is not None:
            self.fine_grain.install(page, self._pages.get(page, 0))
