"""Tests for the CMS event trace."""

from __future__ import annotations

from repro import CMSConfig
from repro.cms.trace import Event, EventTrace

from conftest import run_cms


class TestEventTraceUnit:
    def test_record_and_filter(self):
        trace = EventTrace()
        trace.record(Event.TRANSLATE, 0x1000, "default")
        trace.record(Event.FAULT, 0x1004, "ALIAS_VIOLATION")
        trace.record(Event.TRANSLATE, 0x2000)
        assert len(trace) == 3
        assert len(trace.records(Event.TRANSLATE)) == 2
        assert trace.records(eip=0x1004)[0].event is Event.FAULT

    def test_bounded_capacity(self):
        trace = EventTrace(capacity=4)
        for i in range(10):
            trace.record(Event.TRANSLATE, i)
        assert len(trace) == 4
        # `counts` mirrors the ring; `lifetime_counts` keeps totals.
        assert trace.counts[Event.TRANSLATE] == 4
        assert trace.lifetime_counts[Event.TRANSLATE] == 10
        assert trace.last(4)[0].eip == 6

    def test_windowed_counts_drop_evicted_kinds(self):
        trace = EventTrace(capacity=2)
        trace.record(Event.FAULT, 0x10)
        trace.record(Event.TRANSLATE, 0x20)
        trace.record(Event.TRANSLATE, 0x30)  # evicts the FAULT record
        assert Event.FAULT not in trace.counts
        assert trace.counts[Event.TRANSLATE] == 2
        assert trace.lifetime_counts[Event.FAULT] == 1

    def test_disabled_records_nothing(self):
        trace = EventTrace(enabled=False)
        trace.record(Event.TRANSLATE, 0x1000)
        assert len(trace) == 0

    def test_dump_format(self):
        trace = EventTrace()
        trace.record(Event.ROLLBACK, 0x1234, "PROTECTION")
        text = trace.dump()
        assert "rollback" in text and "0x1234" in text

    def test_sequence_of(self):
        trace = EventTrace()
        trace.record(Event.TRANSLATE, 1)
        trace.record(Event.FAULT, 1)
        trace.record(Event.RETRANSLATE, 1)
        order = trace.sequence_of(Event.TRANSLATE, Event.RETRANSLATE)
        assert order == [Event.TRANSLATE, Event.RETRANSLATE]


class TestRuntimeTracing:
    def test_translation_events_recorded(self):
        system, _ = run_cms("""
        start:
            mov ecx, 0
        loop:
            inc ecx
            cmp ecx, 200
            jne loop
            cli
            hlt
        """, CMSConfig(translation_threshold=4))
        translates = system.trace.records(Event.TRANSLATE)
        assert translates, "no TRANSLATE events recorded"
        assert system.trace.lifetime_counts[Event.TRANSLATE] == \
            system.stats.translations_made

    def test_fault_and_escalation_sequence(self):
        from repro.workloads import run_workload
        from repro.workloads.apps import alias_stress

        result = run_workload(alias_stress(),
                              CMSConfig(translation_threshold=6,
                                        fault_threshold=2))
        trace = result.system.trace
        assert trace.counts[Event.FAULT] >= 1
        assert trace.counts[Event.ROLLBACK] >= 1
        assert trace.counts[Event.POLICY_ESCALATE] >= 1
        # Escalation follows faults in time.
        order = trace.sequence_of(Event.FAULT, Event.POLICY_ESCALATE)
        assert order.index(Event.FAULT) < order.index(Event.POLICY_ESCALATE)

    def test_smc_events_recorded(self):
        from repro.workloads import run_workload
        from repro.workloads.games import quake_demo2

        result = run_workload(quake_demo2(frames=20),
                              CMSConfig(translation_threshold=6,
                                        fault_threshold=2))
        trace = result.system.trace
        assert trace.counts[Event.SMC_INVALIDATE] >= 1
        assert trace.counts[Event.REVALIDATE_ARM] >= 0  # may or may not arm
        assert trace.counts[Event.TRANSLATE] >= 1

    def test_interrupt_rollbacks_traced(self):
        from repro.workloads import get_workload, run_workload

        result = run_workload(get_workload("dos_boot"),
                              CMSConfig(translation_threshold=6))
        trace = result.system.trace
        # The timer phase forces interrupt exits from translations.
        assert trace.counts[Event.INTERRUPT] >= 1
