"""Property-based tests for the host hardware models."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.host.alias import AliasHardware
from repro.host.store_buffer import GatedStoreBuffer
from repro.machine import Machine

ADDR = st.integers(min_value=0x1000, max_value=0x1100)
VALUE32 = st.integers(min_value=0, max_value=0xFFFFFFFF)
SIZE = st.sampled_from([1, 4])


@st.composite
def store_sequences(draw):
    count = draw(st.integers(min_value=1, max_value=24))
    return [
        (draw(ADDR), draw(VALUE32), draw(SIZE))
        for _ in range(count)
    ]


class TestStoreBufferProperties:
    @given(store_sequences())
    @settings(max_examples=60, deadline=None)
    def test_forwarding_matches_drain_result(self, stores):
        """Reading through the buffer must equal memory after a drain."""
        machine = Machine()
        buffer = GatedStoreBuffer(capacity=64)
        for addr, value, size in stores:
            buffer.write(addr, value, size, is_io=False)
        forwarded = {
            addr: buffer.forward(addr, 4, machine.bus.read(addr, 4))
            for addr in range(0x1000, 0x1104, 4)
        }
        buffer.drain(machine.bus)
        for addr, expected in forwarded.items():
            assert machine.bus.read(addr, 4) == expected

    @given(store_sequences())
    @settings(max_examples=40, deadline=None)
    def test_drop_leaves_memory_untouched(self, stores):
        machine = Machine()
        buffer = GatedStoreBuffer(capacity=64)
        for addr, value, size in stores:
            buffer.write(addr, value, size, is_io=False)
        buffer.drop()
        for addr in range(0x1000, 0x1104, 4):
            assert machine.bus.read(addr, 4) == 0

    @given(store_sequences(), store_sequences())
    @settings(max_examples=40, deadline=None)
    def test_commit_then_more_stores(self, first, second):
        """Drain/refill cycles behave like sequential memory writes."""
        machine = Machine()
        reference = Machine()
        buffer = GatedStoreBuffer(capacity=64)
        for addr, value, size in first:
            buffer.write(addr, value, size, is_io=False)
            reference.bus.write(addr, value, size)
        buffer.drain(machine.bus)
        for addr, value, size in second:
            buffer.write(addr, value, size, is_io=False)
            reference.bus.write(addr, value, size)
        buffer.drain(machine.bus)
        for addr in range(0x1000, 0x1104, 4):
            assert machine.bus.read(addr, 4) == reference.bus.read(addr, 4)


class TestAliasProperties:
    @given(
        st.lists(
            st.tuples(st.integers(min_value=0, max_value=7), ADDR, SIZE),
            min_size=1, max_size=8,
        ),
        ADDR,
        SIZE,
    )
    @settings(max_examples=80, deadline=None)
    def test_check_detects_exactly_overlaps(self, records, store_addr,
                                            store_size):
        alias = AliasHardware(8)
        latest: dict[int, tuple[int, int]] = {}
        for entry, addr, size in records:
            alias.record(entry, addr, size)
            latest[entry] = (addr, size)
        overlap_expected = any(
            store_addr < addr + size and addr < store_addr + store_size
            for addr, size in latest.values()
        )
        hit = alias.check(0xFF, store_addr, store_size)
        assert (hit is not None) == overlap_expected

    @given(ADDR, SIZE)
    @settings(max_examples=30, deadline=None)
    def test_unchecked_entries_never_fault(self, addr, size):
        alias = AliasHardware(8)
        alias.record(0, addr, size)
        assert alias.check(0b10, addr, size) is None  # mask excludes 0
