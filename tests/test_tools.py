"""Tests for the disassembler and the repro-cms CLI."""

from __future__ import annotations

import pytest

from repro.isa.assembler import assemble
from repro.isa.decoder import BytesFetcher
from repro.isa.disasm import disassemble, disassemble_text
from repro.tools.cli import main


class TestDisassembler:
    def fetcher(self, source):
        program = assemble(source)
        return BytesFetcher(program.flatten(), base=0), program

    def test_roundtrip_simple(self):
        fetch, program = self.fetcher("""
        .org 0x100
        start:
            mov eax, 5
            add eax, 2
            cli
            hlt
        """)
        lines = disassemble(fetch, 0x100, count=4)
        assert [line.text for line in lines] == [
            "mov eax, 0x5", "add eax, 0x2", "cli", "hlt",
        ]

    def test_raw_bytes_match_length(self):
        fetch, _ = self.fetcher(".org 0\nstart: mov eax, 5\n")
        (line,) = disassemble(fetch, 0, count=1)
        assert len(line.raw) == 6

    def test_invalid_bytes_become_data(self):
        fetch = BytesFetcher(bytes([0xFF, 0x00]), base=0)
        lines = disassemble(fetch, 0, count=2)
        assert lines[0].text == ".byte 0xff"
        assert lines[1].text == "nop"

    def test_end_bound(self):
        fetch, _ = self.fetcher(".org 0\nstart: nop\nnop\nnop\nnop\n")
        lines = disassemble(fetch, 0, count=100, end=2)
        assert len(lines) == 2

    def test_text_format(self):
        fetch, _ = self.fetcher(".org 0x40\nstart: jmp start\n")
        text = disassemble_text(fetch, 0x40, count=1)
        assert "00000040:" in text and "jmp 0x40" in text

    def test_stops_at_buffer_edge(self):
        fetch = BytesFetcher(bytes([0x00]), base=0)
        lines = disassemble(fetch, 0, count=5)
        assert len(lines) == 1


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "quake_demo2" in out
        assert "win98_boot" in out

    def test_run(self, capsys):
        assert main(["run", "gcc", "--threshold", "6"]) == 0
        out = capsys.readouterr().out
        assert "halted    : True" in out
        assert "mol / instr" in out

    def test_run_interp_only(self, capsys):
        assert main(["run", "gcc", "--interp-only"]) == 0
        out = capsys.readouterr().out
        assert "translations                    0" in out

    def test_disasm(self, capsys):
        assert main(["disasm", "gcc", "--count", "5"]) == 0
        out = capsys.readouterr().out
        assert "mov esp," in out

    def test_translations(self, capsys):
        assert main(["translations", "gcc", "--count", "1",
                     "--threshold", "6"]) == 0
        out = capsys.readouterr().out
        assert "commit" in out and "exit" in out

    def test_trace(self, capsys):
        assert main(["trace", "gcc", "--threshold", "6"]) == 0
        out = capsys.readouterr().out
        assert "translate" in out
        assert "event totals (lifetime):" in out

    def test_config_flags_apply(self, capsys):
        assert main(["run", "eqntott", "--no-reorder",
                     "--threshold", "8"]) == 0
        # No reordered atoms should have been emitted: the run completes
        # and reports zero speculative loads.
        out = capsys.readouterr().out
        assert "halted    : True" in out

    def test_unknown_workload_raises(self):
        with pytest.raises(KeyError):
            main(["run", "nosuchworkload"])


class TestSnapshotCLI:
    """PR 5: the snapshot subcommand and offline top/health modes."""

    def _save(self, tmp_path) -> str:
        path = str(tmp_path / "warm.cms-snapshot.json")
        assert main(["snapshot", "save", path, "gcc",
                     "--threshold", "6"]) == 0
        return path

    def test_save_inspect_load(self, tmp_path, capsys):
        path = self._save(tmp_path)
        capsys.readouterr()
        assert main(["snapshot", "inspect", path]) == 0
        out = capsys.readouterr().out
        assert "repro-cms-snapshot" in out
        assert main(["snapshot", "load", path, "gcc",
                     "--threshold", "6"]) == 0
        out = capsys.readouterr().out
        assert "translations loaded" in out

    def test_run_reports_warm_start(self, tmp_path, capsys):
        path = self._save(tmp_path)
        capsys.readouterr()
        assert main(["run", "gcc", "--threshold", "6",
                     "--snapshot-path", path]) == 0
        out = capsys.readouterr().out
        assert "warm start" in out

    def test_inspect_rejects_garbage(self, tmp_path, capsys):
        path = str(tmp_path / "garbage.json")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write("not a snapshot")
        assert main(["snapshot", "inspect", path]) == 2
        assert "snapshot" in capsys.readouterr().err

    def test_top_snapshot_without_obs_degrades(self, tmp_path, capsys):
        path = self._save(tmp_path)  # obs off: no profile tables
        capsys.readouterr()
        assert main(["top", "--snapshot", path]) == 2
        err = capsys.readouterr().err
        assert "observability" in err

    def test_health_snapshot_without_obs_degrades(self, tmp_path,
                                                  capsys):
        path = self._save(tmp_path)
        capsys.readouterr()
        assert main(["health", "--snapshot", path]) == 2
        err = capsys.readouterr().err
        assert "observability" in err

    def test_top_and_health_from_obs_snapshot(self, tmp_path, capsys):
        path = str(tmp_path / "warm.cms-snapshot.json")
        assert main(["snapshot", "save", path, "gcc",
                     "--threshold", "6", "--obs"]) == 0
        capsys.readouterr()
        assert main(["top", "--snapshot", path]) == 0
        assert "entry" in capsys.readouterr().out
        assert main(["health", "--snapshot", path]) == 0
        out = capsys.readouterr().out
        assert "HEALTHY" in out or "CONTAINED" in out

    def test_top_without_source_errors(self, capsys):
        assert main(["top"]) == 2
        assert capsys.readouterr().err

    def test_health_session_without_obs_degrades(self, tmp_path,
                                                 capsys):
        session = str(tmp_path / "session.jsonl")
        with open(session, "w", encoding="utf-8") as fh:
            fh.write('{"v": 1, "kind": "other", "seq": 0}\n')
        assert main(["health", "--session", session]) == 2
        assert capsys.readouterr().err
