"""Tests for the disassembler and the repro-cms CLI."""

from __future__ import annotations

import pytest

from repro.isa.assembler import assemble
from repro.isa.decoder import BytesFetcher
from repro.isa.disasm import disassemble, disassemble_text
from repro.tools.cli import main


class TestDisassembler:
    def fetcher(self, source):
        program = assemble(source)
        return BytesFetcher(program.flatten(), base=0), program

    def test_roundtrip_simple(self):
        fetch, program = self.fetcher("""
        .org 0x100
        start:
            mov eax, 5
            add eax, 2
            cli
            hlt
        """)
        lines = disassemble(fetch, 0x100, count=4)
        assert [line.text for line in lines] == [
            "mov eax, 0x5", "add eax, 0x2", "cli", "hlt",
        ]

    def test_raw_bytes_match_length(self):
        fetch, _ = self.fetcher(".org 0\nstart: mov eax, 5\n")
        (line,) = disassemble(fetch, 0, count=1)
        assert len(line.raw) == 6

    def test_invalid_bytes_become_data(self):
        fetch = BytesFetcher(bytes([0xFF, 0x00]), base=0)
        lines = disassemble(fetch, 0, count=2)
        assert lines[0].text == ".byte 0xff"
        assert lines[1].text == "nop"

    def test_end_bound(self):
        fetch, _ = self.fetcher(".org 0\nstart: nop\nnop\nnop\nnop\n")
        lines = disassemble(fetch, 0, count=100, end=2)
        assert len(lines) == 2

    def test_text_format(self):
        fetch, _ = self.fetcher(".org 0x40\nstart: jmp start\n")
        text = disassemble_text(fetch, 0x40, count=1)
        assert "00000040:" in text and "jmp 0x40" in text

    def test_stops_at_buffer_edge(self):
        fetch = BytesFetcher(bytes([0x00]), base=0)
        lines = disassemble(fetch, 0, count=5)
        assert len(lines) == 1


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "quake_demo2" in out
        assert "win98_boot" in out

    def test_run(self, capsys):
        assert main(["run", "gcc", "--threshold", "6"]) == 0
        out = capsys.readouterr().out
        assert "halted    : True" in out
        assert "mol / instr" in out

    def test_run_interp_only(self, capsys):
        assert main(["run", "gcc", "--interp-only"]) == 0
        out = capsys.readouterr().out
        assert "translations                    0" in out

    def test_disasm(self, capsys):
        assert main(["disasm", "gcc", "--count", "5"]) == 0
        out = capsys.readouterr().out
        assert "mov esp," in out

    def test_translations(self, capsys):
        assert main(["translations", "gcc", "--count", "1",
                     "--threshold", "6"]) == 0
        out = capsys.readouterr().out
        assert "commit" in out and "exit" in out

    def test_trace(self, capsys):
        assert main(["trace", "gcc", "--threshold", "6"]) == 0
        out = capsys.readouterr().out
        assert "translate" in out
        assert "event totals (lifetime):" in out

    def test_config_flags_apply(self, capsys):
        assert main(["run", "eqntott", "--no-reorder",
                     "--threshold", "8"]) == 0
        # No reordered atoms should have been emitted: the run completes
        # and reports zero speculative loads.
        out = capsys.readouterr().out
        assert "halted    : True" in out

    def test_unknown_workload_raises(self):
        with pytest.raises(KeyError):
            main(["run", "nosuchworkload"])
