"""Superblock/trace formation tests (PR 7).

The differential matrix the trace work is pinned by:

* hot loops promote to unrolled traces and the unroll is judged by the
  cost model (molecule density must strictly improve);
* side exits roll back through the ordinary commit machinery, so a
  traced run is bit-identical to the interpreter — including trip
  counts that are not a multiple of the unroll depth;
* shallow loops (trip count below the depth) storm the mispredict
  counter and the split ladder walks the depth back down;
* SMC writes to any copy of a duplicated body invalidate the whole
  trace;
* degraded tiers clamp regions back to single blocks;
* traces survive a persistent-snapshot roundtrip;
* ``tcache.flush()`` drops compiled JIT callables on group-parked
  retired versions, not just on residents (regression).
"""

from __future__ import annotations

from dataclasses import replace

from repro import CMSConfig
from repro.cms.degrade import Tier
from repro.cms.system import CodeMorphingSystem
from repro.isa.assembler import assemble
from repro.machine import Machine

from conftest import assert_equivalent, run_cms

# Low thresholds so the dispatcher promotes within test-sized runs.
FAST = CMSConfig(translation_threshold=4, trace_hot_molecules=64)

# A nested counted loop whose body carries four independent accumulator
# chains: the scheduler can overlap peeled copies, so the unroll judge
# accepts the trace.  The inner loop is entered repeatedly by the outer
# loop — promotion needs dispatcher-visible loop completions.
HOT_NEST = """
        mov edi, 60
        mov eax, 0
        mov ebx, 0
        mov edx, 0
        mov ebp, 0
outer:  mov ecx, 50
inner:  add eax, 1
        add ebx, 3
        add edx, 5
        add ebp, 7
        xor eax, ebx
        sub ecx, 1
        jnz inner
        sub edi, 1
        jnz outer
        hlt
"""

# Same shape, trip count 53: never a multiple of any unroll depth, so
# every pass ends in a mid-copy side exit (guarded rollback path).
RAGGED_NEST = HOT_NEST.replace("mov ecx, 50", "mov ecx, 53")

# Trip count 2: shallower than any accepted unroll depth, so every
# entry exits from an early copy and the split ladder must demote.
SHALLOW_NEST = HOT_NEST.replace("mov ecx, 50", "mov ecx, 2")

# The HOT_NEST body with its first immediate patched every outer
# iteration — SMC landing inside (every copy of) an unrolled body.
SMC_NEST = """
        mov edi, 40
        mov eax, 0
        mov ebx, 0
        mov edx, 0
        mov ebp, 0
outer:  mov esi, patch_site + 2
        store [esi], edi
        mov ecx, 50
inner:
patch_site:
        add eax, 0x11111111
        add ebx, 3
        add edx, 5
        add ebp, 7
        xor eax, ebx
        sub ecx, 1
        jnz inner
        sub edi, 1
        jnz outer
        hlt
"""


def inner_entry(source: str) -> int:
    return assemble(source).symbols["inner"]


def resident_trace(system, entry: int):
    translation = system.tcache.lookup(entry)
    assert translation is not None, f"no translation resident at {entry:#x}"
    return translation


class TestLoopPromotion:
    def test_hot_loop_promotes_to_unrolled_trace(self):
        system, result = run_cms(HOT_NEST, FAST)
        assert result.halted
        stats = system.stats
        assert stats.trace_promotions >= 1
        assert stats.traces_formed >= 1
        trace = resident_trace(system, inner_entry(HOT_NEST))
        assert trace.loop_trace
        assert trace.trace_blocks > 1
        assert trace.policy.unroll_loops
        # Every peeled copy re-enters at the loop head.
        assert set(trace.block_entries) == {trace.entry_eip}

    def test_promotion_is_judged_by_molecule_density(self):
        """The unroll stands only when molecules per guest instruction
        strictly drop; the resident trace must therefore be denser than
        a single body would be (blocks * single-body molecules)."""
        system, _ = run_cms(HOT_NEST, FAST)
        trace = resident_trace(system, inner_entry(HOT_NEST))
        per_instr = trace.num_molecules / trace.guest_instr_count
        body_instrs = trace.guest_instr_count // trace.trace_blocks
        assert body_instrs * trace.trace_blocks == trace.guest_instr_count
        # A rejected unroll would never be resident, so density must
        # beat the single-body fixpoint the judge compared against.
        single, _ = run_cms(HOT_NEST,
                            replace(FAST, trace_formation=False))
        single_t = resident_trace(single, inner_entry(HOT_NEST))
        assert per_instr < (single_t.num_molecules
                            / single_t.guest_instr_count)

    def test_loop_exits_are_tallied_not_mispredicts(self):
        system, _ = run_cms(HOT_NEST, FAST)
        stats = system.stats
        assert stats.trace_loop_exits >= 1
        assert stats.trace_splits == 0

    def test_cold_loop_stays_single_block(self):
        cold = replace(FAST, trace_hot_molecules=1 << 30)
        system, _ = run_cms(HOT_NEST, cold)
        assert system.stats.trace_promotions == 0
        assert resident_trace(system, inner_entry(HOT_NEST)) \
            .trace_blocks == 1


class TestSideExitRollback:
    def test_traced_run_is_bit_identical(self):
        assert_equivalent(HOT_NEST, FAST)

    def test_ragged_trip_count_side_exits_are_bit_identical(self):
        """Trip count 53 never divides the depth: every pass exits from
        a mid-copy guard, exercising rollback + dispatcher re-entry."""
        both = assert_equivalent(RAGGED_NEST, FAST)
        assert both.cms_system.stats.traces_formed >= 1

    def test_deep_traces_are_bit_identical(self):
        deep = replace(FAST, trace_max_blocks=8, trace_min_reach=0.05,
                       trace_hot_molecules=16)
        assert_equivalent(HOT_NEST, deep)
        assert_equivalent(RAGGED_NEST, deep)


class TestMispredictSplit:
    def test_shallow_loop_splits_back_down(self):
        cfg = replace(FAST, trace_hot_molecules=16, trace_min_reach=0.05)
        system, result = run_cms(SHALLOW_NEST, cfg)
        assert result.halted
        stats = system.stats
        assert stats.trace_promotions >= 1
        assert stats.trace_side_exits >= cfg.trace_mispredict_threshold
        assert stats.trace_splits >= 1
        # The ladder converges: the surviving translation is no deeper
        # than where the exits stopped storming.
        trace = resident_trace(system, inner_entry(SHALLOW_NEST))
        assert trace.trace_blocks == 1

    def test_shallow_loop_stays_bit_identical_through_splits(self):
        cfg = replace(FAST, trace_hot_molecules=16, trace_min_reach=0.05)
        assert_equivalent(SHALLOW_NEST, cfg)

    def test_split_is_monotone_in_controller(self):
        cfg = replace(FAST, trace_hot_molecules=16, trace_min_reach=0.05)
        system, _ = run_cms(SHALLOW_NEST, cfg)
        entry = inner_entry(SHALLOW_NEST)
        policy = system.controller.policy_for(entry)
        assert policy.max_blocks == 1
        assert policy.unroll_loops  # sticky: never re-judged


class TestSMCInvalidation:
    def test_patch_inside_unrolled_body_is_bit_identical(self):
        cfg = replace(FAST, trace_hot_molecules=16, stylized_smc=False)
        both = assert_equivalent(SMC_NEST, cfg)
        stats = both.cms_system.stats
        assert stats.trace_promotions >= 1
        assert stats.smc_invalidations >= 1

    def test_invalidation_drops_every_copy(self):
        """The patched address occurs in every peeled copy; one write
        must take down the whole translation, not one block of it."""
        cfg = replace(FAST, trace_hot_molecules=16, stylized_smc=False)
        system, _ = run_cms(SMC_NEST, cfg)
        program = assemble(SMC_NEST)
        patch = program.symbols["patch_site"] + 2
        for translation in system.tcache.translations():
            if translation.trace_blocks > 1 and \
                    translation.overlaps(patch, 4):
                # Any still-resident trace over the patch site must
                # carry the *current* bytes (it was re-formed after the
                # last invalidation, not left stale).
                assert translation.valid


class TestDegradedTierClamp:
    def test_degraded_region_keeps_single_block(self):
        machine = Machine()
        entry = machine.load_source(HOT_NEST)
        system = CodeMorphingSystem(machine, FAST)
        inner = inner_entry(HOT_NEST)
        system.degrade._health(inner).tier = Tier.CONSERVATIVE
        result = system.run(entry)
        assert result.halted
        assert system.stats.traces_formed == 0
        assert resident_trace(system, inner).trace_blocks == 1


class TestSnapshotRoundtrip:
    def test_trace_survives_snapshot_roundtrip(self, tmp_path):
        path = str(tmp_path / "traces.snap")
        cold_cfg = replace(FAST, snapshot_path=path, snapshot_save=True)
        machine = Machine()
        entry = machine.load_source(HOT_NEST)
        cold = CodeMorphingSystem(machine, cold_cfg)
        cold.run(entry)
        cold.shutdown()
        inner = inner_entry(HOT_NEST)
        cold_trace = resident_trace(cold, inner)
        assert cold_trace.trace_blocks > 1

        warm_machine = Machine()
        warm_entry = warm_machine.load_source(HOT_NEST)
        warm = CodeMorphingSystem(warm_machine,
                                  replace(FAST, snapshot_path=path))
        assert warm.stats.snapshot_translations_loaded >= 1
        warm_trace = resident_trace(warm, inner)
        assert warm_trace.loop_trace == cold_trace.loop_trace is True
        assert warm_trace.trace_blocks == cold_trace.trace_blocks
        assert warm_trace.block_entries == cold_trace.block_entries
        # And the warm system still runs the guest correctly.
        warm_result = warm.run(warm_entry)
        assert warm_result.halted


class TestFlushDropsParkedCallables:
    """Regression: ``tcache.flush()`` nulled ``host_code`` on resident
    translations but left compiled JIT callables alive on group-parked
    retired versions — a whole generation of generated functions kept
    reachable by the group table after the cache decided to drop
    everything."""

    def test_flush_drops_parked_host_code(self):
        system, _ = run_cms(HOT_NEST, FAST)
        trace = resident_trace(system, inner_entry(HOT_NEST))
        assert trace.host_code is not None, "JIT should have compiled it"
        # Park it the way SMC version churn does: out of the cache,
        # into the group table, callable still attached.
        system.tcache.remove(trace)
        system.groups.retire(trace)
        assert trace.host_code is not None

        system.tcache.flush()

        parked = [t for versions in
                  system.groups.export_versions().values()
                  for t in versions]
        assert trace in parked, "flush must not drop the version itself"
        assert all(t.host_code is None for t in parked), \
            "flush left compiled callables on group-parked versions"

    def test_flush_drops_resident_host_code(self):
        system, _ = run_cms(HOT_NEST, FAST)
        residents = system.tcache.translations()
        assert any(t.host_code is not None for t in residents)
        system.tcache.flush()
        assert all(t.host_code is None for t in residents)

    def test_evicted_victims_lose_host_code(self):
        system, _ = run_cms(HOT_NEST, FAST)
        victims = system.tcache.evict_cold(fraction=1.0)
        assert victims
        assert all(t.host_code is None for t in victims)
