"""SMC coherence of the decoded-instruction cache.

The decode cache is a miniature code cache (§3.6): it may serve an
entry only while the bytes it was decoded from are unchanged.  These
tests patch code through every write path that reaches RAM — an
interpreter store, a DMA transfer, and a committed translated store —
and assert that the next fetch decodes the *new* bytes, by comparing
the full architectural outcome against a run with the cache disabled
(``seed_performance``).  A wrong result here would be silent staleness:
the guest would keep executing the old instruction.

Also covered: the cache's page-granular invalidation unit behavior and
the shape invariant that the performance dials never change console
output or molecule counts.
"""

from __future__ import annotations

from repro import CMSConfig, CodeMorphingSystem, Machine
from repro.isa.icache import DecodedInstructionCache

from conftest import assert_equivalent

FAST = CMSConfig(translation_threshold=4, fault_threshold=2)


def run_interp(source: str, decode_cache: bool = True,
               max_instructions: int = 2_000_000):
    """Run under the interpreter only, with or without the dials."""
    config = FAST.interpreter_only()
    if not decode_cache:
        config = config.seed_performance()
    machine = Machine()
    entry = machine.load_source(source)
    system = CodeMorphingSystem(machine, config)
    result = system.run(entry, max_instructions=max_instructions)
    return system, result


def assert_same_outcome(source: str) -> CodeMorphingSystem:
    """Cache-on and cache-off interpreter runs must agree exactly."""
    on_system, on_result = run_interp(source, decode_cache=True)
    off_system, off_result = run_interp(source, decode_cache=False)
    assert on_result.halted and off_result.halted
    assert on_result.console_output == off_result.console_output
    assert on_system.state.snapshot() == off_system.state.snapshot()
    assert (on_result.stats.total_molecules(FAST.cost)
            == off_result.stats.total_molecules(FAST.cost))
    return on_system


# ----------------------------------------------------------------------
# Unit behavior
# ----------------------------------------------------------------------


class TestCacheUnit:
    def test_insert_then_lookup(self):
        cache = DecodedInstructionCache()
        cache.insert(0x100, 6, "payload")
        assert cache.entries.get(0x100) == "payload"
        assert len(cache) == 1

    def test_write_on_page_invalidates(self):
        cache = DecodedInstructionCache()
        cache.insert(0x100, 6, "payload")
        cache.on_ram_write(0x104, 4)  # overlaps the cached instruction
        assert 0x100 not in cache.entries
        assert cache.invalidations == 1

    def test_write_anywhere_on_page_invalidates(self):
        # Page granularity: a write to a different byte of the same
        # page still drops the entry (conservative, never stale).
        cache = DecodedInstructionCache()
        cache.insert(0x100, 6, "payload")
        cache.on_ram_write(0xF00, 1)
        assert 0x100 not in cache.entries

    def test_write_other_page_keeps_entry(self):
        cache = DecodedInstructionCache()
        cache.insert(0x100, 6, "payload")
        cache.on_ram_write(0x2000, 4)
        assert cache.entries.get(0x100) == "payload"
        assert cache.invalidations == 0

    def test_page_spanning_instruction_dropped_from_either_side(self):
        # An instruction straddling a page boundary is indexed on both
        # pages; a write to either page must drop it.
        for write_addr in (0xFFF, 0x1000):
            cache = DecodedInstructionCache()
            cache.insert(0xFFE, 6, "straddler")  # covers 0xFFE..0x1003
            cache.on_ram_write(write_addr, 1)
            assert 0xFFE not in cache.entries, hex(write_addr)

    def test_straddling_write_drops_both_pages(self):
        cache = DecodedInstructionCache()
        cache.insert(0x0FF0, 4, "low")
        cache.insert(0x1010, 4, "high")
        cache.on_ram_write(0x0FFE, 4)  # write straddles the boundary
        assert not cache.entries

    def test_capacity_flush(self):
        cache = DecodedInstructionCache(capacity=2)
        cache.insert(0x100, 4, "a")
        cache.insert(0x200, 4, "b")
        cache.insert(0x300, 4, "c")  # over capacity: full flush first
        assert cache.flushes == 1
        assert len(cache) == 1
        assert cache.entries.get(0x300) == "c"

    def test_invalidate_range(self):
        cache = DecodedInstructionCache()
        cache.insert(0x100, 4, "a")
        cache.insert(0x2000, 4, "b")
        cache.invalidate_range(0x0, 0x1800)
        assert 0x100 not in cache.entries
        assert cache.entries.get(0x2000) == "b"
        cache.invalidate_range(0x2000, 0)  # empty range is a no-op
        assert cache.entries.get(0x2000) == "b"


# ----------------------------------------------------------------------
# Coherence path (a): interpreter stores
# ----------------------------------------------------------------------


# The stylized-SMC kernel: the immediate of an instruction in a hot
# loop is rewritten before each entry.  With a stale decode cache the
# checksum in esi silently degenerates, so exact state equality against
# the cache-off run proves the next fetch decoded the new bytes.
PATCH_IMMEDIATE_PROGRAM = """
start:
    mov edi, 0
    mov esi, 0
frame:
    mov eax, edi
    imul eax, 17
    add eax, 0x01010101
    mov ebx, patch_site + 2   ; the imm32 field of the add below
    store [ebx], eax
    mov ecx, 0
inner:
patch_site:
    add esi, 0x11111111       ; immediate is rewritten every frame
    rol esi, 1
    inc ecx
    cmp ecx, 30
    jl inner
    inc edi
    cmp edi, 40
    jl frame
    cli
    hlt
"""

# The opcode byte itself alternates between add and xor register forms.
PATCH_OPCODE_PROGRAM = """
start:
    mov edi, 0
    mov esi, 1
frame:
    mov eax, 0x20             ; ADD_RR
    test edi, 1
    jz patch
    mov eax, 0x24             ; XOR_RR
patch:
    mov ebx, mutating
    storeb [ebx], eax
    mov ecx, 0
inner:
mutating:
    add esi, edx
    rol esi, 1
    inc ecx
    cmp ecx, 25
    jl inner
    mov edx, esi
    and edx, 0xFF
    inc edi
    cmp edi, 30
    jl frame
    cli
    hlt
"""


class TestInterpreterStoreCoherence:
    def test_patched_immediate_next_fetch_sees_new_bytes(self):
        system = assert_same_outcome(PATCH_IMMEDIATE_PROGRAM)
        icache = system.icache
        assert icache is not None
        assert icache.hits > 0, "cache never served a fetch"
        assert icache.invalidations > 0, "patches never invalidated"

    def test_patched_opcode_next_fetch_sees_new_bytes(self):
        system = assert_same_outcome(PATCH_OPCODE_PROGRAM)
        assert system.icache.invalidations > 0


# ----------------------------------------------------------------------
# Coherence path (b): DMA writes
# ----------------------------------------------------------------------


DMA_REWRITE_PROGRAM = """
start:
    mov esi, 0
    mov edi, 0
warm:
    mov esp, 0x8000
    call routine
    inc edi
    cmp edi, 30
    jl warm
    ; DMA the 'staging' bytes over 'routine' (adds 7 instead of 3)
    mov eax, staging
    out 0x50            ; DMA source
    mov eax, routine
    out 0x51            ; DMA destination
    mov eax, routine_len
    out 0x52            ; DMA length
    mov eax, 1
    out 0x53            ; start
wait:
    in 0x53
    test eax, eax
    jnz wait
    mov edi, 0
rerun:
    call routine
    inc edi
    cmp edi, 30
    jl rerun
    cli
    hlt
routine:
    add esi, 3
    ret
routine_end:
routine_len = routine_end - routine
staging:
    add esi, 7
    ret
"""


class TestDMACoherence:
    def test_dma_rewrite_next_fetch_sees_new_bytes(self):
        system = assert_same_outcome(DMA_REWRITE_PROGRAM)
        # esi = 30*3 + 30*7: wrong unless the post-DMA fetches decoded
        # the transferred bytes.
        assert system.state.get_reg(6) == 300
        assert system.icache.invalidations > 0
        assert system.machine.dma.transfers_completed >= 1


# ----------------------------------------------------------------------
# Coherence path (c): committed translated stores
# ----------------------------------------------------------------------


class TestTranslatedStoreCoherence:
    def test_translated_patcher_invalidates_decode_cache(self):
        # Under the translating config the patcher loop becomes a
        # translation; its store reaches RAM via the store-buffer
        # commit.  The interpreter (warm-up and recovery) keeps fetching
        # through the decode cache, which must observe those commits.
        both = assert_equivalent(PATCH_IMMEDIATE_PROGRAM, config=FAST)
        system = both.cms_system
        assert system.stats.translations_made >= 1
        icache = system.icache
        assert icache is not None
        assert icache.hits > 0
        assert icache.invalidations > 0

    def test_translated_opcode_patcher(self):
        both = assert_equivalent(PATCH_OPCODE_PROGRAM, config=FAST)
        system = both.cms_system
        assert system.stats.translations_made >= 1
        assert system.icache.invalidations > 0


# ----------------------------------------------------------------------
# Shape invariance: the dials never change what is computed
# ----------------------------------------------------------------------


class TestDialsInvisible:
    def test_workload_identical_with_dials_off(self):
        from repro.workloads import ALL_WORKLOADS, run_workload

        config = CMSConfig(translation_threshold=10)
        for name in ("dos_boot", "compress"):
            workload = ALL_WORKLOADS[name]
            on = run_workload(workload, config)
            off = run_workload(workload, config.seed_performance())
            assert on.console_output == off.console_output, name
            assert on.total_molecules == off.total_molecules, name
            assert on.guest_instructions == off.guest_instructions, name
