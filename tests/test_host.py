"""Tests for the VLIW host: registers, store buffer, alias hardware,
atoms, commit/rollback, and the speculation fault checks."""

from __future__ import annotations

import pytest

from repro.host.alias import AliasHardware
from repro.host.atoms import AluOp, Atom, AtomKind
from repro.host.cpu import ExitKind, HostCPU, _alu
from repro.host.faults import HostFaultError, HostFaultKind
from repro.host.molecule import Molecule, Slot
from repro.host.registers import (
    HostBackedGuestState,
    HostRegisterFile,
    R_EIP,
    R_IF,
    TEMP_BASE,
)
from repro.host.store_buffer import GatedStoreBuffer, StoreBufferOverflow
from repro.machine import CONSOLE_MMIO_BASE, Machine
from repro.memory.finegrain import FineGrainCache
from repro.memory.protection import ProtectionMap, StoreClass


class TestRegisterFile:
    def test_commit_copies_working_to_shadow(self):
        rf = HostRegisterFile()
        rf.set(5, 99)
        assert rf.shadow[5] == 0
        rf.commit()
        assert rf.shadow[5] == 99

    def test_rollback_restores(self):
        rf = HostRegisterFile()
        rf.set(5, 1)
        rf.commit()
        rf.set(5, 2)
        rf.rollback()
        assert rf.get(5) == 1

    def test_values_masked_to_32_bits(self):
        rf = HostRegisterFile()
        rf.set(0, 0x1_0000_0001)
        assert rf.get(0) == 1

    def test_in_sync(self):
        rf = HostRegisterFile()
        assert rf.in_sync()
        rf.set(0, 1)
        assert not rf.in_sync()
        rf.commit()
        assert rf.in_sync()


class TestHostBackedState:
    def test_writes_hit_both_copies(self):
        rf = HostRegisterFile()
        state = HostBackedGuestState(rf)
        state.set_reg(3, 77)
        assert rf.working[3] == 77 and rf.shadow[3] == 77

    def test_eip_and_flags(self):
        rf = HostRegisterFile()
        state = HostBackedGuestState(rf)
        state.eip = 0x1234
        state.set_flag(0, 1)  # CF
        assert rf.shadow[R_EIP] == 0x1234
        assert state.eflags & 1

    def test_eflags_pack_unpack(self):
        rf = HostRegisterFile()
        state = HostBackedGuestState(rf)
        state.eflags = 0xFFFFFFFF
        assert state.get_flag(0) == 1
        state.eflags = 0
        assert state.get_flag(0) == 0


class TestStoreBuffer:
    def test_gating_and_drain(self):
        machine = Machine()
        buffer = GatedStoreBuffer()
        buffer.write(0x100, 0xAB, 1, is_io=False)
        assert machine.bus.read(0x100, 1) == 0  # not yet visible
        buffer.drain(machine.bus)
        assert machine.bus.read(0x100, 1) == 0xAB

    def test_drop_discards(self):
        machine = Machine()
        buffer = GatedStoreBuffer()
        buffer.write(0x100, 0xAB, 1, is_io=False)
        buffer.drop()
        buffer.drain(machine.bus)
        assert machine.bus.read(0x100, 1) == 0

    def test_forwarding_exact(self):
        buffer = GatedStoreBuffer()
        buffer.write(0x100, 0x11223344, 4, is_io=False)
        assert buffer.forward(0x100, 4, 0) == 0x11223344

    def test_forwarding_partial_overlap(self):
        buffer = GatedStoreBuffer()
        buffer.write(0x102, 0xAB, 1, is_io=False)
        merged = buffer.forward(0x100, 4, 0x11223344)
        assert merged == 0x11AB3344

    def test_later_store_wins(self):
        buffer = GatedStoreBuffer()
        buffer.write(0x100, 0x11, 1, is_io=False)
        buffer.write(0x100, 0x22, 1, is_io=False)
        assert buffer.forward(0x100, 1, 0) == 0x22

    def test_io_stores_not_forwarded(self):
        buffer = GatedStoreBuffer()
        buffer.write(0x100, 0x55, 1, is_io=True)
        assert buffer.forward(0x100, 1, 0) == 0

    def test_drain_order_preserved(self):
        machine = Machine()
        buffer = GatedStoreBuffer()
        buffer.write(0x100, 1, 4, is_io=False)
        buffer.write(0x100, 2, 4, is_io=False)
        buffer.drain(machine.bus)
        assert machine.bus.read(0x100, 4) == 2

    def test_capacity_overflow(self):
        buffer = GatedStoreBuffer(capacity=2)
        buffer.write(0, 0, 1, is_io=False)
        buffer.write(1, 0, 1, is_io=False)
        with pytest.raises(StoreBufferOverflow):
            buffer.write(2, 0, 1, is_io=False)


class TestAliasHardware:
    def test_overlap_detected(self):
        alias = AliasHardware(4)
        alias.record(0, 0x100, 4)
        assert alias.check(0b1, 0x102, 4) == 0

    def test_disjoint_passes(self):
        alias = AliasHardware(4)
        alias.record(0, 0x100, 4)
        assert alias.check(0b1, 0x104, 4) is None

    def test_mask_selects_entries(self):
        alias = AliasHardware(4)
        alias.record(0, 0x100, 4)
        alias.record(1, 0x200, 4)
        assert alias.check(0b10, 0x100, 4) is None  # entry 0 not checked
        assert alias.check(0b10, 0x200, 4) == 1

    def test_clear(self):
        alias = AliasHardware(4)
        alias.record(0, 0x100, 4)
        alias.clear()
        assert alias.check(0b1, 0x100, 4) is None


class TestAluOps:
    def test_basic(self):
        assert _alu(AluOp.ADD, 2, 3) == 5
        assert _alu(AluOp.SUB, 2, 3) == 0xFFFFFFFF
        assert _alu(AluOp.SHL, 1, 33) == 2  # count masked
        assert _alu(AluOp.SAR, 0x80000000, 1) == 0xC0000000
        assert _alu(AluOp.UMULH, 0x80000000, 2) == 1
        assert _alu(AluOp.SMULH, 0xFFFFFFFF, 2) == 0xFFFFFFFF  # -1*2 hi
        assert _alu(AluOp.CMPLTS, 0xFFFFFFFF, 0) == 1  # -1 < 0
        assert _alu(AluOp.CMPLTU, 0xFFFFFFFF, 0) == 0
        assert _alu(AluOp.CMPLEU, 5, 5) == 1
        assert _alu(AluOp.CMPLES, 0x80000000, 0) == 1


def _make_cpu():
    machine = Machine()
    protection = ProtectionMap(FineGrainCache(4))
    cpu = HostCPU(machine, protection)
    return machine, protection, cpu


class _FakeTranslation:
    """Minimal translation for direct host testing."""

    prologue_armed = False  # the commit path consults this (§3.6.2)

    def __init__(self, molecules, labels=None, entry_label="body"):
        self.molecules = molecules
        self.labels = labels or {"body": 0}
        self.entry_label = entry_label
        self.executions_molecules = 0
        self.entries = 0


def _mol(*atoms):
    molecule = Molecule()
    for atom in atoms:
        molecule.add(atom)
    return molecule


def _exit_translation(*body_molecules, target=0x1000):
    mols = list(body_molecules)
    mols.append(_mol(Atom(AtomKind.MOVI, rd=R_EIP, imm=target),
                     Atom(AtomKind.COMMIT)))
    mols.append(_mol(Atom(AtomKind.EXIT, exit_target=target)))
    return _FakeTranslation(mols)


class TestHostExecution:
    def test_simple_alu_and_exit(self):
        machine, _, cpu = _make_cpu()
        t = _exit_translation(
            _mol(Atom(AtomKind.MOVI, rd=TEMP_BASE, imm=5),
                 Atom(AtomKind.MOVI, rd=TEMP_BASE + 1, imm=7)),
            _mol(Atom(AtomKind.ALU, aluop=AluOp.ADD, rd=0, rs1=TEMP_BASE,
                      rs2=TEMP_BASE + 1)),
        )
        info = cpu.run(t)
        assert info.kind is ExitKind.EXITED
        assert cpu.regs.shadow[0] == 12
        assert info.next_eip == 0x1000

    def test_store_gated_until_commit(self):
        machine, _, cpu = _make_cpu()
        t = _exit_translation(
            _mol(Atom(AtomKind.MOVI, rd=TEMP_BASE, imm=0x2000),
                 Atom(AtomKind.MOVI, rd=TEMP_BASE + 1, imm=0xAA)),
            _mol(Atom(AtomKind.ST, rs1=TEMP_BASE, rs2=TEMP_BASE + 1,
                      disp=0, size=4)),
        )
        cpu.run(t)
        assert machine.bus.read(0x2000, 4) == 0xAA

    def test_rollback_discards_stores_and_registers(self):
        machine, _, cpu = _make_cpu()
        # A translation that stores then FAILs before commit.
        t = _FakeTranslation([
            _mol(Atom(AtomKind.MOVI, rd=TEMP_BASE, imm=0x2000),
                 Atom(AtomKind.MOVI, rd=0, imm=123)),
            _mol(Atom(AtomKind.ST, rs1=TEMP_BASE, rs2=0, disp=0, size=4)),
            _mol(Atom(AtomKind.FAIL, fail_reason="test")),
        ])
        info = cpu.run(t)
        assert info.kind is ExitKind.FAULT
        cpu.rollback()
        assert machine.bus.read(0x2000, 4) == 0
        assert cpu.regs.working[0] == 0

    def test_branching(self):
        machine, _, cpu = _make_cpu()
        mols = [
            _mol(Atom(AtomKind.MOVI, rd=TEMP_BASE, imm=0)),
            _mol(Atom(AtomKind.BRZ, rs1=TEMP_BASE, label="skip")),
            _mol(Atom(AtomKind.MOVI, rd=0, imm=1)),  # skipped
            _mol(Atom(AtomKind.MOVI, rd=1, imm=2)),  # "skip" target
            _mol(Atom(AtomKind.MOVI, rd=R_EIP, imm=0),
                 Atom(AtomKind.COMMIT)),
            _mol(Atom(AtomKind.EXIT, exit_target=0)),
        ]
        t = _FakeTranslation(mols, labels={"body": 0, "skip": 3})
        cpu.run(t)
        assert cpu.regs.shadow[0] == 0
        assert cpu.regs.shadow[1] == 2

    def test_reordered_load_from_mmio_faults(self):
        machine, _, cpu = _make_cpu()
        t = _exit_translation(
            _mol(Atom(AtomKind.MOVI, rd=TEMP_BASE, imm=CONSOLE_MMIO_BASE)),
            _mol(Atom(AtomKind.LD, rd=0, rs1=TEMP_BASE, disp=0, size=4,
                      reordered=True, guest_addr=0x1234)),
        )
        info = cpu.run(t)
        assert info.kind is ExitKind.FAULT
        assert info.fault.kind is HostFaultKind.SPEC_MMIO
        assert info.fault.guest_addr == 0x1234

    def test_unordered_mmio_load_without_io_ok_faults(self):
        machine, _, cpu = _make_cpu()
        t = _exit_translation(
            _mol(Atom(AtomKind.MOVI, rd=TEMP_BASE, imm=CONSOLE_MMIO_BASE)),
            _mol(Atom(AtomKind.LD, rd=0, rs1=TEMP_BASE, disp=0, size=4)),
        )
        info = cpu.run(t)
        assert info.kind is ExitKind.FAULT
        assert info.fault.kind is HostFaultKind.SPEC_MMIO

    def test_io_ok_mmio_store_reaches_device_at_commit(self):
        machine, _, cpu = _make_cpu()
        t = _exit_translation(
            _mol(Atom(AtomKind.MOVI, rd=TEMP_BASE, imm=CONSOLE_MMIO_BASE),
                 Atom(AtomKind.MOVI, rd=TEMP_BASE + 1, imm=ord("q"))),
            _mol(Atom(AtomKind.ST, rs1=TEMP_BASE, rs2=TEMP_BASE + 1,
                      disp=0, size=1, io_ok=True)),
        )
        info = cpu.run(t)
        assert info.kind is ExitKind.EXITED
        assert machine.console.output == "q"

    def test_alias_violation_faults(self):
        machine, _, cpu = _make_cpu()
        t = _exit_translation(
            _mol(Atom(AtomKind.MOVI, rd=TEMP_BASE, imm=0x3000),
                 Atom(AtomKind.MOVI, rd=TEMP_BASE + 1, imm=7)),
            # Speculatively hoisted load protects its address...
            _mol(Atom(AtomKind.LD, rd=0, rs1=TEMP_BASE, disp=0, size=4,
                      reordered=True, alias_entry=0)),
            # ... and the store it crossed overlaps it.
            _mol(Atom(AtomKind.ST, rs1=TEMP_BASE, rs2=TEMP_BASE + 1,
                      disp=0, size=4, alias_check=0b1)),
        )
        info = cpu.run(t)
        assert info.kind is ExitKind.FAULT
        assert info.fault.kind is HostFaultKind.ALIAS_VIOLATION

    def test_alias_disjoint_no_fault(self):
        machine, _, cpu = _make_cpu()
        t = _exit_translation(
            _mol(Atom(AtomKind.MOVI, rd=TEMP_BASE, imm=0x3000),
                 Atom(AtomKind.MOVI, rd=TEMP_BASE + 1, imm=7)),
            _mol(Atom(AtomKind.LD, rd=0, rs1=TEMP_BASE, disp=0, size=4,
                      reordered=True, alias_entry=0)),
            _mol(Atom(AtomKind.ST, rs1=TEMP_BASE, rs2=TEMP_BASE + 1,
                      disp=16, size=4, alias_check=0b1)),
        )
        info = cpu.run(t)
        assert info.kind is ExitKind.EXITED

    def test_protection_fault_on_protected_store(self):
        machine, protection, cpu = _make_cpu()
        protection.protect_range(0x3000, 16)
        protection.handle_miss(0x3)
        t = _exit_translation(
            _mol(Atom(AtomKind.MOVI, rd=TEMP_BASE, imm=0x3004),
                 Atom(AtomKind.MOVI, rd=TEMP_BASE + 1, imm=7)),
            _mol(Atom(AtomKind.ST, rs1=TEMP_BASE, rs2=TEMP_BASE + 1,
                      disp=0, size=4)),
        )
        info = cpu.run(t)
        assert info.kind is ExitKind.FAULT
        assert info.fault.kind is HostFaultKind.PROTECTION
        assert info.fault.store_class is StoreClass.FAULT_CODE

    def test_divide_by_zero_raises_guest_fault(self):
        machine, _, cpu = _make_cpu()
        t = _exit_translation(
            _mol(Atom(AtomKind.MOVI, rd=TEMP_BASE, imm=10),
                 Atom(AtomKind.MOVI, rd=TEMP_BASE + 1, imm=0)),
            _mol(Atom(AtomKind.DIVU, rd=0, rd2=2, rs1=TEMP_BASE,
                      rs2=TEMP_BASE + 1, rs3=TEMP_BASE + 1,
                      guest_addr=0x1010)),
        )
        info = cpu.run(t)
        assert info.kind is ExitKind.FAULT
        assert info.fault.kind is HostFaultKind.GUEST_FAULT
        assert info.fault.guest_exception.vector == 0

    def test_interrupt_exit_when_pending_and_if_set(self):
        machine, _, cpu = _make_cpu()
        cpu.regs.working[R_IF] = 1
        cpu.regs.commit()
        machine.pic.request_irq(0)
        t = _exit_translation(
            _mol(Atom(AtomKind.MOVI, rd=TEMP_BASE, imm=1)),
        )
        info = cpu.run(t)
        assert info.kind is ExitKind.INTERRUPT
        assert cpu.interrupt_exits == 1

    def test_no_interrupt_exit_when_if_clear(self):
        machine, _, cpu = _make_cpu()
        machine.pic.request_irq(0)
        t = _exit_translation(
            _mol(Atom(AtomKind.MOVI, rd=TEMP_BASE, imm=1)),
        )
        info = cpu.run(t)
        assert info.kind is ExitKind.EXITED

    def test_port_io_suppresses_interrupt_until_commit(self):
        machine, _, cpu = _make_cpu()
        cpu.regs.working[R_IF] = 1
        cpu.regs.commit()
        # The PORT_OUT raises IRQ pressure indirectly: request before run
        # but after the port op executes we must reach the commit first.
        t = _FakeTranslation([
            _mol(Atom(AtomKind.MOVI, rd=TEMP_BASE, imm=ord("A"))),
            _mol(Atom(AtomKind.PORT_OUT, rs1=TEMP_BASE, imm=0xE9)),
            _mol(Atom(AtomKind.MOVI, rd=R_EIP, imm=0x1000),
                 Atom(AtomKind.COMMIT)),
            _mol(Atom(AtomKind.EXIT, exit_target=0x1000)),
        ])
        # Make an IRQ pending *between* molecules by pre-requesting it;
        # the CPU must not interrupt-exit between PORT_OUT and COMMIT.
        original_execute = cpu._execute_atom

        def inject(atom):
            original_execute(atom)
            if atom.kind is AtomKind.PORT_OUT:
                machine.pic.request_irq(0)

        cpu._execute_atom = inject
        info = cpu.run(t)
        # Port output committed exactly once despite the pending IRQ.
        assert machine.console.output == "A"
        assert info.kind in (ExitKind.EXITED, ExitKind.INTERRUPT)
        assert cpu.regs.shadow[R_EIP] == 0x1000

    def test_fuel_exhaustion(self):
        machine, _, cpu = _make_cpu()
        mols = [
            _mol(Atom(AtomKind.MOVI, rd=TEMP_BASE, imm=1)),
            _mol(Atom(AtomKind.BR, label="body")),
        ]
        t = _FakeTranslation(mols)
        info = cpu.run(t, fuel=100)
        assert info.kind is ExitKind.FUEL
        assert info.molecules >= 100

    def test_chaining_followed(self):
        machine, _, cpu = _make_cpu()
        t2 = _exit_translation(
            _mol(Atom(AtomKind.MOVI, rd=1, imm=42)), target=0x2000
        )
        t1 = _exit_translation(
            _mol(Atom(AtomKind.MOVI, rd=0, imm=7)), target=0x1000
        )
        exit_atom = t1.molecules[-1].atoms[0]
        exit_atom.chained_translation = t2
        info = cpu.run(t1)
        assert info.chains_followed == 1
        assert cpu.regs.shadow[0] == 7
        assert cpu.regs.shadow[1] == 42
        assert info.next_eip == 0x2000

    def test_commit_ticks_devices(self):
        machine, _, cpu = _make_cpu()
        t = _exit_translation(
            _mol(Atom(AtomKind.MOVI, rd=TEMP_BASE, imm=1)),
        )
        # Give the exit commit a retire count.
        for molecule in t.molecules:
            for atom in molecule.atoms:
                if atom.kind is AtomKind.COMMIT:
                    atom.instr_count = 5
        cpu.run(t)
        assert machine.instructions_retired == 5


class TestMolecule:
    def test_slot_assignment(self):
        molecule = Molecule()
        molecule.add(Atom(AtomKind.ALU, aluop=AluOp.ADD, rd=0, rs1=1, rs2=2))
        molecule.add(Atom(AtomKind.ALU, aluop=AluOp.SUB, rd=3, rs1=4, rs2=5))
        molecule.add(Atom(AtomKind.LD, rd=6, rs1=7))
        molecule.add(Atom(AtomKind.BR, label="x"))
        assert set(molecule.slots) == {Slot.ALU0, Slot.ALU1, Slot.MEM,
                                       Slot.BR}

    def test_third_alu_rejected(self):
        molecule = Molecule()
        for i in range(2):
            molecule.add(Atom(AtomKind.ALU, aluop=AluOp.ADD, rd=i, rs1=0,
                              rs2=0))
        assert molecule.can_add(
            Atom(AtomKind.ALU, aluop=AluOp.ADD, rd=9, rs1=0, rs2=0)
        ) is None

    def test_movi_overflows_to_fpm(self):
        molecule = Molecule()
        for i in range(2):
            molecule.add(Atom(AtomKind.ALU, aluop=AluOp.ADD, rd=i, rs1=0,
                              rs2=0))
        slot = molecule.can_add(Atom(AtomKind.MOVI, rd=9, imm=1))
        assert slot is Slot.FPM

    def test_max_four_atoms(self):
        molecule = Molecule()
        molecule.add(Atom(AtomKind.ALU, aluop=AluOp.ADD, rd=0, rs1=0, rs2=0))
        molecule.add(Atom(AtomKind.ALU, aluop=AluOp.ADD, rd=1, rs1=0, rs2=0))
        molecule.add(Atom(AtomKind.LD, rd=2, rs1=0))
        molecule.add(Atom(AtomKind.BR, label="x"))
        assert molecule.can_add(Atom(AtomKind.MOVI, rd=3, imm=0)) is None
