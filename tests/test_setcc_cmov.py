"""Tests for the SETcc and CMOVcc instruction families."""

from __future__ import annotations

import pytest

from repro import CMSConfig
from repro.isa.assembler import assemble
from repro.isa.decoder import BytesFetcher, decode
from repro.isa.opcodes import Op, op_info

from conftest import assert_equivalent
from test_interpreter import run_program

FAST = CMSConfig(translation_threshold=4)


class TestEncoding:
    def test_setcc_block_contiguous(self):
        for value in range(Op.SETO, Op.SETG + 1):
            info = op_info(Op(value))
            assert info.mnemonic.startswith("set")
            assert info.flags_read != 0

    def test_cmovcc_block_contiguous(self):
        for value in range(Op.CMOVO, Op.CMOVG + 1):
            info = op_info(Op(value))
            assert info.mnemonic.startswith("cmov")

    def test_assembler_aliases(self):
        program = assemble("start: setz eax\ncmovnz ebx, ecx\n")
        fetch = BytesFetcher(program.flatten(), base=0)
        first = decode(fetch, program.entry)
        assert first.op is Op.SETE
        second = decode(fetch, first.next_addr)
        assert second.op is Op.CMOVNE
        assert (second.r1, second.r2) == (3, 1)

    def test_carry_aliases(self):
        # The fuzz generator emits the carry spellings; they must map to
        # the below/above-or-equal opcodes like the setcc family does.
        program = assemble("start: setc eax\nsetnc edx\n"
                           "cmovc ebx, ecx\ncmovnc esi, edi\n")
        fetch = BytesFetcher(program.flatten(), base=0)
        ops = []
        addr = program.entry
        for _ in range(4):
            instr = decode(fetch, addr)
            ops.append(instr.op)
            addr = instr.next_addr
        assert ops == [Op.SETB, Op.SETAE, Op.CMOVB, Op.CMOVAE]

    def test_setcc_writes_register(self):
        program = assemble("start: sete edi\n")
        fetch = BytesFetcher(program.flatten(), base=0)
        instr = decode(fetch, 0)
        assert 7 in instr.regs_written()


class TestInterpreterSemantics:
    def test_sete_after_equal_cmp(self):
        _, state, _ = run_program("""
        start:
            mov eax, 5
            cmp eax, 5
            sete ebx
            setne ecx
            cli
            hlt
        """)
        assert state.get_reg(3) == 1
        assert state.get_reg(1) == 0

    def test_signed_unsigned_setcc(self):
        _, state, _ = run_program("""
        start:
            mov eax, 0xFFFFFFFF   ; -1 signed / max unsigned
            cmp eax, 1
            setl ebx              ; signed: -1 < 1
            setb ecx              ; unsigned: max !< 1
            seta edx              ; unsigned: max > 1
            cli
            hlt
        """)
        assert state.get_reg(3) == 1
        assert state.get_reg(1) == 0
        assert state.get_reg(2) == 1

    def test_setcc_overwrites_whole_register(self):
        _, state, _ = run_program("""
        start:
            mov ebx, 0xDEADBEEF
            cmp eax, eax
            sete ebx
            cli
            hlt
        """)
        assert state.get_reg(3) == 1

    def test_cmov_taken_and_not_taken(self):
        _, state, _ = run_program("""
        start:
            mov eax, 1
            mov ebx, 100
            mov ecx, 200
            cmp eax, 1
            cmove ebx, ecx        ; taken: ebx = 200
            cmovne ecx, eax       ; not taken: ecx stays 200
            cli
            hlt
        """)
        assert state.get_reg(3) == 200
        assert state.get_reg(1) == 200

    def test_setp_parity(self):
        _, state, _ = run_program("""
        start:
            mov eax, 3            ; two bits: even parity
            test eax, eax
            setp ebx
            mov eax, 1            ; one bit: odd parity
            test eax, eax
            setp ecx
            cli
            hlt
        """)
        assert state.get_reg(3) == 1
        assert state.get_reg(1) == 0


class TestTranslationEquivalence:
    def test_branchless_abs_and_minmax(self):
        assert_equivalent("""
        start:
            mov esi, 0
            mov ecx, 0
        loop:
            mov eax, ecx
            sub eax, 150          ; signed value around zero
            ; branchless abs: edx = (eax < 0) ? -eax : eax
            mov edx, eax
            neg edx
            cmp eax, 0
            cmovl eax, edx
            add esi, eax
            ; branchless max against 77
            mov ebx, 77
            cmp eax, ebx
            cmovg ebx, eax
            xor esi, ebx
            rol esi, 1
            inc ecx
            cmp ecx, 300
            jne loop
            cli
            hlt
        """, config=FAST)

    def test_setcc_accumulation(self):
        assert_equivalent("""
        start:
            mov esi, 0
            mov ecx, 0
        loop:
            mov eax, ecx
            and eax, 0xFF
            cmp eax, 128
            setae ebx             ; count values >= 128 (unsigned)
            add esi, ebx
            cmp eax, 128
            setge edx             ; same, signed
            add esi, edx
            sete ebp              ; exactly 128
            add esi, ebp
            inc ecx
            cmp ecx, 600
            jne loop
            cli
            hlt
        """, config=FAST)

    def test_cmov_chain_flags_preserved(self):
        assert_equivalent("""
        start:
            mov esi, 0
            mov ecx, 0
        loop:
            mov eax, ecx
            imul eax, 0x343FD
            add eax, 0x269EC3
            cmp eax, 0
            ; a chain of cmovs all reading the same flags
            mov ebx, 1
            mov edx, 2
            cmovs ebx, edx
            cmovns edx, ebx
            setp ebp
            add esi, ebx
            xor esi, edx
            add esi, ebp
            rol esi, 3
            inc ecx
            cmp ecx, 400
            jne loop
            cli
            hlt
        """, config=FAST)
