"""Tests for the two-pass assembler."""

from __future__ import annotations

import pytest

from repro.isa.assembler import AssemblyError, assemble
from repro.isa.decoder import BytesFetcher, decode
from repro.isa.opcodes import Op


def decode_at(program, addr):
    return decode(BytesFetcher(program.flatten(), base=0), addr)


class TestLabelsAndOrg:
    def test_entry_defaults_to_start(self):
        program = assemble("nop\nstart:\n  hlt\n")
        assert program.entry == program.symbols["start"]

    def test_org_moves_location(self):
        program = assemble(".org 0x2000\nstart: nop\n")
        assert program.symbols["start"] == 0x2000

    def test_explicit_entry(self):
        program = assemble(".entry main\nmain: nop\n")
        assert program.entry == program.symbols["main"]

    def test_duplicate_label_rejected(self):
        with pytest.raises(AssemblyError):
            assemble("a: nop\na: nop\n")

    def test_label_and_instruction_same_line(self):
        program = assemble("start: mov eax, 1\n")
        instr = decode_at(program, program.entry)
        assert instr.op is Op.MOV_RI

    def test_multiple_segments(self):
        program = assemble(".org 0x100\nnop\n.org 0x300\nhlt\n")
        assert len(program.segments) == 2
        image = program.flatten()
        assert image[0x100] == Op.NOP
        assert image[0x300] == Op.HLT


class TestExpressions:
    def test_arithmetic(self):
        program = assemble("X = 10\nY = X + 5\nstart: mov eax, Y - 1\n")
        instr = decode_at(program, program.entry)
        assert instr.imm == 14

    def test_hex_binary_char(self):
        program = assemble("start: mov eax, 0x10 + 0b11 + 'A'\n")
        instr = decode_at(program, program.entry)
        assert instr.imm == 0x10 + 3 + 65

    def test_forward_reference(self):
        program = assemble("start: mov eax, later\nlater: hlt\n")
        instr = decode_at(program, program.entry)
        assert instr.imm == program.symbols["later"]

    def test_undefined_symbol(self):
        with pytest.raises(AssemblyError):
            assemble("start: mov eax, nosuch\n")


class TestDirectives:
    def test_word_data(self):
        program = assemble(".org 0\nd: .word 1, 2, 0xFFFFFFFF\n")
        image = program.flatten()
        assert image[0:4] == (1).to_bytes(4, "little")
        assert image[8:12] == b"\xff\xff\xff\xff"

    def test_byte_and_string(self):
        program = assemble('.org 0\n.byte 1, "AB", 3\n')
        assert bytes(program.flatten()[0:4]) == bytes([1, 65, 66, 3])

    def test_asciz_appends_nul(self):
        program = assemble('.org 0\n.asciz "hi"\n')
        assert bytes(program.flatten()[0:3]) == b"hi\x00"

    def test_space_with_fill(self):
        program = assemble(".org 0\n.space 4, 0xAA\n")
        assert bytes(program.flatten()[0:4]) == b"\xaa" * 4

    def test_align(self):
        program = assemble(".org 1\nnop\n.align 8\nx: hlt\n")
        assert program.symbols["x"] % 8 == 0

    def test_align_requires_power_of_two(self):
        with pytest.raises(AssemblyError):
            assemble(".align 3\n")

    def test_escape_sequences(self):
        program = assemble('.org 0\n.ascii "a\\n\\x41"\n')
        assert bytes(program.flatten()[0:3]) == b"a\nA"


class TestInstructions:
    def test_mov_forms(self):
        program = assemble("start: mov eax, ebx\nmov ecx, 7\n")
        first = decode_at(program, program.entry)
        assert first.op is Op.MOV_RR and first.r1 == 0 and first.r2 == 3
        second = decode_at(program, first.next_addr)
        assert second.op is Op.MOV_RI and second.imm == 7

    def test_memory_operand_forms(self):
        src = """
        start:
            load eax, [ebx]
            load eax, [ebx+4]
            load eax, [ebx-4]
            load eax, [ebx+ecx*2]
            load eax, [ebx+ecx*4+16]
            storeb [esi+1], al_reg
        al_reg = 0
        """
        # "al_reg" is a symbol, not a register: storeb needs a register.
        with pytest.raises(AssemblyError):
            assemble(src)

    def test_indexed_load_encoding(self):
        program = assemble("start: load edi, [ebp+esi*8-12]\n")
        instr = decode_at(program, program.entry)
        assert instr.op is Op.LOADX
        assert (instr.r1, instr.r2, instr.index, instr.scale_log2,
                instr.disp) == (7, 5, 6, 3, -12)

    def test_store_immediate(self):
        program = assemble("start: storei [ebx+8], 0x1234\n")
        instr = decode_at(program, program.entry)
        assert instr.op is Op.STOREI
        assert instr.imm == 0x1234 and instr.disp == 8

    def test_shift_forms(self):
        program = assemble("start: shl eax, 3\nshr ebx, cl\n")
        first = decode_at(program, program.entry)
        assert first.op is Op.SHL_RI8 and first.imm == 3
        second = decode_at(program, first.next_addr)
        assert second.op is Op.SHR_RCL and second.r1 == 3

    def test_branch_aliases(self):
        program = assemble("start: jz start\njnz start\njc start\n")
        instr = decode_at(program, program.entry)
        assert instr.op is Op.JE

    def test_relative_branch_backward(self):
        program = assemble("start: nop\nloop: dec eax\njnz loop\n")
        jnz_addr = program.symbols["loop"] + 2
        instr = decode_at(program, jnz_addr)
        assert instr.branch_target == program.symbols["loop"]

    def test_jmp_register(self):
        program = assemble("start: jmp eax\n")
        instr = decode_at(program, program.entry)
        assert instr.op is Op.JMP_R

    def test_push_forms(self):
        program = assemble("start: push eax\npush 99\n")
        first = decode_at(program, program.entry)
        assert first.op is Op.PUSH_R
        second = decode_at(program, first.next_addr)
        assert second.op is Op.PUSH_I and second.imm == 99

    def test_io_and_system(self):
        program = assemble("start: in 0x40\nout 0xE9\nint 3\nsti\ncli\n"
                           "iret\nsetpt eax\npgon\npgoff\nhlt\n")
        ops = []
        addr = program.entry
        for _ in range(10):
            instr = decode_at(program, addr)
            ops.append(instr.op)
            addr = instr.next_addr
        assert ops == [Op.IN, Op.OUT, Op.INT, Op.STI, Op.CLI, Op.IRET,
                       Op.SETPT, Op.PGON, Op.PGOFF, Op.HLT]

    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblyError):
            assemble("start: frobnicate eax\n")

    def test_comment_styles(self):
        program = assemble("start: nop ; semicolon\nnop # hash\n")
        assert len(program.flatten()) >= 2

    def test_explicit_indexed_aliases(self):
        program = assemble("start: loadx eax, [ebx+ecx*4]\n"
                           "storex [ebx+ecx*4], eax\n")
        instr = decode_at(program, program.entry)
        assert instr.op is Op.LOADX


class TestMacros:
    def test_simple_expansion(self):
        program = assemble(
            ".macro bump reg, delta\n"
            "    add reg, delta\n"
            ".endm\n"
            "start:\n"
            "    bump eax, 5\n"
            "    hlt\n"
        )
        instr = decode_at(program, program.entry)
        assert instr.op is Op.ADD_RI
        assert instr.imm == 5

    def test_zero_argument_macro(self):
        program = assemble(
            ".macro pause\n"
            "    nop\n"
            "    nop\n"
            ".endm\n"
            "start:\n"
            "    pause\n"
            "    hlt\n"
        )
        assert decode_at(program, program.entry).op is Op.NOP

    def test_memory_operand_argument(self):
        program = assemble(
            ".macro put slot, reg\n"
            "    store slot, reg\n"
            ".endm\n"
            "start:\n"
            "    put [ebx+8], ecx\n"
            "    hlt\n"
        )
        instr = decode_at(program, program.entry)
        assert instr.op is Op.STORE
        assert instr.disp == 8

    def test_unique_labels_per_expansion(self):
        # \@ expands to a per-invocation counter, so the same macro can
        # define labels twice without colliding.
        program = assemble(
            ".macro clamp reg\n"
            "    cmp reg, 10\n"
            "    jbe ok_\\@\n"
            "    mov reg, 10\n"
            "ok_\\@:\n"
            ".endm\n"
            "start:\n"
            "    clamp eax\n"
            "    clamp ebx\n"
            "    hlt\n"
        )
        labels = [s for s in program.symbols if s.startswith("ok_")]
        assert len(labels) == 2

    def test_macro_invoking_macro(self):
        program = assemble(
            ".macro one reg\n"
            "    mov reg, 1\n"
            ".endm\n"
            ".macro two reg\n"
            "    one reg\n"
            "    add reg, 1\n"
            ".endm\n"
            "start:\n"
            "    two edx\n"
            "    hlt\n"
        )
        instr = decode_at(program, program.entry)
        assert instr.op is Op.MOV_RI
        assert instr.r1 == 2  # edx

    def test_macro_with_data_directives(self):
        program = assemble(
            ".macro record tag\n"
            "    .word tag, tag*2\n"
            ".endm\n"
            "start: hlt\n"
            "tab:\n"
            "    record 3\n"
        )
        image = program.flatten()
        base = program.symbols["tab"]
        assert image[base : base + 8] == bytes([3, 0, 0, 0, 6, 0, 0, 0])

    def test_argument_count_mismatch(self):
        with pytest.raises(AssemblyError, match="argument"):
            assemble(
                ".macro bump reg, delta\n"
                "    add reg, delta\n"
                ".endm\n"
                "start: bump eax\n"
            )

    def test_unterminated_macro(self):
        with pytest.raises(AssemblyError, match="missing .endm"):
            assemble(".macro broken\n    nop\nstart: hlt\n")

    def test_stray_endm(self):
        with pytest.raises(AssemblyError, match="outside"):
            assemble("start: hlt\n.endm\n")

    def test_nested_definition_rejected(self):
        with pytest.raises(AssemblyError, match="nested"):
            assemble(".macro a\n.macro b\n.endm\n.endm\n")

    def test_name_collision_with_mnemonic(self):
        with pytest.raises(AssemblyError, match="already in use"):
            assemble(".macro add x\n.endm\n")

    def test_duplicate_definition_rejected(self):
        with pytest.raises(AssemblyError, match="already in use"):
            assemble(".macro a\n.endm\n.macro a\n.endm\n")

    def test_recursion_bounded(self):
        with pytest.raises(AssemblyError, match="too deep"):
            assemble(
                ".macro loop_forever\n"
                "    nop\n"
                "    loop_forever\n"
                ".endm\n"
                "start: loop_forever\n"
            )
