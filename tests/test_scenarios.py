"""Adversarial scenario matrix: differential, deterministic, contained.

Tier-1 runs every scenario class differentially at a small budget —
the same checks the CI ``scenarios`` lane runs at its bigger budget —
plus the record-determinism and chaos-containment contracts the
runner documents.  The full-budget soak is marked ``slow``.
"""

from __future__ import annotations

import pytest

from repro.scenarios.matrix import SCENARIOS, get, names
from repro.scenarios.runner import (
    all_passed,
    record_fingerprint,
    run_matrix,
    run_scenario,
)

BUDGET = 9_000
SEED = 11


@pytest.fixture(scope="module")
def matrix_report():
    return run_matrix(BUDGET, SEED)


class TestMatrix:
    def test_names_unique_and_resolvable(self):
        assert len(set(names())) == len(SCENARIOS) == 5
        for scenario in SCENARIOS:
            assert get(scenario.name) is scenario
        with pytest.raises(KeyError):
            get("no-such-scenario")

    @pytest.mark.parametrize("name", [s.name for s in SCENARIOS])
    def test_differentially_clean(self, matrix_report, name):
        record = matrix_report["scenarios"][name]
        assert record["pass"], record["diffs"]

    def test_all_passed_summary(self, matrix_report):
        assert all_passed(matrix_report)

    @pytest.mark.parametrize("name", [s.name for s in SCENARIOS])
    def test_scenarios_do_real_work(self, matrix_report, name):
        counters = matrix_report["scenarios"][name]["counters"]
        assert counters["guest_instructions"] > BUDGET // 3
        assert counters["translations_made"] > 0

    def test_adversarial_pressure_recorded(self, matrix_report):
        records = matrix_report["scenarios"]
        # the storm really storms ...
        assert records["irq-storm"]["counters"]["interrupts_delivered"] > 10
        # ... and the SMC classes really self-modify.
        for name in ("task-switch", "guest-jit", "soak"):
            assert records[name]["counters"]["smc_invalidations"] > 0

    def test_dispatch_quantiles_present(self, matrix_report):
        for record in matrix_report["scenarios"].values():
            dispatch = record["dispatch"]
            assert dispatch["count"] > 0
            assert 0 < dispatch["p50_instructions"] \
                <= dispatch["p99_instructions"]

    def test_paging_pressure_recorded(self, matrix_report):
        record = matrix_report["scenarios"]["paging"]
        counters = record["counters"]
        mmu = record["mmu"]
        # Demand faults and write-protect flips really deliver #PF ...
        assert counters["guest_exceptions_delivered"] > 10
        # ... at least one of them precisely out of translated code,
        assert counters["rollbacks"] > 0
        # ... page-table mutations sever chains into remapped pages,
        assert counters["mapping_unchains"] > 0
        # ... and the live-PT store interlock actually fires.
        assert counters.get("faults.MMU_MUTATION", 0) > 0
        # The MMU section reflects real paging traffic: architectural
        # walks, CMS mapping probes, and a TLB that absorbs some of
        # the probe-walk cost.
        assert mmu["faults"] > 10
        assert mmu["probes"] > 0
        assert mmu["tlb_invalidations"] > 0
        assert mmu["probe_walks_saved"] > 0
        assert mmu["probe_walks"] + mmu["probe_walks_saved"] == \
            mmu["probes"]

    def test_health_sweeps_ran(self, matrix_report):
        soak = matrix_report["scenarios"]["soak"]
        assert soak["sweeps"] >= 1
        assert soak["health"]["audit_runs"] >= 1
        assert soak["health"]["healthy"]


class TestDeterminism:
    def test_same_seed_twice_is_byte_identical(self):
        scenario = get("guest-jit")
        first = run_scenario(scenario, BUDGET, SEED)
        second = run_scenario(scenario, BUDGET, SEED)
        assert record_fingerprint(first) == record_fingerprint(second)

    def test_fingerprint_ignores_host_timing(self):
        record = run_scenario(get("irq-storm"), BUDGET, SEED)
        fingerprint = record_fingerprint(record)
        record["timing"]["cms_seconds"] = 1e9
        assert record_fingerprint(record) == fingerprint
        assert "interp_seconds" not in fingerprint

    def test_different_seed_changes_the_record(self):
        scenario = get("irq-storm")  # seeded disk + NIC payload folds
        assert record_fingerprint(run_scenario(scenario, BUDGET, 1)) != \
            record_fingerprint(run_scenario(scenario, BUDGET, 2))


class TestFleetHosted:
    def test_paging_guests_under_the_supervisor(self):
        from repro.scenarios.fleet import run_scenario_fleet

        report = run_scenario_fleet("paging", tenants=2, budget=6_000,
                                    seed=SEED)
        assert report.ok, report.divergences
        assert report.uncontained == 0
        assert all(row["state"] == "done" for row in report.tenant_rows)


class TestChaosContainment:
    def test_scenario_under_chaos_stays_equivalent(self):
        record = run_scenario(get("irq-storm"), BUDGET, SEED,
                              chaos_rate=0.02, chaos_seed=3)
        assert record["pass"], record["diffs"]
        assert record["health"]["chaos_injected"] > 0
        assert record["health"]["contained_errors"] >= \
            record["health"]["chaos_injected"]


@pytest.mark.slow
class TestFullBudget:
    def test_soak_full_budget(self):
        record = run_scenario(get("soak"), 120_000, SEED)
        assert record["pass"], record["diffs"]
        assert record["sweeps"] >= 5
