"""Tests for guest-state views, the machine composition, the statistics
model, and configuration plumbing."""

from __future__ import annotations

import pytest

from repro.cms.config import CMSConfig, CostModel
from repro.cms.stats import CMSStats
from repro.host.registers import HostBackedGuestState, HostRegisterFile
from repro.isa import flags as fl
from repro.machine import (
    CONSOLE_MMIO_BASE,
    DMA_MMIO_BASE,
    TIMER_MMIO_BASE,
    Machine,
    MachineConfig,
)
from repro.state import FLAG_SLOTS, SimpleGuestState


class TestGuestStateViews:
    @pytest.mark.parametrize("state_factory", [
        SimpleGuestState,
        lambda: HostBackedGuestState(HostRegisterFile()),
    ])
    def test_register_roundtrip(self, state_factory):
        state = state_factory()
        for index in range(8):
            state.set_reg(index, 0x1000 + index)
        assert [state.get_reg(i) for i in range(8)] == \
            [0x1000 + i for i in range(8)]

    @pytest.mark.parametrize("state_factory", [
        SimpleGuestState,
        lambda: HostBackedGuestState(HostRegisterFile()),
    ])
    def test_values_masked(self, state_factory):
        state = state_factory()
        state.set_reg(0, 0x1_2345_6789)
        assert state.get_reg(0) == 0x2345_6789
        state.eip = 0x1_0000_0004
        assert state.eip == 4

    def test_eflags_always_one_bit(self):
        state = SimpleGuestState()
        assert state.eflags & fl.ALWAYS_ONE

    def test_eflags_pack_unpack_all_flags(self):
        state = SimpleGuestState()
        state.eflags = fl.CF | fl.ZF | fl.IF
        assert state.get_flag(FLAG_SLOTS.index("cf")) == 1
        assert state.get_flag(FLAG_SLOTS.index("zf")) == 1
        assert state.interrupts_enabled
        assert state.get_flag(FLAG_SLOTS.index("sf")) == 0
        repacked = state.eflags
        assert repacked & fl.CF and repacked & fl.ZF and repacked & fl.IF

    def test_set_arith_flags_respects_mask(self):
        state = SimpleGuestState()
        state.set_flag(FLAG_SLOTS.index("cf"), 1)
        state.set_arith_flags(fl.ZF, mask=fl.ZF | fl.SF)
        assert state.get_flag(FLAG_SLOTS.index("cf")) == 1  # untouched
        assert state.get_flag(FLAG_SLOTS.index("zf")) == 1
        assert state.get_flag(FLAG_SLOTS.index("sf")) == 0

    def test_snapshot_hashable_and_sensitive(self):
        state = SimpleGuestState()
        first = state.snapshot()
        hash(first)
        state.set_reg(3, 1)
        assert state.snapshot() != first

    def test_describe_contains_registers(self):
        state = SimpleGuestState()
        state.set_reg(0, 0xAB)
        assert "eax=000000ab" in state.describe()


class TestMachineComposition:
    def test_default_memory_map(self):
        machine = Machine()
        assert machine.bus.is_io(CONSOLE_MMIO_BASE)
        assert machine.bus.is_io(TIMER_MMIO_BASE)
        assert machine.bus.is_io(DMA_MMIO_BASE)
        assert machine.bus.is_io(0xA0000)  # framebuffer
        assert not machine.bus.is_io(0x1000)

    def test_no_framebuffer_config(self):
        machine = Machine(MachineConfig(with_framebuffer=False))
        assert machine.framebuffer is None
        assert not machine.bus.is_io(0xA0000)

    def test_tick_advances_devices(self):
        machine = Machine()
        machine.timer.period = 10
        machine.timer.running = True
        machine.tick(25)
        assert machine.timer.fired == 2
        assert machine.instructions_retired == 25

    def test_load_source_returns_entry(self):
        machine = Machine()
        entry = machine.load_source(".org 0x3000\nstart: nop\nhlt\n")
        assert entry == 0x3000
        assert machine.ram.read8(0x3000) == 0  # NOP opcode

    def test_vread_vwrite_roundtrip(self):
        machine = Machine()
        machine.vwrite(0x2000, 0xDEADBEEF, 4)
        assert machine.vread(0x2000, 4) == 0xDEADBEEF

    def test_fetch_byte_rejects_mmio(self):
        from repro.isa.exceptions import GuestException

        machine = Machine()
        with pytest.raises(GuestException):
            machine.fetch_byte(CONSOLE_MMIO_BASE)


class TestStatsAndCost:
    def test_total_molecules_composition(self):
        cost = CostModel()
        stats = CMSStats()
        stats.host_molecules = 1000
        stats.interp_instructions = 10
        stats.guest_instructions_translated = 5
        stats.rollbacks = 2
        stats.dispatches = 3
        total = stats.total_molecules(cost)
        expected = (1000 + 10 * cost.interp_per_instruction
                    + 5 * cost.translate_per_instruction
                    + 2 * cost.rollback + 3 * cost.dispatch_lookup)
        assert total == expected

    def test_molecules_per_instruction_zero_safe(self):
        assert CMSStats().molecules_per_instruction(CostModel()) == 0.0

    def test_summary_mentions_faults(self):
        stats = CMSStats()
        stats.guest_instructions = 100
        stats.faults["ALIAS_VIOLATION"] = 3
        text = stats.summary(CostModel())
        assert "ALIAS_VIOLATION=3" in text

    def test_interpreter_only_config(self):
        config = CMSConfig().interpreter_only()
        assert config.translation_threshold > 10**9
        # Other dials preserved.
        assert config.fine_grain_protection == \
            CMSConfig().fine_grain_protection

    def test_configs_hashable_for_caching(self):
        # benchmarks/common.py memoizes on (workload, config).
        a = CMSConfig()
        b = CMSConfig()
        assert hash(a) == hash(b)
        assert a == b
