"""Encoder/decoder roundtrip and opcode-table invariants."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.isa.decoder import BytesFetcher, decode
from repro.isa.encoder import (
    displacement_field_offset,
    encode,
    immediate_field_offset,
)
from repro.isa.exceptions import GuestException
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Fmt, Op, OPCODE_TABLE, op_info


def roundtrip(instr: Instruction) -> Instruction:
    data = encode(instr)
    assert len(data) == instr.length
    return decode(BytesFetcher(data, base=0x1000), 0x1000)


class TestOpcodeTable:
    def test_all_ops_have_info(self):
        for op in Op:
            assert op in OPCODE_TABLE

    def test_lengths_match_formats(self):
        for info in OPCODE_TABLE.values():
            assert info.length == info.fmt.length

    def test_jcc_block_is_contiguous(self):
        for value in range(Op.JO, Op.JG + 1):
            assert Op(value) in OPCODE_TABLE
            assert OPCODE_TABLE[Op(value)].fmt is Fmt.REL

    def test_interp_only_ops_are_system_or_stack(self):
        for info in OPCODE_TABLE.values():
            if info.interp_only:
                assert info.kind.name in ("SYSTEM", "STACK")


REG = st.integers(min_value=0, max_value=7)
IMM32 = st.integers(min_value=0, max_value=0xFFFFFFFF)
IMM8 = st.integers(min_value=0, max_value=0xFF)
DISP = st.integers(min_value=-(2**31), max_value=2**31 - 1)
SCALE = st.integers(min_value=0, max_value=3)


def instruction_strategy() -> st.SearchStrategy[Instruction]:
    def build(op_value, r1, r2, index, scale, disp, imm):
        op = Op(op_value)
        fmt = op_info(op).fmt
        instr_imm = imm
        if fmt is Fmt.RI8 or fmt is Fmt.I8:
            instr_imm = imm & 0xFF
        elif fmt is Fmt.I16:
            instr_imm = imm & 0xFFFF
        return Instruction(op, r1=r1, r2=r2, index=index, scale_log2=scale,
                           disp=disp, imm=instr_imm, addr=0x1000)

    return st.builds(
        build,
        st.sampled_from([op.value for op in Op]),
        REG, REG, REG, SCALE, DISP, IMM32,
    )


class TestRoundtrip:
    @given(instruction_strategy())
    def test_encode_decode_identity(self, instr):
        decoded = roundtrip(instr)
        assert decoded.op == instr.op
        fmt = instr.info.fmt
        if fmt in (Fmt.R, Fmt.RR, Fmt.RI, Fmt.RI8, Fmt.RM, Fmt.MR,
                   Fmt.RMX, Fmt.MRX):
            assert decoded.r1 == instr.r1
        if fmt in (Fmt.RR, Fmt.RM, Fmt.MR, Fmt.RMX, Fmt.MRX, Fmt.MI):
            assert decoded.r2 == instr.r2
        if fmt in (Fmt.RMX, Fmt.MRX):
            assert decoded.index == instr.index
            assert decoded.scale_log2 == instr.scale_log2
        if fmt in (Fmt.RM, Fmt.MR, Fmt.RMX, Fmt.MRX, Fmt.MI, Fmt.REL):
            assert decoded.disp == instr.disp
        if fmt in (Fmt.RI, Fmt.RI8, Fmt.MI, Fmt.I32, Fmt.I16, Fmt.I8):
            assert decoded.imm == instr.imm

    def test_specific_encoding_stability(self):
        # The byte encoding is a stable contract (SMC tests patch bytes
        # at fixed offsets); pin a few examples.
        mov = Instruction(Op.MOV_RI, r1=0, imm=0x12345678)
        assert encode(mov) == bytes([0x11, 0x00, 0x78, 0x56, 0x34, 0x12])
        store = Instruction(Op.STORE, r1=1, r2=3, disp=8)
        assert encode(store) == bytes([0x13, 0x31, 0x08, 0x00, 0x00, 0x00])
        jne = Instruction(Op.JNE, disp=-10)
        assert encode(jne) == bytes([0x75, 0xF6, 0xFF, 0xFF, 0xFF])


class TestDecodeErrors:
    def test_invalid_opcode_raises_ud(self):
        with pytest.raises(GuestException) as excinfo:
            decode(BytesFetcher(bytes([0xFF, 0x00])), 0)
        assert excinfo.value.vector == 6

    def test_bad_register_raises_ud(self):
        # RR byte with register 9 in the source nibble.
        with pytest.raises(GuestException):
            decode(BytesFetcher(bytes([Op.MOV_RR, 0x09 | 0x80])), 0)

    def test_bad_scale_raises_ud(self):
        data = bytes([Op.LOADX, 0x00, 0x0F, 0, 0, 0, 0])
        with pytest.raises(GuestException):
            decode(BytesFetcher(data), 0)


class TestFieldOffsets:
    def test_mov_ri_immediate_offset(self):
        instr = Instruction(Op.MOV_RI, r1=0, imm=5, addr=0)
        offset = immediate_field_offset(instr)
        data = encode(instr)
        assert data[offset:offset + 4] == (5).to_bytes(4, "little")

    def test_storei_immediate_offset(self):
        instr = Instruction(Op.STOREI, r2=3, disp=4, imm=0xAABBCCDD, addr=0)
        offset = immediate_field_offset(instr)
        data = encode(instr)
        assert data[offset:offset + 4] == bytes([0xDD, 0xCC, 0xBB, 0xAA])

    def test_no_immediate_for_rr(self):
        instr = Instruction(Op.ADD_RR, r1=0, r2=1, addr=0)
        assert immediate_field_offset(instr) is None

    def test_displacement_offset_for_load(self):
        instr = Instruction(Op.LOAD, r1=0, r2=1, disp=-4, addr=0)
        offset = displacement_field_offset(instr)
        data = encode(instr)
        assert data[offset:offset + 4] == (-4).to_bytes(4, "little",
                                                        signed=True)


class TestInstructionModel:
    def test_branch_target(self):
        instr = Instruction(Op.JMP, disp=0x10, addr=0x1000)
        assert instr.branch_target == 0x1000 + 5 + 0x10

    def test_regs_read_written_mul(self):
        instr = Instruction(Op.MUL_R, r1=3, addr=0)
        assert {0, 2, 3} <= set(instr.regs_read())
        assert {0, 2} <= set(instr.regs_written())

    def test_push_reads_esp(self):
        instr = Instruction(Op.PUSH_R, r1=0, addr=0)
        assert 4 in instr.regs_read()
        assert 4 in instr.regs_written()

    def test_store_is_memory(self):
        instr = Instruction(Op.STORE, r1=0, r2=1, addr=0)
        assert instr.is_memory and instr.is_store and not instr.is_load

    def test_format_smoke(self):
        instr = Instruction(Op.LOADX, r1=1, r2=3, index=2, scale_log2=2,
                            disp=8, addr=0)
        text = str(instr)
        assert "loadx" in text and "edx*4" in text
