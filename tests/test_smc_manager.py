"""Unit tests for the SMC manager's triage and protection bookkeeping."""

from __future__ import annotations

import pytest

from repro.cache.groups import TranslationGroups
from repro.cache.tcache import TranslationCache
from repro.cms.config import CMSConfig
from repro.cms.retranslation import AdaptiveController
from repro.cms.smc import SMCManager
from repro.cms.stats import CMSStats
from repro.host.faults import HostFault, HostFaultKind
from repro.machine import Machine
from repro.memory.finegrain import FineGrainCache, GRANULE_SIZE
from repro.memory.physical import PAGE_SIZE, page_of
from repro.memory.protection import ProtectionMap, StoreClass
from repro.translator.policies import TranslationPolicy

from test_tcache import make_translation


def make_manager(fine_grain=True, **config_overrides):
    from dataclasses import replace

    config = replace(CMSConfig(), fine_grain_protection=fine_grain,
                     **config_overrides)
    machine = Machine()
    tcache = TranslationCache()
    groups = TranslationGroups()
    protection = ProtectionMap(
        FineGrainCache(config.fine_grain_entries) if fine_grain else None,
        fine_grain_enabled=fine_grain,
    )
    stats = CMSStats()
    controller = AdaptiveController(config)
    manager = SMCManager(config, tcache, groups, protection, machine,
                         stats, controller)
    return manager


def protection_fault(paddr: int, store_class: StoreClass,
                     size: int = 4) -> HostFault:
    return HostFault(kind=HostFaultKind.PROTECTION, paddr=paddr,
                     store_class=store_class, page=page_of(paddr),
                     access_size=size)


class TestProtectionLifecycle:
    def test_protect_translation_covers_ranges(self):
        manager = make_manager()
        t = make_translation(entry=0x1000, length=32)
        manager.tcache.insert(t)
        manager.protect_translation(t)
        assert manager.protection.is_protected(1)

    def test_self_check_translations_left_unprotected(self):
        manager = make_manager()
        t = make_translation(policy=TranslationPolicy(self_check=True))
        manager.tcache.insert(t)
        manager.protect_translation(t)
        assert not manager.protection.is_protected(1)

    def test_recompute_page_after_removal(self):
        manager = make_manager()
        t = make_translation(entry=0x1000, length=32)
        manager.tcache.insert(t)
        manager.protect_translation(t)
        manager.tcache.invalidate_translation(t)
        manager.recompute_page(1)
        assert not manager.protection.is_protected(1)

    def test_recompute_merges_multiple_translations(self):
        manager = make_manager()
        a = make_translation(entry=0x1000, length=32)
        b = make_translation(entry=0x1800, length=32)
        for t in (a, b):
            manager.tcache.insert(t)
            manager.protect_translation(t)
        manager.recompute_page(1)
        mask = manager.protection.page_mask(1)
        assert mask & (1 << 0)  # granule of 0x1000
        assert mask & (1 << (0x800 // GRANULE_SIZE))


class TestInlineService:
    def test_fg_miss_filled_and_retried(self):
        manager = make_manager()
        t = make_translation(entry=0x1000, length=32)
        manager.tcache.insert(t)
        manager.protect_translation(t)
        served = manager.service_inline(
            protection_fault(0x1800, StoreClass.FAULT_MISS))
        assert served
        assert manager.stats.fg_miss_services == 1
        # The retried check now passes for a data granule.
        check = manager.protection.check_store(0x1800, 4)
        assert not check.faults

    def test_spurious_with_prologue_arms(self):
        manager = make_manager()
        t = make_translation(
            entry=0x1000, length=32,
            policy=TranslationPolicy(self_revalidate=True),
        )
        t.prologue_label = "prologue"
        t.labels["prologue"] = 0
        manager.tcache.insert(t)
        manager.protect_translation(t)
        manager.protection.handle_miss(1)
        # Store to the tail of the code granule, beyond the code bytes.
        served = manager.service_inline(
            protection_fault(0x1000 + 40, StoreClass.FAULT_CODE))
        assert served
        assert t.prologue_armed
        assert t.entry_label == "prologue"
        assert manager.stats.revalidations_armed == 1
        # Protection for the armed translation's granules is dropped.
        assert not manager.protection.check_store(0x1000 + 40, 4).faults

    def test_spurious_without_prologue_declines(self):
        manager = make_manager()
        t = make_translation(entry=0x1000, length=32)
        manager.tcache.insert(t)
        manager.protect_translation(t)
        manager.protection.handle_miss(1)
        served = manager.service_inline(
            protection_fault(0x1000 + 40, StoreClass.FAULT_CODE))
        assert not served

    def test_genuine_smc_declines(self):
        manager = make_manager()
        t = make_translation(
            entry=0x1000, length=32,
            policy=TranslationPolicy(self_revalidate=True),
        )
        t.prologue_label = "prologue"
        manager.tcache.insert(t)
        manager.protect_translation(t)
        manager.protection.handle_miss(1)
        # Store overlapping actual code bytes: never serviceable inline.
        served = manager.service_inline(
            protection_fault(0x1008, StoreClass.FAULT_CODE))
        assert not served

    def test_stale_mask_recomputed(self):
        manager = make_manager()
        # Protected granules with no backing translation (stale state).
        manager.protection.protect_range(0x1000, 32)
        manager.protection.handle_miss(1)
        served = manager.service_inline(
            protection_fault(0x1008, StoreClass.FAULT_CODE))
        assert served
        assert not manager.protection.is_protected(1)


class TestPrologueLifecycle:
    def test_prologue_success_reprotects(self):
        manager = make_manager()
        t = make_translation(
            entry=0x1000, length=32,
            policy=TranslationPolicy(self_revalidate=True),
        )
        t.prologue_label = "prologue"
        t.labels["prologue"] = 0
        manager.tcache.insert(t)
        manager.protect_translation(t)
        manager.protection.handle_miss(1)
        manager.service_inline(
            protection_fault(0x1000 + 40, StoreClass.FAULT_CODE))
        assert t.prologue_armed
        manager.on_prologue_success(t)
        assert not t.prologue_armed
        assert t.entry_label == "body"
        assert manager.protection.is_protected(1)
        assert manager.stats.revalidations_passed == 1


class TestGenuineSMCTriage:
    def test_fault_page_invalidates_everything_on_page(self):
        manager = make_manager(fine_grain=False)
        a = make_translation(entry=0x1000, length=32)
        b = make_translation(entry=0x1800, length=32)
        for t in (a, b):
            manager.tcache.insert(t)
            manager.protect_translation(t)
        manager.on_protection_fault(
            protection_fault(0x1008, StoreClass.FAULT_PAGE))
        assert manager.tcache.lookup(0x1000) is None
        assert manager.tcache.lookup(0x1800) is None
        assert not manager.protection.is_protected(1)

    def test_genuine_code_write_retires_to_group(self):
        manager = make_manager()
        t = make_translation(entry=0x1000, length=32)
        manager.tcache.insert(t)
        manager.protect_translation(t)
        manager.protection.handle_miss(1)
        manager.on_protection_fault(
            protection_fault(0x1008, StoreClass.FAULT_CODE))
        assert manager.tcache.lookup(0x1000) is None
        assert manager.groups.versions(0x1000) == 1
        assert t.valid  # retired versions stay usable


class TestRamWriteObserver:
    def test_dma_write_invalidates_overlapping(self):
        manager = make_manager()
        t = make_translation(entry=0x1000, length=32)
        manager.tcache.insert(t)
        manager.protect_translation(t)
        manager.on_ram_write(0x1010, 4)
        assert manager.tcache.lookup(0x1000) is None

    def test_data_write_on_same_page_harmless(self):
        manager = make_manager()
        t = make_translation(entry=0x1000, length=32)
        manager.tcache.insert(t)
        manager.protect_translation(t)
        manager.on_ram_write(0x1F00, 4)  # same page, no overlap
        assert manager.tcache.lookup(0x1000) is t

    def test_self_check_translations_exempt(self):
        manager = make_manager()
        t = make_translation(entry=0x1000, length=32,
                             policy=TranslationPolicy(self_check=True))
        manager.tcache.insert(t)
        manager.on_ram_write(0x1010, 4)
        assert manager.tcache.lookup(0x1000) is t  # its checks handle it


class TestInterpreterStoreHook:
    def test_miss_then_allowed(self):
        manager = make_manager()
        t = make_translation(entry=0x1000, length=32)
        manager.tcache.insert(t)
        manager.protect_translation(t)
        manager.on_interpreter_store(0x1800, 4)  # miss -> fill -> allowed
        assert manager.stats.fg_miss_services == 1
        # Second store hits the cache silently: no new fault recorded.
        before = manager.protection.protection_faults
        manager.on_interpreter_store(0x1804, 4)
        assert manager.protection.protection_faults == before

    def test_genuine_smc_from_interpreter_invalidates(self):
        manager = make_manager()
        t = make_translation(entry=0x1000, length=32)
        manager.tcache.insert(t)
        manager.protect_translation(t)
        manager.protection.handle_miss(1)
        manager.on_interpreter_store(0x1008, 4)
        assert manager.tcache.lookup(0x1000) is None
