"""Tests for the perf-regression gate (``benchmarks/compare.py``).

The gate is stdlib-only and lives outside the package, so it is loaded
here straight from its file path.  Coverage pins the contract CI
relies on: counters exact, timing tolerant/advisory, budget mismatch
incomparable, and the 0/1/2 exit-code mapping.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

COMPARE_PATH = (
    Path(__file__).resolve().parent.parent / "benchmarks" / "compare.py"
)
_spec = importlib.util.spec_from_file_location("bench_compare", COMPARE_PATH)
compare_mod = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(compare_mod)


def report(**overrides) -> dict:
    base = {
        "budget": 20000,
        "workloads": {
            "compress:baseline": {
                "guest_instructions": 20755,
                "seed_seconds": 0.13,
                "optimized_seconds": 0.12,
                "speedup": 1.08,
                "identical_output": True,
            },
        },
        "ablation": {"decode_cache": {"slowdown_without": 2.0}},
    }
    base.update(overrides)
    return base


def test_identical_reports_pass():
    status, findings = compare_mod.compare(report(), report())
    assert status == compare_mod.OK
    assert findings == []


def test_counter_change_is_a_regression():
    current = report()
    current["workloads"]["compress:baseline"]["guest_instructions"] += 1
    status, findings = compare_mod.compare(report(), current)
    assert status == compare_mod.REGRESSION
    assert any("guest_instructions" in f for f in findings)


def test_bool_counter_flip_is_a_regression():
    current = report()
    current["workloads"]["compress:baseline"]["identical_output"] = False
    status, _ = compare_mod.compare(report(), current)
    assert status == compare_mod.REGRESSION


def test_timing_within_band_passes():
    current = report()
    current["workloads"]["compress:baseline"]["optimized_seconds"] = 0.15
    status, findings = compare_mod.compare(
        report(), current, timing_tolerance=0.5
    )
    assert status == compare_mod.OK
    assert findings == []


def test_timing_outside_band_fails_unless_advisory():
    current = report()
    current["workloads"]["compress:baseline"]["optimized_seconds"] = 0.60
    status, findings = compare_mod.compare(report(), current)
    assert status == compare_mod.REGRESSION
    status, findings = compare_mod.compare(
        report(), current, timing_advisory=True
    )
    assert status == compare_mod.OK
    assert any(f.startswith("advisory") for f in findings)


def test_budget_mismatch_is_incomparable():
    status, findings = compare_mod.compare(report(), report(budget=40000))
    assert status == compare_mod.INCOMPARABLE
    assert any("budget" in f for f in findings)


def test_missing_metric_is_incomparable():
    current = report()
    del current["workloads"]["compress:baseline"]["speedup"]
    status, findings = compare_mod.compare(report(), current)
    assert status == compare_mod.INCOMPARABLE


def test_new_metric_is_noted_but_passes():
    current = report()
    current["workloads"]["compress:baseline"]["new_counter"] = 5
    status, findings = compare_mod.compare(report(), current)
    assert status == compare_mod.OK
    assert any("new metrics" in f for f in findings)


def test_timing_key_classification():
    for key in (
        "seed_seconds",
        "optimized_ips",
        "speedup",
        "slowdown_without",
    ):
        assert compare_mod.is_timing_key(key), key
    for key in ("guest_instructions", "identical_output", "budget"):
        assert not compare_mod.is_timing_key(key), key


def test_main_exit_codes(tmp_path, capsys):
    baseline = tmp_path / "base.json"
    current = tmp_path / "cur.json"
    baseline.write_text(json.dumps(report()))

    current.write_text(json.dumps(report()))
    assert compare_mod.main([str(baseline), str(current)]) == 0

    regressed = report()
    regressed["workloads"]["compress:baseline"]["guest_instructions"] = 1
    current.write_text(json.dumps(regressed))
    assert compare_mod.main([str(baseline), str(current)]) == 1
    assert "REGRESSION" in capsys.readouterr().out

    current.write_text(json.dumps(report(budget=None)))
    assert compare_mod.main([str(baseline), str(current)]) == 2


def test_committed_baseline_matches_gate_budget():
    baseline_path = COMPARE_PATH.parent / "baselines" / "BENCH_wallclock.json"
    baseline = json.loads(baseline_path.read_text())
    # The CI perf-gate runs with REPRO_WALLCLOCK_BUDGET=20000; the
    # committed baseline must have been generated the same way or every
    # gate run would exit 2 (incomparable).
    assert baseline["budget"] == 20000
    assert baseline["workloads"]
