"""Tests for physical memory, bus routing, MMU, and protection."""

from __future__ import annotations

import pytest

from repro.isa.exceptions import GuestException, Vector
from repro.memory.bus import MemoryBus, MMIORegion
from repro.memory.finegrain import (
    GRANULE_SIZE,
    FineGrainCache,
    granule_mask_for_range,
)
from repro.memory.mmu import MMU, PTE_PRESENT, PTE_WRITABLE
from repro.memory.physical import PAGE_SIZE, PhysicalMemory, page_of
from repro.memory.protection import ProtectionMap, StoreClass


class TestPhysicalMemory:
    def test_little_endian_roundtrip(self):
        ram = PhysicalMemory(PAGE_SIZE)
        ram.write32(0x10, 0xAABBCCDD)
        assert ram.read8(0x10) == 0xDD
        assert ram.read32(0x10) == 0xAABBCCDD

    def test_bounds(self):
        ram = PhysicalMemory(PAGE_SIZE)
        with pytest.raises(IndexError):
            ram.read8(PAGE_SIZE)
        with pytest.raises(IndexError):
            ram.write32(PAGE_SIZE - 2, 1)

    def test_size_must_be_page_multiple(self):
        with pytest.raises(ValueError):
            PhysicalMemory(100)

    def test_page_of(self):
        assert page_of(0) == 0
        assert page_of(PAGE_SIZE) == 1
        assert page_of(PAGE_SIZE - 1) == 0


class _StubDevice:
    def __init__(self):
        self.reads = []
        self.writes = []

    def mmio_read(self, offset, size):
        self.reads.append((offset, size))
        return 0x42

    def mmio_write(self, offset, value, size):
        self.writes.append((offset, value, size))


class TestBus:
    def make(self):
        ram = PhysicalMemory(2 * PAGE_SIZE)
        bus = MemoryBus(ram)
        device = _StubDevice()
        bus.add_region(MMIORegion(0x10000, 0x100, device, "stub"))
        return bus, device

    def test_ram_routing(self):
        bus, device = self.make()
        bus.write(0x100, 0xDEAD, 4)
        assert bus.read(0x100, 4) == 0xDEAD
        assert not device.writes

    def test_mmio_routing(self):
        bus, device = self.make()
        bus.write(0x10004, 7, 4)
        assert device.writes == [(4, 7, 4)]
        assert bus.read(0x10008, 1) == 0x42

    def test_is_io_boundaries(self):
        bus, _ = self.make()
        assert bus.is_io(0x10000)
        assert bus.is_io(0x100FF)
        assert not bus.is_io(0x10100)
        assert bus.is_io(0xFFFF, 2)  # straddles into the region

    def test_unmapped_raises_gp(self):
        bus, _ = self.make()
        with pytest.raises(GuestException) as excinfo:
            bus.read(0x900000, 4)
        assert excinfo.value.vector == Vector.GP

    def test_store_observers_fire_for_ram_only(self):
        bus, _ = self.make()
        seen = []
        bus.store_observers.append(lambda addr, size: seen.append((addr, size)))
        bus.write(0x200, 1, 4)
        bus.write(0x10000, 1, 4)  # MMIO: no observer
        assert seen == [(0x200, 4)]

    def test_overlapping_regions_rejected(self):
        bus, _ = self.make()
        with pytest.raises(ValueError):
            bus.add_region(MMIORegion(0x10080, 0x100, _StubDevice()))

    def test_read_code_bytes_rejects_mmio(self):
        bus, _ = self.make()
        with pytest.raises(GuestException):
            bus.read_code_bytes(0x10000, 4)


class TestMMU:
    def make(self):
        ram = PhysicalMemory(16 * PAGE_SIZE)
        bus = MemoryBus(ram)
        mmu = MMU(bus)
        return ram, bus, mmu

    def test_identity_when_paging_off(self):
        _, _, mmu = self.make()
        assert mmu.translate(0x12345, is_write=True) == 0x12345

    def test_basic_mapping(self):
        ram, _, mmu = self.make()
        pt_base = 8 * PAGE_SIZE
        # Map VPN 1 -> frame 3, present+writable.
        ram.write32(pt_base + 1 * 4, (3 * PAGE_SIZE) | PTE_PRESENT |
                    PTE_WRITABLE)
        mmu.set_page_table(pt_base)
        mmu.enable_paging()
        assert mmu.translate(PAGE_SIZE + 0x10, False) == 3 * PAGE_SIZE + 0x10

    def test_not_present_faults(self):
        ram, _, mmu = self.make()
        mmu.set_page_table(8 * PAGE_SIZE)
        mmu.enable_paging()
        with pytest.raises(GuestException) as excinfo:
            mmu.translate(0x0, False)
        exc = excinfo.value
        assert exc.vector == Vector.PF
        assert exc.error_code & 0x1 == 0  # not-present

    def test_write_protect_faults(self):
        ram, _, mmu = self.make()
        pt_base = 8 * PAGE_SIZE
        ram.write32(pt_base, (2 * PAGE_SIZE) | PTE_PRESENT)  # read-only
        mmu.set_page_table(pt_base)
        mmu.enable_paging()
        assert mmu.translate(0x10, False) == 2 * PAGE_SIZE + 0x10
        with pytest.raises(GuestException) as excinfo:
            mmu.translate(0x10, True)
        assert excinfo.value.error_code & 0x3 == 0x3  # present + write

    def test_fault_address_recorded(self):
        _, _, mmu = self.make()
        mmu.set_page_table(8 * PAGE_SIZE)
        mmu.enable_paging()
        with pytest.raises(GuestException) as excinfo:
            mmu.translate(0xABCD, False)
        assert excinfo.value.fault_addr == 0xABCD

    def test_range_crossing_pages_checks_both(self):
        ram, _, mmu = self.make()
        pt_base = 8 * PAGE_SIZE
        ram.write32(pt_base, (2 * PAGE_SIZE) | PTE_PRESENT | PTE_WRITABLE)
        # VPN 1 not present.
        mmu.set_page_table(pt_base)
        mmu.enable_paging()
        with pytest.raises(GuestException):
            mmu.translate_range(PAGE_SIZE - 2, 4, False)


class TestMMUPageTableAlignment:
    """Regression: ``set_page_table`` must align *down to 4 bytes*.

    The pre-fix code had the ternary inverted — a misaligned base was
    page-aligned (dropping 0xF00 of the intended base) while an
    aligned base was left alone.  With a PTE written at the word-
    aligned base, translation through the buggy base reads the wrong
    table entirely.
    """

    def make(self):
        ram = PhysicalMemory(16 * PAGE_SIZE)
        return ram, MMU(MemoryBus(ram))

    def test_misaligned_base_aligns_down_to_word(self):
        _, mmu = self.make()
        mmu.set_page_table(8 * PAGE_SIZE + 0xF02)
        assert mmu.page_table_base == 8 * PAGE_SIZE + 0xF00

    def test_word_aligned_base_is_kept_exactly(self):
        _, mmu = self.make()
        mmu.set_page_table(8 * PAGE_SIZE + 0xF00)
        assert mmu.page_table_base == 8 * PAGE_SIZE + 0xF00

    def test_misaligned_base_still_reaches_its_table(self):
        ram, mmu = self.make()
        pt_base = 8 * PAGE_SIZE + 0x200  # word-aligned, NOT page-aligned
        ram.write32(pt_base, (3 * PAGE_SIZE) | PTE_PRESENT | PTE_WRITABLE)
        mmu.set_page_table(pt_base + 2)  # guest passed a sloppy base
        mmu.enable_paging()
        assert mmu.translate(0x10, False) == 3 * PAGE_SIZE + 0x10


class TestMMUProbe:
    """Regression: CMS-internal probes must not perturb architectural
    counters (``translations``/``faults``) — only probe telemetry."""

    def make_mapped(self):
        ram = PhysicalMemory(16 * PAGE_SIZE)
        bus = MemoryBus(ram)
        mmu = MMU(bus)
        pt_base = 8 * PAGE_SIZE
        ram.write32(pt_base + 1 * 4, (1 * PAGE_SIZE) | PTE_PRESENT |
                    PTE_WRITABLE)
        mmu.set_page_table(pt_base)
        mmu.enable_paging()
        return ram, bus, mmu

    def test_probe_resolves_like_translate(self):
        _, _, mmu = self.make_mapped()
        assert mmu.probe(PAGE_SIZE + 0x10) == PAGE_SIZE + 0x10

    def test_probe_unmapped_returns_none_instead_of_raising(self):
        _, _, mmu = self.make_mapped()
        assert mmu.probe(5 * PAGE_SIZE) is None

    def test_probe_leaves_architectural_counters_alone(self):
        _, _, mmu = self.make_mapped()
        mmu.translate(PAGE_SIZE, False)
        before = (mmu.translations, mmu.faults)
        mmu.probe(PAGE_SIZE)  # mapped
        mmu.probe(5 * PAGE_SIZE)  # not mapped: would have counted a fault
        assert (mmu.translations, mmu.faults) == before
        assert mmu.probes == 2

    def test_probe_identity_when_paging_off(self):
        ram = PhysicalMemory(16 * PAGE_SIZE)
        mmu = MMU(MemoryBus(ram))
        assert mmu.probe(0x12345) == 0x12345
        assert mmu.translations == 0


class TestMMUTLB:
    def make_mapped(self, tlb=True):
        ram = PhysicalMemory(16 * PAGE_SIZE)
        bus = MemoryBus(ram)
        mmu = MMU(bus)
        mmu.set_tlb_enabled(tlb)
        pt_base = 8 * PAGE_SIZE
        ram.write32(pt_base + 0 * 4, (2 * PAGE_SIZE) | PTE_PRESENT |
                    PTE_WRITABLE)
        ram.write32(pt_base + 1 * 4, (3 * PAGE_SIZE) | PTE_PRESENT |
                    PTE_WRITABLE)
        mmu.set_page_table(pt_base)
        mmu.enable_paging()
        return ram, bus, mmu, pt_base

    def test_second_translation_hits_the_tlb(self):
        _, _, mmu, _ = self.make_mapped()
        mmu.translate(0x10, False)
        mmu.translate(0x20, True)
        assert mmu.walks == 1
        assert mmu.tlb_hits == 1

    def test_pte_store_through_the_bus_invalidates_the_entry(self):
        _, bus, mmu, pt_base = self.make_mapped()
        assert mmu.translate(0x10, False) == 2 * PAGE_SIZE + 0x10
        bus.write(pt_base, (5 * PAGE_SIZE) | PTE_PRESENT | PTE_WRITABLE, 4)
        assert mmu.tlb_invalidations >= 1
        assert mmu.translate(0x10, False) == 5 * PAGE_SIZE + 0x10

    def test_unrelated_store_does_not_invalidate(self):
        _, bus, mmu, pt_base = self.make_mapped()
        mmu.translate(0x10, False)
        walks = mmu.walks
        bus.write(PAGE_SIZE, 0xAB, 4)  # outside the page table
        mmu.translate(0x10, False)
        assert mmu.walks == walks  # still served from the TLB

    def test_set_page_table_flushes_everything(self):
        _, _, mmu, pt_base = self.make_mapped()
        mmu.translate(0x10, False)
        epoch = mmu.mapping_epoch
        mmu.set_page_table(pt_base)
        assert mmu.mapping_epoch > epoch
        mmu.translate(0x10, False)
        assert mmu.walks == 2  # flushed: walked again

    def test_paging_toggle_flushes_everything(self):
        _, _, mmu, _ = self.make_mapped()
        mmu.translate(0x10, False)
        mmu.disable_paging()
        mmu.enable_paging()
        mmu.translate(0x10, False)
        assert mmu.walks == 2

    def test_tlb_off_matches_tlb_on_architecturally(self):
        _, bus_on, on, pt = self.make_mapped(tlb=True)
        _, bus_off, off, _ = self.make_mapped(tlb=False)
        for vaddr, is_write in ((0x10, False), (PAGE_SIZE + 4, True),
                                (0x10, False)):
            assert on.translate(vaddr, is_write) == \
                off.translate(vaddr, is_write)
        bus_on.write(pt, (6 * PAGE_SIZE) | PTE_PRESENT | PTE_WRITABLE, 4)
        bus_off.write(pt, (6 * PAGE_SIZE) | PTE_PRESENT | PTE_WRITABLE, 4)
        assert on.translate(0x10, False) == off.translate(0x10, False)
        assert off.tlb_hits == 0
        assert on.tlb_hits > 0

    def test_translate_range_spanning_pages_tracks_remapping(self):
        _, bus, mmu, pt_base = self.make_mapped()
        assert mmu.translate_range(PAGE_SIZE - 2, 4, False) == \
            2 * PAGE_SIZE + PAGE_SIZE - 2
        walks = mmu.walks
        # Remap the second page; the spanning check must re-validate it
        # (a fresh walk), not serve a stale TLB entry.
        bus.write(pt_base + 1 * 4,
                  (7 * PAGE_SIZE) | PTE_PRESENT | PTE_WRITABLE, 4)
        mmu.translate_range(PAGE_SIZE - 2, 4, False)
        assert mmu.walks == walks + 1
        # And dropping its present bit must fault the spanning access.
        bus.write(pt_base + 1 * 4, 0, 4)
        with pytest.raises(GuestException):
            mmu.translate_range(PAGE_SIZE - 2, 4, False)


class TestFineGrainCache:
    def test_miss_then_install_then_hit(self):
        cache = FineGrainCache(2)
        assert cache.lookup(5) is None
        cache.install(5, 0b1010)
        assert cache.lookup(5) == 0b1010
        assert cache.misses == 1 and cache.hits == 1

    def test_lru_eviction(self):
        cache = FineGrainCache(2)
        cache.install(1, 1)
        cache.install(2, 2)
        cache.lookup(1)  # make page 1 most recent
        cache.install(3, 3)  # evicts page 2
        assert 1 in cache and 3 in cache and 2 not in cache
        assert cache.evictions == 1

    def test_granule_mask(self):
        assert granule_mask_for_range(0, 1) == 1
        assert granule_mask_for_range(0, GRANULE_SIZE) == 1
        assert granule_mask_for_range(0, GRANULE_SIZE + 1) == 0b11
        assert granule_mask_for_range(GRANULE_SIZE * 63, PAGE_SIZE) == \
            1 << 63


class TestProtectionMap:
    def make(self, fine_grain=True):
        cache = FineGrainCache(4) if fine_grain else None
        return ProtectionMap(cache, fine_grain_enabled=fine_grain)

    def test_unprotected_store_ok(self):
        protection = self.make()
        assert protection.check_store(0x1000, 4).store_class is StoreClass.OK

    def test_protected_page_misses_then_allows_data(self):
        protection = self.make()
        # Code occupies the first granule of page 1.
        protection.protect_range(PAGE_SIZE, 16)
        # First store to another granule: fine-grain cache miss.
        check = protection.check_store(PAGE_SIZE + 2048, 4)
        assert check.store_class is StoreClass.FAULT_MISS
        protection.handle_miss(page_of(PAGE_SIZE))
        # Retry: data granule, allowed.
        check = protection.check_store(PAGE_SIZE + 2048, 4)
        assert check.store_class is StoreClass.OK
        assert protection.fg_allowed_stores == 1

    def test_code_granule_faults(self):
        protection = self.make()
        protection.protect_range(PAGE_SIZE, 16)
        protection.handle_miss(page_of(PAGE_SIZE))
        check = protection.check_store(PAGE_SIZE + 4, 4)
        assert check.store_class is StoreClass.FAULT_CODE

    def test_without_fine_grain_everything_faults(self):
        protection = self.make(fine_grain=False)
        protection.protect_range(PAGE_SIZE, 16)
        check = protection.check_store(PAGE_SIZE + 2048, 4)
        assert check.store_class is StoreClass.FAULT_PAGE

    def test_unprotect_page(self):
        protection = self.make()
        protection.protect_range(PAGE_SIZE, 16)
        protection.unprotect_page(page_of(PAGE_SIZE))
        assert protection.check_store(PAGE_SIZE + 4, 4).store_class is \
            StoreClass.OK

    def test_straddling_store_checked_against_second_page(self):
        protection = self.make()
        protection.protect_range(2 * PAGE_SIZE, 16)
        check = protection.check_store(2 * PAGE_SIZE - 2, 4)
        assert check.faults

    def test_range_spanning_pages(self):
        protection = self.make()
        protection.protect_range(PAGE_SIZE - 8, 16)
        assert protection.is_protected(0)
        assert protection.is_protected(1)

    def test_set_page_mask_zero_clears(self):
        protection = self.make()
        protection.protect_range(PAGE_SIZE, 16)
        protection.set_page_mask(1, 0)
        assert not protection.is_protected(1)
