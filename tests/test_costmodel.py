"""Unit tests for the port/latency cost model (``translator.costmodel``).

The model is the arbiter for both schedule quality and trace growth, so
it must be deterministic, monotone in molecule count for serial code,
and strictly prefer a packed placement of an ILP kernel over the serial
placement of the same operations.
"""

from __future__ import annotations

from repro.host.atoms import AluOp
from repro.translator.costmodel import DEFAULT_COST_MODEL, MachineCostModel
from repro.translator.ir import IROp, IROpKind


def alu(op: AluOp = AluOp.ADD) -> IROp:
    return IROp(kind=IROpKind.ALU, aluop=op)


def load() -> IROp:
    return IROp(kind=IROpKind.LD)


class TestDeterminism:
    def test_completion_is_a_pure_fold(self):
        cycles = [[alu()], [load()], [alu(AluOp.MUL)], [alu()]]
        first = DEFAULT_COST_MODEL.completion_cycles(cycles)
        assert all(DEFAULT_COST_MODEL.completion_cycles(cycles) == first
                   for _ in range(10))

    def test_fresh_model_agrees_with_default(self):
        cycles = [[alu(), load()], [alu()]]
        assert MachineCostModel().completion_cycles(cycles) == \
            DEFAULT_COST_MODEL.completion_cycles(cycles)


class TestSerialMonotonicity:
    def test_more_serial_molecules_cost_strictly_more(self):
        """For unit-latency serial code, modeled cycles track molecule
        count exactly — every added molecule adds a cycle."""
        previous = None
        for count in range(1, 12):
            cycles = [[alu()] for _ in range(count)]
            modeled = DEFAULT_COST_MODEL.completion_cycles(cycles)
            assert modeled == count
            if previous is not None:
                assert modeled > previous
            previous = modeled

    def test_latency_extends_past_last_issue_slot(self):
        # A load issued in the final molecule finishes latency-1 cycles
        # after a plain ALU op would.
        serial_alu = [[alu()], [alu()]]
        serial_load = [[alu()], [load()]]
        lat = DEFAULT_COST_MODEL.latencies[IROpKind.LD]
        assert DEFAULT_COST_MODEL.completion_cycles(serial_load) == \
            DEFAULT_COST_MODEL.completion_cycles(serial_alu) + lat - 1

    def test_multiply_latency_is_special_cased(self):
        mul = [[alu(AluOp.MUL)]]
        add = [[alu(AluOp.ADD)]]
        assert DEFAULT_COST_MODEL.completion_cycles(mul) == \
            DEFAULT_COST_MODEL.mul_latency
        assert DEFAULT_COST_MODEL.completion_cycles(add) == 1


class TestPackedPreference:
    def test_packed_ilp_kernel_strictly_beats_serial(self):
        """Hand-built kernel: two independent load+add chains.  Packed
        placement (loads together, adds together) must model strictly
        cheaper than issuing the same ops one per molecule."""
        l1, l2 = load(), load()
        a1, a2 = alu(), alu()
        packed = [[l1, a1], [l2, a2]]
        serial = [[l1], [a1], [l2], [a2]]
        model = DEFAULT_COST_MODEL
        assert model.completion_cycles(packed) < \
            model.completion_cycles(serial)

    def test_width_limited_packing_still_wins(self):
        ops = [alu() for _ in range(8)]
        packed = [ops[0:2], ops[2:4], ops[4:6], ops[6:8]]
        serial = [[op] for op in ops]
        assert DEFAULT_COST_MODEL.completion_cycles(packed) < \
            DEFAULT_COST_MODEL.completion_cycles(serial)


class TestExtensionGain:
    def test_high_reach_pays_low_reach_does_not(self):
        model = DEFAULT_COST_MODEL
        assert model.extension_gain(0.95) > 0
        assert model.extension_gain(0.05) < 0

    def test_gain_is_monotone_in_reach(self):
        model = DEFAULT_COST_MODEL
        gains = [model.extension_gain(r / 10) for r in range(11)]
        assert gains == sorted(gains)
