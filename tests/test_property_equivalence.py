"""Property-based equivalence: random guest programs must produce
identical architectural state under CMS and under the reference
interpreter.

This is the strongest single check in the suite: it exercises the whole
translator pipeline (flag recipes, dead-flag elimination, scheduling,
speculation, alias protection, store-buffer forwarding) against the
reference semantics on inputs nobody hand-picked.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import CMSConfig

from conftest import assert_equivalent

FAST = CMSConfig(translation_threshold=3, fault_threshold=2)

REGS = ("eax", "edx", "ebx", "esi", "edi")  # ecx/esp/ebp reserved
BUF = 0x4000

ALU_RR = ("add", "sub", "and", "or", "xor", "adc", "sbb", "imul", "cmp",
          "test")
ALU_RI = ALU_RR
SHIFTS = ("shl", "shr", "sar", "rol", "ror")
UNARY = ("not", "neg", "inc", "dec")
CONDS = ("jz", "jnz", "jc", "jnc", "js", "jns", "jo", "jno", "jl", "jge",
         "jle", "jg", "jb", "jbe", "ja", "jae", "jp", "jnp")


@st.composite
def body_instruction(draw) -> str:
    """One safe instruction for the randomized loop body."""
    choice = draw(st.integers(min_value=0, max_value=9))
    r1 = draw(st.sampled_from(REGS))
    r2 = draw(st.sampled_from(REGS))
    imm = draw(st.integers(min_value=0, max_value=0xFFFFFFFF))
    disp = draw(st.integers(min_value=0, max_value=255)) * 4
    if choice == 0:
        return f"mov {r1}, {imm:#x}"
    if choice == 1:
        return f"mov {r1}, {r2}"
    if choice == 2:
        op = draw(st.sampled_from(ALU_RR))
        return f"{op} {r1}, {r2}"
    if choice == 3:
        op = draw(st.sampled_from(ALU_RI))
        return f"{op} {r1}, {imm:#x}"
    if choice == 4:
        op = draw(st.sampled_from(SHIFTS))
        count = draw(st.integers(min_value=0, max_value=31))
        return f"{op} {r1}, {count}"
    if choice == 5:
        op = draw(st.sampled_from(UNARY))
        return f"{op} {r1}"
    if choice == 6:
        return f"load {r1}, [ebp+{disp:#x}]"
    if choice == 7:
        return f"store [ebp+{disp:#x}], {r1}"
    if choice == 8:
        # A conditional skip over one instruction: creates side exits.
        # The {L} placeholder is replaced with a per-program position so
        # labels are always unique.
        cond = draw(st.sampled_from(CONDS))
        inner = draw(st.sampled_from(ALU_RR))
        return (f"{cond} skip_{{L}}\n    {inner} {r1}, {r2}\n"
                f"skip_{{L}}:")
    # choice == 9: a division that cannot fault: the high half is
    # zeroed and the divisor (esi) is forced odd, so the quotient fits.
    return (f"mov eax, {imm:#x}\n    mov edx, 0\n"
            f"    or esi, 1\n    div esi")


@st.composite
def random_program(draw) -> str:
    body = draw(st.lists(body_instruction(), min_size=4, max_size=24))
    iterations = draw(st.integers(min_value=8, max_value=40))
    body = [line.replace("{L}", str(index))
            for index, line in enumerate(body)]
    lines = "\n    ".join(body)
    return f"""
start:
    mov esp, 0x8000
    mov ebp, {BUF:#x}
    mov ecx, {iterations}
loop:
    {lines}
    dec ecx
    jnz loop
    cli
    hlt
"""


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.data_too_large])
@given(random_program())
def test_random_programs_equivalent(source):
    assert_equivalent(source, config=FAST)


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(random_program())
def test_random_programs_equivalent_no_reordering(source):
    config = CMSConfig(translation_threshold=3, reorder_memory=False,
                       control_speculation=False)
    assert_equivalent(source, config=config)


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(random_program())
def test_random_programs_equivalent_no_alias_hw(source):
    config = CMSConfig(translation_threshold=3, use_alias_hw=False)
    assert_equivalent(source, config=config)


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(random_program())
def test_random_programs_equivalent_forced_self_check(source):
    config = CMSConfig(translation_threshold=3, force_self_check=True)
    assert_equivalent(source, config=config)


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(random_program())
def test_random_programs_equivalent_tiny_regions(source):
    config = CMSConfig(translation_threshold=3, max_region_instructions=8,
                       commit_interval=4)
    assert_equivalent(source, config=config)


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(random_program())
def test_random_programs_equivalent_no_fine_grain(source):
    config = CMSConfig(translation_threshold=3, fine_grain_protection=False)
    assert_equivalent(source, config=config)


# Superblock traces (PR 7): force promotion and deep unrolling so the
# duplicated-address machinery (per-copy guards, mid-trace commits,
# rollback through early side exits) runs on programs nobody hand-built.
DEEP_TRACES = CMSConfig(translation_threshold=3, trace_hot_molecules=16,
                        trace_max_blocks=8, trace_min_reach=0.05,
                        trace_mispredict_threshold=4)


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.data_too_large])
@given(random_program())
def test_random_programs_equivalent_deep_traces(source):
    assert_equivalent(source, config=DEEP_TRACES)


@st.composite
def nested_random_program(draw) -> str:
    """An outer loop re-entering a small randomized inner loop: the
    shape that drives hot-loop promotion, ragged trip counts, and the
    shallow-loop split ladder."""
    body = draw(st.lists(body_instruction(), min_size=2, max_size=8))
    inner_iters = draw(st.integers(min_value=1, max_value=7))
    outer_iters = draw(st.integers(min_value=8, max_value=25))
    body = [line.replace("{L}", str(index))
            for index, line in enumerate(body)]
    lines = "\n    ".join(body)
    # The outer counter lives in memory above the body's store range
    # (disp caps at 0x3fc): every general register is fair game for the
    # randomized body, so none of them can carry loop state.
    return f"""
start:
    mov esp, 0x8000
    mov ebp, {BUF:#x}
    mov ecx, {outer_iters}
    store [ebp+0x400], ecx
outer:
    mov ecx, {inner_iters}
inner:
    {lines}
    dec ecx
    jnz inner
    load ecx, [ebp+0x400]
    dec ecx
    store [ebp+0x400], ecx
    jnz outer
    cli
    hlt
"""


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.data_too_large])
@given(nested_random_program())
def test_nested_random_programs_equivalent_deep_traces(source):
    assert_equivalent(source, config=DEEP_TRACES)
