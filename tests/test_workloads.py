"""Workload-suite tests: every synthetic benchmark must halt and print
the same checksum under full CMS as under the pure interpreter.

For interrupt-driven workloads (the boots) architectural loop counters
legitimately differ between engines — asynchronous interrupt delivery
points are not architecturally specified — so the oracle is the printed
checksum, which each workload computes from deterministic data only.
"""

from __future__ import annotations

import pytest

from repro.cms.config import CMSConfig
from repro.workloads import ALL_WORKLOADS, get_workload, run_workload
from repro.workloads.base import Workload
from repro.workloads.games import blt_driver, quake_demo2

FAST = CMSConfig(translation_threshold=6)


def reference_output(workload: Workload) -> str:
    result = run_workload(workload, CMSConfig().interpreter_only())
    assert result.halted, f"{workload.name}: reference did not halt"
    assert result.console_output.strip(), \
        f"{workload.name}: no checksum printed"
    return result.console_output


@pytest.mark.parametrize("name", sorted(ALL_WORKLOADS))
def test_workload_checksum_matches_reference(name):
    workload = ALL_WORKLOADS[name]
    expected = reference_output(workload)
    result = run_workload(workload, FAST)
    assert result.halted, f"{name}: CMS run did not halt"
    assert result.console_output == expected, (
        f"{name}: checksum diverged "
        f"(ref {expected!r}, cms {result.console_output!r})"
    )
    # The workload must actually exercise the translator.
    assert result.system.stats.translations_made >= 1


@pytest.mark.parametrize("name", ["win98_boot", "tomcatv", "quake_demo2"])
def test_workloads_correct_without_reordering(name):
    workload = ALL_WORKLOADS[name]
    expected = reference_output(workload)
    config = CMSConfig(translation_threshold=6, reorder_memory=False,
                       control_speculation=False)
    result = run_workload(workload, config)
    assert result.console_output == expected


@pytest.mark.parametrize("name", ["win95_boot", "compress", "blt_driver"])
def test_workloads_correct_without_alias_hw(name):
    workload = ALL_WORKLOADS[name]
    expected = reference_output(workload)
    config = CMSConfig(translation_threshold=6, use_alias_hw=False)
    result = run_workload(workload, config)
    assert result.console_output == expected


@pytest.mark.parametrize("name", ["win98_boot", "quake_demo2"])
def test_workloads_correct_without_fine_grain(name):
    workload = ALL_WORKLOADS[name]
    expected = reference_output(workload)
    config = CMSConfig(translation_threshold=6,
                       fine_grain_protection=False)
    result = run_workload(workload, config)
    assert result.console_output == expected


class TestWorkloadPhenomena:
    def test_boots_generate_protection_faults(self):
        result = run_workload(ALL_WORKLOADS["win98_boot"], FAST)
        assert result.system.protection.protection_faults >= 1

    def test_boots_deliver_timer_interrupts(self):
        result = run_workload(ALL_WORKLOADS["dos_boot"], FAST)
        assert result.system.stats.interrupts_delivered >= 3

    def test_boot_dma_traffic(self):
        result = run_workload(ALL_WORKLOADS["winnt_boot"], FAST)
        assert result.system.machine.dma.transfers_completed >= 3

    def test_paging_boots_enable_paging(self):
        result = run_workload(ALL_WORKLOADS["linux_boot"], FAST)
        assert result.system.machine.mmu.translations > 0

    def test_quake_produces_frames(self):
        result = run_workload(ALL_WORKLOADS["quake_demo2"], FAST)
        assert result.frames >= 10
        assert result.system.machine.framebuffer.pixel_writes > 1000

    def test_quake_uses_smc_machinery(self):
        result = run_workload(ALL_WORKLOADS["quake_demo2"], FAST)
        stats = result.system.stats
        assert stats.smc_invalidations >= 1 or stats.protection_faults >= 1

    def test_blt_driver_reactivates_versions(self):
        result = run_workload(ALL_WORKLOADS["blt_driver"], FAST)
        groups = result.system.groups
        assert groups.retired >= 2
        assert groups.reactivations >= 1

    def test_mmio_sites_learned_in_boots(self):
        result = run_workload(ALL_WORKLOADS["os2_boot"], FAST)
        assert len(result.system.profile.mmio_sites) >= 1

    def test_scaling_increases_work(self):
        small = run_workload(quake_demo2(frames=6),
                             CMSConfig().interpreter_only())
        large = run_workload(quake_demo2(frames=12),
                             CMSConfig().interpreter_only())
        assert large.guest_instructions > small.guest_instructions

    def test_blt_version_count_parameter(self):
        workload = blt_driver(scale=1, versions=4)
        expected = reference_output(workload)
        result = run_workload(workload, FAST)
        assert result.console_output == expected
