"""Failure containment, the degradation ladder, and the self-audit.

Three layers of coverage:

* unit tests drive :class:`DegradationManager` directly with a fake
  guest clock (full ladder descent, probation backoff, tier clamps,
  and a hypothesis property that any fault sequence converges back to
  the floor tier once the faults stop);
* system tests sabotage a live :class:`CodeMorphingSystem` (crashing
  translator, chaos injection, mid-run eviction) and assert the guest
  outcome still matches the pure-interpreter reference;
* auditor tests corrupt each invariant the :class:`RuntimeAuditor`
  guards and check one audit pass repairs it (and a second finds
  nothing).
"""

from __future__ import annotations

from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import CMSConfig, CMSStats, CodeMorphingSystem, Machine
from repro.cache.tcache import TranslationCache
from repro.cms.degrade import DegradationManager, Tier
from repro.translator import TranslationError
from repro.translator.policies import TranslationPolicy

from conftest import run_cms
from test_tcache import make_translation

FAST = CMSConfig(translation_threshold=4)

# Manager tests use a tiny ladder so every transition is reachable in a
# handful of calls.
LADDER = replace(FAST, storm_window=100, storm_threshold=3,
                 quarantine_probation=4, ladder_promote_clean=2)

LOOP = """
start:
    mov esp, 0x8000
    mov esi, 0
    mov ecx, 0
body:
    add esi, 3
    xor esi, 0x5A
    rol esi, 1
    inc ecx
    cmp ecx, 400
    jne body
    cli
    hlt
"""

CALL_HEAVY = """
start:
    mov esp, 0x8000
    mov esi, 0
    mov ecx, 0
outer:
    call work_a
    call work_b
    inc ecx
    cmp ecx, 150
    jne outer
    cli
    hlt
work_a:
    add esi, 3
    rol esi, 1
    ret
work_b:
    xor esi, 0x5A
    add esi, 0x9E3779B9
    ret
"""


def make_manager(config=LADDER):
    """A manager with a settable clock; returns (manager, stats, now)."""
    now = [0]
    stats = CMSStats()
    manager = DegradationManager(config, stats, clock=lambda: now[0])
    return manager, stats, now


def run_vs_reference(source, config, sabotage=None,
                     max_instructions=5_000_000):
    """Run ``source`` under ``config`` (optionally sabotaged) and assert
    exact architectural equivalence with the pure interpreter."""
    machine = Machine()
    entry = machine.load_source(source)
    system = CodeMorphingSystem(machine, config)
    if sabotage is not None:
        sabotage(system)
    result = system.run(entry, max_instructions=max_instructions)

    ref_machine = Machine()
    ref_entry = ref_machine.load_source(source)
    ref_system = CodeMorphingSystem(ref_machine, config.interpreter_only())
    ref_result = ref_system.run(ref_entry,
                                max_instructions=max_instructions)
    assert ref_result.halted, "reference run did not halt"
    assert result.halted, "CMS run did not halt"
    assert result.console_output == ref_result.console_output
    assert system.state.snapshot() == ref_system.state.snapshot()
    assert machine.ram.read_bytes(0, machine.ram.size) == \
        ref_machine.ram.read_bytes(0, ref_machine.ram.size)
    return system


# ----------------------------------------------------------------------
# The ladder (unit)
# ----------------------------------------------------------------------


class TestLadder:
    def test_full_descent_and_reexpansion(self):
        """A storming region walks every rung down to interpret-only,
        sits out its probation, and climbs all the way back up."""
        manager, stats, now = make_manager()
        entry = 0x4000
        # Nine events inside one window: three storms, three demotions.
        for expected in (Tier.CONSERVATIVE, Tier.NO_REORDER,
                         Tier.INTERP_ONLY):
            for _ in range(LADDER.storm_threshold):
                manager.note_degrade_event(entry, "test-storm")
            assert manager.tier_of(entry) is expected
        assert stats.storm_demotions == 3
        assert stats.quarantines == 1
        assert entry in manager.quarantined_regions()

        # Probation: 4 consultations; the first three refuse.
        refusals = 0
        while not manager.allow_translation(entry):
            refusals += 1
        assert refusals == LADDER.quarantine_probation - 1
        assert manager.tier_of(entry) is Tier.NO_REORDER
        assert stats.quarantine_readmissions == 1

        # Clean dispatches climb the rest of the way (deeper rungs need
        # proportionally longer streaks).
        for _ in range(LADDER.ladder_promote_clean * 2):
            manager.note_clean_dispatch(entry)
        assert manager.tier_of(entry) is Tier.CONSERVATIVE
        for _ in range(LADDER.ladder_promote_clean):
            manager.note_clean_dispatch(entry)
        assert manager.tier_of(entry) is Tier.AGGRESSIVE
        assert stats.ladder_promotions == 2

    def test_spread_out_events_do_not_storm(self):
        manager, stats, now = make_manager()
        for _ in range(20):
            now[0] += LADDER.storm_window + 1  # each event expires alone
            manager.note_degrade_event(0x4000, "sporadic")
        assert manager.tier_of(0x4000) is Tier.AGGRESSIVE
        assert stats.storm_demotions == 0

    def test_quarantine_backoff_doubles(self):
        manager, _stats, _now = make_manager()
        entry = 0x4000
        base = LADDER.quarantine_probation
        for strike in range(4):
            manager.quarantine(entry, "again")
            assert manager.regions()[entry].probation == base * 2 ** strike
            while not manager.allow_translation(entry):
                pass
        # The exponent is capped so probation stays bounded.
        for _ in range(40):
            manager.quarantine(entry, "again")
        assert manager.regions()[entry].probation == \
            base * 2 ** DegradationManager.MAX_BACKOFF_DOUBLINGS

    def test_clamp_per_tier(self):
        manager, _stats, _now = make_manager()
        policy = TranslationPolicy()
        entry = 0x4000
        assert manager.clamp(entry, policy) is policy  # AGGRESSIVE: no-op

        manager._health(entry).tier = Tier.CONSERVATIVE
        clamped = manager.clamp(entry, policy)
        assert not clamped.control_speculation
        assert clamped.max_instructions <= 32
        assert clamped.commit_interval <= 8
        assert clamped.reorder_memory  # memory dials survive this rung

        manager._health(entry).tier = Tier.NO_REORDER
        clamped = manager.clamp(entry, policy)
        assert not clamped.reorder_memory
        assert not clamped.use_alias_hw
        assert clamped.max_instructions <= 16
        assert clamped.commit_interval <= 4

    def test_clamp_never_relaxes_the_policy(self):
        manager, _stats, _now = make_manager()
        tight = TranslationPolicy(max_instructions=2, commit_interval=1,
                                  reorder_memory=False)
        manager._health(0x4000).tier = Tier.CONSERVATIVE
        clamped = manager.clamp(0x4000, tight)
        assert clamped.max_instructions == 2
        assert clamped.commit_interval == 1
        assert not clamped.reorder_memory

    def test_tier_floor_respected(self):
        manager, _stats, _now = make_manager(
            replace(LADDER, degrade_tier_floor=int(Tier.NO_REORDER)))
        entry = 0x4000
        assert manager.tier_of(entry) is Tier.NO_REORDER  # unknown region
        for _ in range(100):
            manager.note_clean_dispatch(entry)
        assert manager.tier_of(entry) is Tier.NO_REORDER  # never above floor

    def test_containment_disabled_is_inert(self):
        manager, stats, _now = make_manager(
            replace(LADDER, failure_containment=False))
        for _ in range(50):
            manager.note_degrade_event(0x4000, "storm")
        assert manager.tier_of(0x4000) is Tier.AGGRESSIVE
        assert stats.storm_demotions == 0

    def test_demotion_fires_callback(self):
        manager, _stats, _now = make_manager()
        demoted = []
        manager.on_demote = demoted.append
        for _ in range(LADDER.storm_threshold):
            manager.note_degrade_event(0x4000, "storm")
        assert demoted == [0x4000]

    @settings(max_examples=40, deadline=None)
    @given(steps=st.lists(
        st.tuples(st.sampled_from(["fault", "clean", "allow"]),
                  st.integers(min_value=0, max_value=50)),
        max_size=120))
    def test_any_fault_sequence_converges(self, steps):
        """Whatever interleaving of faults, clean dispatches, and
        translation attempts a region sees, the ladder state stays
        well-formed — and once the faults stop, the region always
        converges back to the floor tier."""
        manager, _stats, now = make_manager()
        entry = 0x4000
        for kind, advance in steps:
            now[0] += advance
            if kind == "fault":
                manager.note_degrade_event(entry, "fuzz")
            elif kind == "clean":
                manager.note_clean_dispatch(entry)
            else:
                manager.allow_translation(entry)
            tier = manager.tier_of(entry)
            assert Tier.AGGRESSIVE <= tier <= Tier.INTERP_ONLY
            health = manager.regions().get(entry)
            if health is not None and health.tier >= Tier.INTERP_ONLY:
                assert health.probation >= 0
        # Recovery: probation is bounded by the backoff cap and climbing
        # needs a bounded clean streak, so this terminates comfortably.
        for _ in range(20_000):
            if manager.tier_of(entry) is Tier.AGGRESSIVE:
                break
            now[0] += 1
            if manager.allow_translation(entry):
                manager.note_clean_dispatch(entry)
        assert manager.tier_of(entry) is Tier.AGGRESSIVE


# ----------------------------------------------------------------------
# Containment (system)
# ----------------------------------------------------------------------


class TestContainment:
    def test_translator_crash_contained_and_region_readmitted(self):
        """An internal translator crash never reaches the guest: the
        region is quarantined, later re-admitted, and retranslated."""
        config = replace(FAST, quarantine_probation=5,
                         ladder_promote_clean=4)
        failures = {"count": 0}

        def sabotage(system):
            inner = system.translator.translate

            def flaky(entry_eip, policy):
                # Crash every translation until the first quarantined
                # region has served its probation and been re-admitted;
                # from then on the translator is healthy again.
                if system.stats.quarantine_readmissions == 0:
                    failures["count"] += 1
                    raise RuntimeError("synthetic translator crash")
                return inner(entry_eip, policy)

            system.translator.translate = flaky

        system = run_vs_reference(LOOP, config, sabotage)
        stats = system.stats
        assert failures["count"] >= 1, "the sabotage never triggered"
        assert stats.contained_errors == failures["count"]
        assert stats.quarantines >= 1
        assert stats.quarantine_readmissions >= 1
        assert stats.translations_made >= 1  # recovered to translated code
        report = system.health_report()
        assert not report.healthy
        assert any("synthetic translator crash" in line
                   for line in report.incidents)
        assert "contained errors" in report.describe()
        assert system.auditor.audit() == []  # containment left no damage

    def test_containment_disabled_propagates(self):
        config = replace(FAST, failure_containment=False)
        machine = Machine()
        entry = machine.load_source(LOOP)
        system = CodeMorphingSystem(machine, config)

        def crash(entry_eip, policy):
            raise RuntimeError("synthetic translator crash")

        system.translator.translate = crash
        with pytest.raises(RuntimeError, match="synthetic"):
            system.run(entry)

    def test_chaos_run_matches_reference(self):
        config = replace(FAST, chaos_rate=0.1, chaos_seed=1234)
        system = run_vs_reference(CALL_HEAVY, config)
        stats = system.stats
        assert stats.chaos_injected > 0, "chaos never fired at this seed"
        # Every injection is contained exactly once — none escape, none
        # are double-counted.
        assert stats.contained_errors == stats.chaos_injected

    @pytest.mark.parametrize("floor", [0, 1, 2])
    def test_equivalence_at_every_tier(self, floor):
        config = replace(FAST, degrade_tier_floor=floor,
                         ladder_promote_clean=4)
        system = run_vs_reference(CALL_HEAVY, config)
        if floor > 0:
            # The floor really bit: translations exist and carry clamps.
            assert system.stats.translations_made >= 1
            for translation in system.tcache.translations():
                assert not translation.policy.control_speculation

    def test_equivalence_fully_quarantined(self):
        """Tier 3 everywhere: translation permanently refused."""

        def pin(system):
            system.degrade.allow_translation = lambda eip: False

        system = run_vs_reference(CALL_HEAVY, FAST, pin)
        assert system.stats.translations_made == 0
        assert system.stats.interp_instructions > 0


# ----------------------------------------------------------------------
# Self-audit repairs
# ----------------------------------------------------------------------


@pytest.fixture
def live_system():
    system, result = run_cms(CALL_HEAVY, FAST)
    assert result.halted
    assert len(system.tcache) >= 2
    return system


class TestAuditor:
    def test_clean_system_audits_clean(self, live_system):
        runs_before = live_system.stats.audit_runs
        assert live_system.auditor.audit() == []
        assert live_system.stats.audit_runs == runs_before + 1
        assert live_system.stats.audit_repairs == 0

    def test_repairs_entry_index_alias(self, live_system):
        tcache = live_system.tcache
        victim = tcache.translations()[0]
        alias = victim.entry_eip + 0x100000
        tcache._by_entry[alias] = victim
        findings = live_system.auditor.audit()
        assert any("aliased" in f for f in findings)
        assert tcache.lookup(alias) is None
        assert tcache.lookup(victim.entry_eip) is victim  # true key intact
        assert live_system.auditor.audit() == []

    def test_repairs_invalid_resident(self, live_system):
        tcache = live_system.tcache
        victim = tcache.translations()[0]
        victim.valid = False  # simulate a missed invalidation
        findings = live_system.auditor.audit()
        assert any("invalid" in f for f in findings)
        assert tcache.lookup(victim.entry_eip) is None
        assert live_system.auditor.audit() == []

    def test_repairs_page_index(self, live_system):
        tcache = live_system.tcache
        victim = tcache.translations()[0]
        page = next(iter(victim.pages()))
        tcache._by_page[page].discard(victim)  # drop a required entry
        stray = make_translation(entry=0x9000)
        stray.valid = False
        tcache._by_page.setdefault(500, set()).add(stray)  # non-resident
        tcache._by_page.setdefault(501, set()).add(victim)  # non-covering
        findings = live_system.auditor.audit()
        assert any("missing from page" in f for f in findings)
        assert any("non-resident" in f for f in findings)
        assert any("non-covering" in f for f in findings)
        assert victim in tcache.translations_on_page(page)
        assert 500 not in tcache._by_page and 501 not in tcache._by_page
        assert live_system.auditor.audit() == []

    def test_repairs_dangling_chain(self, live_system):
        source = live_system.tcache.translations()[0]
        atom = source.exit_atoms[0]
        dead = make_translation(entry=0x7777)
        dead.valid = False
        atom.chained_translation = dead
        dead.incoming_chains.append(atom)
        findings = live_system.auditor.audit()
        assert any("chained to dead" in f for f in findings)
        assert atom.chained_translation is None
        assert live_system.auditor.audit() == []

    def test_repairs_stale_incoming_backpointer(self, live_system):
        target = live_system.tcache.translations()[0]
        stray = make_translation(entry=0x8888)  # its exit chains nowhere
        target.incoming_chains.append(stray.exit_atoms[0])
        findings = live_system.auditor.audit()
        assert any("stale incoming" in f for f in findings)
        assert stray.exit_atoms[0] not in target.incoming_chains
        assert live_system.auditor.audit() == []

    def test_repairs_resident_and_retired_duplicate(self, live_system):
        victim = live_system.tcache.translations()[0]
        live_system.groups.retire(victim)  # retired while still resident
        findings = live_system.auditor.audit()
        assert any("both resident and" in f for f in findings)
        assert live_system.groups.versions(victim.entry_eip) == 0
        assert live_system.auditor.audit() == []

    def test_repairs_stale_protection_mask(self, live_system):
        protection = live_system.protection
        victim = live_system.tcache.translations()[0]
        page = next(iter(victim.pages()))
        expected = protection.page_mask(page)
        assert expected != 0
        protection.set_page_mask(page, 0)  # lose the protection
        findings = live_system.auditor.audit()
        assert any("protection mask stale" in f for f in findings)
        assert protection.page_mask(page) == expected
        assert live_system.auditor.audit() == []


# ----------------------------------------------------------------------
# Retranslation-failure and eviction regressions (PR 3 satellites)
# ----------------------------------------------------------------------


def find_chained_target(system):
    for translation in system.tcache.translations():
        live = [atom for atom in translation.incoming_chains
                if atom.chained_translation is translation]
        if live:
            return translation, live
    return None, []


class TestFailurePaths:
    def test_retranslate_failure_removes_and_unchains(self, live_system):
        """A TranslationError during retranslation must leave no route
        back into the dead translation: not via the tcache, not via a
        chain patch, not via stale page protection."""
        target, atoms = find_chained_target(live_system)
        assert target is not None, "no chained pair formed"

        def refuse(entry_eip, policy):
            raise TranslationError("region became untranslatable")

        live_system.translator.translate = refuse
        live_system._retranslate(target,
                                 live_system.controller.policy_for(
                                     target.entry_eip))
        assert not target.valid
        assert live_system.tcache.lookup(target.entry_eip) is None
        assert all(atom.chained_translation is not target for atom in atoms)
        assert not target.incoming_chains
        assert live_system.auditor.audit() == []  # protection rebuilt too

    def test_retranslate_internal_error_contained(self, live_system):
        target, atoms = find_chained_target(live_system)
        assert target is not None

        def crash(entry_eip, policy):
            raise RuntimeError("optimizer bug")

        live_system.translator.translate = crash
        live_system._retranslate(target,
                                 live_system.controller.policy_for(
                                     target.entry_eip))
        assert live_system.stats.contained_errors == 1
        assert target.entry_eip in live_system.degrade.quarantined_regions()
        assert live_system.tcache.lookup(target.entry_eip) is None
        assert all(atom.chained_translation is not target for atom in atoms)
        assert live_system.auditor.audit() == []

    def test_evict_cold_reverts_incoming_chains(self):
        cache = TranslationCache(capacity_molecules=100)
        hot = make_translation(entry=0x1000, molecules=8)
        hot.entries = 50
        cold = make_translation(entry=0x2000, molecules=8)
        cache.insert(hot)
        cache.insert(cold)
        cache.chain(hot, hot.exit_atoms[0], cold)
        victims = cache.evict_cold(fraction=0.9)
        assert cold in victims and not cold.valid
        assert cache.lookup(0x1000) is hot
        assert hot.exit_atoms[0].chained_translation is None
        assert not cold.incoming_chains

    def test_flush_reverts_incoming_chains(self):
        cache = TranslationCache()
        a = make_translation(entry=0x1000)
        b = make_translation(entry=0x2000)
        cache.insert(a)
        cache.insert(b)
        cache.chain(a, a.exit_atoms[0], b)
        cache.flush()
        assert a.exit_atoms[0].chained_translation is None
        assert not b.incoming_chains

    def test_dispatch_after_mid_run_eviction(self):
        """Chain A→B, evict B mid-run, keep dispatching A: the exit must
        fall back to the dispatcher instead of entering dead code, and
        the guest outcome must not change."""
        # Small dispatch fuel keeps the dispatcher in the loop (chained
        # translations otherwise run the whole program in a handful of
        # dispatches and the audit interval never elapses).
        config = replace(FAST, audit_interval=5, dispatch_fuel_molecules=150)
        machine = Machine()
        entry = machine.load_source(CALL_HEAVY)
        system = CodeMorphingSystem(machine, config)
        surgery = {"atoms": None}
        real_audit = system.auditor.audit

        def audit_and_evict():
            if surgery["atoms"] is None:
                target, atoms = find_chained_target(system)
                if target is not None:
                    system.tcache.invalidate_translation(target)
                    for page in target.pages():
                        system.smc.recompute_page(page)
                    assert all(a.chained_translation is None for a in atoms)
                    surgery["atoms"] = atoms
            return real_audit()

        system.auditor.audit = audit_and_evict
        result = system.run(entry)
        assert result.halted
        assert surgery["atoms"], "no live chain existed at audit time"
        assert system.stats.audit_repairs == 0  # eviction was coherent

        ref_machine = Machine()
        ref_entry = ref_machine.load_source(CALL_HEAVY)
        ref_system = CodeMorphingSystem(ref_machine,
                                        config.interpreter_only())
        ref_result = ref_system.run(ref_entry)
        assert ref_result.halted
        assert result.console_output == ref_result.console_output
        assert system.state.snapshot() == ref_system.state.snapshot()


# ----------------------------------------------------------------------
# Chaos campaign plumbing
# ----------------------------------------------------------------------


class TestChaosMatrix:
    def test_chaos_matrix_arms_every_variant(self):
        from repro.fuzz import chaos_matrix, default_matrix

        base = default_matrix()
        armed = chaos_matrix(base, rate=0.05, seed=3)
        assert len(armed) == len(base)
        assert all(v.name.endswith("+chaos") for v in armed)
        assert all(v.config.chaos_rate == 0.05 for v in armed)
        assert len({v.config.chaos_seed for v in armed}) == len(armed)

    @pytest.mark.fuzz
    def test_chaos_campaign_smoke(self):
        from repro.fuzz import chaos_matrix, default_matrix, run_campaign

        variants = chaos_matrix(default_matrix(), rate=0.05, seed=5)
        result = run_campaign(budget=18, seed=5, variants=variants)
        assert result.ok, "\n".join(m.describe()
                                    for m in result.mismatches)


# ----------------------------------------------------------------------
# Eviction residency and controller lifetime (PR 5 satellites)
# ----------------------------------------------------------------------


class TestEvictionResidency:
    def test_evict_cold_drops_group_residency(self):
        """A cold-evicted region must not leak its parked group
        versions: the system's on_evict hook drops the whole group when
        the entry is no longer resident."""
        system, result = run_cms(CALL_HEAVY, FAST)
        assert result.halted
        # Park a retired version for a resident entry, plus one for an
        # entry the cache has already forgotten.
        resident_entry = system.tcache.translations()[0].entry_eip
        system.groups.retire(make_translation(entry=resident_entry))
        system.groups.retire(make_translation(entry=0xDEAD0))
        victims = system.tcache.evict_cold(fraction=1.0)
        assert victims
        for translation in victims:
            assert system.tcache.lookup(translation.entry_eip) is None
            assert not system.groups.has_group(translation.entry_eip)
        # Only the evicted regions' groups were touched.
        assert system.groups.has_group(0xDEAD0)

    def test_eviction_survivors_keep_groups(self):
        system, result = run_cms(CALL_HEAVY, FAST)
        assert result.halted
        survivor = max(system.tcache.translations(),
                       key=lambda t: t.entries)
        survivor.entries += 1_000_000  # decisively hot
        system.groups.retire(make_translation(entry=survivor.entry_eip))
        system.tcache.evict_cold(fraction=0.5)
        assert system.tcache.lookup(survivor.entry_eip) is survivor
        assert system.groups.has_group(survivor.entry_eip)


class TestControllerAudit:
    def test_audit_prunes_dead_controller_keys(self, live_system):
        dead = 0xBAD00
        assert live_system.tcache.lookup(dead) is None
        live_system.controller.set_policy(
            dead, live_system.controller.base_policy().with_(
                self_check=True))
        pruned_before = live_system.stats.controller_pruned
        findings = live_system.auditor.audit()
        assert findings == []  # housekeeping, not a repair
        assert live_system.stats.audit_repairs == 0
        assert live_system.stats.controller_pruned > pruned_before
        assert dead not in live_system.controller.policy_entries()

    def test_audit_keeps_live_controller_keys(self, live_system):
        entry = live_system.tcache.translations()[0].entry_eip
        live_system.controller.set_policy(
            entry, live_system.controller.base_policy().with_(
                self_check=True))
        live_system.auditor.audit()
        assert entry in live_system.controller.policy_entries()
        assert live_system.controller.policy_for(entry).self_check

    def test_flush_prunes_but_keeps_hot_anchors(self):
        system, result = run_cms(CALL_HEAVY, FAST)
        assert result.halted
        hot = max(system.profile.anchor_counts,
                  key=system.profile.anchor_counts.get)
        system.controller.set_policy(
            hot, system.controller.base_policy().with_(self_check=True))
        system.tcache.flush()
        # The hot anchor's policy survives the flush-triggered prune —
        # the region will re-translate and must not bounce (§3).
        assert hot in system.controller.policy_entries()
